#!/usr/bin/env python
"""Operations tour: the machinery that keeps a SPRITE network healthy.

Walks through the operational features beyond basic retrieval:

1. **Maintenance probing** — owners heartbeat their terms' indexing
   peers and republish postings lost to crashes (paper Section 1's
   "periodically probe the indexing peers").
2. **Hot-term advice** — maintenance-hot terms (huge indexed document
   frequency, tiny IDF) are discarded and replaced (Section 7(a)).
3. **Range sharing** — an underloaded peer splits the heaviest peer's
   arc (Section 7(b) / Ganesan et al.).
4. **Virtual nodes** — Chord's structural load balancing, for contrast.
5. **Bloom-compressed conjunctive search** — the message-size remedy of
   the related work (Reynolds & Vahdat).
"""

from __future__ import annotations

from repro import small_experiment_config
from repro.core import BloomQueryProcessor, MaintenanceDaemon
from repro.dht.virtual import (
    build_virtual_topology,
    load_coefficient_of_variation,
    recommended_vnodes,
)
from repro.evaluation import build_environment
from repro.evaluation.experiments import build_trained_sprite
from repro.extensions import HotTermAdvisor, RangeSharingBalancer


def main() -> None:
    print("Building and training a SPRITE network...")
    env = build_environment(small_experiment_config())
    system = build_trained_sprite(env)
    print(f"  {system.ring.num_live} peers, {system.total_published_terms()} postings\n")

    # 1. Maintenance: crash a slot-bearing peer, repair, heal.
    print("1) Maintenance probing and self-healing")
    daemon = MaintenanceDaemon(system)
    victim = next(n for n in system.ring.live_ids if system.ring.node(n).store)
    lost = len(system.ring.node(victim).store)
    system.ring.fail(victim)
    system.ring.stabilize()
    healed = daemon.heal_until_stable()
    print(f"   crashed a peer holding {lost} term slots")
    print(f"   maintenance republished {healed} postings; index whole again\n")

    # 2. Hot-term advice.
    print("2) Hot-term advice (Section 7a)")
    advisor = HotTermAdvisor(system, df_threshold=max(5, len(env.corpus) // 4))
    hot_terms, switches = advisor.rebalance()
    print(f"   hot terms detected: {hot_terms}; document term switches: {switches}\n")

    # 3. Range sharing.
    print("3) Range-sharing load balance (Section 7b)")
    balancer = RangeSharingBalancer(system.ring)
    before = balancer.snapshot().imbalance
    moves = balancer.rebalance(max_steps=4, target_imbalance=2.0)
    after = balancer.snapshot().imbalance
    print(f"   imbalance (heaviest/mean): {before:.2f} -> {after:.2f} "
          f"after {len(moves)} sharing moves\n")

    # 4. Virtual nodes.
    print("4) Virtual nodes (structural balancing, for contrast)")
    peers = 24
    flat = build_virtual_topology(peers, 1, seed=11)
    layered = build_virtual_topology(peers, recommended_vnodes(peers), seed=11)
    import random

    rng = random.Random(1)
    for i in range(2000):
        key = rng.randrange(flat.ring.space.size)
        flat.ring.place(key, i)
        layered.ring.place(key, i)
    print(
        f"   key-load CV with 1 vnode/peer:  "
        f"{load_coefficient_of_variation(flat.physical_slot_loads()):.2f}"
    )
    print(
        f"   key-load CV with {recommended_vnodes(peers)} vnodes/peer: "
        f"{load_coefficient_of_variation(layered.physical_slot_loads()):.2f}\n"
    )

    # 5. Bloom-compressed conjunctive search.
    print("5) Bloom-compressed conjunctive search (related work [13])")
    processor = BloomQueryProcessor(
        system.protocol, assumed_corpus_size=system.config.assumed_corpus_size
    )
    bloom_bytes = naive_bytes = 0
    for query in [q for q in env.test.queries if len(q.terms) >= 2][:40]:
        __, execution = processor.execute(system._issuer_for(query), query)
        bloom_bytes += execution.bytes_shipped
        naive_bytes += execution.naive_bytes
    print(f"   naive transfer:  {naive_bytes / 1024:.0f} KiB")
    print(f"   bloom transfer:  {bloom_bytes / 1024:.0f} KiB "
          f"({naive_bytes / max(1, bloom_bytes):.1f}x smaller)")


if __name__ == "__main__":
    main()
