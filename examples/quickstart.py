#!/usr/bin/env python
"""Quickstart: build a SPRITE network, learn from queries, search.

Runs in a few seconds on the small synthetic corpus.  This walks the
same pipeline as the paper's Section 6.2 experiment:

1. synthesize a TREC-like corpus with expert-judged queries;
2. derive an evaluation query set with the Section 6.1 generator;
3. stand up a Chord ring, share every document (5 initial terms each);
4. insert the training queries and run 3 learning iterations;
5. search with the testing queries and compare against the ideal
   centralized system.
"""

from __future__ import annotations

from repro import (
    build_environment,
    build_trained_sprite,
    small_experiment_config,
)
from repro.evaluation import relative_to_centralized


def main() -> None:
    print("Building the experimental environment (synthetic TREC-like corpus)...")
    env = build_environment(small_experiment_config())
    print(
        f"  corpus: {len(env.corpus)} documents, "
        f"{len(env.corpus.vocabulary)} terms"
    )
    print(
        f"  queries: {len(env.full_set)} "
        f"({len(env.train)} training / {len(env.test)} testing)"
    )

    print("\nTraining SPRITE (share -> insert training queries -> learn)...")
    sprite = build_trained_sprite(env)
    sizes = sprite.learning_summary()
    print(
        f"  {sum(sizes.values())} global index terms published "
        f"(max {max(sizes.values())} per document)"
    )
    print(f"  mean lookup hops so far: {sprite.ring.stats.mean_lookup_hops:.2f}")

    query = env.test.queries[0]
    print(f"\nSearching for: {' '.join(query.terms)}")
    ranked = sprite.search(query, cache=False)
    relevant = env.test.qrels.relevant(query.query_id)
    for entry in ranked.top(10):
        marker = "*" if entry.doc_id in relevant else " "
        print(f"  {marker} {entry.doc_id}  score={entry.score:.3f}")
    print("  (* = expert-judged relevant)")

    print("\nEffectiveness relative to the centralized system (top 20):")
    k = env.config.sprite.top_k_answers
    queries = list(env.test.queries)
    rankings = {q.query_id: sprite.search(q, top_k=k, cache=False) for q in queries}
    central = env.centralized_rankings(queries)
    rel = relative_to_centralized(rankings, central, env.test.qrels, k)
    print(f"  precision ratio: {rel.precision_ratio:.1%}")
    print(f"  recall ratio:    {rel.recall_ratio:.1%}")


if __name__ == "__main__":
    main()
