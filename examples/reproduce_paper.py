#!/usr/bin/env python
"""One-command reproduction of every figure in the paper's evaluation.

Runs the scaled-down Section 6.2 setup (2,500 synthetic documents, 630
generated queries) and prints Figure 4(a), 4(b), 4(c), and the index-
cost comparison.  Takes a few minutes.  For the fast variant used in
tests, pass --small.
"""

from __future__ import annotations

import argparse
import time

from repro import paper_experiment_config, small_experiment_config
from repro.evaluation import (
    build_environment,
    format_cost,
    format_fig4a,
    format_fig4b,
    format_fig4c,
    run_cost_comparison,
    run_fig4a,
    run_fig4b,
    run_fig4c,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="run on the small test-sized corpus (seconds instead of minutes)",
    )
    args = parser.parse_args()
    config = small_experiment_config() if args.small else paper_experiment_config()

    t0 = time.time()
    print("Building environment (corpus, centralized index, query generation)...")
    env = build_environment(config)
    print(
        f"  {len(env.corpus)} documents, {len(env.full_set)} queries "
        f"({time.time() - t0:.1f}s)\n"
    )

    print("=" * 60)
    print("Figure 4(a): effectiveness vs number of answers")
    print("=" * 60)
    t = time.time()
    print(format_fig4a(run_fig4a(env)))
    print(f"({time.time() - t:.1f}s)\n")

    print("=" * 60)
    print("Figure 4(b): effectiveness vs number of indexed terms")
    print("=" * 60)
    t = time.time()
    print(format_fig4b(run_fig4b(env)))
    print(f"({time.time() - t:.1f}s)\n")

    print("=" * 60)
    print("Figure 4(c): adapting to a query-pattern change")
    print("=" * 60)
    t = time.time()
    print(format_fig4c(run_fig4c(env)))
    print(f"({time.time() - t:.1f}s)\n")

    print("=" * 60)
    print("Index construction cost (Section 1 motivation)")
    print("=" * 60)
    t = time.time()
    print(format_cost(run_cost_comparison(env)))
    print(f"({time.time() - t:.1f}s)")


if __name__ == "__main__":
    main()
