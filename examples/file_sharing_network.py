#!/usr/bin/env python
"""A living P2P file-sharing network: joins, leaves, shares, searches.

The scenario the paper's introduction motivates: end-users sharing text
documents.  This example drives a Chord network through its lifecycle —
peers share documents, users query, new peers join (taking over part of
the key space), peers leave gracefully and crash abruptly — and shows
that retrieval keeps working throughout thanks to key migration and
successor replication.
"""

from __future__ import annotations

import random

from repro import ChordConfig, Query, ReplicationManager, SpriteConfig, SpriteSystem
from repro.config import SyntheticCorpusConfig
from repro.corpus import build_synthetic_collection
from repro.dht import ChurnModel


def show(label: str, system: SpriteSystem, query: Query) -> None:
    try:
        ranked = system.search(query, cache=False)
        print(f"  [{label}] '{' '.join(query.terms)}' -> {ranked.top_ids(5)}")
    except Exception as exc:  # degraded service is part of the story
        print(f"  [{label}] query failed: {exc!r}")


def main() -> None:
    rng = random.Random(42)
    print("Synthesizing a shared-document collection...")
    corpus, query_set, __ = build_synthetic_collection(
        SyntheticCorpusConfig(
            num_documents=150,
            num_topics=8,
            vocabulary_size=800,
            topic_core_size=25,
            mean_doc_length=80,
            num_original_queries=10,
            relevant_per_query=10,
            seed=42,
        )
    )

    print("Bootstrapping a 48-peer Chord network and sharing documents...")
    system = SpriteSystem(
        corpus,
        sprite_config=SpriteConfig(initial_terms=5, max_index_terms=15),
        chord_config=ChordConfig(num_peers=48, seed=42),
    )
    system.share_corpus()
    print(f"  {system.total_published_terms()} postings published")
    print(f"  mean lookup hops: {system.ring.stats.mean_lookup_hops:.2f}")

    probe = query_set.queries[0]
    show("steady state", system, probe)

    print("\nUsers issue queries (these train the index)...")
    for query in query_set.queries:
        system.search(query, cache=True)
    system.run_learning(iterations=2)
    print(f"  index grew to {system.total_published_terms()} postings")
    show("after learning", system, probe)

    print("\nReplicating index slots to successors (Section 7)...")
    manager = ReplicationManager(system.ring, replication_factor=3)
    shipped = manager.replicate_round()
    print(f"  {shipped} replica entries shipped")

    print("\nMembership churn: 5 joins, 3 graceful leaves, 4 crashes...")
    churn = ChurnModel(system.ring, seed=7)
    for __ in range(5):
        churn.join_one()
    for __ in range(3):
        churn.leave_random()
    for __ in range(4):
        churn.fail_random()
    print(f"  live peers: {system.ring.num_live}")

    print("Repairing routing state and promoting replicas...")
    promoted = manager.recover_from_failures()
    print(f"  {promoted} replica slots promoted to primaries")
    show("after churn + recovery", system, probe)

    print("\nTraffic summary (messages / bytes / hops by kind):")
    for kind, counters in system.ring.stats.summary().items():
        print(
            f"  {kind:<14} {counters['messages']:>7} msgs  "
            f"{counters['bytes']:>9} B  {counters['hops']:>7} hops"
        )


if __name__ == "__main__":
    main()
