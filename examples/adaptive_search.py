#!/usr/bin/env python
"""Adaptive search: watching SPRITE react to shifting user interests.

A compact version of the paper's Figure 4(c) experiment: the user
population is interested in one group of topics for a while, then
switches to another.  Iteration by iteration, the script prints the
precision of SPRITE and the static eSearch baseline relative to the
centralized ideal, showing the dip at the switch and the one-iteration
recovery that only the learning system achieves.
"""

from __future__ import annotations

from repro import small_experiment_config
from repro.evaluation import build_environment, run_fig4c


def bar(value: float, width: int = 40) -> str:
    filled = int(max(0.0, min(1.0, value)) * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    print("Building environment and running the pattern-change experiment...")
    env = build_environment(small_experiment_config())
    rows = run_fig4c(env, iterations=8, switch_at=5, max_terms=15)

    print("\nPrecision ratio vs centralized (S = SPRITE, e = eSearch):")
    print(f"{'iter':>4} {'group':>5}  {'SPRITE':<44} {'eSearch'}")
    for row in rows:
        switch_marker = " <-- interest shift!" if (
            row.iteration > 1 and row.active_group != rows[row.iteration - 2].active_group
        ) else ""
        print(
            f"{row.iteration:>4} {row.active_group:>5}  "
            f"[{bar(row.sprite.precision_ratio)}] {row.sprite.precision_ratio:5.1%}  "
            f"{row.esearch.precision_ratio:5.1%}{switch_marker}"
        )

    first_b = rows[4]
    settled_b = rows[6]
    print("\nSummary (group B is unseen until the shift, so compare B-vs-B):")
    print(
        f"  group B at first sight:   SPRITE {first_b.sprite.precision_ratio:.1%}  "
        f"vs eSearch {first_b.esearch.precision_ratio:.1%}"
    )
    print(
        f"  group B after re-learning: SPRITE {settled_b.sprite.precision_ratio:.1%}  "
        f"vs eSearch {settled_b.esearch.precision_ratio:.1%}"
    )
    gain = settled_b.sprite.precision_ratio - first_b.sprite.precision_ratio
    print(
        f"  SPRITE gained {gain:+.1%} by re-learning the new interest "
        "profile; the static index cannot move (its terms never change)."
    )


if __name__ == "__main__":
    main()
