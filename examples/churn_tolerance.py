#!/usr/bin/env python
"""Churn tolerance: peer failures with and without replication.

Section 7 of the paper argues that successor replication makes peer
failure nearly invisible, and that SPRITE replicates cheaply because
each document publishes only a handful of terms.  This example
quantifies both claims: it fails an increasing fraction of peers and
reports answer quality with and without the replication scheme, plus
the replication traffic actually shipped.
"""

from __future__ import annotations

from repro import ReplicationManager, small_experiment_config
from repro.dht.messages import MessageKind
from repro.evaluation import build_environment, relative_to_centralized
from repro.evaluation.experiments import build_trained_sprite


def availability_after_failures(env, fraction: float, replicate: bool) -> tuple:
    """Returns (index availability, precision ratio, replication KiB).

    Availability — the share of query-term fetches served with a
    non-empty inverted list — is the honest damage metric: multi-term
    topical queries are redundant enough that precision alone hides
    lost slots.
    """
    import random

    from repro.exceptions import NodeFailedError

    system = build_trained_sprite(env)
    manager = ReplicationManager(system.ring, replication_factor=3)
    shipped_bytes = 0
    if replicate:
        manager.replicate_round()
        shipped_bytes = system.ring.stats.kind(MessageKind.REPLICATE).bytes

    # Independent random crashes (not a consecutive run of successors,
    # which would be a correlated-failure threat model).
    rng = random.Random(4097)
    victims = list(system.ring.live_ids)
    for victim in rng.sample(victims, int(len(victims) * fraction)):
        system.ring.fail(victim)
    if replicate:
        manager.recover_from_failures()
    else:
        system.ring.stabilize()

    k = env.config.sprite.top_k_answers
    queries = list(env.test.queries)
    served = total = 0
    rankings = {}
    for query in queries:
        issuer = system._issuer_for(query)
        for term in query.terms:
            total += 1
            try:
                __, df = system.protocol.fetch_postings(issuer, term)
            except NodeFailedError:
                continue
            if df > 0:
                served += 1
        rankings[query.query_id] = system.search(query, top_k=k, cache=False)
    central = env.centralized_rankings(queries)
    rel = relative_to_centralized(rankings, central, env.test.qrels, k)
    return served / total, rel.precision_ratio, shipped_bytes


def main() -> None:
    print("Building environment and training SPRITE...")
    env = build_environment(small_experiment_config())

    print("\n              --- with replication ---   --- without ---")
    print("failed peers   availability   precision   availability   precision")
    shipped = 0
    for fraction in (0.0, 0.1, 0.2, 0.3, 0.4):
        a_rep, p_rep, shipped = availability_after_failures(env, fraction, True)
        a_no, p_no, __ = availability_after_failures(env, fraction, False)
        print(
            f"{fraction:>11.0%}   {a_rep:>12.1%}   {p_rep:>9.1%}"
            f"   {a_no:>12.1%}   {p_no:>9.1%}"
        )

    print(
        f"\nReplication cost: {shipped / 1024:.0f} KiB shipped per round "
        "(only the selected global index terms are replicated — the"
    )
    print(
        "paper's point that selective indexing also makes fault "
        "tolerance cheap)."
    )


if __name__ == "__main__":
    main()
