"""The Bloom front: probabilistic semantics and measured benefit.

A Bloom negative must be definitive (no false negatives, ever); false
positives only cost one point read.  The false-positive rate is checked
against a generous multiple of the configured error rate — it is a
sanity gate on the wiring (capacity, double hashing, rebuild), not a
statistical test.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.perf import PROFILE
from repro.store import SqlitePostings, init_schema


@pytest.fixture()
def conn(tmp_path):
    connection = sqlite3.connect(
        str(tmp_path / "postings.db"), isolation_level=None
    )
    init_schema(connection)
    yield connection
    connection.close()


@pytest.fixture()
def profile():
    prior = PROFILE.enabled
    PROFILE.reset()
    PROFILE.enable()
    yield PROFILE
    if not prior:
        PROFILE.disable()


class TestBloomFront:
    def test_no_false_negatives(self, conn) -> None:
        store = SqlitePostings(conn, slot_id=1, bloom_capacity=64)
        docs = [f"doc-{i}" for i in range(200)]  # forces rebuilds too
        for doc in docs:
            store.add(doc, 1, 2, 10)
        for doc in docs:
            assert doc in store
            assert store.lookup(doc) is not None

    def test_false_positive_rate_sane(self, conn, profile) -> None:
        store = SqlitePostings(
            conn, slot_id=2, bloom_capacity=300, bloom_error_rate=0.01
        )
        for i in range(250):
            store.add(f"present-{i}", 1, 2, 10)
        profile.reset()  # count only the absent probes below
        absent = [f"absent-{i}" for i in range(1000)]
        for doc in absent:
            assert doc not in store
        counters = profile.summary()["counters"]
        negatives = counters.get("store.bloom_negative", 0)
        false_positives = counters.get("store.point_reads", 0)
        assert negatives + false_positives == len(absent)
        # 1% configured; 5x margin keeps the gate deterministic-friendly.
        assert false_positives / len(absent) < 0.05

    def test_insert_skips_point_reads_for_new_docs(self, conn, profile) -> None:
        store = SqlitePostings(conn, slot_id=3, bloom_capacity=300)
        profile.reset()
        for i in range(100):
            store.add(f"doc-{i}", 1, 2, 10)
        counters = profile.summary()["counters"]
        # Nearly every first-time insert skips the existence SELECT.
        assert counters.get("store.bloom_insert_skips", 0) >= 95

    def test_rebuild_grows_capacity_and_stays_correct(self, conn, profile) -> None:
        store = SqlitePostings(conn, slot_id=4, bloom_capacity=32)
        for i in range(100):
            store.add(f"doc-{i}", 1, 2, 10)
        counters = profile.summary()["counters"]
        assert counters.get("store.bloom_rebuilds", 0) >= 1
        assert store.bloom is not None and store.bloom.capacity >= 64
        for i in range(100):
            assert f"doc-{i}" in store

    def test_removal_keeps_filter_over_approximate(self, conn) -> None:
        store = SqlitePostings(conn, slot_id=5, bloom_capacity=64)
        store.add("gone", 1, 2, 10)
        assert store.remove("gone") is not None
        # The filter may still claim "gone" (no deletions), but the
        # store's answer must be the truth.
        assert "gone" not in store
        assert store.lookup("gone") is None

    def test_disabled_bloom_means_plain_sql(self, conn, profile) -> None:
        store = SqlitePostings(conn, slot_id=6, bloom_capacity=0)
        assert store.bloom is None
        profile.reset()
        store.add("d", 1, 2, 10)
        assert "nope" not in store
        counters = profile.summary()["counters"]
        assert counters.get("store.bloom_negative", 0) == 0
        assert counters.get("store.point_reads", 0) >= 2
