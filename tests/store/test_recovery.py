"""Crash recovery: snapshot catch-up vs full resync, and its invariant.

The perf-layer recovery workload provides the controlled head-to-head
(same seed → both modes crash byte-identical state); the sim-layer test
exercises the ``crash_disk``/``recover_disk`` events inside a full
scenario with the two-tier invariant catalogue watching.
"""

from __future__ import annotations

import pytest

from repro.perf.store import run_recovery_workload, store_smoke_config
from repro.sim import InvariantChecker, Scenario, SimEvent, build_simulation
from repro.sim.events import random_scenario
from repro.store import RecoveryReport


@pytest.fixture(scope="module")
def recovery_pair():
    cfg = store_smoke_config()
    return (
        run_recovery_workload(cfg, use_snapshot=True),
        run_recovery_workload(cfg, use_snapshot=False),
    )


class TestRecoveryComparison:
    def test_modes_crash_identical_state(self, recovery_pair) -> None:
        snapshot, full = recovery_pair
        assert snapshot.mode == "snapshot" and full.mode == "full"
        assert snapshot.victim == full.victim
        assert snapshot.victim_slots == full.victim_slots
        assert (
            snapshot.report["postings_authoritative"]
            == full.report["postings_authoritative"]
        )
        assert (
            snapshot.report["slots_transferred"]
            == full.report["slots_transferred"]
        )

    def test_snapshot_recovery_ships_measurably_less(self, recovery_pair) -> None:
        snapshot, full = recovery_pair
        assert snapshot.report["slots_transferred"] > 0
        assert snapshot.report["slots_matched"] > 0  # unchanged slots are free
        assert (
            snapshot.report["postings_shipped"]
            < full.report["postings_shipped"]
        )
        assert snapshot.report["bytes_shipped"] < full.report["bytes_shipped"]

    def test_full_mode_ships_its_own_baseline(self, recovery_pair) -> None:
        __, full = recovery_pair
        assert (
            full.report["postings_shipped"]
            == full.report["full_baseline_postings"]
        )
        assert (
            full.report["messages_sent"] == full.report["full_baseline_messages"]
        )
        assert full.report["bytes_shipped"] == full.report["full_baseline_bytes"]


class TestSimIntegration:
    def test_explicit_crash_disk_scenario_stays_invariant(self) -> None:
        engine = build_simulation(
            seed=3, num_peers=16, store_backend="sqlite"
        )
        scenario = Scenario(
            seed=3,
            events=(
                [SimEvent("publish", count=5)] * 4
                + [SimEvent("replicate"), SimEvent("snapshot")]
                + [SimEvent("publish", count=3)] * 2
                + [
                    SimEvent("replicate"),
                    SimEvent("crash_disk"),
                    SimEvent("recover"),  # promote before the rejoin
                    SimEvent("recover_disk"),
                    SimEvent("replicate"),
                    SimEvent("stabilize"),
                    SimEvent("recover"),
                    SimEvent("maintain"),
                    SimEvent("maintain"),
                ]
            ),
        )
        report = engine.run(scenario)
        assert report.ok, [str(v) for v in report.violations]
        assert engine.snapshots_taken == 1
        assert len(engine.recovery.log) == 1
        recovery = engine.recovery.log[0]
        assert recovery.mode == "snapshot"
        assert recovery.postings_shipped <= recovery.full_baseline_postings

    def test_random_store_scenarios_stay_invariant(self) -> None:
        for seed in (1, 2):
            scenario = random_scenario(seed=seed, num_events=80, with_store=True)
            kinds = scenario.kind_counts()
            engine = build_simulation(
                seed=seed, num_peers=16, store_backend="sqlite",
                snapshot_interval=7,
            )
            report = engine.run(scenario)
            assert report.ok, (seed, [str(v) for v in report.violations])
            if kinds.get("crash_disk"):
                assert engine.recovery.log  # the recover_disk events ran

    def test_default_scenario_stream_unchanged_without_store(self) -> None:
        # The store event kinds must not perturb historical schedules.
        plain = random_scenario(seed=77, num_events=60)
        again = random_scenario(seed=77, num_events=60, with_store=False)
        assert plain.events == again.events
        assert not any(
            e.kind in ("snapshot", "crash_disk", "recover_disk") for e in plain
        )


class TestResyncInvariant:
    def test_flags_snapshot_recovery_that_overspends(self) -> None:
        engine = build_simulation(seed=5, num_peers=8)
        overspent = RecoveryReport(
            peer=1,
            mode="snapshot",
            snapshot_found=True,
            slots_transferred=3,
            postings_shipped=10,
            full_baseline_postings=5,
        )
        checker = InvariantChecker(engine.system, recovery_log=[overspent])
        report = checker.check(quiescent=False)
        assert any(
            v.invariant == "resync_traffic_bounded" for v in report.violations
        )

    def test_vacuous_without_recoveries(self) -> None:
        engine = build_simulation(seed=5, num_peers=8)
        checker = InvariantChecker(engine.system, recovery_log=None)
        report = checker.check(quiescent=False)
        assert "resync_traffic_bounded" in report.checked
        assert report.ok
