"""Configuration plumbing and CLI surface of the durable store."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.config import STORE_BACKENDS, ESearchConfig, SpriteConfig
from repro.exceptions import ConfigurationError
from repro.store import StoreRuntime, build_store_runtime


class TestConfig:
    def test_backends_catalogue(self) -> None:
        assert STORE_BACKENDS == ("memory", "sqlite")

    def test_default_is_memory(self) -> None:
        config = SpriteConfig()
        assert config.store_backend == "memory"
        assert build_store_runtime(config) is None

    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            SpriteConfig(store_backend="postgres")

    def test_negative_snapshot_interval_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            SpriteConfig(snapshot_interval=-1)

    def test_sqlite_backend_builds_runtime(self, tmp_path) -> None:
        config = SpriteConfig(
            store_backend="sqlite",
            store_dir=str(tmp_path / "store"),
            snapshot_dir=str(tmp_path / "snaps"),
        )
        runtime = build_store_runtime(config)
        try:
            assert isinstance(runtime, StoreRuntime)
            assert runtime.db_path.exists()
            assert runtime.snapshots.root == tmp_path / "snaps"
        finally:
            runtime.close()

    def test_pre_store_configs_default_to_memory(self) -> None:
        # ESearchConfig predates the store fields; getattr defaults keep
        # it on the in-RAM path.
        assert build_store_runtime(ESearchConfig()) is None

    def test_temp_store_dir_cleans_up_on_close(self) -> None:
        runtime = StoreRuntime()
        root = runtime.root
        assert root.exists()
        runtime.close()
        assert not root.exists()


class TestCliFlags:
    def test_perf_and_check_accept_store_flags(self) -> None:
        parser = build_parser()
        for command in ("perf", "check"):
            args = parser.parse_args(
                [
                    command,
                    "--store-backend",
                    "sqlite",
                    "--store-dir",
                    "/tmp/x",
                    "--snapshot-dir",
                    "/tmp/y",
                    "--snapshot-interval",
                    "25",
                ]
                + (["--random"] if command == "check" else [])
            )
            assert args.store_backend == "sqlite"
            assert args.snapshot_interval == 25

    def test_perf_mode_store_listed(self) -> None:
        args = build_parser().parse_args(["perf", "--mode", "store"])
        assert args.mode == "store"

    def test_check_runs_with_sqlite_store(self, tmp_path) -> None:
        out = io.StringIO()
        code = main(
            [
                "check",
                "--random",
                "--events",
                "12",
                "--peers",
                "8",
                "--skip-oracle",
                "--store-backend",
                "sqlite",
                "--store-dir",
                str(tmp_path / "store"),
                "--snapshot-dir",
                str(tmp_path / "snaps"),
                "--snapshot-interval",
                "4",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0, text
        assert "durable-store events mixed in" in text
        assert "store:" in text

    def test_check_memory_backend_prints_no_store_stats(self) -> None:
        out = io.StringIO()
        code = main(
            ["check", "--random", "--events", "10", "--peers", "8", "--skip-oracle"],
            out=out,
        )
        assert code == 0, out.getvalue()
        assert "store:" not in out.getvalue()
