"""Snapshot round trips, crash-mid-batch consistency, torn manifests.

The round-trip property is the tentpole guarantee: any publish/unpublish
stream, checkpointed and reloaded into a fresh ring, reproduces the
write-state fingerprint's slot part bit for bit — postings, aggregates,
query-cache cursor, and the system-wide version *rank* order.
"""

from __future__ import annotations

import json
import sqlite3
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig, SpriteConfig
from repro.core.system import SpriteSystem
from repro.corpus import Corpus, Document, Query
from repro.dht import ChordRing
from repro.sim.oracle import write_state_fingerprint
from repro.store import (
    SnapshotManager,
    SqlitePostings,
    StoreRuntime,
    build_slot,
    init_schema,
    restore_slots,
)
from repro.store.snapshot import MANIFEST

_DOC_TEXTS = {
    "doc-a": "chord overlay routing peer network lookup finger table",
    "doc-b": "retrieval ranking precision recall peer index inverted",
    "doc-c": "learning query tuning index peer progressive selective",
    "doc-d": "zipf distribution terms corpus frequency peer vocabulary",
    "doc-e": "replication successor failure churn peer heartbeat replica",
}

_CHORD = dict(num_peers=8, id_bits=32, successor_list_size=4, seed=11)


def _fresh_system() -> SpriteSystem:
    corpus = Corpus(
        Document(doc_id=doc_id, text=text) for doc_id, text in _DOC_TEXTS.items()
    )
    return SpriteSystem(
        corpus,
        sprite_config=SpriteConfig(
            initial_terms=3,
            terms_per_iteration=2,
            learning_iterations=1,
            max_index_terms=5,
            query_cache_size=50,
            assumed_corpus_size=100,
            store_backend="sqlite",
        ),
        chord_config=ChordConfig(**_CHORD),
    )


class TestRoundTripProperty:
    @given(
        ops=st.lists(
            st.sampled_from(sorted(_DOC_TEXTS)), min_size=1, max_size=14
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_snapshot_reload_reproduces_fingerprint(self, ops) -> None:
        system = _fresh_system()
        runtime = system.store_runtime
        assert runtime is not None
        try:
            shared = set()
            for doc_id in ops:  # toggle: share on first sight, withdraw next
                if doc_id in shared:
                    system.bulk_unshare([doc_id])
                    shared.discard(doc_id)
                else:
                    system.bulk_share([system.corpus.get(doc_id)])
                    shared.add(doc_id)
            system.register_queries(
                [Query("sq1", ("peer", "index")), Query("sq2", ("chord",))]
            )
            original = write_state_fingerprint(system)

            for node_id in system.ring.live_ids:
                runtime.snapshots.save_peer(system.ring.node(node_id))

            rebuilt_ring = ChordRing(ChordConfig(**_CHORD))
            rebuilt_runtime = StoreRuntime()
            try:
                snapshots = [
                    snap
                    for snap in (
                        runtime.snapshots.load_peer(node_id)
                        for node_id in rebuilt_ring.live_ids
                    )
                    if snap is not None
                ]
                restore_slots(
                    rebuilt_ring,
                    snapshots,
                    store_factory=rebuilt_runtime.new_postings,
                )
                restored = write_state_fingerprint(
                    SimpleNamespace(ring=rebuilt_ring, owners={})
                )
                assert restored["slots"] == original["slots"]
                assert restored["version_rank"] == original["version_rank"]
            finally:
                rebuilt_runtime.close()
        finally:
            runtime.close()


class TestCrashMidBatch:
    def test_recovery_restores_the_checkpoint(self, tmp_path) -> None:
        conn = sqlite3.connect(str(tmp_path / "p.db"), isolation_level=None)
        init_schema(conn)
        store = SqlitePostings(conn, slot_id=1)
        from repro.core.metadata import TermSlot

        slot = TermSlot("alpha", store=store)
        for i in range(5):
            store.add(f"doc-{i}", 3, i + 1, 20)
        checkpoint_rows = list(store.rows())

        manager = SnapshotManager(tmp_path / "snaps")
        node = SimpleNamespace(node_id=7, store={4242: slot})
        assert manager.save_peer(node) is not None

        # The batch dies mid-flight: the live store must roll back...
        poisoned = [("late-a", 3, 2, 20), ("late-b", 3, 2, 20), object()]
        with pytest.raises(TypeError):
            store.add_many(poisoned)
        assert list(store.rows()) == checkpoint_rows

        # ...and a peer restarted from disk sees exactly the checkpoint.
        snapshot = manager.load_peer(7)
        assert snapshot is not None and len(snapshot) == 1
        rebuilt = build_slot(snapshot.slots[0])
        assert list(rebuilt._store.rows()) == checkpoint_rows
        assert rebuilt._store.max_impact == store.max_impact
        assert rebuilt.cache.latest_sequence == slot.cache.latest_sequence
        conn.close()


class TestTornWrites:
    def _slot(self, conn, slot_id, docs):
        from repro.core.metadata import TermSlot

        store = SqlitePostings(conn, slot_id=slot_id)
        slot = TermSlot("beta", store=store)
        for doc in docs:
            store.add(doc, 1, 2, 10)
        return slot

    def test_corrupt_manifest_falls_back_a_generation(self, tmp_path) -> None:
        conn = sqlite3.connect(str(tmp_path / "p.db"), isolation_level=None)
        init_schema(conn)
        slot = self._slot(conn, 1, ["one"])
        manager = SnapshotManager(tmp_path / "snaps")
        node = SimpleNamespace(node_id=9, store={1: slot})
        manager.save_peer(node)
        first_rows = list(slot._store.rows())
        slot._store.add("two", 1, 2, 10)
        manager.save_peer(node)

        manifest = tmp_path / "snaps" / "peer-9" / MANIFEST
        manifest.write_text("{ torn mid-write")
        snapshot = manager.load_peer(9)
        assert snapshot is not None
        assert manager.fallbacks == 1
        assert [
            (doc, int(owner), tf, length)
            for doc, owner, tf, length in snapshot.slots[0]["postings"]
        ] == first_rows
        conn.close()

    def test_corrupt_blob_falls_back_a_generation(self, tmp_path) -> None:
        conn = sqlite3.connect(str(tmp_path / "p.db"), isolation_level=None)
        init_schema(conn)
        slot = self._slot(conn, 1, ["one"])
        manager = SnapshotManager(tmp_path / "snaps")
        node = SimpleNamespace(node_id=5, store={1: slot})
        manager.save_peer(node)
        slot._store.add("two", 1, 2, 10)
        manager.save_peer(node)

        peer_dir = tmp_path / "snaps" / "peer-5"
        current = json.loads((peer_dir / MANIFEST).read_text())["data_file"]
        (peer_dir / current).write_bytes(b"garbage")
        snapshot = manager.load_peer(5)
        assert snapshot is not None
        assert manager.fallbacks == 1
        assert len(snapshot.slots[0]["postings"]) == 1  # the older generation
        conn.close()

    def test_missing_snapshot_returns_none(self, tmp_path) -> None:
        manager = SnapshotManager(tmp_path / "snaps")
        assert manager.load_peer(12345) is None
