"""SqlitePostings must be bit-identical to the columnar backend.

The differential harness drives both stores through the same randomized
mutation stream and compares every observable after every operation —
the store is a persistence layer, so any divergence (enumeration order,
aggregate, float bit, version behaviour) is a bug by definition.
"""

from __future__ import annotations

import copy
import random
import sqlite3

import pytest

from repro.ir.postings import ColumnarPostings
from repro.store import SqlitePostings, init_schema


@pytest.fixture()
def conn(tmp_path):
    connection = sqlite3.connect(
        str(tmp_path / "postings.db"), isolation_level=None
    )
    init_schema(connection)
    yield connection
    connection.close()


def _assert_equivalent(disk: SqlitePostings, ram: ColumnarPostings) -> None:
    assert len(disk) == len(ram)
    assert disk.max_impact == ram.max_impact
    assert list(disk.rows()) == list(ram.rows())
    assert disk.impact_rows() == ram.impact_rows()


class TestDifferential:
    def test_randomized_stream_matches_columnar(self, conn) -> None:
        rng = random.Random(17)
        disk = SqlitePostings(conn, slot_id=1)
        ram = ColumnarPostings()
        docs = [f"doc-{i}" for i in range(30)]
        for step in range(400):
            doc = rng.choice(docs)
            if rng.random() < 0.7:
                tf = rng.randint(1, 9)
                length = rng.choice([0, 5, 10, 40, 100])
                owner = rng.randrange(1 << 70)  # wider than 64 bits
                disk.add(doc, owner, tf, length)
                ram.add(doc, owner, tf, length)
            else:
                assert disk.remove(doc) == ram.remove(doc)
            assert (doc in disk) == (doc in ram)
            assert disk.lookup(doc) == ram.lookup(doc)
            assert disk.scoring_lookup(doc) == ram.scoring_lookup(doc)
            if step % 25 == 0:
                _assert_equivalent(disk, ram)
        _assert_equivalent(disk, ram)

    def test_overwrite_keeps_enumeration_position(self, conn) -> None:
        disk = SqlitePostings(conn, slot_id=2)
        for i in range(4):
            disk.add(f"d{i}", 1, 1, 10)
        disk.add("d1", 2, 7, 20)  # overwrite must not move the row
        assert [row[0] for row in disk.rows()] == ["d0", "d1", "d2", "d3"]
        assert disk.lookup("d1") == ("d1", 2, 7, 20)

    def test_version_ticks_on_every_mutation(self, conn) -> None:
        disk = SqlitePostings(conn, slot_id=3)
        seen = [disk.version]
        disk.add("a", 1, 2, 10)
        seen.append(disk.version)
        disk.add("a", 1, 3, 10)
        seen.append(disk.version)
        disk.remove("a")
        seen.append(disk.version)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)
        before = disk.version
        assert disk.lookup("a") is None  # reads never tick
        assert disk.version == before


class TestAddMany:
    def test_batch_applies_like_a_loop(self, conn) -> None:
        batched = SqlitePostings(conn, slot_id=4)
        looped = SqlitePostings(conn, slot_id=5)
        rows = [(f"d{i}", 9, i + 1, 30) for i in range(8)]
        assert batched.add_many(rows) == 8
        for row in rows:
            looped.add(*row)
        _assert_equivalent_pair = list(batched.rows()) == list(looped.rows())
        assert _assert_equivalent_pair
        assert batched.max_impact == looped.max_impact

    def test_failed_batch_rolls_back_completely(self, conn) -> None:
        store = SqlitePostings(conn, slot_id=6)
        store.add("keep", 1, 3, 12)
        before = (
            len(store),
            store.version,
            store.max_impact,
            list(store.rows()),
        )
        poisoned = [("new-a", 1, 2, 10), ("new-b", 1, 2, 10), object()]
        with pytest.raises(TypeError):
            store.add_many(poisoned)
        assert (
            len(store),
            store.version,
            store.max_impact,
            list(store.rows()),
        ) == before
        assert not conn.in_transaction
        # The store stays usable: the next batch lands normally.
        store.add_many([("new-a", 1, 2, 10)])
        assert [row[0] for row in store.rows()] == ["keep", "new-a"]


class TestDeepcopy:
    def test_clone_is_isolated_and_version_preserving(self, conn) -> None:
        original = SqlitePostings(conn, slot_id=7)
        original.add("x", 1, 2, 10)
        original.add("y", 2, 3, 15)
        clone = copy.deepcopy(original)
        assert clone.slot_id != original.slot_id
        assert list(clone.rows()) == list(original.rows())
        # Same content => same version (replica-freshness soundness).
        assert clone.version == original.version
        clone.add("z", 3, 1, 5)
        original.remove("x")
        assert [row[0] for row in original.rows()] == ["y"]
        assert [row[0] for row in clone.rows()] == ["x", "y", "z"]
        assert clone.version != original.version
