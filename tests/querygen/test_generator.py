"""Tests for the Section 6.1 query generator."""

from __future__ import annotations

import pytest

from repro.config import QueryGenConfig
from repro.corpus import Corpus, Document, Qrels, Query, QuerySet
from repro.ir import CentralizedSystem
from repro.querygen.generator import DistributionNeighbors, QueryGenerator


@pytest.fixture(scope="module")
def env(small_env):
    return small_env


class TestDistributionNeighbors:
    @pytest.fixture(scope="class")
    def neighbors(self, small_env) -> DistributionNeighbors:
        return DistributionNeighbors(small_env.corpus)

    def test_closest_excludes_anchor(self, neighbors, small_env) -> None:
        term = small_env.corpus.vocabulary[0]
        assert term not in neighbors.closest(term, 5, exclude=set())

    def test_closest_respects_exclusions(self, neighbors, small_env) -> None:
        term = small_env.corpus.vocabulary[0]
        first = neighbors.closest(term, 3, exclude=set())
        excluded = neighbors.closest(term, 3, exclude=set(first))
        assert not set(first) & set(excluded)

    def test_closest_count(self, neighbors, small_env) -> None:
        term = small_env.corpus.vocabulary[10]
        assert len(neighbors.closest(term, 5, exclude=set())) == 5

    def test_neighbors_really_are_nearest(self, neighbors, small_env) -> None:
        """Brute-force check: returned candidates minimize
        |Distribution(anchor) − Distribution(candidate)|."""
        corpus = small_env.corpus
        anchor = corpus.vocabulary[5]
        anchor_value = corpus.distribution(anchor)
        got = neighbors.closest(anchor, 5, exclude=set())
        got_worst = max(abs(corpus.distribution(t) - anchor_value) for t in got)
        better_count = sum(
            1
            for t in corpus.vocabulary
            if t != anchor
            and abs(corpus.distribution(t) - anchor_value) < got_worst
        )
        # At most 5 terms can be strictly closer than our worst pick
        # (ties make this an inequality, not equality).
        assert better_count <= 5

    def test_distribution_passthrough(self, neighbors, small_env) -> None:
        term = small_env.corpus.vocabulary[3]
        assert neighbors.distribution(term) == small_env.corpus.distribution(term)
        assert neighbors.distribution("zzz-unknown") == 0.0


class TestPhase1:
    def test_overlap_ratio_respected(self, env) -> None:
        cfg = QueryGenConfig(queries_per_original=3, overlap_ratio=0.7, seed=5)
        generator = QueryGenerator(env.corpus, env.centralized, cfg)
        generated = generator.generate(env.originals)
        for new_query in generated:
            original = env.originals.by_id(new_query.origin_id)
            keep = max(1, round(0.7 * len(original.terms)))
            shared = len(set(new_query.terms) & set(original.terms))
            assert shared >= min(keep, len(original.terms)) - 1

    def test_full_overlap_copies_terms(self, env) -> None:
        cfg = QueryGenConfig(queries_per_original=2, overlap_ratio=1.0, seed=5)
        generated = QueryGenerator(env.corpus, env.centralized, cfg).generate(env.originals)
        for new_query in generated:
            original = env.originals.by_id(new_query.origin_id)
            assert set(original.terms) <= set(new_query.terms)

    def test_count_per_original(self, env) -> None:
        cfg = QueryGenConfig(queries_per_original=4, seed=5)
        generated = QueryGenerator(env.corpus, env.centralized, cfg).generate(env.originals)
        assert len(generated) == 4 * len(env.originals)

    def test_ids_carry_origin(self, env) -> None:
        cfg = QueryGenConfig(queries_per_original=2, seed=5)
        generated = QueryGenerator(env.corpus, env.centralized, cfg).generate(env.originals)
        for q in generated:
            assert q.query_id.startswith(q.origin_id + ".")

    def test_deterministic_for_seed(self, env) -> None:
        cfg = QueryGenConfig(queries_per_original=2, seed=42)
        g1 = QueryGenerator(env.corpus, env.centralized, cfg).generate(env.originals)
        g2 = QueryGenerator(env.corpus, env.centralized, cfg).generate(env.originals)
        assert [q.terms for q in g1] == [q.terms for q in g2]


class TestPhase2:
    @pytest.fixture(scope="class")
    def generated(self, small_env) -> QuerySet:
        cfg = QueryGenConfig(queries_per_original=3, ranked_list_depth=100, seed=17)
        return QueryGenerator(small_env.corpus, small_env.centralized, cfg).generate(
            small_env.originals
        )

    def test_every_generated_query_judged(self, generated) -> None:
        for query in generated:
            assert generated.qrels.num_relevant(query.query_id) > 0

    def test_relevant_count_bounded_by_original(self, generated, small_env) -> None:
        """Phase 2 marks at most one new document per original relevant
        document (shared answers consume marks)."""
        for query in generated:
            original_count = small_env.originals.qrels.num_relevant(query.origin_id)
            assert generated.qrels.num_relevant(query.query_id) <= original_count

    def test_shared_relevant_documents_exist(self, generated, small_env) -> None:
        """With 70% term overlap, at least some generated queries must
        share relevant documents with their originals."""
        shared_any = 0
        for query in generated:
            original_rel = small_env.originals.qrels.relevant(query.origin_id)
            new_rel = generated.qrels.relevant(query.query_id)
            if original_rel & new_rel:
                shared_any += 1
        assert shared_any > len(generated) * 0.3

    def test_relevant_docs_are_corpus_docs(self, generated, small_env) -> None:
        generated.qrels.validate_against(small_env.corpus.doc_ids)


class TestMergedOutput:
    def test_generate_with_originals_includes_both(self, env) -> None:
        cfg = QueryGenConfig(queries_per_original=2, seed=9)
        merged = QueryGenerator(env.corpus, env.centralized, cfg).generate_with_originals(
            env.originals
        )
        assert len(merged) == len(env.originals) * 3
        for original in env.originals:
            assert merged.qrels.relevant(original.query_id) == env.originals.qrels.relevant(
                original.query_id
            )


class TestRankMapping:
    def test_phase2_rank_transplant_mechanics(self) -> None:
        """White-box check of the Figure 3 procedure on a constructed
        corpus where ranked lists are fully predictable."""
        docs = [Document(f"d{i}", f"term{i} " * (i + 1) + "shared") for i in range(6)]
        corpus = Corpus(docs)
        centralized = CentralizedSystem(corpus)
        original = Query("orig", ("term0", "term1"))
        originals = QuerySet([original], Qrels({"orig": {"d0", "d1"}}))
        cfg = QueryGenConfig(queries_per_original=1, overlap_ratio=1.0, seed=3)
        generated = QueryGenerator(corpus, centralized, cfg).generate(originals)
        new_query = generated.queries[0]
        relevant = generated.qrels.relevant(new_query.query_id)
        # Full overlap → same ranked list → same relevant documents.
        assert relevant == {"d0", "d1"}
