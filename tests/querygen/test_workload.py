"""Tests for workload shaping (streams, splits, pattern change)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.config import WorkloadConfig
from repro.corpus import Qrels, Query, QuerySet
from repro.exceptions import QueryError
from repro.querygen.workload import (
    interleave_training_testing,
    pattern_change_groups,
    random_split,
    without_repeats_stream,
    zipf_stream,
)


@pytest.fixture()
def query_set() -> QuerySet:
    queries = []
    for origin in range(6):
        queries.append(Query(f"q{origin}", (f"t{origin}", "shared")))
        for i in range(4):
            queries.append(
                Query(f"q{origin}.{i}", (f"t{origin}", f"n{i}"), origin_id=f"q{origin}")
            )
    return QuerySet(queries, Qrels())


class TestRandomSplit:
    def test_partition_complete_and_disjoint(self, query_set) -> None:
        train, test = random_split(query_set, 0.5, seed=3)
        train_ids = {q.query_id for q in train}
        test_ids = {q.query_id for q in test}
        assert not train_ids & test_ids
        assert train_ids | test_ids == {q.query_id for q in query_set}

    def test_fraction_respected(self, query_set) -> None:
        train, test = random_split(query_set, 0.5, seed=3)
        assert len(train) == len(query_set) // 2

    def test_deterministic(self, query_set) -> None:
        t1, __ = random_split(query_set, 0.5, seed=11)
        t2, __ = random_split(query_set, 0.5, seed=11)
        assert [q.query_id for q in t1] == [q.query_id for q in t2]

    def test_invalid_fraction(self, query_set) -> None:
        with pytest.raises(QueryError):
            random_split(query_set, 0.0)
        with pytest.raises(QueryError):
            random_split(query_set, 1.0)


class TestWithoutRepeats:
    def test_each_query_exactly_once(self, query_set) -> None:
        stream = without_repeats_stream(query_set, seed=5)
        counts = Counter(q.query_id for q in stream)
        assert all(c == 1 for c in counts.values())
        assert len(stream) == len(query_set)

    def test_shuffled_not_original_order(self, query_set) -> None:
        stream = without_repeats_stream(query_set, seed=5)
        assert [q.query_id for q in stream] != [q.query_id for q in query_set]


class TestZipfStream:
    def test_length_defaults_to_set_size(self, query_set) -> None:
        stream = zipf_stream(query_set, WorkloadConfig(zipf_slope=0.5, seed=7))
        assert len(stream) == len(query_set)

    def test_explicit_length(self, query_set) -> None:
        cfg = WorkloadConfig(zipf_slope=0.5, stream_length=100, seed=7)
        assert len(zipf_stream(query_set, cfg)) == 100

    def test_skew_produces_repeats(self, query_set) -> None:
        cfg = WorkloadConfig(zipf_slope=1.5, stream_length=200, seed=7)
        counts = Counter(q.query_id for q in zipf_stream(query_set, cfg))
        assert max(counts.values()) >= 10  # strong skew → hot queries

    def test_popularity_roughly_monotone(self, query_set) -> None:
        """The most popular query must appear at least as often as the
        median one under positive slope."""
        cfg = WorkloadConfig(zipf_slope=1.0, stream_length=500, seed=13)
        counts = Counter(q.query_id for q in zipf_stream(query_set, cfg))
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] >= ordered[len(ordered) // 2]

    def test_deterministic(self, query_set) -> None:
        cfg = WorkloadConfig(zipf_slope=0.5, seed=19)
        s1 = [q.query_id for q in zipf_stream(query_set, cfg)]
        s2 = [q.query_id for q in zipf_stream(query_set, cfg)]
        assert s1 == s2


class TestPatternChangeGroups:
    def test_families_stay_together(self, query_set) -> None:
        group_a, group_b = pattern_change_groups(query_set, seed=3)
        origins_a = {q.origin_id for q in group_a}
        origins_b = {q.origin_id for q in group_b}
        assert not origins_a & origins_b

    def test_groups_cover_everything(self, query_set) -> None:
        group_a, group_b = pattern_change_groups(query_set, seed=3)
        ids = {q.query_id for q in group_a} | {q.query_id for q in group_b}
        assert ids == {q.query_id for q in query_set}

    def test_groups_balanced(self, query_set) -> None:
        group_a, group_b = pattern_change_groups(query_set, seed=3)
        assert abs(len(group_a) - len(group_b)) <= 5  # one family size

    def test_qrels_shared(self, query_set) -> None:
        group_a, group_b = pattern_change_groups(query_set, seed=3)
        assert group_a.qrels is query_set.qrels
        assert group_b.qrels is query_set.qrels


class TestInterleave:
    def test_partition(self, query_set) -> None:
        stream = list(query_set.queries) * 2
        train, test = interleave_training_testing(stream, 0.5, seed=3)
        assert len(train) + len(test) == len(stream)

    def test_invalid_fraction(self, query_set) -> None:
        with pytest.raises(QueryError):
            interleave_training_testing(list(query_set.queries), 1.5)
