"""Tests for the session-trace workload generator."""

from __future__ import annotations

import pytest

from repro.corpus import Qrels, Query, QuerySet
from repro.exceptions import ConfigurationError, QueryError
from repro.querygen import SessionTraceGenerator, TraceConfig


@pytest.fixture()
def query_set() -> QuerySet:
    queries = []
    for origin in range(5):
        queries.append(Query(f"q{origin}", (f"t{origin}", "common")))
        for i in range(3):
            queries.append(
                Query(f"q{origin}.{i}", (f"t{origin}", f"n{i}"), origin_id=f"q{origin}")
            )
    return QuerySet(queries, Qrels())


class TestGeneration:
    def test_stream_nonempty(self, query_set) -> None:
        stream = SessionTraceGenerator(query_set, TraceConfig(seed=1)).generate()
        assert len(stream) >= TraceConfig().num_sessions

    def test_queries_come_from_the_set(self, query_set) -> None:
        known = {q.query_id for q in query_set}
        stream = SessionTraceGenerator(query_set, TraceConfig(seed=2)).generate()
        assert all(q.query_id in known for q in stream)

    def test_deterministic(self, query_set) -> None:
        cfg = TraceConfig(seed=33)
        s1 = SessionTraceGenerator(query_set, cfg).generate()
        s2 = SessionTraceGenerator(query_set, cfg).generate()
        assert [q.query_id for q in s1] == [q.query_id for q in s2]

    def test_empty_query_set_rejected(self) -> None:
        with pytest.raises(QueryError):
            qs = QuerySet([Query("q", ("a",))], Qrels())
            qs.queries.clear()
            SessionTraceGenerator(qs)


class TestLocality:
    def test_repeat_rate_tracks_config(self, query_set) -> None:
        low = SessionTraceGenerator(
            query_set, TraceConfig(repeat_probability=0.0, seed=4)
        )
        high = SessionTraceGenerator(
            query_set, TraceConfig(repeat_probability=0.8, seed=4)
        )
        low_stats = low.locality_statistics(low.generate())
        high_stats = high.locality_statistics(high.generate())
        assert high_stats["repeat_rate"] > low_stats["repeat_rate"] + 0.2

    def test_sessions_mostly_stay_in_family(self, query_set) -> None:
        gen = SessionTraceGenerator(
            query_set, TraceConfig(mean_session_length=6, seed=5)
        )
        stats = gen.locality_statistics(gen.generate())
        # Family switches only happen at session boundaries.
        assert stats["family_switch_rate"] < 0.5

    def test_distinct_fraction_below_one_with_repeats(self, query_set) -> None:
        gen = SessionTraceGenerator(
            query_set, TraceConfig(repeat_probability=0.6, num_sessions=100, seed=6)
        )
        stats = gen.locality_statistics(gen.generate())
        assert stats["distinct_fraction"] < 1.0

    def test_empty_stream_statistics(self, query_set) -> None:
        gen = SessionTraceGenerator(query_set)
        stats = gen.locality_statistics([])
        assert stats["repeat_rate"] == 0.0


class TestConfigValidation:
    def test_bounds(self) -> None:
        with pytest.raises(ConfigurationError):
            TraceConfig(num_sessions=0)
        with pytest.raises(ConfigurationError):
            TraceConfig(mean_session_length=0)
        with pytest.raises(ConfigurationError):
            TraceConfig(repeat_probability=1.5)
        with pytest.raises(ConfigurationError):
            TraceConfig(family_zipf_slope=-1)


class TestAsTrainingWorkload:
    def test_trace_trains_sprite(self, small_env) -> None:
        """The trace stream plugs into the standard training pipeline
        and produces a working system."""
        from repro.evaluation.experiments import build_trained_sprite

        gen = SessionTraceGenerator(
            small_env.train, TraceConfig(num_sessions=60, seed=9)
        )
        system = build_trained_sprite(small_env, training_queries=gen.generate())
        ranked = system.search(small_env.test.queries[0], cache=False)
        assert isinstance(ranked.top_ids(5), list)
