"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_commands_registered(self) -> None:
        parser = build_parser()
        for command in ("info", "fig4a", "fig4b", "fig4c", "cost", "hops", "search", "generate", "net", "perf", "check"):
            args = parser.parse_args(
                [command, "terms"] if command == "search" else (
                    [command, "out"] if command == "generate" else [command]
                )
            )
            assert callable(args.handler)

    def test_network_flags_parse(self) -> None:
        args = build_parser().parse_args(
            ["info", "--transport", "lossy", "--drop", "0.1",
             "--latency-model", "lognormal", "--latency", "80",
             "--timeout", "250", "--retries", "2", "--net-seed", "5"]
        )
        assert args.transport == "lossy"
        assert args.drop == 0.1
        assert args.latency_model == "lognormal"

    def test_bad_transport_rejected_by_parser(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--transport", "telepathy"])

    def test_out_of_range_drop_is_clean_error(self) -> None:
        code, output = run_cli("info", "--drop", "1.5")
        assert code == 2
        assert output.startswith("error:")
        assert "drop_probability" in output


class TestInfo:
    def test_shows_paper_defaults(self) -> None:
        code, output = run_cli("info")
        assert code == 0
        assert "initial_terms = 5" in output
        assert "queries_per_original = 9" in output
        assert "overlap_ratio = 0.7" in output

    def test_small_flag_changes_scale(self) -> None:
        __, big = run_cli("info")
        __, small = run_cli("info", "--small")
        assert "num_documents = 2500" in big
        assert "num_documents = 220" in small

    def test_network_section_shown(self) -> None:
        __, output = run_cli("info")
        assert "[network]" in output
        assert "transport = perfect" in output

    def test_network_flags_override_config(self) -> None:
        __, output = run_cli("info", "--transport", "lossy", "--drop", "0.25")
        assert "transport = lossy" in output
        assert "drop_probability = 0.25" in output


class TestNet:
    def test_sweep_table_and_monotone_retries(self) -> None:
        code, output = run_cli(
            "net", "--small", "--sweep", "0.0,0.2", "--lookups", "120",
            "--net-seed", "11",
        )
        assert code == 0
        lines = [l for l in output.splitlines() if l.strip()]
        # lines[0] is the run preamble; the table follows.
        assert lines[1].split() == [
            "drop", "ok", "failed", "retries", "hops_mean", "hops_p99",
            "lkp_msgs", "p50_ms", "p99_ms", "p99.9_ms", "by", "category",
        ]
        rows = [l.split() for l in lines[2:]]
        assert [r[0] for r in rows] == ["0.00", "0.20"]
        retries = [int(r[3]) for r in rows]
        assert retries[0] == 0  # no loss, no retries
        assert retries[1] > retries[0]
        # Hop columns are live: lookups route, so messages and means > 0.
        assert all(float(r[4]) > 0 for r in rows)
        assert all(int(r[6]) > 0 for r in rows)

    def test_sweep_rows_carry_category_breakdown(self) -> None:
        code, output = run_cli(
            "net", "--small", "--sweep", "0.0", "--lookups", "40",
            "--net-seed", "3",
        )
        assert code == 0
        row = [l for l in output.splitlines() if l.startswith("0.00")][0]
        # Lookup-only traffic: the rollup shows a single routing bucket.
        assert "routing=" in row
        assert "write=" not in row

    def test_net_seed_reproducible(self) -> None:
        argv = ("net", "--small", "--sweep", "0.1", "--lookups", "80",
                "--net-seed", "4")
        assert run_cli(*argv) == run_cli(*argv)


class TestHops:
    def test_hops_table(self) -> None:
        code, output = run_cli("hops", "--seed", "3")
        assert code == 0
        lines = [l for l in output.splitlines() if l.strip()]
        assert lines[0].split() == ["N", "mean", "hops", "log2(N)"]
        assert len(lines) == 6  # header + 5 ring sizes


class TestSearch:
    def test_search_known_corpus_term(self) -> None:
        """Search for a term we know exists: take it from the corpus
        vocabulary hint produced by a miss first."""
        code, output = run_cli("search", "--small", "definitely-not-a-term")
        assert code == 0
        assert "hint:" in output
        hint_terms = output.split("hint: the synthetic corpus vocabulary starts:")[1]
        term = hint_terms.strip().split(",")[0].strip()
        code, output = run_cli("search", "--small", term)
        assert code == 0
        assert "results for" in output or "no results" in output

    def test_empty_after_analysis_errors(self) -> None:
        code, output = run_cli("search", "--small", "the", "and")
        assert code == 2
        assert "empty" in output


class TestPerf:
    def test_perf_small_prints_throughput(self) -> None:
        code, output = run_cli("perf", "--small")
        assert code == 0
        assert "queries/s" in output
        assert "route cache" in output
        assert "ranking checksum" in output

    def test_perf_baseline_disables_optimizations(self) -> None:
        code, output = run_cli("perf", "--small", "--baseline")
        assert code == 0
        assert "baseline (optimizations off)" in output
        assert "route cache" not in output

    def test_perf_validates_network_flags(self) -> None:
        code, output = run_cli("perf", "--small", "--drop", "1.5")
        assert code == 2
        assert output.startswith("error:")

    def test_perf_rejects_lossy_transport(self) -> None:
        code, output = run_cli("perf", "--small", "--transport", "lossy")
        assert code == 2
        assert "perfect" in output

    def test_perf_json_record(self) -> None:
        import json

        code, output = run_cli("perf", "--small", "--json")
        assert code == 0
        payload = json.loads(output[output.index("{"):])
        assert payload["optimized"] is True
        assert payload["queries_per_s"] > 0

    def test_perf_topk_small_prints_four_modes(self) -> None:
        code, output = run_cli("perf", "--mode", "topk", "--small")
        assert code == 0
        for mode in ("legacy", "batched", "topk", "cached"):
            assert mode in output
        assert "ranking checksums MATCH" in output

    def test_perf_ingest_small_prints_three_arms(self) -> None:
        code, output = run_cli("perf", "--mode", "ingest", "--small")
        assert code == 0
        for arm in ("legacy", "per_term", "batched"):
            assert arm in output
        assert "docs/s build" in output
        assert "stem cache" in output
        assert "ranking checksums MATCH" in output

    def test_perf_ingest_json_record(self) -> None:
        import json

        code, output = run_cli("perf", "--mode", "ingest", "--small", "--json")
        assert code == 0
        payload = json.loads(output[output.index("{"):])
        assert payload["checksums_match"] is True
        assert payload["speedup_build"] > 0
        assert (
            payload["batched"]["publish_messages_per_doc"]
            < payload["legacy"]["publish_messages_per_doc"]
        )

    def test_perf_concurrency_prints_tail_latency_grid(self) -> None:
        code, output = run_cli(
            "perf", "--mode", "concurrency", "--small",
            "--clients", "1,8", "--arrival-rate", "1500",
        )
        assert code == 0
        header = [l for l in output.splitlines() if "p99.9_ms" in l][0]
        assert header.split() == [
            "mode", "load", "svc_ms", "strag", "ops/s", "p50_ms",
            "p99_ms", "p99.9_ms", "qdepth", "util", "drops",
        ]
        assert "closed" in output and "open" in output
        assert "cl=1" in output and "cl=8" in output and "1500/s" in output
        assert "MATCH" in output

    def test_perf_concurrency_json_record(self) -> None:
        import json

        code, output = run_cli(
            "perf", "--mode", "concurrency", "--small",
            "--clients", "1,4", "--arrival-rate", "1000", "--json",
        )
        assert code == 0
        payload = json.loads(output[output.index("{"):])
        assert payload["checksums_match"] is True
        assert any(c["mode"] == "open" for c in payload["cells"])
        assert all("latency_p99_9_ms" in c for c in payload["cells"])

    def test_perf_concurrency_validates_grids(self) -> None:
        for flag, value in (("--clients", "0"), ("--arrival-rate", "nope")):
            code, output = run_cli(
                "perf", "--mode", "concurrency", "--small", flag, value
            )
            assert code == 2
            assert output.startswith("error:")


class TestPerfRoute:
    ROUTE = ("perf", "--mode", "route", "--small", "--peers-grid", "200")

    def test_route_sweep_prints_grid_and_reductions(self) -> None:
        code, output = run_cli(*self.ROUTE, "--rings", "chord,record:8")
        assert code == 0
        assert "hops_mean" in output and "churn_entries" in output
        assert "cross-ring ranking checksums: MATCH" in output
        assert "record:8 vs chord @ 200 peers:" in output
        assert "fewer mean hops" in output

    def test_route_single_ring_via_ring_flags(self) -> None:
        code, output = run_cli(*self.ROUTE, "--ring", "record", "--ring-arity", "8")
        assert code == 0
        assert "record:8" in output
        assert "chord" not in output.splitlines()[0].split("rings ")[1]

    def test_route_json_record(self) -> None:
        import json

        code, output = run_cli(*self.ROUTE, "--rings", "chord,record:8", "--json")
        assert code == 0
        payload = json.loads(output[output.index("{"):])
        assert payload["checksums_match"] is True
        assert payload["rings"] == ["chord", "record:8"]
        assert len(payload["cells"]) == 2

    def test_route_rejects_two_ring_sources(self) -> None:
        code, output = run_cli(
            *self.ROUTE, "--rings", "chord", "--ring", "record"
        )
        assert code == 2
        assert "exactly one ring source" in output

    @pytest.mark.parametrize(
        "flags,needle",
        (
            (("--rings", "chord:4"), "arity only applies"),
            (("--rings", "record:x"), "must be an integer"),
            (("--rings", "record:1"), ">= 2"),
            (("--rings", "chord,chord"), "duplicate ring spec"),
            (("--ring", "chord", "--ring-arity", "8"), "--ring record"),
            (("--ring-arity", "8"), "--ring record"),
            (("--ring", "record", "--ring-arity", "1"), ">= 2"),
            (("--peers-grid", "0", "--rings", "chord"), "positive"),
        ),
    )
    def test_route_usage_errors_exit_2(self, flags, needle) -> None:
        code, output = run_cli("perf", "--mode", "route", "--small", *flags)
        assert code == 2
        assert output.startswith("error:")
        assert needle in output

    def test_rings_flag_requires_route_mode(self) -> None:
        code, output = run_cli("perf", "--small", "--rings", "chord")
        assert code == 2
        assert "--rings only applies to --mode route" in output

    def test_ring_flags_rejected_on_non_ring_modes(self) -> None:
        code, output = run_cli(
            "perf", "--small", "--mode", "scale", "--ring", "record"
        )
        assert code == 2
        assert "--mode e2e" in output


class TestRingFlags:
    def test_net_ring_flags_select_record_ring(self) -> None:
        code, output = run_cli(
            "net", "--small", "--sweep", "0.0", "--lookups", "40",
            "--ring", "record", "--ring-arity", "8",
        )
        assert code == 0
        assert "[record:8 ring]" in output

    def test_perf_e2e_record_ring_runs(self) -> None:
        code, output = run_cli(
            "perf", "--small", "--ring", "record", "--ring-arity", "8"
        )
        assert code == 0
        assert "ranking checksum" in output

    def test_check_record_ring_runs_clean(self) -> None:
        code, output = run_cli(
            "check", "--random", "--seed", "0", "--events", "12",
            "--peers", "12", "--skip-oracle",
            "--ring", "record", "--ring-arity", "4",
        )
        assert code == 0
        assert "all invariants held" in output

    def test_check_and_net_share_ring_validation(self) -> None:
        for command in (("net", "--small"), ("check", "--random")):
            code, output = run_cli(*command, "--ring-arity", "8")
            assert code == 2
            assert output == "error: --ring-arity only applies to --ring record\n"

    def test_catalogue_rejects_ring_flags(self) -> None:
        code, output = run_cli(
            "check", "--catalogue", "flash_crowd", "--ring", "record"
        )
        assert code == 2
        assert "drop --ring" in output


class TestGenerate:
    def test_generate_writes_collection(self, tmp_path) -> None:
        code, output = run_cli("generate", "--small", str(tmp_path / "col"))
        assert code == 0
        from repro.corpus import load_collection

        corpus, queries = load_collection(tmp_path / "col")
        assert len(corpus) == 220
        assert len(queries) == 12


class TestReport:
    def test_report_from_results_dir(self, tmp_path) -> None:
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig4a.txt").write_text("K SPRITE\n5 0.92\n")
        (results / "churn.txt").write_text("failed avail\n10% 0.95\n")
        code, output = run_cli("report", "--results", str(results))
        assert code == 0
        assert "## fig4a" in output and "## churn" in output
        assert "0.92" in output

    def test_report_to_file(self, tmp_path) -> None:
        results = tmp_path / "results"
        results.mkdir()
        (results / "cost.txt").write_text("strategy msgs\n")
        target = tmp_path / "report.md"
        code, output = run_cli(
            "report", "--results", str(results), "--output", str(target)
        )
        assert code == 0
        assert target.exists()
        assert "## cost" in target.read_text()

    def test_missing_results_dir(self, tmp_path) -> None:
        code, output = run_cli("report", "--results", str(tmp_path / "nope"))
        assert code == 2
        assert "pytest benchmarks/" in output

    def test_empty_results_dir(self, tmp_path) -> None:
        empty = tmp_path / "results"
        empty.mkdir()
        code, __ = run_cli("report", "--results", str(empty))
        assert code == 2


class TestFigures:
    def test_fig4a_small(self) -> None:
        code, output = run_cli("fig4a", "--small")
        assert code == 0
        assert "SPRITE P" in output
        assert "precision ratio vs number of answers" in output

    def test_cost_small(self) -> None:
        code, output = run_cli("cost", "--small")
        assert code == 0
        assert "index-everything" in output


class TestCheck:
    def test_random_scenario_runs_clean(self) -> None:
        code, output = run_cli(
            "check", "--random", "--seed", "0", "--events", "12",
            "--peers", "12", "--skip-oracle",
        )
        assert code == 0
        assert "random scenario: seed=0, 12 events" in output
        assert "all invariants held" in output

    def test_oracle_reports_included_by_default(self) -> None:
        code, output = run_cli(
            "check", "--random", "--seed", "0", "--events", "8", "--peers", "12"
        )
        assert code == 0
        assert "oracle[perf-paths]" in output
        assert "oracle[centralized-baseline]" in output

    def test_requires_exactly_one_source(self, tmp_path) -> None:
        code, output = run_cli("check")
        assert code == 2
        assert "exactly one" in output
        code, output = run_cli(
            "check", "--random", "--scenario", str(tmp_path / "s.json")
        )
        assert code == 2

    def test_unreadable_scenario_is_clean_error(self, tmp_path) -> None:
        code, output = run_cli("check", "--scenario", str(tmp_path / "nope.json"))
        assert code == 2
        assert output.startswith("error: cannot load scenario")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, output = run_cli("check", "--scenario", str(bad))
        assert code == 2
        assert "cannot load scenario" in output

    def test_scenario_file_round_trip(self, tmp_path) -> None:
        from repro.sim import random_scenario

        path = tmp_path / "scenario.json"
        random_scenario(seed=4, num_events=10).save(path)
        code, output = run_cli(
            "check", "--scenario", str(path), "--peers", "12", "--skip-oracle"
        )
        assert code == 0
        assert f"replaying {path}: 10 events" in output
        assert "all invariants held" in output

    def test_lossy_transport_flags_apply(self) -> None:
        code, output = run_cli(
            "check", "--random", "--seed", "1", "--events", "12",
            "--peers", "12", "--skip-oracle",
            "--transport", "lossy", "--drop", "0.02",
        )
        assert code == 0
        assert "all invariants held" in output


class TestCheckCatalogue:
    def test_single_scenario_runs_clean(self) -> None:
        code, output = run_cli(
            "check", "--catalogue", "flash_crowd", "--seed", "0",
            "--peers", "16",
        )
        assert code == 0
        assert "[flash_crowd]" in output
        assert "quality[before]" in output
        assert "quality[during]" in output
        assert "quality[after]" in output
        assert "all invariants held" in output

    def test_unknown_scenario_lists_the_valid_names(self) -> None:
        code, output = run_cli("check", "--catalogue", "nope")
        assert code == 2
        assert output.startswith("error: unknown catalogue scenario 'nope'")
        assert "flash_crowd" in output
        assert "'all'" in output

    def test_catalogue_counts_toward_exactly_one_source(self, tmp_path) -> None:
        code, output = run_cli(
            "check", "--catalogue", "flash_crowd", "--random"
        )
        assert code == 2
        assert "exactly one" in output
        code, output = run_cli(
            "check", "--catalogue", "flash_crowd",
            "--scenario", str(tmp_path / "s.json"),
        )
        assert code == 2

    def test_json_record_emitted(self) -> None:
        import json as json_module

        code, output = run_cli(
            "check", "--catalogue", "hot_term_storm", "--seed", "0",
            "--peers", "16", "--json",
        )
        assert code == 0
        payload = output[output.index("{"):]
        records = json_module.loads(payload)
        assert set(records) == {"hot_term_storm"}
        record = records["hot_term_storm"]
        assert record["final_quiescent"] is True
        assert record["violations"] == 0
        assert set(record["quality"]) == {"before", "during", "after"}

    def test_catalogue_rejects_store_backend(self) -> None:
        code, output = run_cli(
            "check", "--catalogue", "flash_crowd",
            "--store-backend", "sqlite",
        )
        assert code == 2
        assert "drop --store-backend" in output


class TestStoreFlagParity:
    """check and perf reject malformed store flags with identical
    messages — the drift this helper was extracted to end."""

    CASES = [
        (("--store-dir", "x"),
         "error: --store-dir requires --store-backend sqlite\n"),
        (("--snapshot-dir", "x"),
         "error: --snapshot-dir requires --store-backend sqlite\n"),
        (("--snapshot-interval", "3"),
         "error: --snapshot-interval requires --store-backend sqlite\n"),
        (("--store-backend", "sqlite", "--snapshot-interval", "-1"),
         "error: --snapshot-interval must be >= 0\n"),
    ]

    @pytest.mark.parametrize("flags,message", CASES)
    def test_check_and_perf_agree(self, flags, message) -> None:
        check_code, check_output = run_cli("check", "--random", *flags)
        perf_code, perf_output = run_cli("perf", "--small", *flags)
        assert check_code == perf_code == 2
        assert check_output == perf_output == message
