"""The scenario DSL: validation, serialization, generation."""

from __future__ import annotations

import json

import pytest

from repro.sim import EVENT_KINDS, HEAL_SEQUENCE, Scenario, SimEvent, random_scenario
from repro.sim import scenario as make_scenario


class TestSimEvent:
    def test_rejects_unknown_kind(self) -> None:
        with pytest.raises(ValueError):
            SimEvent(kind="meteor_strike")

    def test_rejects_nonpositive_count(self) -> None:
        with pytest.raises(ValueError):
            SimEvent(kind="publish", count=0)

    def test_rejects_negative_duration(self) -> None:
        with pytest.raises(ValueError):
            SimEvent(kind="blackout", duration_ms=-1.0)

    def test_dict_round_trip_preserves_fields(self) -> None:
        event = SimEvent(kind="blackout", duration_ms=250.0, count=2, name="n1")
        assert SimEvent.from_dict(event.to_dict()) == event

    def test_defaults_omitted_from_dict(self) -> None:
        assert SimEvent(kind="maintain").to_dict() == {"kind": "maintain"}


class TestScenario:
    def test_shorthand_builder(self) -> None:
        s = make_scenario(7, ["publish", "crash", "maintain"])
        assert [e.kind for e in s] == ["publish", "crash", "maintain"]
        assert s.seed == 7

    def test_kind_counts(self) -> None:
        s = make_scenario(0, ["query", "query", "crash"])
        assert s.kind_counts() == {"query": 2, "crash": 1}

    def test_json_round_trip(self, tmp_path) -> None:
        original = Scenario(
            seed=11,
            events=(
                SimEvent("publish", count=3),
                SimEvent("join", name="n-1"),
                SimEvent("blackout", duration_ms=100.0),
            ),
            description="round trip",
        )
        path = tmp_path / "scenario.json"
        original.save(path)
        assert Scenario.load(path) == original
        # the file is plain JSON a human can edit
        data = json.loads(path.read_text())
        assert data["seed"] == 11
        assert len(data["events"]) == 3


class TestRandomScenario:
    def test_exact_event_count(self) -> None:
        for n in (10, 57, 200):
            assert len(random_scenario(seed=3, num_events=n)) == n

    def test_deterministic_for_a_seed(self) -> None:
        assert random_scenario(seed=5, num_events=80) == random_scenario(
            seed=5, num_events=80
        )

    def test_different_seeds_differ(self) -> None:
        a = random_scenario(seed=1, num_events=80)
        b = random_scenario(seed=2, num_events=80)
        assert a.events != b.events

    def test_only_known_kinds(self) -> None:
        s = random_scenario(seed=9, num_events=150)
        assert {e.kind for e in s} <= set(EVENT_KINDS)

    def test_starts_with_publish_burst(self) -> None:
        s = random_scenario(seed=4, num_events=100)
        assert s.events[0].kind == "publish"

    def test_ends_with_heal_suffix(self) -> None:
        s = random_scenario(seed=4, num_events=100)
        tail = [e.kind for e in s.events[-len(HEAL_SEQUENCE) :]]
        assert tail == list(HEAL_SEQUENCE)

    def test_too_few_events_rejected(self) -> None:
        with pytest.raises(ValueError):
            random_scenario(seed=0, num_events=3)
