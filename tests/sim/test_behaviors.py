"""Peer behavior plans: capacity classes, free-riders, flaky peers."""

from __future__ import annotations

import random

import pytest

from repro.net import FaultInjector
from repro.sim import (
    PEER_CLASSES,
    BehaviorPlan,
    PeerClass,
    apply_behavior_spec,
    assign_peer_classes,
    parse_behavior_spec,
)
from repro.sim.behaviors import choose_fraction

NODE_IDS = list(range(100, 160))


class TestPeerClass:
    def test_defaults_are_the_identity_class(self) -> None:
        cls = PeerClass("plain")
        assert cls.latency_factor == 1.0
        assert cls.drop_probability == 0.0

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            PeerClass("bad", latency_factor=0.5)
        with pytest.raises(ValueError):
            PeerClass("bad", drop_probability=1.5)

    def test_default_population_is_rank_ordered_by_capacity(self) -> None:
        factors = [cls.latency_factor for cls in PEER_CLASSES]
        assert factors == sorted(factors)


class TestAssignPeerClasses:
    def test_every_peer_gets_a_class(self) -> None:
        assignment = assign_peer_classes(NODE_IDS, random.Random(0))
        assert sorted(assignment) == NODE_IDS
        names = {cls.name for cls in PEER_CLASSES}
        assert set(assignment.values()) <= names

    def test_zipf_skew_concentrates_in_the_head_class(self) -> None:
        assignment = assign_peer_classes(
            NODE_IDS, random.Random(3), exponent=2.0
        )
        counts = {name: 0 for name in ("backbone", "broadband", "mobile")}
        for name in assignment.values():
            counts[name] += 1
        assert counts["backbone"] > counts["broadband"] >= counts["mobile"]

    def test_deterministic_for_a_seed(self) -> None:
        a = assign_peer_classes(NODE_IDS, random.Random(7))
        b = assign_peer_classes(NODE_IDS, random.Random(7))
        assert a == b

    def test_wires_slow_and_flaky_into_the_fault_injector(self) -> None:
        faults = FaultInjector()
        assignment = assign_peer_classes(
            NODE_IDS, random.Random(1), exponent=0.0, faults=faults
        )
        for node_id, name in assignment.items():
            cls = {c.name: c for c in PEER_CLASSES}[name]
            if cls.latency_factor > 1.0:
                assert faults.slow_nodes[node_id] == cls.latency_factor
            if cls.drop_probability > 0.0:
                assert faults.flaky_nodes[node_id] == cls.drop_probability

    def test_empty_class_list_rejected(self) -> None:
        with pytest.raises(ValueError):
            assign_peer_classes(NODE_IDS, random.Random(0), classes=())


class TestChooseFraction:
    def test_rounded_count_and_sorted_output(self) -> None:
        chosen = choose_fraction(NODE_IDS, random.Random(0), 0.25)
        assert len(chosen) == round(len(NODE_IDS) * 0.25)
        assert chosen == sorted(chosen)
        assert set(chosen) <= set(NODE_IDS)

    def test_extremes(self) -> None:
        assert choose_fraction(NODE_IDS, random.Random(0), 0.0) == []
        assert choose_fraction(NODE_IDS, random.Random(0), 1.0) == NODE_IDS

    def test_invalid_fraction(self) -> None:
        with pytest.raises(ValueError):
            choose_fraction(NODE_IDS, random.Random(0), 1.1)


class TestParseBehaviorSpec:
    def test_the_three_kinds(self) -> None:
        assert parse_behavior_spec("classes:1.2") == ("classes", (1.2,))
        assert parse_behavior_spec("freeride:0.4") == ("freeride", (0.4,))
        assert parse_behavior_spec("flaky:0.35:0.2") == ("flaky", (0.35, 0.2))

    @pytest.mark.parametrize(
        "bad",
        ["", "sabotage:1", "classes", "classes:1:2", "flaky:0.5", "flaky:x:y"],
    )
    def test_malformed_specs_fail_loudly(self, bad: str) -> None:
        with pytest.raises(ValueError):
            parse_behavior_spec(bad)


class TestApplyBehaviorSpec:
    def test_freeride_works_without_fault_injection(self) -> None:
        plan = BehaviorPlan()
        ok = apply_behavior_spec(
            plan, "freeride:0.5", NODE_IDS, random.Random(0), faults=None
        )
        assert ok
        assert len(plan.free_riders) == len(NODE_IDS) // 2
        assert all(plan.is_free_rider(n) for n in plan.free_riders)

    def test_freeride_accumulates_across_events(self) -> None:
        plan = BehaviorPlan()
        rng = random.Random(0)
        apply_behavior_spec(plan, "freeride:0.2", NODE_IDS, rng, faults=None)
        first = set(plan.free_riders)
        apply_behavior_spec(plan, "freeride:0.2", NODE_IDS, rng, faults=None)
        assert first <= plan.free_riders

    def test_classes_and_flaky_need_a_fault_injector(self) -> None:
        plan = BehaviorPlan()
        rng = random.Random(0)
        state = rng.getstate()
        assert not apply_behavior_spec(plan, "classes:1.0", NODE_IDS, rng, None)
        assert not apply_behavior_spec(plan, "flaky:0.3:0.1", NODE_IDS, rng, None)
        # Skipped specs must not consume randomness — replays with and
        # without a lossy transport keep identical downstream streams.
        assert rng.getstate() == state

    def test_classes_spec_populates_plan_and_faults(self) -> None:
        plan, faults = BehaviorPlan(), FaultInjector()
        ok = apply_behavior_spec(
            plan, "classes:1.2", NODE_IDS, random.Random(4), faults
        )
        assert ok
        assert sorted(plan.classes) == NODE_IDS
        assert plan.flaky == faults.flaky_nodes

    def test_flaky_spec_marks_the_chosen_fraction(self) -> None:
        plan, faults = BehaviorPlan(), FaultInjector()
        ok = apply_behavior_spec(
            plan, "flaky:0.25:0.2", NODE_IDS, random.Random(4), faults
        )
        assert ok
        assert len(plan.flaky) == round(len(NODE_IDS) * 0.25)
        for node_id, probability in plan.flaky.items():
            assert probability == 0.2
            assert faults.flaky_nodes[node_id] == 0.2

    def test_flaky_probability_validated(self) -> None:
        with pytest.raises(ValueError):
            apply_behavior_spec(
                BehaviorPlan(),
                "flaky:0.5:1.5",
                NODE_IDS,
                random.Random(0),
                FaultInjector(),
            )
