"""The differential oracle: perf paths, top-k paths, and the
centralized baseline."""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import SyntheticTrecCorpus
from repro.sim import DifferentialOracle, FullIndexSystem


@pytest.fixture(scope="module")
def workload(micro_corpus_config):
    corpus, originals, __ = SyntheticTrecCorpus(micro_corpus_config).build()
    queries = list(originals)
    return corpus, queries[:4], queries[4:]


@pytest.fixture(scope="module")
def oracle(workload):
    corpus, train, test = workload
    return DifferentialOracle(corpus, train=train, test=test, num_peers=16, seed=0)


class TestPerfPaths:
    def test_optimized_and_direct_rankings_bit_identical(self, oracle) -> None:
        report = oracle.check_perf_paths()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_builders_differ_only_in_perf_switches(self, oracle) -> None:
        fast = oracle._build_sprite(optimized=True)
        slow = oracle._build_sprite(optimized=False)
        assert fast.ring.config.route_cache_size > 0
        assert slow.ring.config.route_cache_size == 0
        assert fast.ring.config.incremental_repair
        assert not slow.ring.config.incremental_repair
        assert fast.processor.batch_fetch and not slow.processor.batch_fetch
        # everything that affects *results* is identical
        assert fast.config == slow.config
        assert fast.ring.live_ids == slow.ring.live_ids


class TestTopKPaths:
    def test_topk_and_cached_rankings_bit_identical(self, oracle) -> None:
        report = oracle.check_topk_paths()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_builders_differ_only_in_topk_switches(self, oracle) -> None:
        exhaustive = oracle._build_topk_sprite(
            early_termination=False, result_cache_size=0
        )
        served = oracle._build_topk_sprite(
            early_termination=True, result_cache_size=128
        )
        assert not exhaustive.processor.early_termination
        assert served.processor.early_termination
        assert exhaustive.protocol.result_cache_size == 0
        assert served.protocol.result_cache_size == 128
        assert exhaustive.ring.live_ids == served.ring.live_ids


class TestCentralizedBaseline:
    def test_full_index_matches_centralized_tfidf(self, oracle) -> None:
        report = oracle.check_centralized_baseline()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_full_index_system_publishes_every_term(self, workload) -> None:
        corpus, __, __ = workload
        doc = next(iter(corpus))
        system = FullIndexSystem(
            corpus,
            sprite_config=DifferentialOracle(corpus, [], [])._sprite_config(),
        )
        terms = system._first_terms(doc.doc_id)
        assert terms == sorted(doc.term_freqs)


class TestCheckAll:
    def test_runs_all_oracles(self, oracle) -> None:
        reports = oracle.check_all()
        assert set(reports) == {
            "perf-paths",
            "topk-paths",
            "centralized-baseline",
        }
        assert all(r.ok for r in reports.values())
