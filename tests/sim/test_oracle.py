"""The differential oracle: perf paths, top-k paths, ingest paths,
store paths, kernel paths, the concurrent runtime, and the centralized
baseline."""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import SyntheticTrecCorpus
from repro.perf.compat import have_numpy
from repro.sim import DifferentialOracle, FullIndexSystem, write_state_fingerprint


@pytest.fixture(scope="module")
def workload(micro_corpus_config):
    corpus, originals, __ = SyntheticTrecCorpus(micro_corpus_config).build()
    queries = list(originals)
    return corpus, queries[:4], queries[4:]


@pytest.fixture(scope="module")
def oracle(workload):
    corpus, train, test = workload
    return DifferentialOracle(corpus, train=train, test=test, num_peers=16, seed=0)


class TestPerfPaths:
    def test_optimized_and_direct_rankings_bit_identical(self, oracle) -> None:
        report = oracle.check_perf_paths()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_builders_differ_only_in_perf_switches(self, oracle) -> None:
        fast = oracle._build_sprite(optimized=True)
        slow = oracle._build_sprite(optimized=False)
        assert fast.ring.config.route_cache_size > 0
        assert slow.ring.config.route_cache_size == 0
        assert fast.ring.config.incremental_repair
        assert not slow.ring.config.incremental_repair
        assert fast.processor.batch_fetch and not slow.processor.batch_fetch
        # everything that affects *results* is identical
        assert fast.config == slow.config
        assert fast.ring.live_ids == slow.ring.live_ids


class TestTopKPaths:
    def test_topk_and_cached_rankings_bit_identical(self, oracle) -> None:
        report = oracle.check_topk_paths()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_builders_differ_only_in_topk_switches(self, oracle) -> None:
        exhaustive = oracle._build_topk_sprite(
            early_termination=False, result_cache_size=0
        )
        served = oracle._build_topk_sprite(
            early_termination=True, result_cache_size=128
        )
        assert not exhaustive.processor.early_termination
        assert served.processor.early_termination
        assert exhaustive.protocol.result_cache_size == 0
        assert served.protocol.result_cache_size == 128
        assert exhaustive.ring.live_ids == served.ring.live_ids


class TestIngestPaths:
    def test_batched_and_per_term_state_bit_identical(self, oracle) -> None:
        report = oracle.check_ingest_paths()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_builders_differ_only_in_write_switch(self, oracle) -> None:
        batched = oracle._build_ingest_sprite(batched_writes=True)
        legacy = oracle._build_ingest_sprite(batched_writes=False)
        assert batched.config.batched_writes
        assert not legacy.config.batched_writes
        assert batched.ring.live_ids == legacy.ring.live_ids

    def test_fingerprint_sees_slot_and_owner_state(self, workload) -> None:
        corpus, __, __ = workload
        oracle = DifferentialOracle(corpus, [], [], num_peers=16, seed=0)
        system = oracle._build_ingest_sprite(batched_writes=True)
        system.bulk_share()
        fingerprint = write_state_fingerprint(system)
        assert fingerprint["slots"], "expected published term slots"
        assert fingerprint["owners"], "expected owner-side shared state"
        assert len(fingerprint["version_rank"]) == len(fingerprint["slots"])


class TestKernelPaths:
    def test_numpy_and_python_rankings_bit_identical(self, oracle) -> None:
        report = oracle.check_kernel_paths()
        if have_numpy():
            assert report.queries_compared > 0
        else:
            assert report.queries_compared == 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_builders_differ_only_in_kernel_switch(self, oracle) -> None:
        if not have_numpy():
            pytest.skip("numpy not installed (perf extra)")
        fast = oracle._build_kernel_sprite(scoring_kernel="numpy")
        slow = oracle._build_kernel_sprite(scoring_kernel="python")
        assert fast.processor.kernel == "numpy"
        assert slow.processor.kernel == "python"
        assert fast.ring.live_ids == slow.ring.live_ids

    def test_report_empty_without_numpy(self, oracle, monkeypatch) -> None:
        import repro.perf.compat as compat

        monkeypatch.setattr(compat, "_NUMPY", False)
        report = oracle.check_kernel_paths()
        assert report.queries_compared == 0
        assert report.ok


class TestConcurrentRuntime:
    def test_event_driven_concurrency_one_bit_identical(self, oracle) -> None:
        """The seventh comparison: the DESIGN.md §15 runtime at
        concurrency 1 must leave rankings AND the quiescent write-state
        fingerprint bit-identical to call-stack execution."""
        report = oracle.check_concurrent_runtime()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]


class TestCentralizedBaseline:
    def test_full_index_matches_centralized_tfidf(self, oracle) -> None:
        report = oracle.check_centralized_baseline()
        assert report.queries_compared > 0
        assert report.ok, [m.detail for m in report.mismatches]

    def test_full_index_system_publishes_every_term(self, workload) -> None:
        corpus, __, __ = workload
        doc = next(iter(corpus))
        system = FullIndexSystem(
            corpus,
            sprite_config=DifferentialOracle(corpus, [], [])._sprite_config(),
        )
        terms = system._first_terms(doc.doc_id)
        assert terms == sorted(doc.term_freqs)


class TestCheckAll:
    def test_runs_all_oracles(self, oracle) -> None:
        reports = oracle.check_all()
        assert set(reports) == {
            "perf-paths",
            "topk-paths",
            "ingest-paths",
            "store-paths",
            "kernel-paths",
            "concurrent-runtime",
            "ring-paths",
            "centralized-baseline",
        }
        assert all(r.ok for r in reports.values())
