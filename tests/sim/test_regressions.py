"""Minimal failure interleavings the simulation harness surfaced.

Each test replays a shrunk schedule that broke an invariant before the
corresponding fix landed, as a targeted regression:

* **replica adoption** (``ChordNode.adopt``): a responsible peer serving
  a replica-resident slot must promote it to a primary copy, otherwise
  a later join's key transfer (which moves only ``store``) strands the
  slot and the term becomes unresolvable.
* **deletion forwarding** (``IndexingProtocol.unpublish``): an unpublish
  must also reach live replica holders, otherwise a replica shipped
  before the deletion resurrects the posting when promoted after a
  crash.
* **reconciliation** (``MaintenanceDaemon._reconcile_round``): an
  unpublish that raced the indexing peer's crash leaves a permanent
  orphan in the promoted replica; the indexing-peer-driven audit retires
  it.
* **stale-replica pruning** (``ReplicationManager.prune_stale_replicas``):
  replicas left at nodes that dropped out of the responsible peer's
  successor window are never refreshed and must not survive to be
  promoted later.
"""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, SpriteConfig
from repro.core.maintenance import MaintenanceDaemon
from repro.core.metadata import TermSlot
from repro.core.system import SpriteSystem
from repro.corpus import Corpus, Document
from repro.dht.replication import ReplicationManager
from repro.sim import InvariantChecker

from ..conftest import TINY_DOCS


@pytest.fixture()
def system() -> SpriteSystem:
    corpus = Corpus(
        Document(doc_id=doc_id, text=text) for doc_id, text in TINY_DOCS.items()
    )
    sys_ = SpriteSystem(
        corpus,
        sprite_config=SpriteConfig(
            initial_terms=3,
            max_index_terms=6,
            query_cache_size=50,
            assumed_corpus_size=100,
            top_k_answers=5,
        ),
        chord_config=ChordConfig(
            num_peers=12, id_bits=32, successor_list_size=3, seed=20070415
        ),
    )
    sys_.share_corpus()
    return sys_


def _some_posting(system: SpriteSystem):
    """(owner, doc_id, term, key, primary node id) for one live posting."""
    ring = system.ring
    for owner in system.owners.values():
        if not ring.is_live(owner.node_id):
            continue
        for doc_id, state in owner.shared.items():
            for term in state.index_terms:
                key = system.protocol.term_hash(term)
                primary = ring.successor_of(key)
                if primary != owner.node_id and ring.num_live > 3:
                    return owner, doc_id, term, key, primary
    raise AssertionError("no usable posting in fixture system")


class TestReplicaAdoption:
    def test_join_after_crash_does_not_strand_replica_resident_slot(
        self, system
    ) -> None:
        # shrunk schedule: publish → replicate → crash primary →
        # stabilize → fetch (serves from replica) → join inside the
        # key's range → term must still be resolvable
        ring = system.ring
        owner, doc_id, term, key, primary = _some_posting(system)
        ReplicationManager(ring).replicate_round()
        ring.fail(primary)
        ring.stabilize()

        inheritor = ring.successor_of(key)
        assert key in ring.node(inheritor).replicas  # replica-resident
        postings, __ = system.protocol.fetch_postings(inheritor, term)
        assert any(p.doc_id == doc_id for p in postings)
        # adoption promoted the slot to a primary copy...
        assert key in ring.node(inheritor).store

        # ...so the join's key transfer migrates it instead of
        # stranding it in the old node's replica map.  (Heal the other
        # slots the crash orphaned first, so the final sweep isolates
        # the adoption path.)
        ReplicationManager(ring).promote_replicas()
        joiner = ring.join(node_id=key)
        assert ring.successor_of(key) == joiner
        slot = ring.node(joiner).store.get(key)
        assert isinstance(slot, TermSlot) and doc_id in slot.inverted
        report = InvariantChecker(system).check(quiescent=True)
        assert not any(
            v.invariant == "term_resolvability" for v in report.violations
        ), [str(v) for v in report.violations]


class TestDeletionForwarding:
    def test_promoted_replica_does_not_resurrect_unpublished_posting(
        self, system
    ) -> None:
        # shrunk schedule: publish → replicate → unpublish → crash
        # primary → stabilize + promote → the posting must stay gone
        ring = system.ring
        owner, doc_id, term, key, primary = _some_posting(system)
        replication = ReplicationManager(ring)
        replication.replicate_round()

        assert system.protocol.unpublish(owner.node_id, term, doc_id)
        ring.fail(primary)
        replication.recover_from_failures()

        holder = ring.node(ring.successor_of(key))
        slot = holder.store.get(key) or holder.replicas.get(key)
        if isinstance(slot, TermSlot):
            assert doc_id not in slot.inverted, "unpublished posting resurrected"


class TestReconciliation:
    def test_orphan_from_unpublish_crash_race_is_retired(self, system) -> None:
        # shrunk schedule: publish → replicate → crash primary →
        # unpublish (fails: peer down, owner drops the term anyway) →
        # recover (promotes the stale replica, orphan included) →
        # maintain must retire the orphan
        ring = system.ring
        owner, doc_id, term, key, primary = _some_posting(system)
        replication = ReplicationManager(ring)
        replication.replicate_round()

        ring.fail(primary)
        state = owner.shared[doc_id]
        owner._unpublish_terms(state, [term])  # deletion lost: peer is down
        assert term not in state.index_terms
        replication.recover_from_failures()

        holder = ring.node(ring.successor_of(key))
        slot = holder.store.get(key)
        assert isinstance(slot, TermSlot) and doc_id in slot.inverted  # the orphan

        daemon = MaintenanceDaemon(system)
        report = daemon.run_round()
        assert report.postings_retired >= 1
        assert report.reconcile_messages >= 1
        assert doc_id not in holder.store[key].inverted
        check = InvariantChecker(system).check(quiescent=True)
        assert not any(
            v.invariant == "owner_agreement" for v in check.violations
        ), [str(v) for v in check.violations]

    def test_reconcile_never_deletes_for_dead_owners(self, system) -> None:
        ring = system.ring
        owner, doc_id, term, key, primary = _some_posting(system)
        ReplicationManager(ring).replicate_round()
        ring.fail(owner.node_id)
        ring.stabilize()
        before = system.protocol.indexed_document_frequency(term)
        report = MaintenanceDaemon(system).run_round()
        # the dead owner's postings are orphans-by-death, not deletions
        assert system.protocol.indexed_document_frequency(term) == before


class TestStaleReplicaPruning:
    def test_replica_outside_successor_window_is_dropped(self, system) -> None:
        ring = system.ring
        owner, doc_id, term, key, primary = _some_posting(system)
        replication = ReplicationManager(ring)
        replication.replicate_round()

        # plant a replica at a node far outside the primary's window
        window = ring.node(primary).successor_list[: replication.replication_factor]
        outsider = next(
            nid
            for nid in ring.live_ids
            if nid not in window and nid != primary and ring.successor_of(key) != nid
        )
        ring.node(outsider).replicas[key] = TermSlot(
            term=term, cache=ring.node(primary).store[key].cache
        )

        dropped = replication.prune_stale_replicas()
        assert dropped >= 1
        assert key not in ring.node(outsider).replicas
        # legitimate window replicas survive
        assert any(
            key in ring.node(nid).replicas
            for nid in window
            if ring.is_live(nid) and nid != primary
        )

    def test_promotable_replica_is_kept(self, system) -> None:
        ring = system.ring
        owner, doc_id, term, key, primary = _some_posting(system)
        replication = ReplicationManager(ring)
        replication.replicate_round()
        ring.fail(primary)
        ring.stabilize()
        inheritor = ring.successor_of(key)
        assert key in ring.node(inheritor).replicas
        replication.prune_stale_replicas()
        # the inheritor is now responsible: its copy is promotable, kept
        assert key in ring.node(inheritor).replicas


class TestConsecutiveDeadSuccessorLookup:
    """Shrunk schedule for the ``ring.lookup`` orbit fix.

    The one-deep ``(current, successor]`` ownership test cannot see past
    *consecutive* failed successors: when a key's unrepaired owner is
    the second dead entry in the successor list, the pre-fix router
    skipped both corpses via ``first_live_successor`` and orbited the
    ring until the step limit blew up as ``DHTError`` — instead of
    reporting the Section 7 down-peer window (``NodeFailedError``) or
    terminating at the key's live owner.  Pinned here on an explicit
    8-node ring so the interval walk is auditable by eye.
    """

    def _ring(self) -> "ChordRing":
        from repro.dht import ChordRing

        return ChordRing(
            ChordConfig(
                num_peers=8, id_bits=32, successor_list_size=4, seed=1
            ),
            node_ids=[10, 20, 30, 40, 50, 60, 70, 80],
        )

    def test_dead_owner_behind_dead_successor_raises(self) -> None:
        from repro.exceptions import NodeFailedError

        ring = self._ring()
        ring.fail(20)
        ring.fail(30)  # two consecutive dead successors of node 10
        # Key 25's owner is node 30 — dead, unrepaired: the down-peer
        # window must surface as NodeFailedError, not a routing orbit.
        with pytest.raises(NodeFailedError):
            ring.lookup(10, 25, record=False)

    def test_live_owner_past_dead_pair_terminates(self) -> None:
        ring = self._ring()
        ring.fail(20)
        ring.fail(30)
        # Key 35's owner is node 40 — alive past the dead pair; the
        # successor-list interval walk must terminate there directly.
        result = ring.lookup(10, 35, record=False)
        assert result.node_id == 40
        assert result.path[0] == 10
        assert result.path[-1] == 40

    def test_after_repair_lookup_resolves_to_next_live_owner(self) -> None:
        ring = self._ring()
        ring.fail(20)
        ring.fail(30)
        for __ in range(4):
            ring.stabilize()
        # Once stabilization absorbs the failures, key 25 belongs to
        # the next live node on the ring.
        assert ring.lookup(10, 25, record=False).node_id == 40
