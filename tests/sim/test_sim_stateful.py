"""Stateful property testing of the whole SPRITE deployment.

A hypothesis rule-based machine drives the scenario engine through
arbitrary interleavings of churn, faults, workload, and repair, checking
the full invariant catalogue after every step.  When an interleaving
breaks an invariant, hypothesis shrinks it to a minimal schedule — the
mechanism that produced the regression scenarios in
``test_regressions.py``.

The corpus is the six hand-written tiny documents (synthetic corpus
generation per example would dominate the runtime).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.config import ChordConfig, SpriteConfig
from repro.core.system import SpriteSystem
from repro.corpus import Corpus, Document, Query
from repro.sim import ScenarioEngine, SimEvent

from ..conftest import TINY_DOCS


def _tiny_system(seed: int) -> SpriteSystem:
    corpus = Corpus(
        Document(doc_id=doc_id, text=text) for doc_id, text in TINY_DOCS.items()
    )
    return SpriteSystem(
        corpus,
        sprite_config=SpriteConfig(
            initial_terms=3,
            terms_per_iteration=2,
            learning_iterations=1,
            max_index_terms=6,
            query_cache_size=50,
            assumed_corpus_size=100,
            top_k_answers=5,
        ),
        chord_config=ChordConfig(
            num_peers=10, id_bits=16, successor_list_size=3, seed=seed
        ),
    )


class SpriteMachine(RuleBasedStateMachine):
    """Random event interleavings with continuous invariant checking."""

    def __init__(self) -> None:
        super().__init__()
        self.engine: ScenarioEngine = None  # type: ignore[assignment]

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed: int) -> None:
        system = _tiny_system(seed)
        analyzer = system.corpus.analyzer
        queries = [
            Query("sq1", tuple(analyzer.analyze_query("chord overlay routing"))),
            Query("sq2", tuple(analyzer.analyze_query("retrieval ranking index"))),
            Query("sq3", tuple(analyzer.analyze_query("replication failure churn"))),
        ]
        self.engine = ScenarioEngine(system, queries=queries, seed=seed)

    # -- actions ------------------------------------------------------------

    @rule(count=st.integers(min_value=1, max_value=3))
    def publish(self, count: int) -> None:
        self.engine.apply(SimEvent("publish", count=count))

    @rule(name=st.integers(min_value=0, max_value=10**6))
    def join(self, name: int) -> None:
        self.engine.apply(SimEvent("join", name=f"sm-{name}"))

    @rule()
    @precondition(lambda self: self.engine and self.engine.system.ring.num_live > 3)
    def leave(self) -> None:
        self.engine.apply(SimEvent("leave"))

    @rule()
    @precondition(lambda self: self.engine and self.engine.system.ring.num_live > 3)
    def crash(self) -> None:
        self.engine.apply(SimEvent("crash"))

    @rule()
    def query(self) -> None:
        self.engine.apply(SimEvent("query"))

    @rule()
    @precondition(lambda self: self.engine and self.engine.system.owners)
    def learn(self) -> None:
        self.engine.apply(SimEvent("learn"))

    @rule()
    def stabilize(self) -> None:
        self.engine.apply(SimEvent("stabilize"))

    @rule()
    def replicate(self) -> None:
        self.engine.apply(SimEvent("replicate"))

    @rule()
    def recover(self) -> None:
        self.engine.apply(SimEvent("recover"))

    @rule()
    def maintain(self) -> None:
        self.engine.apply(SimEvent("maintain"))

    # -- invariants -----------------------------------------------------------

    @invariant()
    def catalogue_holds(self) -> None:
        if self.engine is None:
            return
        report = self.engine.check_now()
        assert report.ok, "; ".join(str(v) for v in report.violations)


SpriteMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestSpriteStateful = SpriteMachine.TestCase
