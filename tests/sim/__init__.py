"""Tests for repro.sim — the scenario/invariant/oracle harness."""
