"""The scenario engine: event application, quiescence, determinism."""

from __future__ import annotations

import pytest

from repro.net import LossyTransport
from repro.sim import SimEvent, build_simulation, random_scenario, scenario


class TestEventApplication:
    def test_publish_shares_documents_incrementally(self) -> None:
        engine = build_simulation(seed=1)
        assert engine.system.total_published_terms() == 0
        assert engine.apply(SimEvent("publish", count=5))
        assert len(engine.system._doc_owner) == 5
        assert engine.system.total_published_terms() > 0

    def test_publish_exhausts_then_skips(self) -> None:
        engine = build_simulation(seed=1)
        assert engine.apply(SimEvent("publish", count=60))
        assert len(engine.system._doc_owner) == 60
        assert not engine.apply(SimEvent("publish"))

    def test_join_grows_ring(self) -> None:
        engine = build_simulation(seed=1)
        before = engine.system.ring.num_live
        assert engine.apply(SimEvent("join", name="newcomer"))
        assert engine.system.ring.num_live == before + 1

    def test_crash_sets_dirty_until_clean_maintenance(self) -> None:
        engine = build_simulation(seed=2)
        engine.apply(SimEvent("publish", count=10))
        engine.apply(SimEvent("replicate"))
        assert engine.quiescent
        engine.apply(SimEvent("crash"))
        assert not engine.quiescent
        engine.apply(SimEvent("stabilize"))
        engine.apply(SimEvent("recover"))
        # still dirty: quiescence needs a *clean* maintenance round as proof
        assert not engine.quiescent
        engine.apply(SimEvent("maintain"))
        assert engine.quiescent

    def test_blackout_skipped_on_perfect_transport(self) -> None:
        engine = build_simulation(seed=3)
        assert not engine.apply(SimEvent("blackout", duration_ms=100.0))

    def test_blackout_blocks_quiescence_until_window_ends(self) -> None:
        engine = build_simulation(seed=3, transport=LossyTransport(seed=3))
        engine.apply(SimEvent("publish", count=5))
        assert engine.quiescent
        assert engine.apply(SimEvent("blackout", duration_ms=200.0))
        assert not engine.quiescent
        # ticks advance the clock 10 ms per applied event
        for __ in range(25):
            engine.apply(SimEvent("stabilize"))
        assert engine.clock.now >= engine._blackout_until
        assert engine.quiescent

    def test_query_event_runs_workload(self) -> None:
        engine = build_simulation(seed=4)
        engine.apply(SimEvent("publish", count=60))
        assert engine.apply(SimEvent("query", count=3))

    def test_learn_event_requires_owners(self) -> None:
        engine = build_simulation(seed=5)
        assert not engine.apply(SimEvent("learn"))  # nothing shared yet
        engine.apply(SimEvent("publish", count=5))
        assert engine.apply(SimEvent("learn"))

    def test_clock_advances_per_applied_event(self) -> None:
        engine = build_simulation(seed=6, tick_ms=10.0)
        t0 = engine.clock.now
        engine.apply(SimEvent("stabilize"))
        engine.apply(SimEvent("stabilize"))
        assert engine.clock.now == t0 + 20.0


class TestRun:
    def test_report_counts_and_ok(self) -> None:
        engine = build_simulation(seed=7)
        s = scenario(
            7, ["publish", "replicate", "crash", "stabilize", "recover", "maintain"]
        )
        report = engine.run(s)
        assert report.ok, [str(v) for __, __, v in report.violations]
        assert report.events_applied == 6
        assert report.checks_run == 6
        assert report.final_quiescent
        assert report.applied["crash"] == 1

    def test_random_scenarios_hold_invariants(self) -> None:
        for seed in (0, 1):
            engine = build_simulation(seed=seed)
            report = engine.run(random_scenario(seed=seed, num_events=60))
            assert report.ok, [str(v) for __, __, v in report.violations]
            assert report.final_quiescent

    def test_summary_lines_mention_violations(self) -> None:
        engine = build_simulation(seed=8)
        report = engine.run(scenario(8, ["publish", "maintain"]))
        assert any("all invariants held" in line for line in report.summary_lines())


class TestDeterminism:
    def test_same_seed_same_outcome(self) -> None:
        s = random_scenario(seed=9, num_events=50)
        reports = []
        for __ in range(2):
            engine = build_simulation(seed=9)
            reports.append(engine.run(s))
        a, b = reports
        assert a.applied == b.applied
        assert a.skipped == b.skipped
        assert [(i, e, str(v)) for i, e, v in a.violations] == [
            (i, e, str(v)) for i, e, v in b.violations
        ]
