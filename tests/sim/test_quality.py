"""Quality probes: precision/recall/NDCG vs the centralized oracle."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeFailedError
from repro.sim import QualityProbe, SimEvent, build_simulation


@pytest.fixture()
def engine():
    eng = build_simulation(seed=5)
    eng.apply(SimEvent("publish", count=60))
    eng.apply(SimEvent("learn"))
    for kind in ("stabilize", "replicate", "maintain"):
        eng.apply(SimEvent(kind))
    return eng


class TestQualityProbe:
    def test_readout_shape_and_bounds(self, engine) -> None:
        probe = QualityProbe(engine.system, engine.queries)
        readout = probe.measure("during")
        assert readout.label == "during"
        assert readout.queries == len(engine.queries)
        assert readout.degraded == 0
        for value in (
            readout.mean_precision,
            readout.mean_recall,
            readout.mean_ndcg,
        ):
            assert 0.0 <= value <= 1.0
        assert readout.mean_precision > 0.0  # the shared corpus is findable

    def test_top_k_defaults_to_the_configured_answer_count(self, engine) -> None:
        probe = QualityProbe(engine.system, engine.queries)
        assert probe.top_k == engine.system.config.top_k_answers
        assert QualityProbe(engine.system, engine.queries, top_k=3).top_k == 3

    def test_probe_is_repeatable_and_non_mutating(self, engine) -> None:
        probe = QualityProbe(engine.system, engine.queries)
        first = probe.measure("a")
        second = probe.measure("b")
        assert (
            first.mean_precision,
            first.mean_recall,
            first.mean_ndcg,
            first.degraded,
        ) == (
            second.mean_precision,
            second.mean_recall,
            second.mean_ndcg,
            second.degraded,
        )

    def test_nothing_shared_scores_zero_without_crashing(self) -> None:
        eng = build_simulation(seed=5)  # no publish events applied
        readout = QualityProbe(eng.system, eng.queries).measure("empty")
        assert readout.mean_precision == 0.0
        assert readout.mean_recall == 0.0
        assert readout.mean_ndcg == 0.0
        assert readout.degraded == 0

    def test_unservable_queries_count_as_degraded_zeros(
        self, engine, monkeypatch
    ) -> None:
        def explode(query, top_k, cache):
            raise NodeFailedError(0)

        monkeypatch.setattr(engine.system, "search", explode)
        readout = QualityProbe(engine.system, engine.queries).measure("down")
        assert readout.degraded == len(engine.queries)
        assert readout.mean_precision == 0.0
        assert readout.mean_ndcg == 0.0

    def test_to_dict_and_summary(self, engine) -> None:
        readout = QualityProbe(engine.system, engine.queries).measure("after")
        record = readout.to_dict()
        assert set(record) == {
            "label",
            "queries",
            "degraded",
            "precision",
            "recall",
            "ndcg",
        }
        assert record["precision"] == round(readout.mean_precision, 4)
        assert "quality[after]:" in readout.summary()


class TestEngineMeasureEvent:
    def test_measure_appends_a_labelled_readout(self, engine) -> None:
        assert engine.apply(SimEvent("measure", name="mid"))
        assert [r.label for r in engine.quality] == ["mid"]

    def test_unnamed_measure_labels_by_quiescence(self, engine) -> None:
        assert engine.quiescent
        engine.apply(SimEvent("measure"))
        assert engine.quality[-1].label == "after"
        engine.apply(SimEvent("crash"))
        engine.apply(SimEvent("measure"))
        assert engine.quality[-1].label == "during"

    def test_report_carries_the_probes(self, engine) -> None:
        from repro.sim import Scenario

        report = engine.run(
            Scenario(
                seed=1,
                events=(
                    SimEvent("measure", name="one"),
                    SimEvent("measure", name="two"),
                ),
            )
        )
        assert [r.label for r in report.quality] == ["one", "two"]
        assert any("quality[one]" in line for line in report.summary_lines())
