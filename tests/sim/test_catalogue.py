"""The adversarial workload catalogue: structure, determinism, runs."""

from __future__ import annotations

import pytest

from repro.sim import (
    CATALOGUE,
    EVENT_KINDS,
    build_catalogue_engine,
    report_record,
    run_catalogue,
    run_catalogue_entry,
    scenario_fingerprint,
)

REQUIRED = {
    "flash_crowd",
    "hot_term_storm",
    "regional_failure",
    "heterogeneous",
    "free_riders",
    "flaky_responders",
    "corpus_turnover",
}


class TestCatalogueStructure:
    def test_the_seven_scenarios_are_registered(self) -> None:
        assert set(CATALOGUE) == REQUIRED

    def test_entries_are_well_formed(self) -> None:
        for name, entry in CATALOGUE.items():
            assert entry.name == name
            assert entry.description
            assert entry.invariants, name
            assert entry.transport in ("perfect", "lossy")
            scenario = entry.build(3)
            assert scenario.seed == 3
            assert all(e.kind in EVENT_KINDS for e in scenario.events)

    def test_every_scenario_probes_before_during_and_after(self) -> None:
        for name, entry in CATALOGUE.items():
            labels = [
                e.name for e in entry.build(0).events if e.kind == "measure"
            ]
            for required in ("before", "during", "after"):
                assert required in labels, f"{name} lacks measure {required!r}"
            # The after-probe must follow the heal suffix: it is the
            # recovery claim, so nothing may run after it.
            assert labels[-1] == "after"
            assert entry.build(0).events[-1].kind == "measure"

    def test_documented_invariants_exist_in_the_checker(self) -> None:
        from repro.sim import InvariantChecker

        known = {name for name, __ in InvariantChecker.CATALOGUE}
        for entry in CATALOGUE.values():
            assert set(entry.invariants) <= known, entry.name

    def test_behavior_specs_needing_faults_ride_lossy_transports(self) -> None:
        for name, entry in CATALOGUE.items():
            for event in entry.build(0).events:
                if event.kind == "behave" and not event.name.startswith(
                    "freeride"
                ):
                    assert entry.transport == "lossy", name


class TestDeterminism:
    def test_same_seed_same_event_stream(self) -> None:
        for entry in CATALOGUE.values():
            assert scenario_fingerprint(entry.build(9)) == scenario_fingerprint(
                entry.build(9)
            )

    def test_same_seed_same_report(self) -> None:
        first = report_record(
            run_catalogue_entry("corpus_turnover", seed=2, num_peers=16)
        )
        second = report_record(
            run_catalogue_entry("corpus_turnover", seed=2, num_peers=16)
        )
        assert first == second

    def test_lossy_entry_is_deterministic_too(self) -> None:
        first = report_record(
            run_catalogue_entry("flaky_responders", seed=2, num_peers=16)
        )
        second = report_record(
            run_catalogue_entry("flaky_responders", seed=2, num_peers=16)
        )
        assert first == second


class TestRuns:
    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_runs_clean_and_heals(self, name: str) -> None:
        report = run_catalogue_entry(name, seed=0, num_peers=16)
        assert report.ok, [str(v) for __, __, v in report.violations]
        assert report.final_quiescent
        assert report.events_skipped == 0
        labels = [r.label for r in report.quality]
        assert labels.count("after") == 1

    def test_storm_entries_record_observations(self) -> None:
        report = run_catalogue_entry("hot_term_storm", seed=0, num_peers=16)
        assert report.storms
        assert all(o.rcache_enabled for o in report.storms)
        assert sum(o.cache_hits for o in report.storms) > 0

    def test_regional_failure_dents_quality_then_recovers(self) -> None:
        report = run_catalogue_entry("regional_failure", seed=1, num_peers=16)
        by_label = {r.label: r for r in report.quality}
        assert by_label["during"].mean_precision <= by_label["before"].mean_precision
        assert by_label["after"].mean_precision >= 0.9 * by_label["before"].mean_precision

    def test_run_catalogue_selects_and_defaults(self) -> None:
        reports = run_catalogue(["flash_crowd"], seed=0, num_peers=16)
        assert list(reports) == ["flash_crowd"]
        with pytest.raises(KeyError):
            run_catalogue_entry("unknown", seed=0)

    def test_engine_configuration_follows_the_entry(self) -> None:
        cached = build_catalogue_engine(CATALOGUE["hot_term_storm"], seed=0)
        assert cached.system.config.result_cache_size > 0
        lossy = build_catalogue_engine(CATALOGUE["flaky_responders"], seed=0)
        assert lossy.system.ring.transport.active


class TestReportRecord:
    def test_record_shape(self) -> None:
        record = report_record(
            run_catalogue_entry("flash_crowd", seed=0, num_peers=16)
        )
        assert set(record) >= {
            "events",
            "skipped",
            "violations",
            "degraded",
            "final_quiescent",
            "quality",
            "storms",
        }
        assert set(record["quality"]) == {"before", "during", "after"}
        storms = record["storms"]
        assert storms["requests"] == storms["cache_hits"] + storms["cache_misses"]
