"""Tests for the runtime stress scenarios (thundering herd, slow-peer
stall) and their invariant catalogue."""

from __future__ import annotations

from repro.sim import (
    ConcurrencyScenarioReport,
    run_runtime_scenarios,
    slow_peer_stall,
    thundering_herd,
)


class TestThunderingHerd:
    def test_default_herd_upholds_every_invariant(self) -> None:
        report = thundering_herd()
        assert report.ok, report.violations
        assert report.ops == 200

    def test_backpressure_engages_under_overload(self) -> None:
        report = thundering_herd(num_clients=100, num_targets=1, queue_depth=4)
        assert report.ok, report.violations
        assert report.queue_drops > 0
        assert report.failed > 0  # some ops saw QUEUE_DROP receipts

    def test_no_drops_when_capacity_suffices(self) -> None:
        """A small herd against deep queues: the backpressure invariant
        is conditional, so a drop-free run is still clean."""
        report = thundering_herd(
            num_clients=4, num_targets=4, queue_depth=64, timeout_ms=1000.0
        )
        assert report.ok, report.violations
        assert report.queue_drops == 0
        assert report.served == 4

    def test_queue_bound_is_hard(self) -> None:
        report = thundering_herd(num_clients=300, num_targets=3, queue_depth=5)
        assert report.ok, report.violations
        assert report.max_queue_depth <= 5

    def test_seed_changes_fingerprint_not_verdict(self) -> None:
        a = thundering_herd(seed=1)
        b = thundering_herd(seed=2)
        assert a.ok and b.ok
        assert a.fingerprint != b.fingerprint


class TestSlowPeerStall:
    def test_default_stall_upholds_every_invariant(self) -> None:
        report = slow_peer_stall()
        assert report.ok, report.violations
        assert report.ops == 120

    def test_stall_is_visible_but_localized(self) -> None:
        report = slow_peer_stall(slow_factor=80.0)
        assert report.ok, report.violations
        # The slow peer forces real extra work: retries/timeouts or at
        # least a much longer makespan than the fast path alone.
        assert report.makespan_ms > 0

    def test_summary_readout(self) -> None:
        report = slow_peer_stall()
        text = report.summary()
        assert "slow-peer-stall" in text
        assert "ok" in text

    def test_violations_flip_ok(self) -> None:
        report = ConcurrencyScenarioReport(name="x")
        assert report.ok
        report.violations.append("boom")
        assert not report.ok
        assert "1 violations" in report.summary()


class TestRunAll:
    def test_runs_both_scenarios(self) -> None:
        reports = run_runtime_scenarios(seed=3)
        assert set(reports) == {"thundering-herd", "slow-peer-stall"}
        assert all(r.ok for r in reports.values()), {
            name: r.violations for name, r in reports.items()
        }
