"""The invariant checker must actually detect corrupted state.

Each test takes a healthy, quiescent deployment, injects one targeted
corruption directly into global state, and asserts the corresponding
invariant (and only its tier) reports it.  A checker that passes on
healthy states proves nothing unless it also fails on broken ones.
"""

from __future__ import annotations

import pytest

from repro.core.metadata import PostingEntry, QueryCache, TermSlot
from repro.sim import SimEvent, build_simulation, scenario


@pytest.fixture()
def engine():
    """A small deployment with everything published and healed."""
    eng = build_simulation(seed=13)
    eng.apply(SimEvent("publish", count=60))
    for kind in ("stabilize", "replicate", "maintain"):
        eng.apply(SimEvent(kind))
    assert eng.quiescent
    return eng


def violated(report, invariant: str) -> bool:
    return any(v.invariant == invariant for v in report.violations)


class TestHealthyState:
    def test_all_invariants_hold(self, engine) -> None:
        report = engine.check_now()
        assert report.ok, [str(v) for v in report.violations]
        assert set(report.checked) == {
            name for name, __ in engine.checker.CATALOGUE
        }

    def test_non_quiescent_check_skips_quiescent_tier(self, engine) -> None:
        report = engine.checker.check(quiescent=False)
        assert report.ok
        assert set(report.checked) == {
            name for name, q_only in engine.checker.CATALOGUE if not q_only
        }


class TestMembershipConsistency:
    def test_detects_zombie_node(self, engine) -> None:
        ring = engine.system.ring
        ring.node(ring.live_ids[0]).alive = False  # bypass ring bookkeeping
        report = engine.checker.check(quiescent=False)
        assert violated(report, "membership_consistency")


class TestPrimaryPlacement:
    def test_detects_misplaced_key(self, engine) -> None:
        ring = engine.system.ring
        node_id = ring.live_ids[0]
        # a key owned by the *successor*, planted on this node's store
        foreign_key = (node_id + 1) % ring.space.size
        assert ring.successor_of(foreign_key) != node_id
        ring.node(node_id).put(foreign_key, "stray")
        report = engine.checker.check(quiescent=False)
        assert violated(report, "primary_placement")


class TestQueryCacheBounds:
    def test_detects_overfull_cache(self, engine) -> None:
        ring = engine.system.ring
        slot = next(
            s
            for nid in ring.live_ids
            for s in ring.node(nid).store.values()
            if isinstance(s, TermSlot)
        )
        for i in range(3):
            slot.cache.add((f"t{i}",), query_hash=i)
        slot.cache.capacity = 1  # model an eviction bug: entries exceed bound
        report = engine.checker.check(quiescent=False)
        assert violated(report, "query_cache_bounds")


class TestTopologyMatchesOracle:
    def test_detects_wrong_successor(self, engine) -> None:
        ring = engine.system.ring
        node = ring.node(ring.live_ids[0])
        node.successor = ring.live_ids[0]  # self-loop: clearly wrong
        report = engine.checker.check(quiescent=True)
        assert violated(report, "topology_matches_oracle")

    def test_detects_stale_finger(self, engine) -> None:
        ring = engine.system.ring
        node = ring.node(ring.live_ids[0])
        node.fingers[0] = node.node_id if node.fingers[0] != node.node_id else ring.live_ids[1]
        report = engine.checker.check(quiescent=True)
        assert violated(report, "topology_matches_oracle")


class TestTermResolvability:
    def test_detects_lost_slot(self, engine) -> None:
        ring = engine.system.ring
        protocol = engine.system.protocol
        # drop one published term's slot from its responsible node
        owner = next(iter(engine.system.owners.values()))
        doc_id, state = next(iter(owner.shared.items()))
        term = state.index_terms[0]
        key = protocol.term_hash(term)
        holder = ring.node(ring.successor_of(key))
        holder.store.pop(key, None)
        holder.replicas.pop(key, None)
        report = engine.checker.check(quiescent=True)
        assert violated(report, "term_resolvability")
        assert violated(report, "posting_conservation")  # held 0 times


class TestOwnerAgreement:
    def test_detects_orphan_posting(self, engine) -> None:
        ring = engine.system.ring
        owner = next(iter(engine.system.owners.values()))
        doc_id = next(iter(owner.shared))
        slot = next(
            s
            for nid in ring.live_ids
            for s in ring.node(nid).store.values()
            if isinstance(s, TermSlot)
            and s.term not in owner.shared[doc_id].index_terms
        )
        slot.add_posting(
            PostingEntry(
                doc_id=doc_id, owner_peer=owner.node_id, raw_tf=1, doc_length=10
            )
        )
        report = engine.checker.check(quiescent=True)
        assert violated(report, "owner_agreement")


class TestPostingConservation:
    def test_detects_duplicated_posting(self, engine) -> None:
        ring = engine.system.ring
        protocol = engine.system.protocol
        owner = next(iter(engine.system.owners.values()))
        doc_id, state = next(iter(owner.shared.items()))
        term = state.index_terms[0]
        key = protocol.term_hash(term)
        primary = ring.node(ring.successor_of(key))
        # a second primary copy at some other node — the replica-promotion
        # double-count this invariant exists to catch
        other = next(nid for nid in ring.live_ids if nid != primary.node_id)
        clone = TermSlot(term=term, cache=QueryCache(4))
        clone.add_posting(primary.store[key].inverted[doc_id])
        ring.node(other).store[key] = clone
        report = engine.checker.check(quiescent=True)
        assert violated(report, "posting_conservation")


class TestSlotVersionMonotone:
    def test_detects_version_regression(self, engine) -> None:
        # First check records the watermarks...
        assert engine.check_now().ok
        ring = engine.system.ring
        slot = next(
            s
            for nid in ring.live_ids
            for s in ring.node(nid).store.values()
            if isinstance(s, TermSlot) and s.version > 0
        )
        # ...then a primary slot's history runs backwards in place — the
        # recycled-version bug cache validation cannot survive.
        slot._store._version -= 1
        report = engine.checker.check(quiescent=False)
        assert violated(report, "slot_version_monotone")

    def test_slot_rehoming_resets_the_watermark(self, engine) -> None:
        assert engine.check_now().ok
        ring = engine.system.ring
        node_id = next(
            nid
            for nid in ring.live_ids
            for s in ring.node(nid).store.values()
            if isinstance(s, TermSlot) and s.version > 1
        )
        node = ring.node(node_id)
        key, slot = next(
            (k, s)
            for k, s in node.store.items()
            if isinstance(s, TermSlot) and s.version > 1
        )
        # The slot leaves its home and returns with a *lower* version —
        # legal: migration restarts history at the (node, key) pair.
        del node.store[key]
        assert engine.checker.check(quiescent=False).ok
        slot._store._version = 1
        node.store[key] = slot
        report = engine.checker.check(quiescent=False)
        assert not violated(report, "slot_version_monotone")


class TestStormObservationInvariants:
    @staticmethod
    def _observation(**overrides):
        from repro.sim import StormObservation

        base = dict(
            kind="storm",
            queries=40,
            distinct_queries=4,
            cache_hits=36,
            cache_misses=4,
            postings_retrieved=40,
            max_single_postings=10,
            failures=0,
            rcache_enabled=True,
            disrupted=False,
        )
        base.update(overrides)
        return StormObservation(**base)

    def test_detects_ineffective_cache(self, engine) -> None:
        engine.stress_log.append(
            self._observation(cache_hits=10, cache_misses=30)
        )
        report = engine.checker.check(quiescent=False)
        assert violated(report, "storm_cache_effective")

    def test_detects_unbounded_hot_load(self, engine) -> None:
        engine.stress_log.append(self._observation(postings_retrieved=400))
        report = engine.checker.check(quiescent=False)
        assert violated(report, "hot_load_bounded")

    def test_disrupted_observations_are_exempt(self, engine) -> None:
        engine.stress_log.append(
            self._observation(
                cache_misses=30, postings_retrieved=400, disrupted=True
            )
        )
        report = engine.checker.check(quiescent=False)
        assert report.ok

    def test_cache_off_observations_are_exempt(self, engine) -> None:
        engine.stress_log.append(
            self._observation(
                cache_hits=0, cache_misses=40, rcache_enabled=False
            )
        )
        report = engine.checker.check(quiescent=False)
        assert report.ok


class TestResultCacheCoherent:
    def test_detects_poisoned_servable_entry(self) -> None:
        eng = build_simulation(seed=13, result_cache_size=32)
        eng.apply(SimEvent("publish", count=60))
        eng.apply(SimEvent("learn"))
        for kind in ("stabilize", "replicate", "maintain"):
            eng.apply(SimEvent(kind))
        assert eng.quiescent
        for query in eng.queries[:4]:
            eng.system.search(query, cache=True)
        assert eng.check_now().ok
        protocol = eng.system.protocol
        entry = next(
            entry
            for cache in protocol._result_caches.values()
            for __, entry in cache.entries()
            if entry.ranked and not entry.failed_terms
        )
        # Corrupt the cached ranking in place: still servable (versions
        # match, no failed terms) but no longer the fresh answer.
        entry.ranked = list(reversed(entry.ranked))
        report = eng.check_now()
        assert violated(report, "result_cache_coherent")
