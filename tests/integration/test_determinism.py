"""Determinism regression: seeded runs are byte-for-byte repeatable.

Two end-to-end runs with identical seeds — same corpus, same lossy
transport seed, same churn schedule — must produce identical rankings
*and* identical transport-trace rollups.  The check runs both with the
PR-2 performance paths enabled (route cache, incremental repair, batched
fetch) and with them disabled, so neither mode can quietly grow a
hidden source of nondeterminism (dict order, unseeded RNG, wall-clock).
"""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, NetworkConfig, SpriteConfig
from repro.core.system import SpriteSystem
from repro.corpus.synthetic import SyntheticTrecCorpus
from repro.dht.churn import ChurnModel
from repro.dht.replication import ReplicationManager
from repro.net import build_transport

SPRITE_CONFIG = SpriteConfig(
    initial_terms=3,
    terms_per_iteration=3,
    learning_iterations=2,
    max_index_terms=9,
    query_cache_size=128,
    assumed_corpus_size=1000,
    top_k_answers=10,
)

NETWORK_CONFIG = NetworkConfig(
    transport="lossy",
    latency_model="constant",
    latency_ms=40.0,
    drop_probability=0.05,
    keep_trace=True,
    seed=5,
)


@pytest.fixture(scope="module")
def workload(micro_corpus_config):
    corpus, queryset, __ = SyntheticTrecCorpus(micro_corpus_config).build()
    return corpus, list(queryset)


def _run(corpus, queries, optimized: bool, churn: bool):
    """One full seeded run; returns (rankings tuple, trace rollup)."""
    transport = build_transport(NETWORK_CONFIG)
    system = SpriteSystem(
        corpus,
        sprite_config=SPRITE_CONFIG,
        chord_config=ChordConfig(
            num_peers=16,
            successor_list_size=4,
            seed=11,
            route_cache_size=65536 if optimized else 0,
            incremental_repair=optimized,
        ),
        transport=transport,
    )
    system.processor.batch_fetch = optimized
    system.share_corpus()
    half = len(queries) // 2
    system.register_queries(queries[:half])
    replication = ReplicationManager(system.ring)
    replication.replicate_round()
    churn_model = ChurnModel(system.ring, seed=3)
    for __ in range(SPRITE_CONFIG.learning_iterations):
        if churn:
            churn_model.fail_random()
            replication.recover_from_failures()
            replication.replicate_round()
        system.run_learning_iteration()
    rankings = tuple(
        (
            query.query_id,
            tuple((entry.doc_id, entry.score) for entry in system.search(query, cache=False)),
        )
        for query in queries[half:]
    )
    return rankings, transport.trace.rollup()


@pytest.mark.parametrize("optimized", [False, True], ids=["direct", "perf"])
@pytest.mark.parametrize("churn", [False, True], ids=["stable", "churn"])
def test_seeded_runs_are_identical(workload, optimized, churn) -> None:
    corpus, queries = workload
    first = _run(corpus, queries, optimized=optimized, churn=churn)
    second = _run(corpus, queries, optimized=optimized, churn=churn)
    assert first[0] == second[0], "rankings diverged between identical seeded runs"
    assert first[1] == second[1], "transport trace rollups diverged"


def test_perf_paths_do_not_change_trace_determinism(workload) -> None:
    """The optimized and direct modes each have a stable trace rollup;
    re-running either mode reproduces its own rollup exactly (the two
    modes legitimately differ from each other — the route cache elides
    hops)."""
    corpus, queries = workload
    direct = _run(corpus, queries, optimized=False, churn=False)
    perf = _run(corpus, queries, optimized=True, churn=False)
    # same retrieval semantics on a stable ring (the differential
    # oracle's bit-identity claim, restated at integration level)
    assert direct[0] == perf[0]
    assert perf[1].messages <= direct[1].messages
