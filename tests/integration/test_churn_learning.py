"""Learning convergence under churn (paper Sections 5-7 combined).

SPRITE's learning loop and the Section 7 repair machinery must compose:
interleaving churn rounds (crash + join), replication, recovery, and
maintenance with the learning iterations should degrade retrieval
effectiveness only boundedly relative to the same system trained on a
churn-free ring.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ChordConfig,
    ExperimentConfig,
    QueryGenConfig,
    SpriteConfig,
)
from repro.core.maintenance import MaintenanceDaemon
from repro.core.system import SpriteSystem
from repro.dht.churn import ChurnModel
from repro.dht.replication import ReplicationManager
from repro.evaluation import build_environment
from repro.evaluation.metrics import relative_to_centralized

SPRITE_CONFIG = SpriteConfig(
    initial_terms=3,
    terms_per_iteration=3,
    learning_iterations=3,
    max_index_terms=9,
    query_cache_size=128,
    assumed_corpus_size=1000,
    top_k_answers=10,
)


@pytest.fixture(scope="module")
def micro_env(micro_corpus_config):
    config = ExperimentConfig(
        corpus=micro_corpus_config,
        querygen=QueryGenConfig(queries_per_original=4, ranked_list_depth=60),
        sprite=SPRITE_CONFIG,
        chord=ChordConfig(num_peers=20, successor_list_size=4, seed=404),
    )
    return build_environment(config)


def _trained_precision(env, churn: bool) -> float:
    system = SpriteSystem(
        env.corpus,
        sprite_config=SPRITE_CONFIG,
        chord_config=ChordConfig(num_peers=20, successor_list_size=4, seed=404),
    )
    system.share_corpus()
    system.register_queries(env.train)
    replication = ReplicationManager(system.ring)
    maintenance = MaintenanceDaemon(system)
    churn_model = ChurnModel(system.ring, seed=8422)
    replication.replicate_round()

    for __ in range(SPRITE_CONFIG.learning_iterations):
        if churn:
            # one crash + one join between learning iterations, then the
            # full repair pipeline: stabilize+promote, re-replicate, heal
            churn_model.fail_random()
            churn_model.join_one()
            replication.recover_from_failures()
            replication.replicate_round()
            maintenance.heal_until_stable()
        system.run_learning_iteration()

    rankings = {
        q.query_id: system.search(q, cache=False) for q in env.test
    }
    result = relative_to_centralized(
        rankings,
        env.centralized_rankings(env.test),
        env.test.qrels,
        k=10,
    )
    return result.precision_ratio


def test_learning_survives_churn_with_bounded_degradation(micro_env) -> None:
    baseline = _trained_precision(micro_env, churn=False)
    churned = _trained_precision(micro_env, churn=True)
    assert baseline > 0.0
    assert churned > 0.0, "churn destroyed retrieval entirely"
    # bounded degradation: repair keeps the churned system within 2x of
    # the churn-free run (empirically they are nearly equal; 0.5 guards
    # against environmental drift without flaking)
    assert churned >= 0.5 * baseline, (
        f"churned precision ratio {churned:.3f} degraded more than 2x "
        f"vs churn-free {baseline:.3f}"
    )


def test_index_stays_consistent_after_churned_training(micro_env) -> None:
    """After the churned training flow, the quiescent invariant
    catalogue holds — the harness's invariants applied to a realistic
    workload rather than a generated schedule."""
    from repro.sim import InvariantChecker

    env = micro_env
    system = SpriteSystem(
        env.corpus,
        sprite_config=SPRITE_CONFIG,
        chord_config=ChordConfig(num_peers=20, successor_list_size=4, seed=77),
    )
    system.share_corpus()
    system.register_queries(env.train)
    replication = ReplicationManager(system.ring)
    maintenance = MaintenanceDaemon(system)
    churn_model = ChurnModel(system.ring, seed=5151)
    replication.replicate_round()
    for __ in range(2):
        churn_model.fail_random()
        replication.recover_from_failures()
        replication.replicate_round()
        maintenance.heal_until_stable()
        system.run_learning_iteration()
    report = InvariantChecker(system).check(quiescent=True)
    assert report.ok, [str(v) for v in report.violations]
