"""Integration tests for the operational machinery working together:
maintenance healing after churn, load balancing on a live system, and
Bloom search over the learned distributed index."""

from __future__ import annotations

import pytest

from repro.core import BloomQueryProcessor, MaintenanceDaemon
from repro.dht import ReplicationManager
from repro.evaluation.experiments import build_trained_sprite
from repro.extensions import HotTermAdvisor, RangeSharingBalancer


@pytest.fixture()
def trained(small_env):
    return build_trained_sprite(small_env)


class TestMaintenanceAfterChurn:
    def test_heal_restores_live_owner_documents(self, small_env, trained) -> None:
        """Crash several slot-holding peers (no replication), stabilize,
        heal via maintenance.  Every document whose *owner survived* must
        be retrievable exactly as before; only documents owned by the
        crashed peers may drop out (their owner — and hence the file
        itself — is gone, so unfindability is correct, not a bug)."""
        queries = small_env.test.queries[:15]
        baseline = {
            q.query_id: trained.search(q, top_k=500, cache=False).id_set()
            for q in queries
        }
        victims = [
            n for n in trained.ring.live_ids if trained.ring.node(n).store
        ][:3]
        dead_owner_docs = {
            doc_id
            for victim in victims
            if victim in trained.owners
            for doc_id in trained.owners[victim].shared
        }
        for victim in victims:
            trained.ring.fail(victim)
        trained.ring.stabilize()

        MaintenanceDaemon(trained).heal_until_stable(max_rounds=4)

        for query in queries:
            after = trained.search(query, top_k=500, cache=False).id_set()
            missing = baseline[query.query_id] - after
            assert missing <= dead_owner_docs, (
                f"{query.query_id}: lost live-owner documents {missing - dead_owner_docs}"
            )
            assert after <= baseline[query.query_id]

    def test_maintenance_and_replication_compose(self, small_env, trained) -> None:
        """With replication, recovery promotes replicas; a maintenance
        round afterwards finds (almost) nothing left to republish."""
        manager = ReplicationManager(trained.ring, replication_factor=3)
        manager.replicate_round()
        victims = [
            n for n in trained.ring.live_ids if trained.ring.node(n).store
        ][:2]
        for victim in victims:
            trained.ring.fail(victim)
        manager.recover_from_failures()

        report = MaintenanceDaemon(trained).run_round()
        # Replication already restored the slots; maintenance republishes
        # at most a handful of stragglers (replicas staler than the last
        # learning iteration).
        assert report.postings_republished <= report.postings_checked * 0.05


class TestLoadBalancingOnLiveSystem:
    def test_range_sharing_preserves_retrieval(self, small_env, trained) -> None:
        baseline = trained.search(small_env.test.queries[0], cache=False).ids()
        RangeSharingBalancer(trained.ring).rebalance(max_steps=3)
        after = trained.search(small_env.test.queries[0], cache=False).ids()
        assert after == baseline

    def test_hot_term_advice_on_trained_system(self, small_env, trained) -> None:
        advisor = HotTermAdvisor(trained, df_threshold=len(small_env.corpus) // 3)
        hot_count, switches = advisor.rebalance()
        if hot_count:
            assert switches > 0
        # System still answers after any rebalancing.
        ranked = trained.search(small_env.test.queries[1], cache=False)
        assert isinstance(ranked.ids(), list)


class TestBloomOverTrainedIndex:
    def test_bloom_matches_exact_conjunction(self, small_env, trained) -> None:
        processor = BloomQueryProcessor(
            trained.protocol,
            assumed_corpus_size=trained.config.assumed_corpus_size,
        )
        multi = [q for q in small_env.test.queries if len(q.terms) >= 2][:10]
        for query in multi:
            issuer = trained._issuer_for(query)
            ranked, execution = processor.execute(issuer, query)
            exact = None
            for term in query.terms:
                postings, df = trained.protocol.fetch_postings(issuer, term)
                if df == 0:
                    continue
                ids = {p.doc_id for p in postings}
                exact = ids if exact is None else exact & ids
            assert set(ranked.ids()) == (exact or set())
            assert execution.naive_bytes >= execution.bytes_shipped or (
                execution.candidates_after_chain > 0
            )
