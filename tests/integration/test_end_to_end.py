"""End-to-end integration tests: the full paper pipeline on the small
environment, plus cross-cutting behaviours (learning beats static,
churn with replication, expansion over the distributed system)."""

from __future__ import annotations

import pytest

from repro.config import SpriteConfig
from repro.core import ESearchSystem, SpriteSystem
from repro.corpus import Query
from repro.dht import ReplicationManager
from repro.evaluation import (
    build_esearch,
    build_trained_sprite,
    relative_to_centralized,
)
from repro.extensions import LocalContextAnalyzer


@pytest.fixture(scope="module")
def trained(small_env):
    return build_trained_sprite(small_env)


@pytest.fixture(scope="module")
def static(small_env):
    return build_esearch(small_env)


class TestFullPipeline:
    def test_sprite_answers_test_queries(self, small_env, trained) -> None:
        answered = 0
        for query in small_env.test.queries[:20]:
            ranked = trained.search(query, cache=False)
            if len(ranked) > 0:
                answered += 1
        assert answered >= 15

    def test_effectiveness_close_to_centralized(self, small_env, trained) -> None:
        k = small_env.config.sprite.top_k_answers
        queries = list(small_env.test.queries)
        sprite_rankings = {
            q.query_id: trained.search(q, top_k=k, cache=False) for q in queries
        }
        central = small_env.centralized_rankings(queries)
        rel = relative_to_centralized(sprite_rankings, central, small_env.test.qrels, k)
        assert rel.precision_ratio > 0.6
        assert rel.recall_ratio > 0.6

    def test_sprite_at_least_matches_esearch(self, small_env, trained, static) -> None:
        k = small_env.config.sprite.top_k_answers
        queries = list(small_env.test.queries)
        central = small_env.centralized_rankings(queries)
        sprite_rel = relative_to_centralized(
            {q.query_id: trained.search(q, top_k=k, cache=False) for q in queries},
            central,
            small_env.test.qrels,
            k,
        )
        esearch_rel = relative_to_centralized(
            {q.query_id: static.search(q, top_k=k, cache=False) for q in queries},
            central,
            small_env.test.qrels,
            k,
        )
        assert sprite_rel.precision_ratio >= esearch_rel.precision_ratio - 0.02

    def test_index_sizes_within_budget(self, small_env, trained) -> None:
        budget = small_env.config.sprite.total_terms_after_learning
        for size in trained.learning_summary().values():
            assert size <= budget


class TestLearnedTermsAreQueried:
    def test_learned_terms_overlap_training_queries(self, small_env, trained) -> None:
        """After learning, documents' index terms should include terms
        from training queries that matched them — the whole point."""
        training_terms = set()
        for q in small_env.train.queries:
            training_terms |= set(q.terms)
        overlap_docs = 0
        sampled = small_env.corpus.doc_ids[:50]
        for doc_id in sampled:
            if set(trained.index_terms(doc_id)) & training_terms:
                overlap_docs += 1
        assert overlap_docs > len(sampled) * 0.4


class TestChurnResilience:
    def test_replication_preserves_retrieval(self, small_env) -> None:
        """Kill 20% of peers; with successor replication + recovery the
        distributed index keeps answering queries."""
        system = build_trained_sprite(small_env)
        query = small_env.test.queries[0]
        before = system.search(query, cache=False).ids()

        manager = ReplicationManager(system.ring, replication_factor=3)
        manager.replicate_round()
        victims = list(system.ring.live_ids)[:: 5]   # every 5th peer
        for victim in victims:
            system.ring.fail(victim)
        manager.recover_from_failures()

        after = system.search(query, cache=False).ids()
        assert after == before

    def test_failures_without_replication_lose_terms(self, small_env) -> None:
        system = build_trained_sprite(small_env)
        # Fail half the ring with NO replication: some test queries must
        # degrade (weaker results or failures handled by term dropping).
        for victim in list(system.ring.live_ids)[::2]:
            system.ring.fail(victim)
        system.ring.stabilize()
        degraded = 0
        for query in small_env.test.queries[:20]:
            ranked, execution = system.execute(query, cache=False)
            if execution.postings_retrieved == 0 or len(ranked) == 0:
                degraded += 1
        assert degraded > 0


class TestExpansionOverDistributedSystem:
    def test_lca_expansion_works_on_sprite(self, small_env, trained) -> None:
        analyzer = LocalContextAnalyzer(
            small_env.corpus, context_size=5, expansion_terms=2
        )
        query = small_env.test.queries[0]
        expanded = analyzer.expand(query, lambda q: trained.search(q, cache=False))
        assert set(query.terms) <= set(expanded.terms)


class TestCrossSystemConsistency:
    def test_all_systems_agree_on_fully_indexed_term(self, small_env) -> None:
        """For a term every system indexed, ranked membership must agree
        between SPRITE and eSearch (both see the same postings)."""
        sprite = SpriteSystem(
            small_env.corpus,
            sprite_config=SpriteConfig(
                initial_terms=5,
                terms_per_iteration=0,
                learning_iterations=0,
                max_index_terms=5,
            ),
            chord_config=small_env.config.chord,
        )
        sprite.share_corpus()
        esearch = ESearchSystem(small_env.corpus, chord_config=small_env.config.chord)
        esearch.share_corpus()
        doc = small_env.corpus.get(small_env.corpus.doc_ids[0])
        term = doc.top_terms(1)[0]
        q = Query("probe", (term,))
        sprite_ids = set(sprite.search(q, top_k=100, cache=False).ids())
        esearch_ids = set(esearch.search(q, top_k=100, cache=False).ids())
        # eSearch indexes 20 terms ⊇ SPRITE's 5 → its posting list for a
        # top-frequency term is a superset.
        assert sprite_ids <= esearch_ids
