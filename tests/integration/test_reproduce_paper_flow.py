"""The complete Section 6.2 flow as one integration test, with the
paper's qualitative conclusions asserted on the small environment.

This mirrors what `examples/reproduce_paper.py --small` runs, pinned as
a regression test so the reproduction's conclusions cannot silently
drift while refactoring.
"""

from __future__ import annotations

import pytest

from repro.evaluation import run_cost_comparison, run_fig4a, run_fig4b, run_fig4c


@pytest.fixture(scope="module")
def fig4a(small_env):
    return run_fig4a(small_env, answer_counts=(5, 10, 20, 30))


@pytest.fixture(scope="module")
def fig4b(small_env):
    return run_fig4b(small_env, term_counts=(5, 10, 20), streams=("w/o-r",))


class TestHeadlineConclusions:
    def test_sprite_within_reach_of_centralized(self, fig4a) -> None:
        """Conclusion 2: near-centralized quality from a tiny index."""
        for row in fig4a:
            assert row.sprite.precision_ratio > 0.7

    def test_selective_beats_static_on_average(self, fig4a) -> None:
        """Conclusion 1: SPRITE ≥ eSearch averaged over the sweep."""
        sprite_mean = sum(r.sprite.precision_ratio for r in fig4a) / len(fig4a)
        esearch_mean = sum(r.esearch.precision_ratio for r in fig4a) / len(fig4a)
        assert sprite_mean >= esearch_mean - 1e-9

    def test_fig4b_no_learning_baseline_is_exact(self, fig4b) -> None:
        t5 = next(r for r in fig4b if r.index_terms == 5)
        assert t5.sprite.precision_ratio == pytest.approx(
            t5.esearch.precision_ratio, abs=1e-12
        )

    def test_fig4b_budget_monotone_for_sprite(self, fig4b) -> None:
        ratios = [
            r.sprite.precision_ratio
            for r in sorted(fig4b, key=lambda r: r.index_terms)
        ]
        assert ratios[-1] > ratios[0]

    def test_fig4c_adaptation(self, small_env) -> None:
        rows = run_fig4c(small_env, iterations=6, switch_at=4, max_terms=15)
        # After re-learning on group B, SPRITE must improve over its
        # first-contact performance on B.
        first_b = rows[3].sprite.precision_ratio
        settled_b = rows[5].sprite.precision_ratio
        assert settled_b >= first_b - 0.02

    def test_cost_ordering(self, small_env) -> None:
        rows = {r.strategy: r for r in run_cost_comparison(small_env)}
        assert (
            rows["sprite"].publish_messages
            < rows["index-everything"].publish_messages
        )
        assert (
            rows["esearch"].publish_messages
            < rows["index-everything"].publish_messages
        )
