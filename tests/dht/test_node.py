"""Tests for ChordNode routing state and storage."""

from __future__ import annotations

from repro.dht.hashing import IdSpace
from repro.dht.node import ChordNode


def make_node(node_id: int = 100, bits: int = 8) -> ChordNode:
    return ChordNode(node_id, IdSpace(bits))


class TestOwnership:
    def test_owns_interval(self) -> None:
        node = make_node(100)
        node.predecessor = 50
        assert node.owns(75)
        assert node.owns(100)
        assert not node.owns(50)
        assert not node.owns(101)

    def test_owns_wrapping_interval(self) -> None:
        node = make_node(10)
        node.predecessor = 200
        assert node.owns(250)
        assert node.owns(5)
        assert node.owns(10)
        assert not node.owns(100)

    def test_owns_everything_without_predecessor(self) -> None:
        node = make_node(100)
        node.predecessor = None
        assert node.owns(0)
        assert node.owns(255)


class TestClosestPrecedingFinger:
    def test_scans_far_to_near(self) -> None:
        node = make_node(0)
        node.fingers = [1, 2, 4, 8, 16, 32, 64, 128]
        # Key 100: the farthest finger strictly inside (0, 100) is 64.
        assert node.closest_preceding_finger(100, lambda n: True) == 64

    def test_skips_unusable_fingers(self) -> None:
        node = make_node(0)
        node.fingers = [1, 2, 4, 8, 16, 32, 64, 128]
        assert node.closest_preceding_finger(100, lambda n: n != 64) == 32

    def test_returns_self_when_no_finger_precedes(self) -> None:
        node = make_node(0)
        node.fingers = [200] * 8
        assert node.closest_preceding_finger(100, lambda n: True) == 0

    def test_ignores_self_entries(self) -> None:
        node = make_node(0)
        node.fingers = [0] * 8
        assert node.closest_preceding_finger(100, lambda n: True) == 0


class TestFirstLiveSuccessor:
    def test_prefers_direct_successor(self) -> None:
        node = make_node(0)
        node.successor = 10
        node.successor_list = [10, 20, 30]
        assert node.first_live_successor(lambda n: True) == 10

    def test_falls_back_to_list(self) -> None:
        node = make_node(0)
        node.successor = 10
        node.successor_list = [10, 20, 30]
        assert node.first_live_successor(lambda n: n != 10) == 20

    def test_none_when_all_dead(self) -> None:
        node = make_node(0)
        node.successor = 10
        node.successor_list = [10, 20]
        assert node.first_live_successor(lambda n: False) is None


class TestStorage:
    def test_put_get_drop(self) -> None:
        node = make_node()
        node.put(42, "value")
        assert node.get(42) == "value"
        assert node.drop(42) == "value"
        assert node.get(42) is None

    def test_drop_missing_returns_none(self) -> None:
        assert make_node().drop(1) is None

    def test_get_or_replica_prefers_primary(self) -> None:
        node = make_node()
        node.put(1, "primary")
        node.replicas[1] = "replica"
        assert node.get_or_replica(1) == "primary"

    def test_get_or_replica_falls_back(self) -> None:
        node = make_node()
        node.replicas[1] = "replica"
        assert node.get_or_replica(1) == "replica"
        assert node.get(1) is None
