"""Stateful property testing of the Chord ring.

A hypothesis rule-based machine drives a ring through arbitrary
interleavings of joins, graceful leaves, crash failures, stabilization,
and data placement, checking after every step that the core invariants
hold:

* lookups from any live node agree with the sorted-membership oracle
  (after stabilization);
* successor/predecessor pointers form a single cycle over live nodes;
* no key placed on the ring is lost by joins or graceful leaves
  (crashes may lose keys — that is what replication is for, so the
  machine only asserts conservation on its non-crash timeline).
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.config import ChordConfig
from repro.dht import ChordRing


class ChordMachine(RuleBasedStateMachine):
    """Joins/leaves/placements with continuous invariant checking."""

    def __init__(self) -> None:
        super().__init__()
        self.ring: ChordRing = None  # type: ignore[assignment]
        self.placed: dict = {}
        self.rng = random.Random(0xC0FFEE)

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed: int) -> None:
        self.ring = ChordRing(
            ChordConfig(num_peers=8, id_bits=16, successor_list_size=3, seed=seed)
        )

    # -- actions ------------------------------------------------------------

    @rule(name=st.integers(min_value=0, max_value=10**6))
    def join(self, name: int) -> None:
        try:
            self.ring.join(name=f"sm-{name}")
        except Exception:
            pass  # duplicate id after probing — acceptable no-op

    @rule()
    @precondition(lambda self: self.ring is not None and self.ring.num_live > 2)
    def leave_random(self) -> None:
        victim = self.ring.random_live_id(self.rng)
        self.ring.leave(victim)

    @rule(key=st.integers(min_value=0, max_value=2**16 - 1))
    def place_key(self, key: int) -> None:
        value = f"v{key}"
        self.ring.place(key, value)
        self.placed[key] = value

    @rule()
    def stabilize(self) -> None:
        self.ring.stabilize()

    # -- invariants -----------------------------------------------------------

    @invariant()
    def lookups_match_oracle(self) -> None:
        if self.ring is None or self.ring.num_live == 0:
            return
        key = self.rng.randrange(self.ring.space.size)
        start = self.ring.random_live_id(self.rng)
        result = self.ring.lookup(start, key, record=False)
        assert result.node_id == self.ring.successor_of(key)

    @invariant()
    def successor_cycle_covers_all_live_nodes(self) -> None:
        if self.ring is None or self.ring.num_live == 0:
            return
        start = self.ring.live_ids[0]
        current = start
        seen = set()
        for __ in range(self.ring.num_live):
            seen.add(current)
            current = self.ring.node(current).successor
        assert current == start
        assert seen == set(self.ring.live_ids)

    @invariant()
    def placed_keys_never_lost(self) -> None:
        if self.ring is None:
            return
        for key, value in self.placed.items():
            holder = self.ring.responsible_node(key)
            assert holder.get(key) == value, f"key {key} lost"


ChordMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestChordStateful = ChordMachine.TestCase
