"""Tests for network-cost accounting."""

from __future__ import annotations

from repro.dht.messages import Message, MessageKind
from repro.dht.stats import KindStats, NetworkStats


def msg(kind: MessageKind = MessageKind.SEARCH_TERM, size: int = 10, hops: int = 2) -> Message:
    return Message(kind, src=1, dst=2, size_bytes=size, hops=hops)


class TestRecording:
    def test_totals(self) -> None:
        stats = NetworkStats()
        stats.record(msg(size=10, hops=2))
        stats.record(msg(size=5, hops=1))
        assert stats.total_messages == 2
        assert stats.total_bytes == 15
        assert stats.total_hops == 3

    def test_per_kind_isolation(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.SEARCH_TERM))
        stats.record(msg(MessageKind.PUBLISH_TERM))
        assert stats.kind(MessageKind.SEARCH_TERM).messages == 1
        assert stats.kind(MessageKind.PUBLISH_TERM).messages == 1
        assert stats.kind(MessageKind.REPLICATE).messages == 0

    def test_unknown_kind_returns_zeros(self) -> None:
        empty = NetworkStats().kind(MessageKind.HEARTBEAT)
        assert (empty.messages, empty.bytes, empty.hops) == (0, 0, 0)


class TestLookups:
    def test_lookup_hop_tracking(self) -> None:
        stats = NetworkStats()
        stats.record_lookup(3)
        stats.record_lookup(5)
        assert stats.lookup_hop_samples == [3, 5]
        assert stats.mean_lookup_hops == 4.0

    def test_mean_with_no_lookups(self) -> None:
        assert NetworkStats().mean_lookup_hops == 0.0

    def test_lookup_counted_as_messages(self) -> None:
        stats = NetworkStats()
        stats.record_lookup(4)
        assert stats.kind(MessageKind.LOOKUP).messages == 1
        assert stats.kind(MessageKind.LOOKUP).hops == 4


class TestSnapshots:
    def test_delta_since(self) -> None:
        stats = NetworkStats()
        stats.record(msg(size=10, hops=1))
        snap = stats.snapshot()
        stats.record(msg(size=7, hops=2))
        delta = stats.delta_since(snap)
        assert delta[MessageKind.SEARCH_TERM].messages == 1
        assert delta[MessageKind.SEARCH_TERM].bytes == 7
        assert delta[MessageKind.SEARCH_TERM].hops == 2

    def test_delta_empty_when_nothing_happened(self) -> None:
        stats = NetworkStats()
        stats.record(msg())
        snap = stats.snapshot()
        assert stats.delta_since(snap) == {}

    def test_snapshot_is_isolated_copy(self) -> None:
        stats = NetworkStats()
        stats.record(msg())
        snap = stats.snapshot()
        stats.record(msg())
        assert snap[MessageKind.SEARCH_TERM].messages == 1


class TestReset:
    def test_reset_clears_everything(self) -> None:
        stats = NetworkStats()
        stats.record(msg())
        stats.record_lookup(2)
        stats.reset()
        assert stats.total_messages == 0
        assert stats.lookup_hop_samples == []


class TestSummary:
    def test_summary_structure(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.PUBLISH_TERM, size=11, hops=3))
        summary = stats.summary()
        assert summary["publish_term"] == {"messages": 1, "bytes": 11, "hops": 3}


class TestKindStats:
    def test_merge(self) -> None:
        merged = KindStats(1, 10, 2).merged_with(KindStats(2, 20, 3))
        assert (merged.messages, merged.bytes, merged.hops) == (3, 30, 5)

    def test_merge_with_zero_is_identity(self) -> None:
        base = KindStats(4, 40, 8)
        merged = base.merged_with(KindStats())
        assert merged == base

    def test_merge_is_commutative(self) -> None:
        a, b = KindStats(1, 2, 3), KindStats(10, 20, 30)
        assert a.merged_with(b) == b.merged_with(a)

    def test_merge_returns_new_object(self) -> None:
        a, b = KindStats(1, 2, 3), KindStats(1, 1, 1)
        merged = a.merged_with(b)
        assert merged is not a and merged is not b
        assert (a.messages, b.messages) == (1, 1)  # inputs untouched

    def test_record_accumulates(self) -> None:
        stats = KindStats()
        stats.record(msg(size=10, hops=2))
        stats.record(msg(size=5, hops=1))
        assert (stats.messages, stats.bytes, stats.hops) == (2, 15, 3)


class TestPerKindBreakdown:
    """The per-kind breakdown must always reconcile with the totals."""

    def test_totals_equal_sum_over_kinds(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.SEARCH_TERM, size=10, hops=2))
        stats.record(msg(MessageKind.SEARCH_TERM, size=4, hops=1))
        stats.record(msg(MessageKind.PUBLISH_TERM, size=32, hops=3))
        stats.record(msg(MessageKind.POSTINGS, size=100, hops=1))
        summary = stats.summary()
        assert stats.total_messages == sum(s["messages"] for s in summary.values())
        assert stats.total_bytes == sum(s["bytes"] for s in summary.values())
        assert stats.total_hops == sum(s["hops"] for s in summary.values())

    def test_breakdown_reconciles_after_lookups_too(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.POLL_QUERIES, size=8, hops=2))
        stats.record_lookup(5)
        assert stats.total_messages == 2
        assert stats.total_hops == 7
        assert stats.kind(MessageKind.LOOKUP).bytes == 0

    def test_summary_sorted_by_kind_value(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.SEARCH_TERM))
        stats.record(msg(MessageKind.HEARTBEAT))
        stats.record(msg(MessageKind.PUBLISH_TERM))
        assert list(stats.summary()) == sorted(stats.summary())

    def test_merged_snapshot_matches_live_totals(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.SEARCH_TERM, size=10, hops=1))
        snap = stats.snapshot()
        stats.record(msg(MessageKind.SEARCH_TERM, size=7, hops=2))
        delta = stats.delta_since(snap)
        merged = snap[MessageKind.SEARCH_TERM].merged_with(
            delta[MessageKind.SEARCH_TERM]
        )
        assert merged == stats.kind(MessageKind.SEARCH_TERM)


class TestCategorySummary:
    def test_folds_kinds_into_categories(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.PUBLISH_TERM, size=10, hops=1))
        stats.record(msg(MessageKind.PUBLISH_BATCH, size=40, hops=2))
        stats.record(msg(MessageKind.POLL_BATCH, size=30, hops=1))
        stats.record(msg(MessageKind.SEARCH_TERM, size=20, hops=3))
        stats.record(msg(MessageKind.HEARTBEAT, size=5, hops=0))
        summary = stats.category_summary()
        assert set(summary) == {"write", "query", "maintenance"}
        assert summary["write"]["messages"] == 3
        assert summary["write"]["bytes"] == 80
        assert summary["query"]["messages"] == 1
        assert summary["maintenance"]["messages"] == 1

    def test_only_categories_with_traffic_appear(self) -> None:
        stats = NetworkStats()
        assert stats.category_summary() == {}
        stats.record(msg(MessageKind.LOOKUP, size=1, hops=1))
        assert list(stats.category_summary()) == ["routing"]

    def test_category_totals_reconcile_with_kind_totals(self) -> None:
        stats = NetworkStats()
        for kind in (
            MessageKind.PUBLISH_BATCH,
            MessageKind.UNPUBLISH_BATCH,
            MessageKind.POSTINGS,
            MessageKind.REPLICATE,
            MessageKind.LOOKUP,
        ):
            stats.record(msg(kind, size=10, hops=2))
        by_category = stats.category_summary()
        assert (
            sum(entry["messages"] for entry in by_category.values())
            == stats.total_messages
        )
        assert (
            sum(entry["bytes"] for entry in by_category.values())
            == stats.total_bytes
        )
