"""Tests for network-cost accounting."""

from __future__ import annotations

from repro.dht.messages import Message, MessageKind
from repro.dht.stats import KindStats, NetworkStats


def msg(kind: MessageKind = MessageKind.SEARCH_TERM, size: int = 10, hops: int = 2) -> Message:
    return Message(kind, src=1, dst=2, size_bytes=size, hops=hops)


class TestRecording:
    def test_totals(self) -> None:
        stats = NetworkStats()
        stats.record(msg(size=10, hops=2))
        stats.record(msg(size=5, hops=1))
        assert stats.total_messages == 2
        assert stats.total_bytes == 15
        assert stats.total_hops == 3

    def test_per_kind_isolation(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.SEARCH_TERM))
        stats.record(msg(MessageKind.PUBLISH_TERM))
        assert stats.kind(MessageKind.SEARCH_TERM).messages == 1
        assert stats.kind(MessageKind.PUBLISH_TERM).messages == 1
        assert stats.kind(MessageKind.REPLICATE).messages == 0

    def test_unknown_kind_returns_zeros(self) -> None:
        empty = NetworkStats().kind(MessageKind.HEARTBEAT)
        assert (empty.messages, empty.bytes, empty.hops) == (0, 0, 0)


class TestLookups:
    def test_lookup_hop_tracking(self) -> None:
        stats = NetworkStats()
        stats.record_lookup(3)
        stats.record_lookup(5)
        assert stats.lookup_hop_samples == [3, 5]
        assert stats.mean_lookup_hops == 4.0

    def test_mean_with_no_lookups(self) -> None:
        assert NetworkStats().mean_lookup_hops == 0.0

    def test_lookup_counted_as_messages(self) -> None:
        stats = NetworkStats()
        stats.record_lookup(4)
        assert stats.kind(MessageKind.LOOKUP).messages == 1
        assert stats.kind(MessageKind.LOOKUP).hops == 4


class TestSnapshots:
    def test_delta_since(self) -> None:
        stats = NetworkStats()
        stats.record(msg(size=10, hops=1))
        snap = stats.snapshot()
        stats.record(msg(size=7, hops=2))
        delta = stats.delta_since(snap)
        assert delta[MessageKind.SEARCH_TERM].messages == 1
        assert delta[MessageKind.SEARCH_TERM].bytes == 7
        assert delta[MessageKind.SEARCH_TERM].hops == 2

    def test_delta_empty_when_nothing_happened(self) -> None:
        stats = NetworkStats()
        stats.record(msg())
        snap = stats.snapshot()
        assert stats.delta_since(snap) == {}

    def test_snapshot_is_isolated_copy(self) -> None:
        stats = NetworkStats()
        stats.record(msg())
        snap = stats.snapshot()
        stats.record(msg())
        assert snap[MessageKind.SEARCH_TERM].messages == 1


class TestReset:
    def test_reset_clears_everything(self) -> None:
        stats = NetworkStats()
        stats.record(msg())
        stats.record_lookup(2)
        stats.reset()
        assert stats.total_messages == 0
        assert stats.lookup_hop_samples == []


class TestSummary:
    def test_summary_structure(self) -> None:
        stats = NetworkStats()
        stats.record(msg(MessageKind.PUBLISH_TERM, size=11, hops=3))
        summary = stats.summary()
        assert summary["publish_term"] == {"messages": 1, "bytes": 11, "hops": 3}


class TestKindStats:
    def test_merge(self) -> None:
        merged = KindStats(1, 10, 2).merged_with(KindStats(2, 20, 3))
        assert (merged.messages, merged.bytes, merged.hops) == (3, 30, 5)
