"""The recursive ReCord ring (DESIGN.md §16): finger schedules, the
``build_ring`` factory, Chord degeneration at b=2, cross-ring lookup
agreement (property-based), incremental-repair parity, and the
consecutive-dead-successor regression shape on the new router."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig
from repro.dht import ChordRing, RecordRing, build_ring, recursive_finger_steps
from repro.exceptions import NodeFailedError

BITS = 12
SIZE = 1 << BITS


def make_config(ids, **kwargs):
    merged = dict(
        num_peers=len(ids),
        id_bits=BITS,
        successor_list_size=3,
        seed=1,
        route_cache_size=0,
    )
    merged.update(kwargs)
    return ChordConfig(**merged)


class TestFingerSchedule:
    def test_arity_two_is_exactly_chord(self) -> None:
        assert recursive_finger_steps(BITS, 2) == tuple(1 << i for i in range(BITS))

    @pytest.mark.parametrize("arity", (2, 3, 4, 8, 16, 32))
    def test_schedule_properties(self, arity: int) -> None:
        steps = recursive_finger_steps(BITS, arity)
        assert steps[0] == 1
        assert list(steps) == sorted(set(steps))  # distinct, ascending
        assert all(0 < step < SIZE for step in steps)
        # (b-1) entries per fully-populated level.
        level, expected = 1, 0
        while level < SIZE:
            expected += sum(1 for j in range(1, arity) if j * level < SIZE)
            level *= arity
        assert len(steps) == expected

    def test_larger_arity_means_more_fingers(self) -> None:
        sizes = [len(recursive_finger_steps(BITS, b)) for b in (2, 4, 8, 32)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_rejects_arity_below_two(self) -> None:
        with pytest.raises(ValueError):
            recursive_finger_steps(BITS, 1)


class TestBuildRingFactory:
    def test_chord_kind_builds_chord_ring(self) -> None:
        ring = build_ring("chord", make_config([10, 500, 2000]), node_ids=[10, 500, 2000])
        assert type(ring) is ChordRing

    def test_record_kind_builds_record_ring(self) -> None:
        ring = build_ring(
            "record", make_config([10, 500, 2000]), arity=8, node_ids=[10, 500, 2000]
        )
        assert isinstance(ring, RecordRing)
        assert ring.arity == 8

    def test_chord_rejects_nontrivial_arity(self) -> None:
        with pytest.raises(ValueError):
            build_ring("chord", make_config([10, 500]), arity=8, node_ids=[10, 500])

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(ValueError):
            build_ring("pastry", make_config([10, 500]), node_ids=[10, 500])

    def test_record_rejects_arity_below_two(self) -> None:
        with pytest.raises(ValueError):
            build_ring("record", make_config([10, 500]), arity=1, node_ids=[10, 500])


def ring_state(ring: ChordRing):
    return {
        node_id: (node.alive, node.routing_snapshot(), tuple(sorted(node.store)))
        for node_id, node in sorted(ring.nodes.items())
    }


class TestChordDegeneration:
    """At b=2 the recursive schedule *is* the binary schedule, so the
    whole routing state must be bit-identical to ChordRing's."""

    def test_routing_state_identical_at_arity_two(self) -> None:
        ids = [37 * i + 5 for i in range(30)]
        chord = ChordRing(make_config(ids), node_ids=list(ids))
        record = RecordRing(make_config(ids), node_ids=list(ids), arity=2)
        assert ring_state(chord) == ring_state(record)

    def test_lookup_paths_identical_at_arity_two(self) -> None:
        import random

        ids = [101 * i + 3 for i in range(24)]
        chord = ChordRing(make_config(ids), node_ids=list(ids))
        record = RecordRing(make_config(ids), node_ids=list(ids), arity=2)
        rng = random.Random(7)
        for __ in range(100):
            start = rng.choice(ids)
            key = rng.randrange(SIZE)
            a = chord.lookup(start, key, record=False)
            b = record.lookup(start, key, record=False)
            assert (a.node_id, a.hops, a.path) == (b.node_id, b.hops, b.path)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_record_and_chord_lookups_agree_with_oracle(data) -> None:
    """Property (ISSUE 10 satellite): for any membership set and key,
    RecordRing.lookup and ChordRing.lookup resolve the same owner, and
    that owner is the sorted-membership oracle successor."""
    ids = sorted(
        data.draw(
            st.sets(st.integers(0, SIZE - 1), min_size=4, max_size=24),
            label="membership",
        )
    )
    arity = data.draw(st.sampled_from([2, 3, 4, 8, 16]), label="arity")
    chord = ChordRing(make_config(ids), node_ids=list(ids))
    record = RecordRing(make_config(ids), node_ids=list(ids), arity=arity)
    for __ in range(8):
        key = data.draw(st.integers(0, SIZE - 1), label="key")
        start = data.draw(st.sampled_from(ids), label="start")
        expected = min(
            (node for node in ids if node >= key), default=ids[0]
        )  # oracle: first node clockwise from the key
        assert chord.successor_of(key) == expected
        assert chord.lookup(start, key, record=False).node_id == expected
        assert record.lookup(start, key, record=False).node_id == expected


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_record_incremental_repair_matches_full_rebuild(data) -> None:
    """PR 2's incremental-stabilize equivalence, re-run on the recursive
    schedule: join/leave/fail repairs must land the exact state a full
    rebuild computes."""
    ids = sorted(
        data.draw(
            st.sets(st.integers(0, SIZE - 1), min_size=8, max_size=20),
            label="initial ids",
        )
    )
    arity = data.draw(st.sampled_from([3, 4, 8]), label="arity")
    full = RecordRing(
        make_config(ids, incremental_repair=False), node_ids=list(ids), arity=arity
    )
    inc = RecordRing(
        make_config(ids, incremental_repair=True), node_ids=list(ids), arity=arity
    )
    assert ring_state(full) == ring_state(inc)

    for step in range(data.draw(st.integers(5, 20), label="op count")):
        op = data.draw(
            st.sampled_from(["join", "join", "leave", "fail", "stabilize"]),
            label=f"op {step}",
        )
        if op == "join":
            candidate = data.draw(st.integers(0, SIZE - 1), label="join id")
            if candidate in inc.nodes and inc.nodes[candidate].alive:
                continue
            full.join(node_id=candidate)
            inc.join(node_id=candidate)
        elif op in ("leave", "fail"):
            if inc.num_live <= 5:
                continue
            victim = data.draw(st.sampled_from(inc.live_ids), label="victim")
            getattr(full, op)(victim)
            getattr(inc, op)(victim)
        else:
            full.stabilize()
            inc.stabilize()
        assert ring_state(full) == ring_state(inc), f"diverged after {op}"


class TestRecordRingProperties:
    def test_finger_table_smaller_hop_count_tradeoff(self) -> None:
        """The §16 tradeoff at ring scale: higher arity buys fewer mean
        hops with more fingers per node."""
        import random

        ids = sorted({(7919 * i) % SIZE for i in range(200)})

        def mean_hops(ring) -> float:
            rng = random.Random(3)
            samples = [
                ring.lookup(
                    rng.choice(ids), rng.randrange(SIZE), record=False
                ).hops
                for __ in range(300)
            ]
            return sum(samples) / len(samples)

        chord = ChordRing(make_config(ids), node_ids=list(ids))
        record = RecordRing(make_config(ids), node_ids=list(ids), arity=8)
        assert len(record.finger_steps) > len(chord.finger_steps)
        assert mean_hops(record) < mean_hops(chord)

    def test_routing_entry_accounting_increases_with_arity(self) -> None:
        ids = [53 * i + 11 for i in range(40)]
        chord = ChordRing(make_config(ids), node_ids=list(ids))
        record = RecordRing(make_config(ids), node_ids=list(ids), arity=16)
        assert record.routing_entries_written > chord.routing_entries_written > 0


class TestRecordConsecutiveDeadSuccessors:
    """The PR 5/PR 8 regression shape, re-pinned on the recursive
    router: two consecutive dead successors must neither orbit the ring
    nor silently skip the Section 7 down-peer window."""

    def _ring(self) -> RecordRing:
        return RecordRing(
            ChordConfig(
                num_peers=8, id_bits=32, successor_list_size=4, seed=1
            ),
            node_ids=[10, 20, 30, 40, 50, 60, 70, 80],
            arity=8,
        )

    def test_dead_owner_behind_dead_successor_raises(self) -> None:
        ring = self._ring()
        ring.fail(20)
        ring.fail(30)  # two consecutive dead successors of node 10
        with pytest.raises(NodeFailedError):
            ring.lookup(10, 25, record=False)

    def test_live_owner_past_dead_pair_terminates(self) -> None:
        ring = self._ring()
        ring.fail(20)
        ring.fail(30)
        result = ring.lookup(10, 35, record=False)
        assert result.node_id == 40
        assert result.path[0] == 10
        assert result.path[-1] == 40

    def test_after_repair_lookup_resolves_to_next_live_owner(self) -> None:
        ring = self._ring()
        ring.fail(20)
        ring.fail(30)
        for __ in range(4):
            ring.stabilize()
        assert ring.lookup(10, 25, record=False).node_id == 40
