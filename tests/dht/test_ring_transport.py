"""Tests for the ring ↔ transport integration.

The contract under test: a ring over the default perfect transport
behaves bit-identically to the pre-transport simulator, while a lossy
transport subjects every send and every lookup hop to latency, loss,
and retry semantics — surfacing exhausted retries as
:class:`MessageDroppedError` (a :class:`NodeFailedError` subclass).
"""

from __future__ import annotations

import pytest

from repro.config import ChordConfig
from repro.dht.messages import Message, MessageKind
from repro.dht.ring import ChordRing
from repro.exceptions import MessageDroppedError, NodeFailedError
from repro.net import (
    ConstantLatency,
    DeliveryPolicy,
    FaultInjector,
    LossyTransport,
    PerfectTransport,
    TraceLog,
)

CONFIG = ChordConfig(num_peers=24, id_bits=16, seed=7)


def lossless_transport(**kwargs) -> LossyTransport:
    defaults = dict(
        latency=ConstantLatency(ms=10.0),
        policy=DeliveryPolicy(jitter_ms=0.0),
        seed=3,
    )
    defaults.update(kwargs)
    return LossyTransport(**defaults)


class TestPerfectDefault:
    def test_default_transport_is_perfect(self) -> None:
        assert isinstance(ChordRing(CONFIG).transport, PerfectTransport)

    def test_lookup_results_identical_with_explicit_perfect(self) -> None:
        plain = ChordRing(CONFIG)
        explicit = ChordRing(CONFIG, transport=PerfectTransport())
        keys = [i * 977 % plain.space.size for i in range(50)]
        for key in keys:
            a = plain.lookup(plain.live_ids[0], key)
            b = explicit.lookup(explicit.live_ids[0], key)
            assert (a.node_id, a.hops, a.path) == (b.node_id, b.hops, b.path)
        assert plain.stats.summary() == explicit.stats.summary()

    def test_send_to_dead_node_still_raises_node_failed(self) -> None:
        ring = ChordRing(CONFIG)
        victim = ring.live_ids[0]
        ring.fail(victim)
        with pytest.raises(NodeFailedError):
            ring.send(Message(MessageKind.HEARTBEAT, src=ring.live_ids[0], dst=victim))

    def test_clock_never_advances(self) -> None:
        ring = ChordRing(CONFIG)
        for i in range(20):
            ring.lookup(ring.live_ids[0], i * 31 % ring.space.size)
        assert ring.transport.clock.now == 0.0


class TestPerfectWithTrace:
    def test_hops_and_sends_are_traced(self) -> None:
        trace = TraceLog()
        ring = ChordRing(CONFIG, transport=PerfectTransport(trace=trace))
        result = ring.lookup(ring.live_ids[0], 1234 % ring.space.size)
        ring.send(Message(MessageKind.HEARTBEAT, src=ring.live_ids[0],
                          dst=result.node_id))
        summary = trace.rollup()
        assert summary.messages == result.hops + 1
        assert summary.delivered == summary.messages

    def test_traced_lookup_matches_untraced(self) -> None:
        plain = ChordRing(CONFIG)
        traced = ChordRing(CONFIG, transport=PerfectTransport(trace=TraceLog()))
        for i in range(30):
            key = i * 4421 % plain.space.size
            a = plain.lookup(plain.live_ids[0], key)
            b = traced.lookup(traced.live_ids[0], key)
            assert (a.node_id, a.hops, a.path) == (b.node_id, b.hops, b.path)


class TestLossyIntegration:
    def test_zero_loss_same_routing_as_perfect(self) -> None:
        perfect = ChordRing(CONFIG)
        lossy = ChordRing(CONFIG, transport=lossless_transport())
        for i in range(30):
            key = i * 131 % perfect.space.size
            a = perfect.lookup(perfect.live_ids[0], key)
            b = lossy.lookup(lossy.live_ids[0], key)
            assert (a.node_id, a.hops, a.path) == (b.node_id, b.hops, b.path)

    def test_lookup_hops_advance_the_clock(self) -> None:
        ring = ChordRing(CONFIG, transport=lossless_transport())
        result = ring.lookup(ring.live_ids[0], 9999 % ring.space.size)
        assert result.hops > 0
        assert ring.transport.clock.now == pytest.approx(result.hops * 10.0)

    def test_total_loss_raises_message_dropped(self) -> None:
        transport = lossless_transport(
            faults=FaultInjector(drop_probability=1.0),
            policy=DeliveryPolicy(max_retries=1, jitter_ms=0.0),
        )
        ring = ChordRing(CONFIG, transport=transport)
        start = ring.live_ids[0]
        dst = ring.live_ids[1]
        with pytest.raises(MessageDroppedError):
            ring.send(Message(MessageKind.HEARTBEAT, src=start, dst=dst))

    def test_message_dropped_is_a_node_failed_error(self) -> None:
        # Callers that degrade on NodeFailedError (query processor,
        # maintenance) handle transport loss without modification.
        assert issubclass(MessageDroppedError, NodeFailedError)

    def test_dropped_send_not_counted_in_stats(self) -> None:
        transport = lossless_transport(
            faults=FaultInjector(drop_probability=1.0),
            policy=DeliveryPolicy(max_retries=0, jitter_ms=0.0),
        )
        ring = ChordRing(CONFIG, transport=transport)
        with pytest.raises(MessageDroppedError):
            ring.send(Message(MessageKind.HEARTBEAT, src=ring.live_ids[0],
                              dst=ring.live_ids[1]))
        assert ring.stats.total_messages == 0
        assert transport.trace.rollup().dropped == 1

    def test_multi_hop_lookup_can_fail_midway(self) -> None:
        transport = lossless_transport(
            faults=FaultInjector(drop_probability=1.0),
            policy=DeliveryPolicy(max_retries=0, jitter_ms=0.0),
        )
        ring = ChordRing(CONFIG, transport=transport)
        start = ring.live_ids[0]
        # Find a key whose lookup needs at least one hop.
        key = next(
            k
            for k in range(0, ring.space.size, 997)
            if not ring.node(start).owns(k)
        )
        with pytest.raises(MessageDroppedError):
            ring.lookup(start, key)

    def test_same_seed_rings_identical_traces(self) -> None:
        def run() -> str:
            ring = ChordRing(
                CONFIG,
                transport=lossless_transport(
                    faults=FaultInjector(drop_probability=0.2)
                ),
            )
            for i in range(40):
                try:
                    ring.lookup(ring.live_ids[i % ring.num_live],
                                i * 271 % ring.space.size)
                except NodeFailedError:
                    pass
            return ring.transport.trace.summary_table()

        assert run() == run()
