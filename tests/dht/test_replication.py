"""Tests for successor-list replication (paper Section 7)."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig
from repro.dht import ChordRing, ReplicationManager
from repro.dht.messages import MessageKind


def ring_with_data(num_peers: int = 12, seed: int = 21) -> ChordRing:
    ring = ChordRing(
        ChordConfig(num_peers=num_peers, id_bits=16, successor_list_size=3, seed=seed)
    )
    for i in range(40):
        ring.place((i * 1201) % ring.space.size, f"payload-{i}")
    return ring


class TestReplicationRound:
    def test_copies_land_on_successors(self) -> None:
        ring = ring_with_data()
        manager = ReplicationManager(ring, replication_factor=2)
        shipped = manager.replicate_round()
        assert shipped > 0
        for node_id in ring.live_ids:
            node = ring.node(node_id)
            if not node.store:
                continue
            for succ in node.successor_list[:2]:
                succ_node = ring.node(succ)
                for key in node.store:
                    assert key in succ_node.replicas

    def test_replication_traffic_recorded(self) -> None:
        ring = ring_with_data()
        ReplicationManager(ring, replication_factor=1).replicate_round()
        assert ring.stats.kind(MessageKind.REPLICATE).messages > 0

    def test_factor_bounded_by_successor_list(self) -> None:
        ring = ring_with_data()
        manager = ReplicationManager(ring, replication_factor=99)
        assert manager.replication_factor == ring.config.successor_list_size

    def test_invalid_factor(self) -> None:
        with pytest.raises(ValueError):
            ReplicationManager(ring_with_data(), replication_factor=0)

    def test_deep_copy_isolates_replicas(self) -> None:
        ring = ChordRing(
            ChordConfig(num_peers=3, id_bits=8, successor_list_size=2), node_ids=[10, 100, 200]
        )
        ring.place(50, {"mutable": 1})       # at node 100
        ReplicationManager(ring, replication_factor=1).replicate_round()
        ring.node(100).get(50)["mutable"] = 2
        assert ring.node(200).replicas[50] == {"mutable": 1}


class TestRecovery:
    def test_data_survives_failure_with_replication(self) -> None:
        ring = ChordRing(
            ChordConfig(num_peers=3, id_bits=8, successor_list_size=2), node_ids=[10, 100, 200]
        )
        ring.place(50, "precious")           # primary at node 100
        manager = ReplicationManager(ring, replication_factor=1)
        manager.replicate_round()
        ring.fail(100)
        promoted = manager.recover_from_failures()
        assert promoted >= 1
        # Node 200 now owns key 50 and must serve it as primary.
        assert ring.successor_of(50) == 200
        assert ring.node(200).get(50) == "precious"

    def test_data_lost_without_replication(self) -> None:
        ring = ChordRing(
            ChordConfig(num_peers=3, id_bits=8, successor_list_size=2), node_ids=[10, 100, 200]
        )
        ring.place(50, "precious")
        ring.fail(100)
        ring.stabilize()
        assert ring.node(200).get(50) is None

    def test_promote_skips_keys_not_owned(self) -> None:
        ring = ChordRing(
            ChordConfig(num_peers=3, id_bits=8, successor_list_size=2), node_ids=[10, 100, 200]
        )
        ring.place(50, "v")
        manager = ReplicationManager(ring, replication_factor=1)
        manager.replicate_round()
        # No failure: replicas must NOT be promoted anywhere.
        promoted = manager.promote_replicas()
        assert promoted == 0
        assert ring.node(200).get(50) is None

    def test_promote_discards_duplicate_replicas(self) -> None:
        ring = ChordRing(
            ChordConfig(num_peers=2, id_bits=8, successor_list_size=1), node_ids=[100, 200]
        )
        ring.place(150, "v")                  # at 200
        manager = ReplicationManager(ring, replication_factor=1)
        manager.replicate_round()
        # 100 holds a replica of key 150; 200 is still alive and owns it.
        manager.promote_replicas()
        assert ring.node(100).get(150) is None

    def test_multi_failure_survival_rate(self) -> None:
        """With r=3 replication, killing 3 of 12 nodes must preserve all
        data after recovery."""
        ring = ring_with_data(num_peers=12)
        all_keys = {
            key for node_id in ring.live_ids for key in ring.node(node_id).store
        }
        manager = ReplicationManager(ring, replication_factor=3)
        manager.replicate_round()
        for victim in list(ring.live_ids)[:3]:
            ring.fail(victim)
        manager.recover_from_failures()
        surviving = {
            key for node_id in ring.live_ids for key in ring.node(node_id).store
        }
        assert surviving >= all_keys - set()  # every key recovered
        assert all_keys <= surviving

    def test_replica_counts_inspection(self) -> None:
        ring = ring_with_data()
        manager = ReplicationManager(ring, replication_factor=1)
        manager.replicate_round()
        counts = manager.replica_counts()
        assert sum(counts.values()) > 0
