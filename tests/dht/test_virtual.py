"""Tests for virtual-node topologies."""

from __future__ import annotations

import random

import pytest

from repro.dht.virtual import (
    VirtualTopology,
    build_virtual_topology,
    load_coefficient_of_variation,
    recommended_vnodes,
)
from repro.exceptions import ConfigurationError


def place_uniform_keys(topology: VirtualTopology, count: int, seed: int = 3) -> None:
    rng = random.Random(seed)
    for i in range(count):
        topology.ring.place(rng.randrange(topology.ring.space.size), f"k{i}")


class TestConstruction:
    def test_total_virtual_nodes(self) -> None:
        topo = build_virtual_topology(num_peers=10, vnodes_per_peer=4)
        assert topo.ring.num_live == 40
        assert len(topo.peer_of) == 40

    def test_every_peer_gets_its_vnodes(self) -> None:
        topo = build_virtual_topology(num_peers=6, vnodes_per_peer=3)
        for peer in topo.physical_peers():
            assert len(topo.virtual_ids_of(peer)) == 3

    def test_parameter_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            build_virtual_topology(num_peers=0, vnodes_per_peer=1)
        with pytest.raises(ConfigurationError):
            build_virtual_topology(num_peers=5, vnodes_per_peer=0)

    def test_deterministic(self) -> None:
        a = build_virtual_topology(8, 2, seed=9)
        b = build_virtual_topology(8, 2, seed=9)
        assert a.ring.live_ids == b.ring.live_ids
        assert a.peer_of == b.peer_of


class TestLoadBalance:
    def test_arc_shares_sum_to_one(self) -> None:
        topo = build_virtual_topology(num_peers=12, vnodes_per_peer=4)
        assert sum(topo.physical_arc_shares().values()) == pytest.approx(1.0)

    def test_virtual_nodes_even_out_keys(self) -> None:
        """The headline property: more virtual nodes per peer → lower
        coefficient of variation of per-peer key load."""
        single = build_virtual_topology(num_peers=24, vnodes_per_peer=1, seed=5)
        many = build_virtual_topology(num_peers=24, vnodes_per_peer=8, seed=5)
        place_uniform_keys(single, 3000)
        place_uniform_keys(many, 3000)
        cv_single = load_coefficient_of_variation(single.physical_slot_loads())
        cv_many = load_coefficient_of_variation(many.physical_slot_loads())
        assert cv_many < cv_single

    def test_all_keys_accounted_for(self) -> None:
        topo = build_virtual_topology(num_peers=8, vnodes_per_peer=3)
        place_uniform_keys(topo, 500)
        assert sum(topo.physical_slot_loads().values()) <= 500  # collisions overwrite
        assert sum(topo.physical_slot_loads().values()) > 450


class TestHelpers:
    def test_cv_of_even_load_is_zero(self) -> None:
        assert load_coefficient_of_variation({0: 5, 1: 5, 2: 5}) == 0.0

    def test_cv_empty(self) -> None:
        assert load_coefficient_of_variation({}) == 0.0
        assert load_coefficient_of_variation({0: 0}) == 0.0

    def test_recommended_vnodes_logarithmic(self) -> None:
        assert recommended_vnodes(2) == 1
        assert recommended_vnodes(64) == 6
        assert recommended_vnodes(1024) == 10

    def test_recommended_vnodes_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            recommended_vnodes(0)
