"""Tests for the Chord ring simulator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig
from repro.dht import ChordRing
from repro.exceptions import (
    DHTError,
    EmptyRingError,
    NodeFailedError,
    NodeNotFoundError,
)


def make_ring(num_peers: int = 16, seed: int = 7, bits: int = 16) -> ChordRing:
    return ChordRing(
        ChordConfig(num_peers=num_peers, id_bits=bits, successor_list_size=4, seed=seed)
    )


class TestConstruction:
    def test_node_count(self) -> None:
        assert make_ring(16).num_live == 16

    def test_live_ids_sorted_unique(self) -> None:
        ids = make_ring(32).live_ids
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_explicit_node_ids(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=3, id_bits=8), node_ids=[10, 100, 200])
        assert ring.live_ids == [10, 100, 200]

    def test_duplicate_explicit_ids_rejected(self) -> None:
        with pytest.raises(DHTError):
            ChordRing(ChordConfig(num_peers=2, id_bits=8), node_ids=[5, 5])

    def test_deterministic_for_seed(self) -> None:
        assert make_ring(16, seed=3).live_ids == make_ring(16, seed=3).live_ids

    def test_single_node_ring(self) -> None:
        ring = make_ring(1)
        node = ring.node(ring.live_ids[0])
        assert node.successor == node.node_id
        assert node.predecessor == node.node_id


class TestRoutingState:
    def test_successor_pointers_form_cycle(self) -> None:
        ring = make_ring(16)
        start = ring.live_ids[0]
        current = start
        visited = set()
        for __ in range(16):
            visited.add(current)
            current = ring.node(current).successor
        assert current == start
        assert visited == set(ring.live_ids)

    def test_predecessor_is_inverse_of_successor(self) -> None:
        ring = make_ring(16)
        for node_id in ring.live_ids:
            succ = ring.node(node_id).successor
            assert ring.node(succ).predecessor == node_id

    def test_fingers_point_to_correct_successors(self) -> None:
        ring = make_ring(16, bits=16)
        for node_id in ring.live_ids:
            node = ring.node(node_id)
            for i, finger in enumerate(node.fingers):
                start = ring.space.finger_start(node_id, i)
                assert finger == ring.successor_of(start)

    def test_successor_list_lengths(self) -> None:
        ring = make_ring(16)
        for node_id in ring.live_ids:
            assert len(ring.node(node_id).successor_list) == 4


class TestOracle:
    def test_successor_of_wraps(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=3, id_bits=8), node_ids=[10, 100, 200])
        assert ring.successor_of(201) == 10
        assert ring.successor_of(5) == 10
        assert ring.successor_of(10) == 10
        assert ring.successor_of(11) == 100

    def test_predecessor_of(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=3, id_bits=8), node_ids=[10, 100, 200])
        assert ring.predecessor_of(10) == 200
        assert ring.predecessor_of(100) == 10


class TestLookup:
    def test_lookup_agrees_with_oracle(self) -> None:
        ring = make_ring(32)
        rng = random.Random(5)
        for __ in range(200):
            key = rng.randrange(ring.space.size)
            start = ring.random_live_id(rng)
            result = ring.lookup(start, key, record=False)
            assert result.node_id == ring.successor_of(key)

    def test_lookup_from_owner_is_zero_hops(self) -> None:
        ring = make_ring(16)
        node_id = ring.live_ids[0]
        result = ring.lookup(node_id, node_id, record=False)
        assert result.node_id == node_id
        assert result.hops == 0

    def test_hop_counts_logarithmic(self) -> None:
        """Mean hops should stay well under N/2 (linear walking) and in
        the O(log N) ballpark."""
        import math
        ring = make_ring(128, bits=32)
        rng = random.Random(11)
        hops = [
            ring.lookup(ring.random_live_id(rng), rng.randrange(ring.space.size), record=False).hops
            for __ in range(300)
        ]
        mean = sum(hops) / len(hops)
        assert mean <= 2.0 * math.log2(128)

    def test_lookup_records_stats(self) -> None:
        ring = make_ring(16)
        ring.lookup(ring.live_ids[0], 12345)
        assert ring.stats.mean_lookup_hops >= 0
        assert len(ring.stats.lookup_hop_samples) == 1

    def test_lookup_path_starts_at_origin(self) -> None:
        ring = make_ring(32)
        start = ring.live_ids[3]
        result = ring.lookup(start, 999, record=False)
        assert result.path[0] == start
        assert result.path[-1] == result.node_id

    def test_lookup_from_dead_node_raises(self) -> None:
        ring = make_ring(16)
        victim = ring.live_ids[0]
        ring.fail(victim)
        with pytest.raises(NodeFailedError):
            ring.lookup(victim, 1)

    def test_lookup_term_uses_md5(self) -> None:
        ring = make_ring(16)
        result = ring.lookup_term(ring.live_ids[0], "chord", record=False)
        assert result.node_id == ring.successor_of(ring.space.hash_key("chord"))


class TestJoin:
    def test_join_increases_membership(self) -> None:
        ring = make_ring(8)
        new_id = ring.join(name="newcomer")
        assert ring.num_live == 9
        assert new_id in ring.live_ids

    def test_join_migrates_keys(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=2, id_bits=8), node_ids=[100, 200])
        # Key 150 belongs to node 200.
        ring.place(150, "payload")
        assert ring.node(200).get(150) == "payload"
        # A node at 160 takes over (100, 160]; key 150 must migrate.
        ring.join(node_id=160)
        assert ring.node(160).get(150) == "payload"
        assert ring.node(200).get(150) is None

    def test_join_existing_live_id_rejected(self) -> None:
        ring = make_ring(4)
        with pytest.raises(DHTError):
            ring.join(node_id=ring.live_ids[0])

    def test_lookup_correct_after_join(self) -> None:
        ring = make_ring(8)
        ring.join(name="fresh")
        rng = random.Random(2)
        for __ in range(50):
            key = rng.randrange(ring.space.size)
            assert ring.lookup(ring.random_live_id(rng), key, record=False).node_id == ring.successor_of(key)


class TestLeave:
    def test_leave_hands_over_keys(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=3, id_bits=8), node_ids=[10, 100, 200])
        ring.place(50, "fifty")          # owned by node 100
        ring.leave(100)
        assert ring.node(200).get(50) == "fifty"
        assert ring.num_live == 2

    def test_leave_removes_node(self) -> None:
        ring = make_ring(8)
        victim = ring.live_ids[0]
        ring.leave(victim)
        assert victim not in ring.live_ids
        with pytest.raises(NodeNotFoundError):
            ring.node(victim)

    def test_cannot_leave_last_node(self) -> None:
        ring = make_ring(1)
        with pytest.raises(EmptyRingError):
            ring.leave(ring.live_ids[0])


class TestFail:
    def test_fail_keeps_data_in_place(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=3, id_bits=8), node_ids=[10, 100, 200])
        ring.place(50, "fifty")
        ring.fail(100)
        # Data is NOT handed over — crash-stop.
        assert ring.node(100).get(50) == "fifty"
        assert ring.node(200).get(50) is None

    def test_fail_is_idempotent(self) -> None:
        ring = make_ring(8)
        victim = ring.live_ids[0]
        ring.fail(victim)
        ring.fail(victim)
        assert ring.num_live == 7

    def test_lookup_routes_around_failure_after_stabilize(self) -> None:
        ring = make_ring(16)
        rng = random.Random(9)
        victims = [ring.live_ids[2], ring.live_ids[7]]
        for v in victims:
            ring.fail(v)
        ring.stabilize()
        for __ in range(100):
            key = rng.randrange(ring.space.size)
            result = ring.lookup(ring.random_live_id(rng), key, record=False)
            assert result.node_id == ring.successor_of(key)
            assert result.node_id not in victims

    def test_responsibility_transfers_to_successor(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=3, id_bits=8), node_ids=[10, 100, 200])
        assert ring.successor_of(50) == 100
        ring.fail(100)
        ring.stabilize()
        assert ring.successor_of(50) == 200


class TestPlace:
    def test_place_at_responsible_node(self) -> None:
        ring = make_ring(16)
        key = 31337 % ring.space.size
        holder = ring.place(key, {"v": 1})
        assert holder == ring.successor_of(key)
        assert ring.node(holder).get(key) == {"v": 1}


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(min_value=0, max_value=2**16 - 1), min_size=2, max_size=24),
    st.integers(min_value=0, max_value=2**16 - 1),
)
def test_lookup_matches_oracle_property(node_ids: set, key: int) -> None:
    """For arbitrary memberships and keys, finger-table routing finds
    exactly the node the sorted-ring oracle says is responsible."""
    ids = sorted(node_ids)
    ring = ChordRing(
        ChordConfig(num_peers=len(ids), id_bits=16, successor_list_size=2, seed=1),
        node_ids=ids,
    )
    for start in (ids[0], ids[-1], ids[len(ids) // 2]):
        assert ring.lookup(start, key, record=False).node_id == ring.successor_of(key)
