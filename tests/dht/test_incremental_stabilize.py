"""Incremental repair ≡ full rebuild (ISSUE 2 satellite).

Two rings with identical explicit memberships — one running incremental
repair, one forced to full rebuilds — are driven through the same random
sequence of joins, graceful leaves, crash failures, data placements, and
explicit stabilizations.  After every event the complete routing state
of every node (successor, predecessor, successor list, finger table,
liveness) and every node's key store must be identical: the two repair
strategies are interchangeable by construction, which is what licenses
the fast path.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig
from repro.dht.ring import ChordRing

BITS = 12
SIZE = 1 << BITS


def build_pair(ids):
    common = dict(
        num_peers=len(ids),
        id_bits=BITS,
        successor_list_size=3,
        seed=1,
        route_cache_size=0,
    )
    full = ChordRing(
        ChordConfig(incremental_repair=False, **common), node_ids=list(ids)
    )
    inc = ChordRing(
        ChordConfig(incremental_repair=True, **common), node_ids=list(ids)
    )
    return full, inc


def ring_state(ring: ChordRing):
    return {
        node_id: (node.alive, node.routing_snapshot(), tuple(sorted(node.store)))
        for node_id, node in sorted(ring.nodes.items())
    }


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_incremental_repair_matches_full_rebuild(data) -> None:
    initial = sorted(
        data.draw(
            st.sets(st.integers(0, SIZE - 1), min_size=8, max_size=20),
            label="initial ids",
        )
    )
    full, inc = build_pair(initial)
    assert ring_state(full) == ring_state(inc)

    num_ops = data.draw(st.integers(5, 30), label="op count")
    for step in range(num_ops):
        op = data.draw(
            st.sampled_from(["join", "join", "leave", "leave", "fail", "stabilize", "place"]),
            label=f"op {step}",
        )
        if op == "join":
            candidate = data.draw(st.integers(0, SIZE - 1), label="join id")
            if candidate in inc.nodes and inc.nodes[candidate].alive:
                continue
            full.join(node_id=candidate)
            inc.join(node_id=candidate)
        elif op == "leave":
            if inc.num_live <= 5:
                continue
            victim = data.draw(st.sampled_from(inc.live_ids), label="leaver")
            full.leave(victim)
            inc.leave(victim)
        elif op == "fail":
            if inc.num_live <= 5:
                continue
            victim = data.draw(st.sampled_from(inc.live_ids), label="crasher")
            full.fail(victim)
            inc.fail(victim)
        elif op == "place":
            key = data.draw(st.integers(0, SIZE - 1), label="placed key")
            full.place(key, "payload")
            inc.place(key, "payload")
        else:
            full.stabilize()
            inc.stabilize()
        assert ring_state(full) == ring_state(inc), f"diverged after {op}"
        assert full.live_ids == inc.live_ids


def test_single_join_repairs_incrementally_without_full_rebuild() -> None:
    """White-box: in a converged large-enough ring a join must take the
    incremental path (no stabilize.full), and still match the rebuild."""
    from repro.perf import PROFILE

    ids = [37 * i + 5 for i in range(30)]
    full, inc = build_pair(ids)
    PROFILE.reset()
    PROFILE.enable()
    try:
        full.join(node_id=1000)
        inc.join(node_id=1000)
    finally:
        PROFILE.disable()
    assert PROFILE.counter("stabilize.incremental") == 1
    assert PROFILE.counter("stabilize.full") == 1  # only the legacy ring
    assert ring_state(full) == ring_state(inc)


def test_stabilize_is_noop_when_converged() -> None:
    __, inc = build_pair([101 * i + 3 for i in range(20)])
    epoch = inc.epoch
    inc.stabilize()
    inc.stabilize()
    assert inc.epoch == epoch  # no routing change → caches stay valid


def test_tiny_ring_falls_back_to_full_rebuild() -> None:
    """Below the successor-list threshold every membership change
    reshapes every successor list; the fallback keeps it correct."""
    full, inc = build_pair([100, 900, 1800, 2600])
    inc.join(node_id=3000)
    full.join(node_id=3000)
    assert ring_state(full) == ring_state(inc)
    inc.leave(900)
    full.leave(900)
    assert ring_state(full) == ring_state(inc)
