"""Tests for the churn model."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig
from repro.dht import ChordRing, ChurnModel
from repro.exceptions import EmptyRingError


def make_ring(num_peers: int = 20, seed: int = 3) -> ChordRing:
    return ChordRing(ChordConfig(num_peers=num_peers, id_bits=16, seed=seed))


class TestSingleEvents:
    def test_fail_random_removes_one(self) -> None:
        ring = make_ring()
        churn = ChurnModel(ring, seed=1)
        victim = churn.fail_random()
        assert ring.num_live == 19
        assert victim not in ring.live_ids
        assert not ring.node(victim).alive

    def test_leave_random_removes_one(self) -> None:
        ring = make_ring()
        churn = ChurnModel(ring, seed=1)
        victim = churn.leave_random()
        assert ring.num_live == 19
        assert victim not in ring.live_ids

    def test_join_one_adds_one(self) -> None:
        ring = make_ring()
        churn = ChurnModel(ring, seed=1)
        new_id = churn.join_one()
        assert ring.num_live == 21
        assert new_id in ring.live_ids

    def test_history_recorded(self) -> None:
        ring = make_ring()
        churn = ChurnModel(ring, seed=1)
        churn.fail_random()
        churn.join_one()
        assert [e.kind for e in churn.history] == ["fail", "join"]

    def test_leave_last_node_rejected(self) -> None:
        ring = make_ring(num_peers=1)
        with pytest.raises(EmptyRingError):
            ChurnModel(ring).leave_random()


class TestBulkSchedules:
    def test_fail_fraction_counts(self) -> None:
        ring = make_ring(num_peers=20)
        victims = ChurnModel(ring, seed=5).fail_fraction(0.25)
        assert len(victims) == 5
        assert ring.num_live == 15

    def test_fail_fraction_zero(self) -> None:
        ring = make_ring()
        assert ChurnModel(ring).fail_fraction(0.0) == []
        assert ring.num_live == 20

    def test_fail_fraction_bounds(self) -> None:
        with pytest.raises(ValueError):
            ChurnModel(make_ring()).fail_fraction(1.0)
        with pytest.raises(ValueError):
            ChurnModel(make_ring()).fail_fraction(-0.1)

    def test_fail_fraction_never_empties_ring(self) -> None:
        ring = make_ring(num_peers=4)
        ChurnModel(ring, seed=2).fail_fraction(0.99)
        assert ring.num_live >= 1

    def test_session_churn_keeps_ring_routable(self) -> None:
        ring = make_ring(num_peers=16)
        churn = ChurnModel(ring, seed=8)
        events = churn.session_churn(rounds=20, p_fail=0.5)
        assert len(events) == 20
        # After stabilized churn every lookup must still match the oracle.
        import random
        rng = random.Random(4)
        for __ in range(50):
            key = rng.randrange(ring.space.size)
            result = ring.lookup(ring.random_live_id(rng), key, record=False)
            assert result.node_id == ring.successor_of(key)

    def test_session_churn_negative_rounds(self) -> None:
        with pytest.raises(ValueError):
            ChurnModel(make_ring()).session_churn(-1)

    def test_deterministic_for_seed(self) -> None:
        r1, r2 = make_ring(seed=3), make_ring(seed=3)
        e1 = ChurnModel(r1, seed=77).session_churn(10)
        e2 = ChurnModel(r2, seed=77).session_churn(10)
        assert [(e.kind, e.node_id) for e in e1] == [(e.kind, e.node_id) for e in e2]
