"""Tests for message types and the size model."""

from __future__ import annotations

import pytest

from repro.dht.messages import (
    ADDRESS_BYTES,
    ALL_KINDS,
    Message,
    MessageKind,
    POSTING_BYTES,
    QUERY_HEADER_BYTES,
    TERM_BYTES,
    postings_message,
    publish_message,
    query_batch_message,
    search_message,
)


class TestMessage:
    def test_frozen(self) -> None:
        msg = Message(MessageKind.LOOKUP, src=1, dst=2)
        with pytest.raises(AttributeError):
            msg.src = 9  # type: ignore[misc]

    def test_negative_size_rejected(self) -> None:
        with pytest.raises(ValueError):
            Message(MessageKind.LOOKUP, 1, 2, size_bytes=-1)

    def test_negative_hops_rejected(self) -> None:
        with pytest.raises(ValueError):
            Message(MessageKind.LOOKUP, 1, 2, hops=-1)

    def test_all_kinds_enumerated(self) -> None:
        assert len(ALL_KINDS) == len(MessageKind)
        assert MessageKind.PUBLISH_TERM in ALL_KINDS


class TestFactories:
    def test_publish_size(self) -> None:
        msg = publish_message(1, 2, hops=3)
        assert msg.kind is MessageKind.PUBLISH_TERM
        assert msg.size_bytes == TERM_BYTES + POSTING_BYTES
        assert msg.hops == 3

    def test_search_size(self) -> None:
        msg = search_message(1, 2, hops=4)
        assert msg.kind is MessageKind.SEARCH_TERM
        assert msg.size_bytes == TERM_BYTES + QUERY_HEADER_BYTES

    def test_postings_scales_with_entries(self) -> None:
        small = postings_message(1, 2, num_postings=1)
        large = postings_message(1, 2, num_postings=100)
        assert large.size_bytes - small.size_bytes == 99 * POSTING_BYTES

    def test_empty_postings_header_only(self) -> None:
        assert postings_message(1, 2, 0).size_bytes == QUERY_HEADER_BYTES

    def test_query_batch_scales(self) -> None:
        none = query_batch_message(1, 2, 0, 0.0)
        some = query_batch_message(1, 2, 10, 4.0)
        assert some.size_bytes > none.size_bytes

    def test_query_batch_exact_size(self) -> None:
        msg = query_batch_message(1, 2, num_queries=3, terms_per_query=2.0)
        expected = QUERY_HEADER_BYTES + 3 * (QUERY_HEADER_BYTES + 2 * TERM_BYTES)
        assert msg.size_bytes == expected


class TestSizeConstants:
    """The abstract cost-model units DESIGN.md states; cost benches cite
    these numbers, so a change here must be deliberate and documented."""

    def test_documented_values(self) -> None:
        assert TERM_BYTES == 8
        assert POSTING_BYTES == 24
        assert QUERY_HEADER_BYTES == 16
        assert ADDRESS_BYTES == 6

    def test_posting_carries_more_than_a_term(self) -> None:
        # A posting entry (doc id, owner address, TF, length) must cost
        # more than the bare term it is filed under.
        assert POSTING_BYTES > TERM_BYTES

    def test_default_message_size_is_header(self) -> None:
        assert Message(MessageKind.HEARTBEAT, 1, 2).size_bytes == QUERY_HEADER_BYTES

    def test_zero_size_message_allowed(self) -> None:
        assert Message(MessageKind.LOOKUP, 1, 2, size_bytes=0).size_bytes == 0

    def test_factory_sizes_compose_from_constants(self) -> None:
        assert publish_message(1, 2, 1).size_bytes == TERM_BYTES + POSTING_BYTES
        assert search_message(1, 2, 1).size_bytes == TERM_BYTES + QUERY_HEADER_BYTES
        assert (
            postings_message(1, 2, 5).size_bytes
            == QUERY_HEADER_BYTES + 5 * POSTING_BYTES
        )


class TestCategories:
    """The four-way traffic partition feeding the per-category rollups
    (ISSUE 5): every kind categorized, no kind in two buckets."""

    def test_partition_is_total(self) -> None:
        from repro.dht.messages import category_of

        for kind in ALL_KINDS:
            assert category_of(kind) in {
                "write",
                "query",
                "routing",
                "maintenance",
            }

    def test_partition_is_disjoint(self) -> None:
        from repro.dht.messages import (
            MAINTENANCE_KINDS,
            QUERY_PATH_KINDS,
            ROUTING_KINDS,
            WRITE_PATH_KINDS,
        )

        buckets = (
            WRITE_PATH_KINDS,
            QUERY_PATH_KINDS,
            ROUTING_KINDS,
            MAINTENANCE_KINDS,
        )
        assert sum(len(b) for b in buckets) == len(ALL_KINDS)
        assert frozenset().union(*buckets) == frozenset(ALL_KINDS)

    def test_batch_kinds_are_write_path(self) -> None:
        from repro.dht.messages import WRITE_PATH_KINDS, category_of

        for kind in (
            MessageKind.PUBLISH_BATCH,
            MessageKind.UNPUBLISH_BATCH,
            MessageKind.POLL_BATCH,
        ):
            assert kind in WRITE_PATH_KINDS
            assert category_of(kind) == "write"


class TestBatchFactories:
    """Wire sizes of the destination-grouped write messages."""

    def test_publish_batch_scales_with_postings(self) -> None:
        from repro.dht.messages import publish_batch_message

        msg = publish_batch_message(1, 2, 5, hops=3)
        assert msg.kind is MessageKind.PUBLISH_BATCH
        assert msg.hops == 3
        assert (
            msg.size_bytes
            == QUERY_HEADER_BYTES + 5 * (TERM_BYTES + POSTING_BYTES)
        )

    def test_unpublish_batch_carries_term_docid_pairs(self) -> None:
        from repro.dht.messages import unpublish_batch_message

        msg = unpublish_batch_message(1, 2, 4, hops=2)
        assert msg.kind is MessageKind.UNPUBLISH_BATCH
        assert msg.size_bytes == QUERY_HEADER_BYTES + 4 * (TERM_BYTES + TERM_BYTES)

    def test_poll_batch_carries_cursors_and_index_hashes(self) -> None:
        from repro.dht.messages import VERSION_BYTES, poll_batch_message

        msg = poll_batch_message(1, 2, num_terms=3, num_index_terms=5, hops=4)
        assert msg.kind is MessageKind.POLL_BATCH
        assert (
            msg.size_bytes
            == QUERY_HEADER_BYTES
            + 3 * (TERM_BYTES + VERSION_BYTES)
            + 5 * TERM_BYTES
        )

    def test_batch_of_n_cheaper_than_n_singles(self) -> None:
        from repro.dht.messages import publish_batch_message

        n = 8
        batch = publish_batch_message(1, 2, n, hops=1)
        singles = n * publish_message(1, 2, 1).size_bytes
        # Each single message also pays its own header; the batch pays
        # one header for all n postings.
        assert batch.size_bytes < singles + n * QUERY_HEADER_BYTES
