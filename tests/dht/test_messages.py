"""Tests for message types and the size model."""

from __future__ import annotations

import pytest

from repro.dht.messages import (
    ALL_KINDS,
    Message,
    MessageKind,
    POSTING_BYTES,
    QUERY_HEADER_BYTES,
    TERM_BYTES,
    postings_message,
    publish_message,
    query_batch_message,
    search_message,
)


class TestMessage:
    def test_frozen(self) -> None:
        msg = Message(MessageKind.LOOKUP, src=1, dst=2)
        with pytest.raises(AttributeError):
            msg.src = 9  # type: ignore[misc]

    def test_negative_size_rejected(self) -> None:
        with pytest.raises(ValueError):
            Message(MessageKind.LOOKUP, 1, 2, size_bytes=-1)

    def test_negative_hops_rejected(self) -> None:
        with pytest.raises(ValueError):
            Message(MessageKind.LOOKUP, 1, 2, hops=-1)

    def test_all_kinds_enumerated(self) -> None:
        assert len(ALL_KINDS) == len(MessageKind)
        assert MessageKind.PUBLISH_TERM in ALL_KINDS


class TestFactories:
    def test_publish_size(self) -> None:
        msg = publish_message(1, 2, hops=3)
        assert msg.kind is MessageKind.PUBLISH_TERM
        assert msg.size_bytes == TERM_BYTES + POSTING_BYTES
        assert msg.hops == 3

    def test_search_size(self) -> None:
        msg = search_message(1, 2, hops=4)
        assert msg.kind is MessageKind.SEARCH_TERM
        assert msg.size_bytes == TERM_BYTES + QUERY_HEADER_BYTES

    def test_postings_scales_with_entries(self) -> None:
        small = postings_message(1, 2, num_postings=1)
        large = postings_message(1, 2, num_postings=100)
        assert large.size_bytes - small.size_bytes == 99 * POSTING_BYTES

    def test_empty_postings_header_only(self) -> None:
        assert postings_message(1, 2, 0).size_bytes == QUERY_HEADER_BYTES

    def test_query_batch_scales(self) -> None:
        none = query_batch_message(1, 2, 0, 0.0)
        some = query_batch_message(1, 2, 10, 4.0)
        assert some.size_bytes > none.size_bytes
