"""Route-cache behaviour: the bounded map itself, and its integration
into ``ChordRing.lookup`` — epoch invalidation, message accounting, and
correctness across joins, leaves, and crashes (ISSUE 2 satellites)."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig
from repro.dht.messages import MessageKind
from repro.dht.ring import ChordRing
from repro.exceptions import NodeFailedError
from repro.perf import RouteCache


def make_ring(num_peers: int = 64, cache: int = 65536, **kwargs) -> ChordRing:
    return ChordRing(
        ChordConfig(num_peers=num_peers, route_cache_size=cache, **kwargs)
    )


class TestRouteCacheUnit:
    def test_rejects_nonpositive_capacity(self) -> None:
        with pytest.raises(ValueError):
            RouteCache(0)

    def test_store_and_get(self) -> None:
        cache = RouteCache(4)
        assert cache.get(1, 10) is None
        cache.store(1, 10, 99, epoch=3)
        assert cache.get(1, 10) == (99, 3)
        assert len(cache) == 1

    def test_fifo_eviction_at_capacity(self) -> None:
        cache = RouteCache(2)
        cache.store(1, 10, 99, 0)
        cache.store(1, 11, 98, 0)
        cache.store(1, 12, 97, 0)
        assert cache.get(1, 10) is None  # oldest evicted
        assert cache.get(1, 12) == (97, 0)
        assert cache.evictions == 1

    def test_restore_of_existing_key_does_not_evict(self) -> None:
        cache = RouteCache(2)
        cache.store(1, 10, 99, 0)
        cache.store(1, 11, 98, 0)
        cache.store(1, 10, 99, 1)  # overwrite, cache is full but key exists
        assert cache.evictions == 0
        assert cache.get(1, 11) == (98, 0)

    def test_refresh_restamps_epoch_and_counts(self) -> None:
        cache = RouteCache(4)
        cache.store(1, 10, 99, 0)
        cache.refresh(1, 10, 99, 5)
        assert cache.get(1, 10) == (99, 5)
        assert cache.revalidations == 1

    def test_invalidate_and_clear(self) -> None:
        cache = RouteCache(4)
        cache.store(1, 10, 99, 0)
        cache.invalidate(1, 10)
        assert cache.get(1, 10) is None
        cache.store(2, 20, 88, 0)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate_and_stats(self) -> None:
        cache = RouteCache(4)
        assert cache.hit_rate == 0.0
        cache.hits, cache.misses = 3, 1
        assert cache.hit_rate == 0.75
        stats = cache.stats()
        assert stats["hits"] == 3 and stats["capacity"] == 4


class TestPerRingScoping:
    """Regression (ISSUE 10 satellite): cache keys carry a ring scope.

    Keys used to be ``(node_id, key)`` only — correct while every ring
    owned a private cache, but two same-seed rings share node ids, so a
    shared cache would serve ring A's routes to ring B.  With matching
    epochs the revalidation path cannot catch it, silently returning a
    peer that may not even exist in the receiving ring."""

    def test_register_ring_returns_distinct_scopes(self) -> None:
        cache = RouteCache(16)
        assert cache.register_ring() != cache.register_ring()

    def test_scoped_entries_do_not_collide(self) -> None:
        cache = RouteCache(16)
        cache.store(1, 10, 99, 0, ring=1)
        cache.store(1, 10, 77, 4, ring=2)
        assert cache.get(1, 10, ring=1) == (99, 0)
        assert cache.get(1, 10, ring=2) == (77, 4)
        cache.invalidate(1, 10, ring=1)
        assert cache.get(1, 10, ring=1) is None
        assert cache.get(1, 10, ring=2) == (77, 4)

    def test_shared_cache_does_not_cross_serve_rings(self) -> None:
        """Two same-id rings share one cache and churn divergently at
        equal epochs; each ring must still resolve its own owner."""
        shared = RouteCache(1024)
        ids = [100, 2000, 40000]
        ring_a = ChordRing(
            ChordConfig(num_peers=3, route_cache_size=0),
            node_ids=list(ids),
            route_cache=shared,
        )
        ring_b = ChordRing(
            ChordConfig(num_peers=3, route_cache_size=0),
            node_ids=list(ids),
            route_cache=shared,
        )
        key = 1500  # owned by node 2000 in both rings initially
        # Ring B: a join takes over the key; cache the new route (epoch 1).
        ring_b.join(node_id=1600)
        assert ring_b.lookup(100, key).node_id == 1600
        # Ring A: unrelated join bumps A's epoch to the same value.  An
        # unscoped cache would now serve B's route (1600 — a node that
        # does not even exist in A) without revalidation.
        ring_a.join(node_id=30000)
        assert ring_a.epoch == ring_b.epoch
        assert ring_a.lookup(100, key).node_id == 2000

    def test_both_rings_still_get_cache_hits(self) -> None:
        shared = RouteCache(1024)
        ids = [100, 2000, 40000]
        rings = [
            ChordRing(
                ChordConfig(num_peers=3, route_cache_size=0),
                node_ids=list(ids),
                route_cache=shared,
            )
            for __ in range(2)
        ]
        for ring in rings:
            ring.lookup(100, 1500)
        hits0 = shared.hits
        for ring in rings:
            assert ring.lookup(100, 1500).hops == 1
        assert shared.hits == hits0 + 2


class TestRingIntegration:
    def test_cache_disabled_when_size_zero(self) -> None:
        ring = make_ring(cache=0)
        assert ring.route_cache is None
        start = ring.live_ids[0]
        assert ring.lookup(start, 12345).node_id == ring.successor_of(12345)

    def test_repeat_lookup_served_from_cache(self) -> None:
        ring = make_ring()
        start = ring.live_ids[0]
        key = 123456789 % ring.space.size
        first = ring.lookup(start, key)
        assert ring.route_cache.hits == 0
        second = ring.lookup(start, key)
        assert second.node_id == first.node_id
        assert ring.route_cache.hits == 1
        # A cache hit is a direct contact: exactly one hop.
        assert second.hops == 1

    def test_cached_hit_accounts_one_lookup_message_and_hop(self) -> None:
        ring = make_ring()
        start = ring.live_ids[0]
        key = 987654321 % ring.space.size
        ring.lookup(start, key)
        before = ring.stats.kind(MessageKind.LOOKUP)
        msgs0, hops0 = before.messages, before.hops
        ring.lookup(start, key)  # cache hit
        after = ring.stats.kind(MessageKind.LOOKUP)
        assert after.messages == msgs0 + 1
        assert after.hops == hops0 + 1

    def test_cache_not_consulted_when_start_owns_key(self) -> None:
        ring = make_ring()
        owner = ring.live_ids[5]
        key = owner  # a node always owns its own id
        for __ in range(2):
            result = ring.lookup(owner, key)
            assert result.node_id == owner
            assert result.hops == 0

    def test_lookup_correct_after_join_takes_over_key(self) -> None:
        """Regression (ISSUE 2 satellite): a join that takes ownership of
        a cached key must invalidate the stale route via the epoch bump."""
        ring = ChordRing(
            ChordConfig(num_peers=3, route_cache_size=64), node_ids=[100, 2000, 40000]
        )
        key = 1500  # owned by 2000
        assert ring.lookup(100, key).node_id == 2000
        ring.join(node_id=1600)  # takes over (100, 1600], including 1500
        assert ring.successor_of(key) == 1600
        assert ring.lookup(100, key).node_id == 1600

    def test_lookup_correct_after_collision_probed_join(self) -> None:
        """A name-hashed join lands via collision probing on a fresh id;
        cached routes into the interval it takes over must not survive."""
        ring = make_ring(num_peers=32)
        start = ring.live_ids[0]
        keys = [(7919 * i) % ring.space.size for i in range(50)]
        for key in keys:
            ring.lookup(start, key)
        new_id = ring.join(name="late-arriving-peer")
        assert ring.is_live(new_id)
        for key in keys:
            assert ring.lookup(start, key).node_id == ring.successor_of(key)

    def test_lookup_correct_after_graceful_leave(self) -> None:
        ring = make_ring(num_peers=32)
        start = ring.live_ids[0]
        key = (ring.live_ids[10] - 1) % ring.space.size
        owner = ring.lookup(start, key).node_id
        if owner == start:
            owner = ring.live_ids[10]
        ring.leave(owner)
        assert ring.lookup(start, key).node_id == ring.successor_of(key)

    def test_cached_route_to_crashed_node_fails_like_routing(self) -> None:
        """A cached route pointing at a crashed, unrepaired owner must
        fail exactly like routed lookup does (Section 7 window), not
        silently return the dead peer."""
        ring = make_ring(num_peers=32)
        start = ring.live_ids[0]
        key = (ring.live_ids[16] + 1) % ring.space.size
        owner = ring.lookup(start, key).node_id
        if owner == start:
            pytest.skip("start owns the probe key for this seed")
        ring.fail(owner)
        with pytest.raises(NodeFailedError):
            ring.lookup(start, key)
        ring.stabilize()
        assert ring.lookup(start, key).node_id == ring.successor_of(key)

    def test_revalidation_survives_unrelated_churn(self) -> None:
        """Epoch changes from membership events elsewhere on the ring
        revalidate (not discard) still-correct routes."""
        ring = make_ring(num_peers=64)
        start = ring.live_ids[0]
        key = (ring.live_ids[32] + 1) % ring.space.size
        owner = ring.lookup(start, key).node_id
        ring.join(name="elsewhere")  # almost surely not in (start, owner]
        result = ring.lookup(start, key)
        assert result.node_id == ring.successor_of(key)
        if result.node_id == owner and result.hops == 1:
            assert ring.route_cache.revalidations >= 1

    def test_oracle_agreement_under_mixed_churn(self) -> None:
        import random

        ring = make_ring(num_peers=48)
        rng = random.Random(11)
        for step in range(6):
            keys = [rng.randrange(ring.space.size) for __ in range(40)]
            starts = [ring.random_live_id(rng) for __ in keys]
            for start, key in zip(starts, keys):
                assert ring.lookup(start, key).node_id == ring.successor_of(key)
            ring.join(name=f"churn-{step}")
            ring.leave(ring.random_live_id(rng))
            ring.stabilize()
            for start, key in zip(starts, keys):
                if ring.is_live(start):
                    assert ring.lookup(start, key).node_id == ring.successor_of(key)
