"""Tests for the Bloom filter substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.bloom import BloomFilter, intersection_plan


class TestBasics:
    def test_members_always_found(self) -> None:
        bloom = BloomFilter(capacity=100)
        keys = [f"doc{i}" for i in range(100)]
        bloom.update(keys)
        for key in keys:
            assert key in bloom

    def test_empty_filter_rejects_everything(self) -> None:
        bloom = BloomFilter(capacity=10)
        assert "anything" not in bloom
        assert bloom.expected_false_positive_rate == 0.0

    def test_len_counts_insertions(self) -> None:
        bloom = BloomFilter(capacity=10)
        bloom.add("a")
        bloom.add("a")
        assert len(bloom) == 2

    def test_invalid_parameters(self) -> None:
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, error_rate=0.0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, error_rate=1.0)


class TestSizing:
    def test_lower_error_rate_bigger_filter(self) -> None:
        loose = BloomFilter(capacity=1000, error_rate=0.1)
        tight = BloomFilter(capacity=1000, error_rate=0.001)
        assert tight.num_bits > loose.num_bits
        assert tight.num_hashes >= loose.num_hashes

    def test_size_bytes_matches_bit_array(self) -> None:
        bloom = BloomFilter(capacity=100, error_rate=0.01)
        assert bloom.size_bytes == (bloom.num_bits + 7) // 8

    def test_filter_much_smaller_than_posting_list(self) -> None:
        """The compression argument: a 1%-error filter over n keys takes
        ~1.2 bytes/key vs 24 bytes/posting."""
        n = 5000
        bloom = BloomFilter.from_keys([f"doc{i}" for i in range(n)], 0.01)
        assert bloom.size_bytes < n * 24 / 10


class TestFalsePositives:
    def test_empirical_rate_near_target(self) -> None:
        rng = random.Random(7)
        members = [f"m{i}" for i in range(2000)]
        bloom = BloomFilter.from_keys(members, error_rate=0.02)
        probes = [f"x{rng.random()}" for __ in range(4000)]
        fp = sum(1 for p in probes if p in bloom)
        assert fp / len(probes) < 0.06  # 3x headroom over target

    def test_expected_rate_increases_with_fill(self) -> None:
        bloom = BloomFilter(capacity=100, error_rate=0.01)
        rates = []
        for i in range(100):
            bloom.add(f"k{i}")
            rates.append(bloom.expected_false_positive_rate)
        assert rates[-1] > rates[0]
        assert rates == sorted(rates)

    def test_filter_candidates_superset_of_members(self) -> None:
        members = [f"m{i}" for i in range(50)]
        bloom = BloomFilter.from_keys(members)
        universe = members + [f"other{i}" for i in range(50)]
        survivors = set(bloom.filter_candidates(universe))
        assert set(members) <= survivors


class TestIntersectionPlan:
    def test_rarest_first(self) -> None:
        assert intersection_plan([500, 3, 70]) == [1, 2, 0]

    def test_stable_on_ties(self) -> None:
        assert intersection_plan([5, 5, 5]) == [0, 1, 2]

    def test_empty(self) -> None:
        assert intersection_plan([]) == []


@settings(max_examples=40)
@given(st.sets(st.text(min_size=1, max_size=12), min_size=1, max_size=80))
def test_no_false_negatives_property(keys: set) -> None:
    """Bloom filters may lie about membership but never about
    non-membership of inserted keys."""
    bloom = BloomFilter.from_keys(sorted(keys), error_rate=0.05)
    for key in keys:
        assert key in bloom
