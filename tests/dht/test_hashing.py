"""Tests for the identifier space and MD5 ring hashing."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.hashing import IdSpace, md5_hash


class TestMd5Hash:
    def test_matches_hashlib(self) -> None:
        full = int.from_bytes(hashlib.md5(b"chord").digest(), "big")
        assert md5_hash("chord", 128) == full
        assert md5_hash("chord", 32) == full >> 96

    def test_within_range(self) -> None:
        for bits in (8, 16, 32, 64):
            value = md5_hash("some term", bits)
            assert 0 <= value < (1 << bits)

    def test_deterministic(self) -> None:
        assert md5_hash("term", 32) == md5_hash("term", 32)

    def test_different_keys_differ(self) -> None:
        assert md5_hash("alpha", 64) != md5_hash("beta", 64)


class TestIdSpace:
    def test_size(self) -> None:
        assert IdSpace(8).size == 256

    def test_invalid_bits(self) -> None:
        with pytest.raises(ValueError):
            IdSpace(0)
        with pytest.raises(ValueError):
            IdSpace(129)

    def test_distance_basic(self) -> None:
        space = IdSpace(8)
        assert space.distance(10, 20) == 10
        assert space.distance(20, 10) == 246   # wraps
        assert space.distance(5, 5) == 0

    def test_finger_start(self) -> None:
        space = IdSpace(8)
        assert space.finger_start(0, 0) == 1
        assert space.finger_start(0, 7) == 128
        assert space.finger_start(200, 7) == (200 + 128) % 256

    def test_finger_start_out_of_range(self) -> None:
        with pytest.raises(ValueError):
            IdSpace(8).finger_start(0, 8)


class TestInterval:
    def test_simple_interval(self) -> None:
        space = IdSpace(8)
        assert space.in_interval(15, 10, 20)
        assert space.in_interval(20, 10, 20)        # right-inclusive
        assert not space.in_interval(10, 10, 20)    # left-exclusive
        assert not space.in_interval(25, 10, 20)

    def test_wrapping_interval(self) -> None:
        space = IdSpace(8)
        assert space.in_interval(5, 250, 10)
        assert space.in_interval(255, 250, 10)
        assert not space.in_interval(100, 250, 10)

    def test_degenerate_interval_is_full_ring(self) -> None:
        space = IdSpace(8)
        assert space.in_interval(123, 7, 7)
        assert space.in_interval(7, 7, 7)

    def test_exclusive_right(self) -> None:
        space = IdSpace(8)
        assert not space.in_interval(20, 10, 20, inclusive_right=False)
        assert space.in_interval(19, 10, 20, inclusive_right=False)


class TestClosestTerm:
    def test_picks_minimal_ring_gap(self) -> None:
        space = IdSpace(8)
        terms = {"near": 100, "far": 200}
        assert space.closest_term_to_key(105, terms) == "near"

    def test_wraparound_distance_counts(self) -> None:
        space = IdSpace(8)
        # 250 is 6 backward-steps from 0 (wrap), 50 forward to 200... so
        # "wrap" (at 250) is closer to key 0 than "mid" (at 100).
        terms = {"wrap": 250, "mid": 100}
        assert space.closest_term_to_key(0, terms) == "wrap"

    def test_deterministic_tie_break(self) -> None:
        space = IdSpace(8)
        terms = {"b": 110, "a": 90}  # both 10 away from 100
        assert space.closest_term_to_key(100, terms) == "a"

    def test_empty_candidates_raise(self) -> None:
        with pytest.raises(ValueError):
            IdSpace(8).closest_term_to_key(0, {})


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)
def test_interval_membership_matches_linear_scan(x: int, a: int, b: int) -> None:
    """in_interval must agree with a brute-force walk around the ring."""
    space = IdSpace(8)
    if a == b:
        expected = True
    else:
        walk = []
        pos = (a + 1) % 256
        while pos != b:
            walk.append(pos)
            pos = (pos + 1) % 256
        walk.append(b)
        expected = x in walk
    assert space.in_interval(x, a, b) == expected


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_distance_antisymmetry(a: int, b: int) -> None:
    space = IdSpace(8)
    if a != b:
        assert space.distance(a, b) + space.distance(b, a) == 256
    else:
        assert space.distance(a, b) == 0
