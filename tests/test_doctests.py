"""Execute the doctest examples embedded in module docstrings.

The public API's docstrings carry usage examples; running them keeps the
documentation honest as the code evolves.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.scoring
import repro.ir.weighting
import repro.text.analyzer
import repro.text.stemmer
import repro.text.stopwords
import repro.text.tokenizer

MODULES = [
    repro.core.scoring,
    repro.ir.weighting,
    repro.text.analyzer,
    repro.text.stemmer,
    repro.text.stopwords,
    repro.text.tokenizer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module) -> None:
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_at_least_some_examples_exist() -> None:
    """Guard against the doctests silently disappearing."""
    total = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert total >= 8
