"""Tests for per-message latency models."""

from __future__ import annotations

import random

import pytest

from repro.net import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)


class TestConstant:
    def test_always_same(self) -> None:
        model = ConstantLatency(ms=42.0)
        rng = random.Random(0)
        assert [model.sample(rng) for __ in range(5)] == [42.0] * 5

    def test_negative_rejected(self) -> None:
        with pytest.raises(ValueError):
            ConstantLatency(ms=-1.0)


class TestUniform:
    def test_within_bounds(self) -> None:
        model = UniformLatency(low_ms=10.0, high_ms=20.0)
        rng = random.Random(7)
        samples = [model.sample(rng) for __ in range(200)]
        assert all(10.0 <= s <= 20.0 for s in samples)
        assert max(samples) > min(samples)  # actually varies

    def test_inverted_bounds_rejected(self) -> None:
        with pytest.raises(ValueError):
            UniformLatency(low_ms=20.0, high_ms=10.0)


class TestLogNormal:
    def test_positive_and_heavy_tailed(self) -> None:
        model = LogNormalLatency(median_ms=60.0, sigma=0.55)
        rng = random.Random(13)
        samples = sorted(model.sample(rng) for __ in range(2000))
        assert all(s > 0 for s in samples)
        median = samples[len(samples) // 2]
        assert 50.0 < median < 72.0          # concentrates near the median
        assert samples[-1] > 3 * median      # with a long tail

    def test_sigma_zero_is_constant(self) -> None:
        model = LogNormalLatency(median_ms=60.0, sigma=0.0)
        rng = random.Random(1)
        assert model.sample(rng) == pytest.approx(60.0)

    def test_invalid_params_rejected(self) -> None:
        with pytest.raises(ValueError):
            LogNormalLatency(median_ms=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(sigma=-0.1)

    def test_king_default(self) -> None:
        assert LogNormalLatency.king().median_ms == 60.0


class TestProtocol:
    def test_all_models_satisfy_protocol(self) -> None:
        for model in (ConstantLatency(), UniformLatency(), LogNormalLatency()):
            assert isinstance(model, LatencyModel)


class TestDeterminism:
    def test_same_rng_seed_same_samples(self) -> None:
        model = LogNormalLatency()
        a = [model.sample(random.Random(99)) for __ in range(1)]
        b = [model.sample(random.Random(99)) for __ in range(1)]
        assert a == b
