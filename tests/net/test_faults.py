"""Tests for the fault injector."""

from __future__ import annotations

import random

import pytest

from repro.net import FaultInjector


class TestDrops:
    def test_zero_probability_never_drops(self) -> None:
        injector = FaultInjector(drop_probability=0.0)
        rng = random.Random(0)
        assert not any(injector.should_drop(rng) for __ in range(100))

    def test_probability_one_always_drops(self) -> None:
        injector = FaultInjector(drop_probability=1.0)
        rng = random.Random(0)
        assert all(injector.should_drop(rng) for __ in range(100))

    def test_rate_roughly_respected(self) -> None:
        injector = FaultInjector(drop_probability=0.3)
        rng = random.Random(42)
        drops = sum(injector.should_drop(rng) for __ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_zero_probability_consumes_no_randomness(self) -> None:
        injector = FaultInjector(drop_probability=0.0)
        rng = random.Random(5)
        before = rng.getstate()
        injector.should_drop(rng)
        assert rng.getstate() == before

    def test_invalid_probability_rejected(self) -> None:
        with pytest.raises(ValueError):
            FaultInjector(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultInjector(drop_probability=-0.1)


class TestBlackouts:
    def test_window_is_half_open(self) -> None:
        injector = FaultInjector()
        injector.blackout(7, start_ms=100.0, end_ms=200.0)
        assert not injector.in_blackout(7, 99.9)
        assert injector.in_blackout(7, 100.0)
        assert injector.in_blackout(7, 199.9)
        assert not injector.in_blackout(7, 200.0)

    def test_only_named_node_affected(self) -> None:
        injector = FaultInjector()
        injector.blackout(7, 0.0, 1000.0)
        assert not injector.in_blackout(8, 500.0)

    def test_multiple_windows(self) -> None:
        injector = FaultInjector()
        injector.blackout(1, 0.0, 10.0)
        injector.blackout(1, 50.0, 60.0)
        assert injector.in_blackout(1, 5.0)
        assert not injector.in_blackout(1, 30.0)
        assert injector.in_blackout(1, 55.0)

    def test_empty_window_rejected(self) -> None:
        with pytest.raises(ValueError):
            FaultInjector().blackout(1, 10.0, 10.0)


class TestSlowNodes:
    def test_default_factor_is_one(self) -> None:
        assert FaultInjector().latency_factor(1, 2) == 1.0

    def test_src_and_dst_factors_multiply(self) -> None:
        injector = FaultInjector()
        injector.mark_slow(1, 3.0)
        injector.mark_slow(2, 2.0)
        assert injector.latency_factor(1, 2) == 6.0
        assert injector.latency_factor(1, 9) == 3.0
        assert injector.latency_factor(9, 2) == 2.0

    def test_clear_slow(self) -> None:
        injector = FaultInjector()
        injector.mark_slow(1, 4.0)
        injector.clear_slow(1)
        assert injector.latency_factor(1, 2) == 1.0
        assert injector.slow_nodes == {}

    def test_speedup_factor_rejected(self) -> None:
        with pytest.raises(ValueError):
            FaultInjector().mark_slow(1, 0.5)


class TestFlakyNodes:
    def test_composed_rate_multiplies_survival_legs(self) -> None:
        faults = FaultInjector(drop_probability=0.1)
        faults.mark_flaky(1, 0.2)
        faults.mark_flaky(2, 0.5)
        expected = 1.0 - (1.0 - 0.1) * (1.0 - 0.2) * (1.0 - 0.5)
        assert faults.drop_probability_for(1, 2) == pytest.approx(expected)
        # only the src leg when the dst is clean
        assert faults.drop_probability_for(1, 3) == pytest.approx(
            1.0 - 0.9 * 0.8
        )

    def test_self_send_counts_the_flaky_leg_once(self) -> None:
        faults = FaultInjector()
        faults.mark_flaky(1, 0.25)
        assert faults.drop_probability_for(1, 1) == pytest.approx(0.25)

    def test_zero_rate_consumes_no_randomness(self) -> None:
        faults = FaultInjector()
        faults.mark_flaky(9, 0.5)
        rng = random.Random(0)
        state = rng.getstate()
        # neither endpoint is flaky and the global rate is zero
        assert not faults.should_drop_for(1, 2, rng)
        assert rng.getstate() == state
        # a flaky endpoint does consume randomness
        faults.should_drop_for(1, 9, rng)
        assert rng.getstate() != state

    def test_certain_loss_always_drops(self) -> None:
        faults = FaultInjector()
        faults.mark_flaky(5, 1.0)
        rng = random.Random(3)
        assert all(faults.should_drop_for(5, 6, rng) for __ in range(50))

    def test_clear_flaky_restores_the_global_rate(self) -> None:
        faults = FaultInjector()
        faults.mark_flaky(4, 0.3)
        assert faults.flaky_nodes == {4: 0.3}
        faults.clear_flaky(4)
        assert faults.flaky_nodes == {}
        assert faults.drop_probability_for(4, 5) == 0.0
        faults.clear_flaky(4)  # idempotent on unknown nodes

    def test_probability_validated(self) -> None:
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.mark_flaky(1, -0.1)
        with pytest.raises(ValueError):
            faults.mark_flaky(1, 1.1)

    def test_flaky_nodes_property_returns_a_copy(self) -> None:
        faults = FaultInjector()
        faults.mark_flaky(1, 0.2)
        snapshot = faults.flaky_nodes
        snapshot[1] = 0.9
        assert faults.flaky_nodes == {1: 0.2}
