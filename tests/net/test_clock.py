"""Tests for the simulated network clock."""

from __future__ import annotations

import pytest

from repro.net import SimulatedClock


class TestClock:
    def test_starts_at_zero(self) -> None:
        assert SimulatedClock().now == 0.0

    def test_custom_start(self) -> None:
        assert SimulatedClock(start_ms=12.5).now == 12.5

    def test_advance_accumulates(self) -> None:
        clock = SimulatedClock()
        clock.advance(10.0)
        assert clock.advance(2.5) == 12.5
        assert clock.now == 12.5

    def test_zero_advance_allowed(self) -> None:
        clock = SimulatedClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_cannot_run_backwards(self) -> None:
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_negative_start_rejected(self) -> None:
        with pytest.raises(ValueError):
            SimulatedClock(start_ms=-1.0)

    def test_reset_of_fresh_clock_is_allowed(self) -> None:
        clock = SimulatedClock()
        clock.reset()
        assert clock.now == 0.0

    def test_mid_run_reset_requires_opt_in(self) -> None:
        """Regression: a silent mid-run rewind used to break trace
        monotonicity — it must now be an explicit decision."""
        clock = SimulatedClock()
        clock.advance(99.0)
        with pytest.raises(ValueError, match="rewind"):
            clock.reset()
        assert clock.now == 99.0  # the guarded call must not rewind

    def test_forced_reset_rewinds(self) -> None:
        clock = SimulatedClock()
        clock.advance(99.0)
        clock.reset(force=True)
        assert clock.now == 0.0

    def test_custom_start_counts_as_advanced(self) -> None:
        with pytest.raises(ValueError, match="rewind"):
            SimulatedClock(start_ms=5.0).reset()
