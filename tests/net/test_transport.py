"""Tests for delivery semantics: perfect and lossy transports."""

from __future__ import annotations

import random

import pytest

from repro.config import NetworkConfig
from repro.dht.messages import Message, MessageKind
from repro.net import (
    ConstantLatency,
    DeliveryOutcome,
    DeliveryPolicy,
    FaultInjector,
    LogNormalLatency,
    LossyTransport,
    PerfectTransport,
    TraceLog,
    Transport,
    UniformLatency,
    build_latency_model,
    build_transport,
)


def msg(src: int = 1, dst: int = 2) -> Message:
    return Message(MessageKind.SEARCH_TERM, src=src, dst=dst)


class TestPerfectTransport:
    def test_instant_first_attempt_delivery(self) -> None:
        transport = PerfectTransport()
        receipt = transport.deliver(msg())
        assert receipt.ok
        assert receipt.attempts == 1
        assert receipt.latency_ms == 0.0
        assert transport.clock.now == 0.0

    def test_dead_destination(self) -> None:
        receipt = PerfectTransport().deliver(msg(), dst_alive=False)
        assert receipt.outcome is DeliveryOutcome.DEST_DOWN

    def test_inactive_without_trace(self) -> None:
        assert PerfectTransport().active is False

    def test_active_with_trace(self) -> None:
        transport = PerfectTransport(trace=TraceLog())
        assert transport.active is True
        transport.deliver(msg())
        assert transport.trace.rollup().delivered == 1

    def test_satisfies_protocol(self) -> None:
        assert isinstance(PerfectTransport(), Transport)


class TestLossyDelivery:
    def test_lossless_config_delivers_with_latency(self) -> None:
        transport = LossyTransport(latency=ConstantLatency(ms=30.0), seed=1)
        receipt = transport.deliver(msg())
        assert receipt.ok
        assert receipt.attempts == 1
        assert receipt.latency_ms == 30.0
        assert transport.clock.now == 30.0

    def test_always_active(self) -> None:
        assert LossyTransport().active is True

    def test_certain_drop_exhausts_retries(self) -> None:
        policy = DeliveryPolicy(timeout_ms=100.0, max_retries=2,
                                backoff_base_ms=10.0, jitter_ms=0.0)
        transport = LossyTransport(
            faults=FaultInjector(drop_probability=1.0), policy=policy, seed=1
        )
        receipt = transport.deliver(msg())
        assert receipt.outcome is DeliveryOutcome.DROPPED
        assert receipt.attempts == 3  # 1 + max_retries
        # 3 timeouts + backoffs of 10 and 20 ms
        assert receipt.latency_ms == pytest.approx(330.0)

    def test_dead_destination_burns_all_attempts(self) -> None:
        policy = DeliveryPolicy(timeout_ms=50.0, max_retries=1,
                                backoff_base_ms=0.0, jitter_ms=0.0)
        transport = LossyTransport(policy=policy, seed=1)
        receipt = transport.deliver(msg(), dst_alive=False)
        assert receipt.outcome is DeliveryOutcome.DEST_DOWN
        assert receipt.attempts == 2
        assert receipt.latency_ms == pytest.approx(100.0)

    def test_retry_recovers_from_transient_drop(self) -> None:
        # With p=0.5 and 4 attempts, most messages still get through;
        # with retries disabled many do not — the whole point of the
        # delivery policy.
        policy_with = DeliveryPolicy(max_retries=3, jitter_ms=0.0)
        policy_without = DeliveryPolicy(max_retries=0, jitter_ms=0.0)

        def delivered(policy: DeliveryPolicy) -> int:
            transport = LossyTransport(
                latency=ConstantLatency(ms=10.0),
                faults=FaultInjector(drop_probability=0.5),
                policy=policy,
                seed=7,
            )
            return sum(transport.deliver(msg()).ok for __ in range(300))

        assert delivered(policy_with) > 260
        assert delivered(policy_without) < 200

    def test_timeout_treats_slow_attempt_as_loss(self) -> None:
        policy = DeliveryPolicy(timeout_ms=100.0, max_retries=0, jitter_ms=0.0)
        transport = LossyTransport(latency=ConstantLatency(ms=500.0),
                                   policy=policy, seed=1)
        receipt = transport.deliver(msg())
        assert receipt.outcome is DeliveryOutcome.DROPPED
        assert receipt.latency_ms == pytest.approx(100.0)

    def test_slow_node_pushes_past_timeout(self) -> None:
        faults = FaultInjector()
        faults.mark_slow(2, 10.0)  # dst 10x slower: 60ms -> 600ms > timeout
        policy = DeliveryPolicy(timeout_ms=400.0, max_retries=0, jitter_ms=0.0)
        transport = LossyTransport(latency=ConstantLatency(ms=60.0),
                                   faults=faults, policy=policy, seed=1)
        assert transport.deliver(msg(dst=2)).outcome is DeliveryOutcome.DROPPED
        assert transport.deliver(msg(dst=3)).ok

    def test_blackout_window_blocks_then_heals(self) -> None:
        faults = FaultInjector()
        faults.blackout(2, start_ms=0.0, end_ms=200.0)
        policy = DeliveryPolicy(timeout_ms=50.0, max_retries=0,
                                backoff_base_ms=0.0, jitter_ms=0.0)
        transport = LossyTransport(latency=ConstantLatency(ms=10.0),
                                   faults=faults, policy=policy, seed=1)
        # During the window every delivery times out (clock: 0 -> 200).
        outcomes = [transport.deliver(msg(dst=2)).outcome for __ in range(4)]
        assert outcomes == [DeliveryOutcome.DROPPED] * 4
        # The clock has left the window; deliveries succeed again.
        assert transport.deliver(msg(dst=2)).ok

    def test_trace_records_every_delivery(self) -> None:
        transport = LossyTransport(seed=3)
        transport.deliver(msg())
        transport.deliver(msg(), dst_alive=False)
        summary = transport.trace.rollup()
        assert summary.messages == 2
        assert summary.delivered == 1
        assert summary.dest_down == 1


class TestDeliveryPolicy:
    def test_backoff_grows_exponentially(self) -> None:
        policy = DeliveryPolicy(backoff_base_ms=100.0, backoff_factor=2.0,
                                jitter_ms=0.0)
        rng = random.Random(0)
        assert policy.backoff_before(0, rng) == 0.0
        assert policy.backoff_before(1, rng) == 100.0
        assert policy.backoff_before(2, rng) == 200.0
        assert policy.backoff_before(3, rng) == 400.0

    def test_jitter_bounded(self) -> None:
        policy = DeliveryPolicy(backoff_base_ms=100.0, jitter_ms=20.0)
        rng = random.Random(0)
        for __ in range(50):
            backoff = policy.backoff_before(1, rng)
            assert 100.0 <= backoff <= 120.0

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            DeliveryPolicy(timeout_ms=0.0)
        with pytest.raises(ValueError):
            DeliveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            DeliveryPolicy(backoff_factor=0.5)


class TestDeterminism:
    def test_same_seed_identical_history(self) -> None:
        def run(seed: int) -> str:
            transport = LossyTransport(
                latency=LogNormalLatency(),
                faults=FaultInjector(drop_probability=0.2),
                seed=seed,
            )
            for i in range(200):
                transport.deliver(msg(src=i, dst=i + 1))
            return transport.trace.summary_table()

        assert run(11) == run(11)

    def test_different_seed_different_history(self) -> None:
        def run(seed: int) -> str:
            transport = LossyTransport(
                latency=LogNormalLatency(),
                faults=FaultInjector(drop_probability=0.2),
                seed=seed,
            )
            for __ in range(200):
                transport.deliver(msg())
            return transport.trace.summary_table()

        assert run(11) != run(12)


class TestFactory:
    def test_none_yields_perfect(self) -> None:
        assert isinstance(build_transport(None), PerfectTransport)

    def test_default_config_yields_perfect(self) -> None:
        assert isinstance(build_transport(NetworkConfig()), PerfectTransport)

    def test_lossy_config(self) -> None:
        config = NetworkConfig(transport="lossy", drop_probability=0.1,
                               latency_model="lognormal", seed=5)
        transport = build_transport(config)
        assert isinstance(transport, LossyTransport)
        assert transport.faults.drop_probability == 0.1
        assert isinstance(transport.latency, LogNormalLatency)
        assert transport.trace is not None

    def test_trace_disabled(self) -> None:
        config = NetworkConfig(transport="lossy", keep_trace=False)
        assert build_transport(config).trace is None

    def test_latency_model_selection(self) -> None:
        assert isinstance(
            build_latency_model(NetworkConfig(latency_model="constant")),
            ConstantLatency,
        )
        assert isinstance(
            build_latency_model(NetworkConfig(latency_model="uniform")),
            UniformLatency,
        )
        assert isinstance(
            build_latency_model(NetworkConfig(latency_model="lognormal")),
            LogNormalLatency,
        )

    def test_same_config_seed_reproducible(self) -> None:
        config = NetworkConfig(transport="lossy", drop_probability=0.3, seed=21)

        def run() -> str:
            transport = build_transport(config)
            for __ in range(100):
                transport.deliver(msg())
            return transport.trace.summary_table()

        assert run() == run()


class TestFlakyIntegration:
    def test_flaky_responder_drops_its_messages_only(self) -> None:
        policy = DeliveryPolicy(timeout_ms=100.0, max_retries=0,
                                backoff_base_ms=0.0, jitter_ms=0.0)
        faults = FaultInjector()
        faults.mark_flaky(2, 1.0)  # node 2 eats every attempt
        transport = LossyTransport(
            latency=ConstantLatency(ms=5.0), faults=faults, policy=policy,
            seed=1,
        )
        assert transport.deliver(msg(1, 2)).outcome is DeliveryOutcome.DROPPED
        assert transport.deliver(msg(2, 3)).outcome is DeliveryOutcome.DROPPED
        assert transport.deliver(msg(3, 4)).ok

    def test_marking_flaky_does_not_desync_clean_paths(self) -> None:
        def history(flaky: bool) -> list:
            faults = FaultInjector()
            if flaky:
                faults.mark_flaky(99, 0.5)  # node never touched below
            transport = LossyTransport(
                latency=UniformLatency(low_ms=1.0, high_ms=9.0),
                faults=faults,
                seed=11,
            )
            receipts = [transport.deliver(msg(1, 2)) for __ in range(40)]
            return [(r.ok, r.attempts, r.latency_ms) for r in receipts]

        # should_drop_for consumes no randomness on clean src/dst pairs,
        # so replays with and without unrelated flaky peers agree.
        assert history(flaky=False) == history(flaky=True)
