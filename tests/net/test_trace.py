"""Tests for message tracing and rollup reports."""

from __future__ import annotations

import pytest

from repro.net import (
    DELIVERED,
    DEST_DOWN,
    DROPPED,
    MessageTrace,
    TraceLog,
    percentile,
)


def trace(
    kind: str = "search_term",
    attempts: int = 1,
    latency: float = 50.0,
    outcome: str = DELIVERED,
) -> MessageTrace:
    return MessageTrace(
        kind=kind, src=1, dst=2, attempts=attempts, latency_ms=latency, outcome=outcome
    )


class TestPercentile:
    def test_empty_is_zero(self) -> None:
        assert percentile([], 50) == 0.0

    def test_empty_is_zero_at_every_quantile(self) -> None:
        """The documented 0.0-on-empty behaviour holds across the whole
        q range — including the boundaries and the fractional p99.9 the
        concurrency reports use — so reports can always print."""
        for q in (0.0, 0.1, 50, 99, 99.9, 100.0):
            assert percentile([], q) == 0.0

    def test_empty_still_validates_q(self) -> None:
        """An out-of-range q is rejected even when the sample set is
        empty — the guard runs before the empty-sample short-circuit."""
        with pytest.raises(ValueError):
            percentile([], -0.1)
        with pytest.raises(ValueError):
            percentile([], 100.1)

    def test_fractional_quantile_nearest_rank(self) -> None:
        samples = [float(v) for v in range(1, 2001)]  # 1..2000
        assert percentile(samples, 99.9) == 1999.0
        assert percentile([5.0, 6.0], 99.9) == 6.0

    def test_single_sample(self) -> None:
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank(self) -> None:
        samples = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 90) == 90.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_order_independent(self) -> None:
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_invalid_q_rejected(self) -> None:
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestRollup:
    def test_counts_by_outcome(self) -> None:
        log = TraceLog()
        log.record(trace(outcome=DELIVERED))
        log.record(trace(outcome=DROPPED, attempts=4))
        log.record(trace(outcome=DEST_DOWN, attempts=4))
        summary = log.rollup()
        assert summary.messages == 3
        assert summary.delivered == 1
        assert summary.dropped == 1
        assert summary.dest_down == 1
        assert summary.attempts == 9
        assert summary.retries == 6

    def test_latency_percentiles_delivered_only(self) -> None:
        log = TraceLog()
        for latency in (10.0, 20.0, 30.0):
            log.record(trace(latency=latency))
        log.record(trace(outcome=DROPPED, latency=9999.0))
        summary = log.rollup()
        assert summary.latency_p50_ms == 20.0
        assert summary.latency_p99_ms == 30.0
        assert summary.latency_p99_9_ms == 30.0
        assert summary.latency_mean_ms == pytest.approx(20.0)

    def test_p99_9_separates_from_p99_at_scale(self) -> None:
        """With ≳1000 delivered samples the deep-tail readout picks a
        strictly later rank than p99 — the whole point of reporting it."""
        log = TraceLog()
        for latency in range(1, 2001):  # 1..2000 ms
            log.record(trace(latency=float(latency)))
        summary = log.rollup()
        assert summary.latency_p99_ms == 1980.0
        assert summary.latency_p99_9_ms == 1999.0

    def test_kind_filter(self) -> None:
        log = TraceLog()
        log.record(trace(kind="lookup"))
        log.record(trace(kind="search_term"))
        assert log.rollup(kind="lookup").messages == 1
        assert log.rollup().messages == 2

    def test_by_kind_breakdown_sorted(self) -> None:
        log = TraceLog()
        log.record(trace(kind="search_term"))
        log.record(trace(kind="lookup"))
        log.record(trace(kind="lookup"))
        assert log.rollup().by_kind == (("lookup", 2), ("search_term", 1))

    def test_delivery_ratio(self) -> None:
        log = TraceLog()
        assert log.rollup().delivery_ratio == 1.0
        log.record(trace())
        log.record(trace(outcome=DROPPED))
        assert log.rollup().delivery_ratio == 0.5

    def test_filtered_by_outcome(self) -> None:
        log = TraceLog()
        log.record(trace())
        log.record(trace(outcome=DROPPED))
        assert len(log.filtered(outcome=DROPPED)) == 1

    def test_retries_property_on_trace(self) -> None:
        assert trace(attempts=3).retries == 2


class TestHopRollup:
    """The per-lookup hop columns (ISSUE 10 satellite): hop samples are
    recorded alongside message records and roll up into the summary's
    ``hops_mean`` / ``hops_p99`` / ``lookup_messages`` fields."""

    def test_defaults_are_zero_without_samples(self) -> None:
        summary = TraceLog().rollup()
        assert summary.hops_mean == 0.0
        assert summary.hops_p99 == 0.0
        assert summary.lookup_messages == 0

    def test_hop_samples_roll_up(self) -> None:
        log = TraceLog()
        for hops in (2, 4, 6):
            log.record_hops(hops)
        for __ in range(12):  # the per-hop wire messages of those lookups
            log.record(trace(kind="lookup"))
        summary = log.rollup()
        assert summary.hops_mean == pytest.approx(4.0)
        assert summary.hops_p99 == 6.0
        assert summary.lookup_messages == 12

    def test_hop_fields_attach_to_lookup_kind_rollup_only(self) -> None:
        log = TraceLog()
        log.record_hops(3)
        log.record(trace(kind="lookup"))
        log.record(trace(kind="search_term"))
        assert log.rollup(kind="lookup").hops_mean == pytest.approx(3.0)
        assert log.rollup(kind="search_term").hops_mean == 0.0

    def test_hop_fields_attach_to_routing_category(self) -> None:
        log = TraceLog()
        log.record_hops(5)
        log.record(trace(kind="lookup"))
        log.record(trace(kind="publish_batch"))
        rollup = log.category_rollup()
        assert rollup["routing"].hops_mean == pytest.approx(5.0)
        assert rollup["write"].hops_mean == 0.0

    def test_hop_samples_property_copies(self) -> None:
        log = TraceLog()
        log.record_hops(2)
        samples = log.hop_samples
        samples.append(99)
        assert log.hop_samples == [2]

    def test_clear_drops_hop_samples(self) -> None:
        log = TraceLog()
        log.record_hops(4)
        log.clear()
        assert log.hop_samples == []
        assert log.rollup().hops_mean == 0.0

    def test_capture_messages_forwards_hop_samples(self) -> None:
        """Nested capture must not lose hop samples recorded while the
        outer trace was detached (mirrors the message-record contract)."""
        from repro.config import ChordConfig
        from repro.dht.ring import ChordRing
        from repro.net import build_transport
        from repro.config import NetworkConfig

        transport = build_transport(NetworkConfig(transport="lossy", drop_probability=0.0))
        ring = ChordRing(
            ChordConfig(num_peers=16, route_cache_size=0), transport=transport
        )
        start = ring.live_ids[0]
        with ring.capture_messages() as inner:
            ring.lookup(start, (start + 1) % ring.space.size, record=False)
        assert len(inner.hop_samples) == 1
        assert transport.trace.hop_samples == inner.hop_samples


class TestSummaryTable:
    def test_deterministic_and_complete(self) -> None:
        def build() -> TraceLog:
            log = TraceLog()
            log.record(trace(kind="lookup", latency=12.345))
            log.record(trace(kind="search_term", attempts=2, latency=400.0,
                             outcome=DROPPED))
            return log

        table_a = build().summary_table()
        table_b = build().summary_table()
        assert table_a == table_b
        assert "messages   2" in table_a
        assert "retries    1" in table_a
        assert "kind lookup" in table_a
        assert "p99.9=" in table_a

    def test_clear(self) -> None:
        log = TraceLog()
        log.record(trace())
        log.clear()
        assert len(log) == 0
        assert log.rollup().messages == 0


class TestCategoryRollup:
    def test_buckets_by_traffic_category(self) -> None:
        log = TraceLog()
        log.record(trace(kind="publish_batch"))
        log.record(trace(kind="poll_batch"))
        log.record(trace(kind="search_term"))
        log.record(trace(kind="lookup"))
        log.record(trace(kind="made_up_kind"))
        rollup = log.category_rollup()
        assert set(rollup) == {"write", "query", "routing", "other"}
        assert rollup["write"].messages == 2
        assert rollup["query"].messages == 1
        assert rollup["other"].messages == 1

    def test_category_messages_sum_to_total(self) -> None:
        log = TraceLog()
        for kind in ("publish_term", "unpublish_batch", "postings", "heartbeat"):
            log.record(trace(kind=kind))
        rollup = log.category_rollup()
        assert sum(s.messages for s in rollup.values()) == log.rollup().messages

    def test_category_of_kind_spans_all_labels(self) -> None:
        from repro.net.trace import category_of_kind

        assert category_of_kind("publish_batch") == "write"
        assert category_of_kind("result_probe") == "query"
        assert category_of_kind("lookup") == "routing"
        assert category_of_kind("reconcile") == "maintenance"
        assert category_of_kind("synthetic") == "other"


class TestKindNameSync:
    """repro.net must stay import-independent of repro.dht, so its
    category frozensets are plain-string mirrors of the MessageKind
    partition — this pins the two copies together."""

    def test_trace_categories_mirror_message_kinds(self) -> None:
        from repro.dht import messages as m
        from repro.net import trace as t

        pairs = (
            (m.WRITE_PATH_KINDS, t.WRITE_PATH_KIND_NAMES),
            (m.QUERY_PATH_KINDS, t.QUERY_PATH_KIND_NAMES),
            (m.ROUTING_KINDS, t.ROUTING_KIND_NAMES),
            (m.MAINTENANCE_KINDS, t.MAINTENANCE_KIND_NAMES),
        )
        for kinds, names in pairs:
            assert frozenset(kind.value for kind in kinds) == names

    def test_every_message_kind_categorized_by_name(self) -> None:
        from repro.dht.messages import ALL_KINDS, category_of
        from repro.net.trace import category_of_kind

        for kind in ALL_KINDS:
            assert category_of_kind(kind.value) == category_of(kind)
