"""Tests for the discrete-event concurrent runtime.

Covers the event heap's ordering contract, per-peer bounded service
queues, the serve / queue-drop / timeout-retry receipt paths (including
the duplicate-demand race where a timed-out request still consumes
service), straggler peers, and the determinism contract: same seed +
same spawn sequence ⇒ identical event interleaving, receipts, and
fingerprints (checked as a hypothesis property).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    QUEUE_DROP,
    SERVED,
    TIMED_OUT,
    ConstantLatency,
    DeliveryPolicy,
    EventLoop,
    PeerServer,
    Scheduler,
    SendRequest,
    ServiceReceipt,
    Sleep,
    replay_timeline,
)


class TestEventLoop:
    def test_fires_in_time_order(self) -> None:
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda: fired.append("b"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(9.0, lambda: fired.append("c"))
        assert loop.run() == 3
        assert fired == ["a", "b", "c"]
        assert loop.now == 9.0

    def test_same_instant_ties_break_by_schedule_order(self) -> None:
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule(2.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_events_can_schedule_more_events(self) -> None:
        loop = EventLoop()
        fired = []

        def outer() -> None:
            fired.append(("outer", loop.now))
            loop.schedule(3.0, lambda: fired.append(("inner", loop.now)))

        loop.schedule(1.0, outer)
        loop.run()
        assert fired == [("outer", 1.0), ("inner", 4.0)]

    def test_cancel_unschedules(self) -> None:
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        assert loop.run() == 0
        assert fired == []

    def test_negative_delay_rejected(self) -> None:
        with pytest.raises(ValueError):
            EventLoop().schedule(-0.1, lambda: None)

    def test_runaway_guard(self) -> None:
        loop = EventLoop()

        def respawn() -> None:
            loop.schedule(1.0, respawn)

        loop.schedule(0.0, respawn)
        with pytest.raises(RuntimeError, match="runaway"):
            loop.run(max_events=100)


class TestPeerServer:
    def test_idle_server_serves_immediately(self) -> None:
        server = PeerServer(7, service_time_ms=2.0, queue_depth=4)
        assert server.admit(10.0) == (10.0, 12.0)
        assert server.served == 1
        assert server.mean_wait_ms == 0.0

    def test_busy_server_queues_fifo(self) -> None:
        server = PeerServer(7, service_time_ms=2.0, queue_depth=4)
        server.admit(0.0)
        assert server.admit(0.5) == (2.0, 4.0)  # waits for the first
        assert server.wait_ms == 1.5
        assert server.max_depth == 2

    def test_bounded_queue_drops_at_the_door(self) -> None:
        server = PeerServer(7, service_time_ms=10.0, queue_depth=2)
        assert server.admit(0.0) is not None
        assert server.admit(0.0) is not None
        assert server.admit(0.0) is None  # backlog full (incl. in-service)
        assert server.queue_drops == 1
        assert server.arrivals == 3
        assert server.served == 2

    def test_depth_drains_as_virtual_time_passes(self) -> None:
        server = PeerServer(7, service_time_ms=10.0, queue_depth=2)
        server.admit(0.0)
        server.admit(0.0)
        assert server.depth(5.0) == 2
        assert server.depth(10.0) == 1  # first finished at t=10
        assert server.depth(20.0) == 0
        # Backlog freed → admissible again.
        assert server.admit(20.0) == (20.0, 30.0)

    def test_utilization(self) -> None:
        server = PeerServer(7, service_time_ms=2.0, queue_depth=4)
        server.admit(0.0)
        server.admit(0.0)
        assert server.utilization(8.0) == 0.5
        assert server.utilization(0.0) == 0.0

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            PeerServer(1, service_time_ms=0.0, queue_depth=4)
        with pytest.raises(ValueError):
            PeerServer(1, service_time_ms=1.0, queue_depth=0)


def op_sending(dsts, kind="rpc"):
    """A little operation program: one send per destination."""
    return replay_timeline([(kind, dst) for dst in dsts])


class TestSchedulerServePath:
    def test_single_op_served(self) -> None:
        sched = Scheduler(service_time_ms=0.5)
        fut = sched.spawn(op_sending([3, 4]), label="q0")
        sched.run()
        assert fut.done
        receipts = fut.result
        assert [r.outcome for r in receipts] == [SERVED, SERVED]
        assert all(r.ok and r.attempts == 1 for r in receipts)
        assert fut.latency_ms == pytest.approx(1.0)  # two sequential serves
        assert fut.failed_sends == 0
        assert sched.stats()["ops_completed"] == 1

    def test_ops_to_distinct_peers_overlap(self) -> None:
        """Concurrency is real: N ops on N different peers take one
        service time of makespan, not N of them."""
        sched = Scheduler(service_time_ms=5.0)
        for dst in range(8):
            sched.spawn(op_sending([dst]))
        sched.run()
        assert sched.loop.now == pytest.approx(5.0)
        assert all(op.latency_ms == pytest.approx(5.0) for op in sched.ops)

    def test_ops_to_same_peer_queue_up(self) -> None:
        sched = Scheduler(service_time_ms=5.0)
        futs = [sched.spawn(op_sending([9])) for _ in range(4)]
        sched.run()
        assert sched.loop.now == pytest.approx(20.0)
        waits = sorted(f.receipts[0].wait_ms for f in futs)
        assert waits == pytest.approx([0.0, 5.0, 10.0, 15.0])
        assert sched.server(9).max_depth == 4

    def test_sleep_suspends_without_consuming_service(self) -> None:
        def program():
            yield Sleep(7.0)
            receipt = yield SendRequest(dst=1)
            return receipt

        sched = Scheduler(service_time_ms=1.0)
        fut = sched.spawn(program())
        sched.run()
        assert fut.result.ok
        assert fut.latency_ms == pytest.approx(8.0)

    def test_spawn_delay_staggers_submission(self) -> None:
        sched = Scheduler(service_time_ms=1.0)
        fut = sched.spawn(op_sending([1]), delay_ms=4.0)
        sched.run()
        assert fut.submitted_ms == 4.0
        assert fut.latency_ms == pytest.approx(1.0)

    def test_latency_model_adds_network_legs(self) -> None:
        sched = Scheduler(latency=ConstantLatency(3.0), service_time_ms=1.0)
        fut = sched.spawn(op_sending([1]))
        sched.run()
        # 3ms out + 1ms service + 3ms back
        assert fut.receipts[0].latency_ms == pytest.approx(7.0)

    def test_bad_yield_type_rejected(self) -> None:
        def program():
            yield "not a request"

        sched = Scheduler()
        sched.spawn(program())
        with pytest.raises(TypeError, match="expected SendRequest or Sleep"):
            sched.run()

    def test_done_callback_fires_on_completion_and_late_add(self) -> None:
        sched = Scheduler(service_time_ms=1.0)
        seen = []
        fut = sched.spawn(op_sending([1]))
        fut.add_done_callback(lambda f: seen.append(("early", f.op_id)))
        sched.run()
        fut.add_done_callback(lambda f: seen.append(("late", f.op_id)))
        assert seen == [("early", 0), ("late", 0)]


class TestTimeoutRetryRaces:
    def slow_policy(self, **kwargs) -> DeliveryPolicy:
        defaults = dict(
            timeout_ms=10.0,
            max_retries=2,
            backoff_base_ms=1.0,
            backoff_factor=2.0,
            jitter_ms=0.0,
        )
        defaults.update(kwargs)
        return DeliveryPolicy(**defaults)

    def test_slow_service_times_out_and_fails(self) -> None:
        """Service slower than the timeout ⇒ every attempt is wasted
        work and the op observes a TIMED_OUT receipt."""
        sched = Scheduler(policy=self.slow_policy(), service_time_ms=50.0)
        fut = sched.spawn(op_sending([5]))
        sched.run()
        receipt = fut.result[0]
        assert receipt.outcome == TIMED_OUT
        assert not receipt.ok
        assert receipt.attempts == 3  # initial + 2 retries
        assert sched.retries == 2
        assert sched.timeouts == 3
        assert fut.failed_sends == 1

    def test_timed_out_work_still_occupies_the_server(self) -> None:
        """The duplicate-demand race: retries of a timed-out request
        each consume service at the destination."""
        sched = Scheduler(policy=self.slow_policy(), service_time_ms=50.0)
        sched.spawn(op_sending([5]))
        sched.run()
        server = sched.server(5)
        assert server.arrivals == 3  # all three attempts demanded service
        assert server.served == 3
        assert server.busy_ms == pytest.approx(150.0)

    def test_queue_overflow_yields_queue_drop_receipt(self) -> None:
        """queue_depth=1 with many simultaneous clients: overflowing
        arrivals are dropped at the door and surface as QUEUE_DROP."""
        sched = Scheduler(
            policy=self.slow_policy(), service_time_ms=50.0, queue_depth=1
        )
        futs = [sched.spawn(op_sending([5])) for _ in range(3)]
        sched.run()
        outcomes = {f.result[0].outcome for f in futs}
        assert QUEUE_DROP in outcomes
        assert sched.queue_drops > 0
        assert sched.server(5).queue_drops == sched.queue_drops

    def test_network_slower_than_timeout_races_the_sender(self) -> None:
        """Outbound latency ≥ timeout: the sender retries on schedule
        while the original message is still in flight, and the late
        arrival still demands service."""
        sched = Scheduler(
            latency=ConstantLatency(15.0),
            policy=self.slow_policy(),
            service_time_ms=1.0,
        )
        fut = sched.spawn(op_sending([5]))
        sched.run()
        assert fut.result[0].outcome == TIMED_OUT
        assert sched.server(5).arrivals == 3  # late arrivals admitted too
        assert sched.messages_sent == 3

    def test_reply_losing_the_race_counts_as_timeout(self) -> None:
        """Service fits, but service + return leg blows the timeout:
        the serve is recorded yet the sender retries."""
        sched = Scheduler(
            latency=ConstantLatency(4.0),
            policy=self.slow_policy(),
            service_time_ms=5.0,
        )
        sched.spawn(op_sending([5]))
        sched.run()
        # 4 out + 5 service + 4 back = 13 > 10 timeout on every attempt.
        assert sched.timeouts == 3
        assert sched.server(5).served == 3

    def test_slow_peer_factor_scales_service_time(self) -> None:
        sched = Scheduler(service_time_ms=2.0, slow_peers={5: 8.0})
        assert sched.server(5).service_time_ms == pytest.approx(16.0)
        assert sched.server(6).service_time_ms == pytest.approx(2.0)

    def test_stragglers_inflate_only_their_victims(self) -> None:
        slow = Scheduler(
            policy=self.slow_policy(timeout_ms=500.0),
            service_time_ms=1.0,
            slow_peers={0: 100.0},
        )
        fast_fut = slow.spawn(op_sending([1]))
        slow_fut = slow.spawn(op_sending([0]))
        slow.run()
        assert fast_fut.latency_ms == pytest.approx(1.0)
        assert slow_fut.latency_ms == pytest.approx(100.0)


class TestDeterminism:
    def build_and_run(self, seed: int, plan) -> Scheduler:
        sched = Scheduler(
            latency=ConstantLatency(1.0),
            policy=DeliveryPolicy(
                timeout_ms=20.0,
                max_retries=2,
                backoff_base_ms=1.0,
                backoff_factor=2.0,
                jitter_ms=0.5,
            ),
            service_time_ms=3.0,
            queue_depth=4,
            slow_peers={0: 10.0},
            seed=seed,
        )
        for delay, dsts in plan:
            sched.spawn(op_sending(dsts), delay_ms=delay)
        sched.run()
        return sched

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        plan=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.lists(
                    st.integers(min_value=0, max_value=5), min_size=1, max_size=3
                ),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_plan_identical_runs(self, seed, plan) -> None:
        """Satellite 3: same seed + same spawn sequence ⇒ identical
        event interleaving, receipts, and final fingerprints."""
        a = self.build_and_run(seed, plan)
        b = self.build_and_run(seed, plan)
        assert a.fingerprint() == b.fingerprint()
        assert a.journal == b.journal
        assert a.latencies() == b.latencies()
        assert a.stats() == b.stats()
        for op_a, op_b in zip(a.ops, b.ops):
            assert op_a.receipts == op_b.receipts
            assert op_a.result == op_b.result

    def test_journal_off_yields_empty_fingerprint_base(self) -> None:
        sched = Scheduler(record_journal=False)
        sched.spawn(op_sending([1]))
        sched.run()
        assert sched.journal == []
        # Still a stable digest (of the empty journal).
        assert sched.fingerprint() == Scheduler(record_journal=False).fingerprint()

    def test_fingerprint_distinguishes_different_plans(self) -> None:
        a = self.build_and_run(0, [(0.0, [1])])
        b = self.build_and_run(0, [(0.0, [2])])
        assert a.fingerprint() != b.fingerprint()


class TestReplayTimeline:
    def test_replays_kinds_and_destinations_in_order(self) -> None:
        timeline = [("lookup", 2), ("search_term", 3), ("postings", 2)]
        sent = []

        class Probe(Scheduler):
            def _attempt(self, op, program, future, *args, **kwargs):
                if len(sent) < len(timeline) and (
                    not sent or sent[-1] != (future.kind, future.dst)
                ):
                    sent.append((future.kind, future.dst))
                super()._attempt(op, program, future, *args, **kwargs)

        sched = Probe(service_time_ms=0.25)
        fut = sched.spawn(replay_timeline(timeline))
        sched.run()
        assert sent == timeline
        assert [r.ok for r in fut.result] == [True, True, True]

    def test_empty_timeline_completes_immediately(self) -> None:
        sched = Scheduler()
        fut = sched.spawn(replay_timeline([]))
        sched.run()
        assert fut.done
        assert fut.result == []
        assert fut.latency_ms == 0.0

    def test_receipt_equality_is_structural(self) -> None:
        assert ServiceReceipt(SERVED, 1, 2.0) == ServiceReceipt(SERVED, 1, 2.0)
