"""Tests for the Section 7 load-balancing extensions."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, ESearchConfig
from repro.core import ESearchSystem
from repro.corpus import Corpus, Document, Query
from repro.dht.messages import MessageKind
from repro.extensions import HotTermAdvisor, HotTermCache

CHORD = ChordConfig(num_peers=16, id_bits=32, seed=83)


@pytest.fixture()
def corpus() -> Corpus:
    """Every document shares the term 'ubiquitous'; each also has a
    unique discriminative term and filler."""
    docs = []
    for i in range(10):
        docs.append(
            Document(
                f"d{i}",
                f"ubiquitous ubiquitous ubiquitous ubiquitous "
                f"special{i} special{i} special{i} extra{i} rare{i}",
            )
        )
    return Corpus(docs)


@pytest.fixture()
def system(corpus: Corpus) -> ESearchSystem:
    system = ESearchSystem(
        corpus, esearch_config=ESearchConfig(index_terms=2), chord_config=CHORD
    )
    system.share_corpus()
    return system


class TestHotTermAdvisor:
    def test_detects_hot_terms(self, system: ESearchSystem) -> None:
        advisor = HotTermAdvisor(system, df_threshold=5)
        hot = advisor.find_hot_terms()
        assert [a.term for a in hot] == ["ubiquit"]
        assert hot[0].indexed_document_frequency == 10

    def test_no_hot_terms_below_threshold(self, system: ESearchSystem) -> None:
        advisor = HotTermAdvisor(system, df_threshold=50)
        assert advisor.find_hot_terms() == []

    def test_apply_advice_switches_documents(self, system: ESearchSystem) -> None:
        advisor = HotTermAdvisor(system, df_threshold=5)
        hot = advisor.find_hot_terms()[0]
        switched = advisor.apply_advice(hot)
        assert switched == 10
        # The hot term is gone from every document's index...
        for i in range(10):
            assert "ubiquit" not in system.index_terms(f"d{i}")
        # ...replaced by another document term, keeping the budget.
        for i in range(10):
            assert len(system.index_terms(f"d{i}")) == 2

    def test_advice_messages_counted(self, system: ESearchSystem) -> None:
        advisor = HotTermAdvisor(system, df_threshold=5)
        advisor.rebalance()
        assert system.ring.stats.kind(MessageKind.ADVISE_HOT_TERM).messages == 10

    def test_rebalance_summary(self, system: ESearchSystem) -> None:
        hot_count, switches = HotTermAdvisor(system, df_threshold=5).rebalance()
        assert hot_count == 1
        assert switches == 10

    def test_invalid_threshold(self, system: ESearchSystem) -> None:
        with pytest.raises(ValueError):
            HotTermAdvisor(system, df_threshold=0)

    def test_replacement_preserves_retrievability(self, system: ESearchSystem) -> None:
        """After rebalancing, documents remain findable via their
        replacement terms."""
        HotTermAdvisor(system, df_threshold=5).rebalance()
        ranked = system.search(Query("q", ("special3",)), cache=False)
        assert "d3" in ranked.ids()


class TestHotTermCache:
    def test_observation_counts(self, system: ESearchSystem) -> None:
        cache = HotTermCache(system.protocol)
        cache.observe_query(("alpha", "beta"))
        cache.observe_query(("alpha", "gamma"))
        assert cache.hottest_terms(1) == ["alpha"]
        assert cache.cooccurrence["alpha"]["beta"] == 1

    def test_refresh_caches_hot_postings(self, system: ESearchSystem) -> None:
        cache = HotTermCache(system.protocol)
        for __ in range(5):
            cache.observe_query(("ubiquit", "special1"))
        # Both observed terms are hot and indexable → both cached.
        assert cache.refresh() == 2
        # With an explicit budget of one, only the hottest is cached.
        assert cache.refresh(num_hot=1) == 1

    def test_fetch_served_from_cache(self, system: ESearchSystem) -> None:
        cache = HotTermCache(system.protocol)
        for __ in range(5):
            cache.observe_query(("ubiquit", "special1"))
        cache.refresh()
        before = system.ring.stats.kind(MessageKind.SEARCH_TERM).messages
        postings, df = cache.fetch_postings(system.ring.live_ids[0], "ubiquit")
        after = system.ring.stats.kind(MessageKind.SEARCH_TERM).messages
        assert after == before          # no routed search message
        assert cache.hits == 1
        assert df == 10 and len(postings) == 10

    def test_miss_falls_through_to_protocol(self, system: ESearchSystem) -> None:
        cache = HotTermCache(system.protocol)
        postings, df = cache.fetch_postings(system.ring.live_ids[0], "special2")
        assert cache.misses == 1
        assert df == 1

    def test_hit_rate(self, system: ESearchSystem) -> None:
        cache = HotTermCache(system.protocol)
        for __ in range(3):
            cache.observe_query(("ubiquit", "special1"))
        cache.refresh()
        cache.fetch_postings(system.ring.live_ids[0], "ubiquit")
        cache.fetch_postings(system.ring.live_ids[0], "special5")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity(self, system: ESearchSystem) -> None:
        with pytest.raises(ValueError):
            HotTermCache(system.protocol, cache_capacity=0)
