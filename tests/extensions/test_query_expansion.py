"""Tests for local-context-analysis query expansion."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document, Query
from repro.extensions import LocalContextAnalyzer, expansion_gain
from repro.ir import CentralizedSystem


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    """'anchor' strongly co-occurs with 'companion' in the relevant
    documents; 'decoy' lives in unrelated documents."""
    docs = []
    for i in range(6):
        docs.append(
            Document(f"rel{i}", "anchor anchor companion companion companion signal")
        )
    for i in range(6):
        docs.append(Document(f"other{i}", f"decoy decoy noise{i} noise{i} static"))
    return Corpus(docs)


@pytest.fixture(scope="module")
def centralized(corpus: Corpus) -> CentralizedSystem:
    return CentralizedSystem(corpus)


class TestScoring:
    def test_cooccurring_term_scores_highest(self, corpus: Corpus) -> None:
        analyzer = LocalContextAnalyzer(corpus, context_size=6, expansion_terms=2)
        query = Query("q", ("anchor",))
        scored = analyzer.score_candidates(query, [f"rel{i}" for i in range(6)])
        assert scored[0][0] == "companion"

    def test_query_terms_excluded_from_candidates(self, corpus: Corpus) -> None:
        analyzer = LocalContextAnalyzer(corpus)
        scored = analyzer.score_candidates(Query("q", ("anchor",)), ["rel0"])
        assert all(term != "anchor" for term, __ in scored)

    def test_context_without_query_terms_contributes_nothing(self, corpus: Corpus) -> None:
        analyzer = LocalContextAnalyzer(corpus)
        scored = analyzer.score_candidates(Query("q", ("anchor",)), ["other0"])
        assert scored == []


class TestExpand:
    def test_expansion_appends_terms(self, corpus: Corpus, centralized) -> None:
        analyzer = LocalContextAnalyzer(corpus, context_size=5, expansion_terms=2)
        query = Query("q", ("anchor",))
        expanded = analyzer.expand(query, centralized.search)
        assert set(query.terms) < set(expanded.terms)
        assert "companion" in expanded.terms
        assert expanded.query_id.endswith("+lca")

    def test_origin_preserved(self, corpus: Corpus, centralized) -> None:
        query = Query("q7.1", ("anchor",), origin_id="q7")
        expanded = LocalContextAnalyzer(corpus, expansion_terms=1).expand(
            query, centralized.search
        )
        assert expanded.origin_id == "q7"

    def test_no_matches_returns_original(self, corpus: Corpus, centralized) -> None:
        query = Query("q", ("zzznothing",))
        expanded = LocalContextAnalyzer(corpus).expand(query, centralized.search)
        assert expanded is query

    def test_zero_expansion_terms(self, corpus: Corpus, centralized) -> None:
        analyzer = LocalContextAnalyzer(corpus, expansion_terms=0)
        query = Query("q", ("anchor",))
        assert analyzer.expand(query, centralized.search) is query

    def test_invalid_parameters(self, corpus: Corpus) -> None:
        with pytest.raises(ValueError):
            LocalContextAnalyzer(corpus, context_size=0)
        with pytest.raises(ValueError):
            LocalContextAnalyzer(corpus, expansion_terms=-1)


class TestExpansionGain:
    def test_gain_measured(self, corpus: Corpus, centralized) -> None:
        analyzer = LocalContextAnalyzer(corpus, context_size=4, expansion_terms=2)
        queries = [Query("q", ("anchor",))]
        relevant = {f"rel{i}" for i in range(6)}
        base, expanded = expansion_gain(
            analyzer,
            queries,
            centralized.search,
            relevant_of=lambda qid: relevant,
            k=6,
        )
        assert 0.0 <= base <= 1.0
        assert expanded >= base - 1e-9  # expansion must not hurt here

    def test_empty_queries(self, corpus: Corpus, centralized) -> None:
        analyzer = LocalContextAnalyzer(corpus)
        base, expanded = expansion_gain(
            analyzer, [], centralized.search, relevant_of=lambda q: set(), k=5
        )
        assert base == 0.0 and expanded == 0.0
