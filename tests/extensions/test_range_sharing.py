"""Tests for range-sharing load balance."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig
from repro.dht import ChordRing
from repro.extensions import RangeSharingBalancer


def loaded_ring() -> ChordRing:
    """A 4-node ring where one node owns a hugely disproportionate arc
    (and therefore most keys)."""
    ring = ChordRing(
        ChordConfig(num_peers=4, id_bits=16, successor_list_size=2),
        node_ids=[100, 200, 300, 60000],
    )
    # Keys spread uniformly: node 60000 owns (300, 60000] — almost all.
    for i in range(200):
        ring.place((i * 327 + 11) % ring.space.size, f"v{i}")
    return ring


class TestSnapshot:
    def test_loads_sorted_heaviest_first(self) -> None:
        snap = RangeSharingBalancer(loaded_ring()).snapshot()
        counts = [count for __, count in snap.loads]
        assert counts == sorted(counts, reverse=True)

    def test_heaviest_is_the_big_arc(self) -> None:
        snap = RangeSharingBalancer(loaded_ring()).snapshot()
        assert snap.heaviest[0] == 60000

    def test_imbalance_above_one(self) -> None:
        snap = RangeSharingBalancer(loaded_ring()).snapshot()
        assert snap.imbalance > 2.0


class TestRebalanceStep:
    def test_step_moves_helper_into_heavy_arc(self) -> None:
        ring = loaded_ring()
        balancer = RangeSharingBalancer(ring)
        move = balancer.rebalance_step()
        assert move is not None
        overloaded, helper_old, helper_new = move
        assert overloaded == 60000
        assert helper_old not in ring.live_ids
        assert helper_new in ring.live_ids
        # The helper took over part of the heavy arc.
        assert ring.space.in_interval(helper_new, 300, 60000)

    def test_step_reduces_imbalance(self) -> None:
        ring = loaded_ring()
        balancer = RangeSharingBalancer(ring)
        before = balancer.snapshot().imbalance
        balancer.rebalance_step()
        after = balancer.snapshot().imbalance
        assert after < before

    def test_no_keys_lost(self) -> None:
        ring = loaded_ring()
        total_before = sum(
            len(ring.node(n).store) for n in ring.live_ids
        )
        RangeSharingBalancer(ring).rebalance(max_steps=4)
        total_after = sum(len(ring.node(n).store) for n in ring.live_ids)
        assert total_after == total_before

    def test_routing_still_correct_after_rebalance(self) -> None:
        import random

        ring = loaded_ring()
        RangeSharingBalancer(ring).rebalance(max_steps=4)
        rng = random.Random(5)
        for __ in range(60):
            key = rng.randrange(ring.space.size)
            assert (
                ring.lookup(ring.random_live_id(rng), key, record=False).node_id
                == ring.successor_of(key)
            )

    def test_balanced_ring_returns_none(self) -> None:
        ring = ChordRing(
            ChordConfig(num_peers=2, id_bits=16), node_ids=[0, 32768]
        )
        ring.place(10, "a")
        ring.place(40000, "b")
        assert RangeSharingBalancer(ring).rebalance_step() is None


class TestRebalanceLoop:
    def test_converges_toward_target(self) -> None:
        ring = loaded_ring()
        balancer = RangeSharingBalancer(ring)
        moves = balancer.rebalance(max_steps=6, target_imbalance=2.0)
        assert moves  # something happened
        assert balancer.snapshot().imbalance < 4.0  # clearly improved

    def test_parameter_validation(self) -> None:
        balancer = RangeSharingBalancer(loaded_ring())
        with pytest.raises(ValueError):
            balancer.rebalance(max_steps=0)
        with pytest.raises(ValueError):
            balancer.rebalance(target_imbalance=0.5)
