"""Tests for the synthetic TREC-like corpus generator."""

from __future__ import annotations

import pytest

from repro.config import SyntheticCorpusConfig
from repro.corpus import build_synthetic_collection, generate_vocabulary
from repro.exceptions import ConfigurationError
from repro.text.stemmer import stem
from repro.text.stopwords import LUCENE_STOP_WORDS

import random


@pytest.fixture(scope="module")
def collection(micro_corpus_config):
    return build_synthetic_collection(micro_corpus_config)


class TestVocabularyGeneration:
    def test_requested_size(self) -> None:
        words = generate_vocabulary(200, random.Random(1))
        assert len(words) == 200

    def test_unique(self) -> None:
        words = generate_vocabulary(300, random.Random(2))
        assert len(set(words)) == 300

    def test_stem_fixpoints(self) -> None:
        """Every generated word must survive analysis unchanged, so the
        generator's term identities line up with the analyzed space."""
        for word in generate_vocabulary(150, random.Random(3)):
            assert stem(word) == word

    def test_no_stop_words(self) -> None:
        words = generate_vocabulary(150, random.Random(4))
        assert not set(words) & LUCENE_STOP_WORDS

    def test_min_length(self) -> None:
        for word in generate_vocabulary(100, random.Random(5)):
            assert len(word) >= 3

    def test_deterministic(self) -> None:
        assert generate_vocabulary(50, random.Random(9)) == generate_vocabulary(
            50, random.Random(9)
        )


class TestGeneratedCorpus:
    def test_document_count(self, collection, micro_corpus_config) -> None:
        corpus, __, __ = collection
        assert len(corpus) == micro_corpus_config.num_documents

    def test_document_lengths_bounded_below(self, collection, micro_corpus_config) -> None:
        corpus, __, __ = collection
        for doc in corpus:
            assert doc.length >= micro_corpus_config.min_doc_length

    def test_query_count(self, collection, micro_corpus_config) -> None:
        __, query_set, __ = collection
        assert len(query_set) == micro_corpus_config.num_original_queries

    def test_query_term_bounds(self, collection, micro_corpus_config) -> None:
        __, query_set, __ = collection
        cfg = micro_corpus_config
        for query in query_set:
            assert 1 <= len(query.terms) <= cfg.query_max_terms

    def test_query_terms_in_vocabulary(self, collection) -> None:
        corpus, query_set, __ = collection
        vocab = set(corpus.vocabulary)
        for query in query_set:
            for term in query.terms:
                assert term in vocab

    def test_qrels_reference_real_documents(self, collection) -> None:
        corpus, query_set, __ = collection
        query_set.qrels.validate_against(corpus.doc_ids)

    def test_every_query_has_relevant_documents(self, collection) -> None:
        __, query_set, __ = collection
        for query in query_set:
            assert query_set.qrels.num_relevant(query.query_id) > 0

    def test_relevant_docs_bounded(self, collection, micro_corpus_config) -> None:
        __, query_set, __ = collection
        for query in query_set:
            assert (
                query_set.qrels.num_relevant(query.query_id)
                <= micro_corpus_config.relevant_per_query
            )

    def test_relevant_docs_contain_query_terms(self, collection) -> None:
        """Judged documents must match at least one query term — the
        pooling property the judge enforces."""
        corpus, query_set, __ = collection
        for query in query_set:
            for doc_id in query_set.qrels.relevant(query.query_id):
                doc = corpus.get(doc_id)
                assert any(doc.contains(t) for t in query.terms)

    def test_deterministic_for_seed(self, micro_corpus_config) -> None:
        c1, q1, __ = build_synthetic_collection(micro_corpus_config)
        c2, q2, __ = build_synthetic_collection(micro_corpus_config)
        assert c1.doc_ids == c2.doc_ids
        assert [q.terms for q in q1] == [q.terms for q in q2]
        first_doc = c1.doc_ids[0]
        assert c1.get(first_doc).text == c2.get(first_doc).text

    def test_different_seeds_differ(self, micro_corpus_config) -> None:
        import dataclasses

        other = dataclasses.replace(micro_corpus_config, seed=12345)
        c1, __, __ = build_synthetic_collection(micro_corpus_config)
        c2, __, __ = build_synthetic_collection(other)
        assert c1.get(c1.doc_ids[0]).text != c2.get(c2.doc_ids[0]).text


class TestTopicModel:
    def test_doc_topics_normalized(self, collection) -> None:
        __, __, model = collection
        for doc_id, weights in model.doc_topics.items():
            assert sum(weights.values()) == pytest.approx(1.0)

    def test_dominant_topic_valid(self, collection, micro_corpus_config) -> None:
        corpus, __, model = collection
        for doc_id in corpus.doc_ids:
            assert 0 <= model.dominant_topic(doc_id) < micro_corpus_config.num_topics

    def test_topic_cores_disjoint(self, collection) -> None:
        __, __, model = collection
        seen = set()
        for core in model.topic_cores:
            core_set = set(core)
            assert not core_set & seen
            seen |= core_set

    def test_query_topic_terms_from_core(self, collection) -> None:
        """Every original query's terms come from its topic's core."""
        __, query_set, model = collection
        for query in query_set:
            core = set(model.topic_cores[model.query_topics[query.query_id]])
            assert set(query.terms) <= core


class TestZipfShape:
    def test_term_frequencies_are_skewed(self, collection) -> None:
        """The head of the collection-frequency distribution should carry
        disproportionate mass (Zipf-ish), not be uniform."""
        corpus, __, __ = collection
        freqs = sorted(corpus.collection_frequency.values(), reverse=True)
        head = sum(freqs[: len(freqs) // 10 or 1])
        total = sum(freqs)
        assert head > total * 0.2


class TestConfigValidation:
    def test_cores_exceed_vocabulary(self) -> None:
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(
                num_topics=10, topic_core_size=100, vocabulary_size=500
            )

    def test_bad_background_fraction(self) -> None:
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(background_fraction=1.0)

    def test_bad_doc_length(self) -> None:
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(mean_doc_length=10, min_doc_length=20)
