"""Tests for the Document model."""

from __future__ import annotations

import pytest

from repro.corpus import Document


@pytest.fixture()
def doc() -> Document:
    return Document(
        doc_id="d1",
        text="chord chord chord ring ring lookup the the the",
    )


class TestAnalysisCaching:
    def test_term_freqs(self, doc: Document) -> None:
        assert doc.term_freqs == {"chord": 3, "ring": 2, "lookup": 1}

    def test_stop_words_excluded_from_length(self, doc: Document) -> None:
        # "the" ×3 removed → 6 analyzed occurrences.
        assert doc.length == 6

    def test_unique_terms(self, doc: Document) -> None:
        assert doc.unique_terms == 3

    def test_analyze_idempotent(self, doc: Document) -> None:
        doc.analyze()
        first = doc.term_freqs
        doc.analyze()
        assert doc.term_freqs is first


class TestNormalizedTf:
    def test_values(self, doc: Document) -> None:
        assert doc.normalized_tf("chord") == pytest.approx(3 / 6)
        assert doc.normalized_tf("lookup") == pytest.approx(1 / 6)

    def test_absent_term(self, doc: Document) -> None:
        assert doc.normalized_tf("unknown") == 0.0

    def test_empty_document(self) -> None:
        empty = Document(doc_id="e", text="the and of")
        assert empty.length == 0
        assert empty.normalized_tf("the") == 0.0


class TestTopTerms:
    def test_ranking_by_frequency(self, doc: Document) -> None:
        assert doc.top_terms(2) == ["chord", "ring"]

    def test_k_larger_than_vocabulary(self, doc: Document) -> None:
        assert doc.top_terms(100) == ["chord", "ring", "lookup"]

    def test_alphabetical_tie_break(self) -> None:
        d = Document(doc_id="t", text="zebra apple zebra apple")
        assert d.top_terms(2) == ["appl", "zebra"]

    def test_term_rank(self, doc: Document) -> None:
        ranks = doc.term_rank()
        assert ranks["chord"] == 0
        assert ranks["ring"] == 1
        assert ranks["lookup"] == 2

    def test_weight_pairs_sorted(self, doc: Document) -> None:
        pairs = doc.as_weight_pairs()
        assert pairs == [("chord", 3), ("ring", 2), ("lookup", 1)]


class TestContains:
    def test_contains_analyzed_term(self, doc: Document) -> None:
        assert doc.contains("chord")
        assert not doc.contains("the")       # stop word
        assert not doc.contains("unknown")

    def test_contains_respects_stemming(self) -> None:
        d = Document(doc_id="s", text="running quickly")
        assert d.contains("run")
        assert not d.contains("running")
