"""Tests for the deterministic sampling helpers."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.sampling import CategoricalSampler, ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_values(self) -> None:
        w = zipf_weights(4, 1.0)
        assert w == pytest.approx([1.0, 0.5, 1 / 3, 0.25])

    def test_zero_exponent_uniform(self) -> None:
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_monotone_decreasing(self) -> None:
        w = zipf_weights(100, 0.5)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_invalid_n(self) -> None:
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_negative_exponent(self) -> None:
        with pytest.raises(ValueError):
            zipf_weights(3, -0.1)


class TestCategoricalSampler:
    def test_deterministic_for_seed(self) -> None:
        sampler = CategoricalSampler(["a", "b", "c"], [1, 2, 3])
        first = sampler.sample_many(random.Random(42), 50)
        second = sampler.sample_many(random.Random(42), 50)
        assert first == second

    def test_zero_weight_never_sampled(self) -> None:
        sampler = CategoricalSampler(["never", "always"], [0.0, 1.0])
        draws = sampler.sample_many(random.Random(1), 200)
        assert set(draws) == {"always"}

    def test_skew_respected(self) -> None:
        sampler = CategoricalSampler(["hot", "cold"], [9.0, 1.0])
        counts = Counter(sampler.sample_many(random.Random(7), 2000))
        assert counts["hot"] > counts["cold"] * 4

    def test_mismatched_lengths(self) -> None:
        with pytest.raises(ValueError):
            CategoricalSampler(["a"], [1.0, 2.0])

    def test_empty_items(self) -> None:
        with pytest.raises(ValueError):
            CategoricalSampler([], [])

    def test_negative_weight(self) -> None:
        with pytest.raises(ValueError):
            CategoricalSampler(["a"], [-1.0])

    def test_all_zero_weights(self) -> None:
        with pytest.raises(ValueError):
            CategoricalSampler(["a", "b"], [0.0, 0.0])

    def test_sample_distinct_no_duplicates(self) -> None:
        sampler = CategoricalSampler(list("abcdefgh"), [1] * 8)
        chosen = sampler.sample_distinct(random.Random(3), 5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_sample_distinct_exhausts_pool(self) -> None:
        sampler = CategoricalSampler(["a", "b"], [1, 1])
        chosen = sampler.sample_distinct(random.Random(3), 10)
        assert sorted(chosen) == ["a", "b"]

    def test_sample_distinct_with_extreme_skew_completes(self) -> None:
        """Rejection sampling must fall back to exhaustive selection
        when one item dominates the probability mass."""
        sampler = CategoricalSampler(["hog", "rare1", "rare2"], [1e9, 1e-9, 1e-9])
        chosen = sampler.sample_distinct(random.Random(5), 3)
        assert sorted(chosen) == ["hog", "rare1", "rare2"]


class TestZipfSampler:
    def test_first_rank_most_common(self) -> None:
        sampler = ZipfSampler(list("abcdef"), 1.2)
        counts = Counter(sampler.sample_many(random.Random(11), 3000))
        assert counts["a"] == max(counts.values())

    def test_uniform_when_exponent_zero(self) -> None:
        sampler = ZipfSampler(["x", "y"], 0.0)
        counts = Counter(sampler.sample_many(random.Random(13), 4000))
        assert abs(counts["x"] - counts["y"]) < 400


class TestSampleManyEquivalence:
    """The bulk path is a drop-in for a loop of single draws: same
    results *and* the same RNG consumption, so interleaving bulk and
    single draws never perturbs downstream randomness."""

    def test_bulk_matches_loop_and_rng_state(self) -> None:
        sampler = ZipfSampler([f"t{i}" for i in range(40)], 0.8)
        for seed in range(20):
            bulk_rng = random.Random(seed)
            loop_rng = random.Random(seed)
            bulk = sampler.sample_many(bulk_rng, 137)
            loop = [sampler.sample(loop_rng) for __ in range(137)]
            assert bulk == loop
            assert bulk_rng.getstate() == loop_rng.getstate()

    def test_count_zero_and_negative_draw_nothing(self) -> None:
        sampler = CategoricalSampler(["a"], [1.0])
        rng = random.Random(0)
        state = rng.getstate()
        assert sampler.sample_many(rng, 0) == []
        assert sampler.sample_many(rng, -3) == []
        assert rng.getstate() == state

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=100),
            min_size=1,
            max_size=25,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        count=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=60, deadline=None)
    def test_bulk_loop_equivalence_property(
        self, weights: list, seed: int, count: int
    ) -> None:
        if sum(weights) <= 0:
            weights[0] = 1.0
        items = [f"item{i}" for i in range(len(weights))]
        sampler = CategoricalSampler(items, weights)
        bulk_rng, loop_rng = random.Random(seed), random.Random(seed)
        bulk = sampler.sample_many(bulk_rng, count)
        loop = [sampler.sample(loop_rng) for __ in range(count)]
        assert bulk == loop
        assert bulk_rng.getstate() == loop_rng.getstate()


@given(
    st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50)
def test_samples_always_from_items(weights: list, seed: int) -> None:
    items = [f"item{i}" for i in range(len(weights))]
    sampler = CategoricalSampler(items, weights)
    rng = random.Random(seed)
    for __ in range(20):
        assert sampler.sample(rng) in items


class TestSampleManyExtremeSkew:
    """Edge-of-the-distribution cases for the bulk sampler: the merge
    walk must keep its bulk-vs-loop identity (values *and* RNG state)
    when the Zipf weights degenerate to near-uniform, to a single
    effective category (underflow), or to a single real category."""

    def _assert_bulk_loop_identity(self, sampler, count: int = 173) -> None:
        for seed in (0, 7, 20070415):
            bulk_rng, loop_rng = random.Random(seed), random.Random(seed)
            bulk = sampler.sample_many(bulk_rng, count)
            loop = [sampler.sample(loop_rng) for __ in range(count)]
            assert bulk == loop
            assert bulk_rng.getstate() == loop_rng.getstate()

    def test_alpha_near_zero_is_near_uniform(self) -> None:
        items = [f"t{i}" for i in range(50)]
        sampler = CategoricalSampler(items, zipf_weights(50, 1e-9))
        self._assert_bulk_loop_identity(sampler)
        counts = Counter(sampler.sample_many(random.Random(5), 5000))
        assert len(counts) == 50  # nothing starved at uniformity

    def test_alpha_huge_underflows_to_head_only(self) -> None:
        # rank^200 overflows the float range deep in the tail (those
        # weights collapse to exactly 0.0) and the near-head weights are
        # so small they vanish inside the cumulative sum — the
        # degenerate tail must neither raise nor desync the RNG, and
        # every draw lands on the head item.
        weights = zipf_weights(40, 200.0)
        assert weights[-1] == 0.0
        assert 0.0 < weights[1] < 1e-16
        sampler = CategoricalSampler([f"t{i}" for i in range(40)], weights)
        self._assert_bulk_loop_identity(sampler)
        assert set(sampler.sample_many(random.Random(11), 300)) == {"t0"}

    def test_single_category(self) -> None:
        sampler = CategoricalSampler(["only"], [3.5])
        self._assert_bulk_loop_identity(sampler)
        assert sampler.sample_many(random.Random(2), 9) == ["only"] * 9
