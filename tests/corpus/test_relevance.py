"""Tests for Query, Qrels, and QuerySet."""

from __future__ import annotations

import pytest

from repro.corpus import Qrels, Query, QuerySet
from repro.exceptions import CorpusError, QueryError


class TestQuery:
    def test_terms_sorted_and_deduplicated(self) -> None:
        q = Query("q1", ("zeta", "alpha", "zeta"))
        assert q.terms == ("alpha", "zeta")

    def test_empty_terms_rejected(self) -> None:
        with pytest.raises(QueryError):
            Query("q1", ())

    def test_origin_defaults_to_self(self) -> None:
        assert Query("q1", ("a",)).origin_id == "q1"

    def test_origin_preserved(self) -> None:
        assert Query("q1.3", ("a",), origin_id="q1").origin_id == "q1"

    def test_hashable_and_frozen(self) -> None:
        q = Query("q1", ("a", "b"))
        assert hash(q) == hash(Query("q1", ("b", "a")))
        with pytest.raises(AttributeError):
            q.query_id = "other"  # type: ignore[misc]

    def test_len_counts_unique_terms(self) -> None:
        assert len(Query("q1", ("a", "b", "a"))) == 2

    def test_overlap(self) -> None:
        a = Query("a", ("x", "y", "z"))
        b = Query("b", ("y", "z", "w"))
        assert a.overlap_with(b) == 2

    def test_term_set(self) -> None:
        assert Query("q", ("b", "a")).term_set == frozenset({"a", "b"})


class TestQrels:
    def test_add_and_lookup(self) -> None:
        qrels = Qrels()
        qrels.add("q1", "d1")
        qrels.add("q1", "d2")
        assert qrels.relevant("q1") == {"d1", "d2"}
        assert qrels.num_relevant("q1") == 2

    def test_unjudged_query(self) -> None:
        qrels = Qrels()
        assert qrels.relevant("nope") == set()
        assert qrels.num_relevant("nope") == 0
        assert not qrels.is_relevant("nope", "d1")

    def test_set_relevant_replaces(self) -> None:
        qrels = Qrels({"q1": {"d1"}})
        qrels.set_relevant("q1", ["d9"])
        assert qrels.relevant("q1") == {"d9"}

    def test_relevant_returns_copy(self) -> None:
        qrels = Qrels({"q1": {"d1"}})
        qrels.relevant("q1").add("d2")
        assert qrels.relevant("q1") == {"d1"}

    def test_container_protocol(self) -> None:
        qrels = Qrels({"q1": {"d1"}, "q2": {"d2"}})
        assert "q1" in qrels
        assert len(qrels) == 2
        assert sorted(qrels) == ["q1", "q2"]

    def test_validate_against_known_docs(self) -> None:
        qrels = Qrels({"q1": {"d1"}})
        qrels.validate_against(["d1", "d2"])  # no raise

    def test_validate_against_unknown_docs(self) -> None:
        qrels = Qrels({"q1": {"ghost"}})
        with pytest.raises(CorpusError):
            qrels.validate_against(["d1"])


class TestQuerySet:
    def _make(self) -> QuerySet:
        return QuerySet(
            [Query("q1", ("a",)), Query("q2", ("b",)), Query("q3", ("c",))],
            Qrels({"q1": {"d1"}}),
        )

    def test_len_and_iter(self) -> None:
        qs = self._make()
        assert len(qs) == 3
        assert [q.query_id for q in qs] == ["q1", "q2", "q3"]

    def test_by_id(self) -> None:
        assert self._make().by_id("q2").terms == ("b",)

    def test_by_id_missing(self) -> None:
        with pytest.raises(QueryError):
            self._make().by_id("missing")

    def test_duplicate_ids_rejected(self) -> None:
        with pytest.raises(QueryError):
            QuerySet([Query("q1", ("a",)), Query("q1", ("b",))])

    def test_split_shares_qrels(self) -> None:
        qs = self._make()
        train, test = qs.split({"q1", "q3"})
        assert [q.query_id for q in train] == ["q1", "q3"]
        assert [q.query_id for q in test] == ["q2"]
        assert train.qrels is qs.qrels
        assert test.qrels is qs.qrels
