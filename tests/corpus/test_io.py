"""Tests for corpus/query-set persistence."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.corpus import (
    Corpus,
    Document,
    Qrels,
    Query,
    QuerySet,
    load_collection,
    load_corpus,
    load_query_set,
    save_collection,
    save_corpus,
    save_query_set,
)
from repro.exceptions import CorpusError


@pytest.fixture()
def corpus() -> Corpus:
    return Corpus(
        [
            Document("d1", "alpha beta gamma", title="First"),
            Document("d2", "delta epsilon zeta"),
        ]
    )


@pytest.fixture()
def query_set() -> QuerySet:
    return QuerySet(
        [
            Query("q1", ("alpha", "beta")),
            Query("q1.0", ("alpha", "noise"), origin_id="q1"),
        ],
        Qrels({"q1": {"d1"}, "q1.0": {"d1", "d2"}}),
    )


class TestCorpusRoundTrip:
    def test_plain_json(self, corpus: Corpus, tmp_path: Path) -> None:
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.doc_ids == corpus.doc_ids
        assert loaded.get("d1").text == "alpha beta gamma"
        assert loaded.get("d1").title == "First"

    def test_gzip(self, corpus: Corpus, tmp_path: Path) -> None:
        path = tmp_path / "corpus.json.gz"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.doc_ids == corpus.doc_ids

    def test_statistics_survive(self, corpus: Corpus, tmp_path: Path) -> None:
        path = tmp_path / "c.json"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.distribution("alpha") == corpus.distribution("alpha")

    def test_wrong_format_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CorpusError):
            load_corpus(path)

    def test_wrong_version_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"format": "repro-corpus", "version": 999, "documents": []})
        )
        with pytest.raises(CorpusError):
            load_corpus(path)


class TestQuerySetRoundTrip:
    def test_queries_and_qrels(self, query_set: QuerySet, tmp_path: Path) -> None:
        path = tmp_path / "queries.json"
        save_query_set(query_set, path)
        loaded = load_query_set(path)
        assert [q.query_id for q in loaded] == [q.query_id for q in query_set]
        assert loaded.by_id("q1.0").origin_id == "q1"
        assert loaded.qrels.relevant("q1.0") == {"d1", "d2"}

    def test_gzip(self, query_set: QuerySet, tmp_path: Path) -> None:
        path = tmp_path / "queries.json.gz"
        save_query_set(query_set, path)
        assert len(load_query_set(path)) == 2

    def test_wrong_format_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "repro-corpus"}))
        with pytest.raises(CorpusError):
            load_query_set(path)


class TestCollection:
    def test_directory_round_trip(self, corpus, query_set, tmp_path: Path) -> None:
        save_collection(corpus, query_set, tmp_path / "col")
        loaded_corpus, loaded_queries = load_collection(tmp_path / "col")
        assert loaded_corpus.doc_ids == corpus.doc_ids
        assert len(loaded_queries) == len(query_set)

    def test_uncompressed_variant(self, corpus, query_set, tmp_path: Path) -> None:
        paths = save_collection(corpus, query_set, tmp_path / "col", compress=False)
        assert all(p.suffix == ".json" for p in paths)
        loaded_corpus, __ = load_collection(tmp_path / "col")
        assert len(loaded_corpus) == 2

    def test_missing_directory(self, tmp_path: Path) -> None:
        with pytest.raises(CorpusError):
            load_collection(tmp_path / "nothing")

    def test_synthetic_collection_round_trip(self, micro_corpus_config, tmp_path: Path) -> None:
        """Full-fidelity check on a generated collection."""
        from repro.corpus import build_synthetic_collection

        corpus, queries, __ = build_synthetic_collection(micro_corpus_config)
        save_collection(corpus, queries, tmp_path / "syn")
        loaded_corpus, loaded_queries = load_collection(tmp_path / "syn")
        assert loaded_corpus.doc_ids == corpus.doc_ids
        assert [q.terms for q in loaded_queries] == [q.terms for q in queries]
        for q in queries:
            assert loaded_queries.qrels.relevant(q.query_id) == queries.qrels.relevant(
                q.query_id
            )
