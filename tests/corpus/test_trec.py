"""Tests for the TREC / OHSUMED format loaders."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.corpus.trec import (
    iter_ohsumed_documents,
    iter_trec_documents,
    load_qrels,
    load_trec_collection,
    load_trec_documents,
    load_trec_topics,
)
from repro.exceptions import CorpusError

TREC_SAMPLE = """
<DOC>
<DOCNO> FT911-1 </DOCNO>
<TITLE>Chord networks</TITLE>
<TEXT>
structured overlay networks route lookups in logarithmic hops
</TEXT>
</DOC>
<DOC>
<DOCNO>FT911-2</DOCNO>
<TEXT>distributed inverted indexes are expensive to maintain</TEXT>
<TEXT>selective indexing reduces the cost</TEXT>
</DOC>
"""

TOPICS_SAMPLE = """
<top>
<num> Number: 451
<title> peer to peer retrieval
<desc> Description: systems for searching p2p networks
</top>
<top>
<num> 452
<title> Topic: index maintenance cost
</top>
"""

QRELS_SAMPLE = """\
451 0 FT911-1 1
451 0 FT911-2 0
452 0 FT911-2 1
452 0 FT911-1 2
"""

OHSUMED_SAMPLE = """\
.I 1
.U
87049087
.T
Peer to peer text retrieval
.W
selective indexing of characteristic terms in overlay networks
.I 2
.U
87049088
.T
Index maintenance
.W
progressive refinement from historical queries
"""


class TestTrecDocuments:
    def test_parse_count(self) -> None:
        docs = list(iter_trec_documents(TREC_SAMPLE))
        assert len(docs) == 2

    def test_docno_stripped(self) -> None:
        docs = list(iter_trec_documents(TREC_SAMPLE))
        assert docs[0].doc_id == "FT911-1"
        assert docs[1].doc_id == "FT911-2"

    def test_title_extracted(self) -> None:
        docs = list(iter_trec_documents(TREC_SAMPLE))
        assert docs[0].title == "Chord networks"

    def test_multiple_text_blocks_joined(self) -> None:
        docs = list(iter_trec_documents(TREC_SAMPLE))
        assert "selective indexing" in docs[1].text
        assert "expensive to maintain" in docs[1].text

    def test_missing_docno_raises(self) -> None:
        with pytest.raises(CorpusError):
            list(iter_trec_documents("<DOC><TEXT>no id</TEXT></DOC>"))

    def test_load_from_files(self, tmp_path: Path) -> None:
        f = tmp_path / "docs.sgml"
        f.write_text(TREC_SAMPLE)
        docs = load_trec_documents([f])
        assert len(docs) == 2

    def test_load_empty_file_raises(self, tmp_path: Path) -> None:
        f = tmp_path / "empty.sgml"
        f.write_text("nothing here")
        with pytest.raises(CorpusError):
            load_trec_documents([f])


class TestOhsumed:
    def test_parse_count(self) -> None:
        docs = list(iter_ohsumed_documents(OHSUMED_SAMPLE))
        assert len(docs) == 2

    def test_uid_used_as_doc_id(self) -> None:
        docs = list(iter_ohsumed_documents(OHSUMED_SAMPLE))
        assert docs[0].doc_id == "87049087"
        assert docs[1].doc_id == "87049088"

    def test_title_and_body_joined(self) -> None:
        docs = list(iter_ohsumed_documents(OHSUMED_SAMPLE))
        assert "Peer to peer" in docs[0].text
        assert "selective indexing" in docs[0].text


class TestTopics:
    def test_parse_topics(self, tmp_path: Path) -> None:
        f = tmp_path / "topics.txt"
        f.write_text(TOPICS_SAMPLE)
        topics = load_trec_topics(f)
        assert [t.query_id for t in topics] == ["451", "452"]

    def test_title_analyzed(self, tmp_path: Path) -> None:
        f = tmp_path / "topics.txt"
        f.write_text(TOPICS_SAMPLE)
        topics = load_trec_topics(f)
        # "peer to peer retrieval" → stop word "to" removed, stemmed.
        assert "peer" in topics[0].terms
        assert "retriev" in topics[0].terms
        assert "to" not in topics[0].terms

    def test_empty_topics_raise(self, tmp_path: Path) -> None:
        f = tmp_path / "topics.txt"
        f.write_text("no topics at all")
        with pytest.raises(CorpusError):
            load_trec_topics(f)


class TestQrels:
    def test_positive_judgments_only(self, tmp_path: Path) -> None:
        f = tmp_path / "qrels.txt"
        f.write_text(QRELS_SAMPLE)
        qrels = load_qrels(f)
        assert qrels.relevant("451") == {"FT911-1"}
        assert qrels.relevant("452") == {"FT911-2", "FT911-1"}

    def test_malformed_lines_skipped(self, tmp_path: Path) -> None:
        f = tmp_path / "qrels.txt"
        f.write_text("451 0 FT911-1 1\nbroken line\n")
        qrels = load_qrels(f)
        assert qrels.relevant("451") == {"FT911-1"}

    def test_empty_raises(self, tmp_path: Path) -> None:
        f = tmp_path / "qrels.txt"
        f.write_text("")
        with pytest.raises(CorpusError):
            load_qrels(f)


class TestFullCollection:
    def test_one_call_loader(self, tmp_path: Path) -> None:
        docs = tmp_path / "docs.sgml"
        docs.write_text(TREC_SAMPLE)
        topics = tmp_path / "topics.txt"
        topics.write_text(TOPICS_SAMPLE)
        qrels = tmp_path / "qrels.txt"
        qrels.write_text(QRELS_SAMPLE)
        corpus, query_set = load_trec_collection([docs], topics, qrels)
        assert len(corpus) == 2
        assert len(query_set) == 2
        assert query_set.qrels.relevant("451") == {"FT911-1"}
