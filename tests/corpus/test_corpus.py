"""Tests for the Corpus container and its global statistics."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document
from repro.exceptions import CorpusError, DocumentNotFoundError


@pytest.fixture()
def corpus() -> Corpus:
    return Corpus(
        [
            Document("d1", "alpha alpha beta"),
            Document("d2", "alpha gamma gamma gamma"),
            Document("d3", "beta beta delta"),
        ]
    )


class TestContainer:
    def test_len(self, corpus: Corpus) -> None:
        assert len(corpus) == 3

    def test_iteration_order(self, corpus: Corpus) -> None:
        assert [d.doc_id for d in corpus] == ["d1", "d2", "d3"]

    def test_contains(self, corpus: Corpus) -> None:
        assert "d1" in corpus
        assert "nope" not in corpus

    def test_get(self, corpus: Corpus) -> None:
        assert corpus.get("d2").doc_id == "d2"

    def test_get_missing_raises(self, corpus: Corpus) -> None:
        with pytest.raises(DocumentNotFoundError):
            corpus.get("missing")

    def test_duplicate_ids_rejected(self) -> None:
        with pytest.raises(CorpusError):
            Corpus([Document("x", "a b"), Document("x", "c d")])

    def test_empty_corpus_rejected(self) -> None:
        with pytest.raises(CorpusError):
            Corpus([])


class TestStatistics:
    def test_document_frequency(self, corpus: Corpus) -> None:
        df = corpus.document_frequency
        assert df["alpha"] == 2
        assert df["beta"] == 2
        assert df["gamma"] == 1
        assert df["delta"] == 1

    def test_collection_frequency(self, corpus: Corpus) -> None:
        cf = corpus.collection_frequency
        assert cf["alpha"] == 3
        assert cf["gamma"] == 3
        assert cf["beta"] == 3
        assert cf["delta"] == 1

    def test_vocabulary_sorted(self, corpus: Corpus) -> None:
        assert corpus.vocabulary == ["alpha", "beta", "delta", "gamma"]

    def test_total_terms(self, corpus: Corpus) -> None:
        assert corpus.total_terms == 10

    def test_average_document_length(self, corpus: Corpus) -> None:
        assert corpus.average_document_length == pytest.approx(10 / 3)


class TestDistribution:
    """The paper's Distribution(t) = Freq(t) × Num(t)."""

    def test_values(self, corpus: Corpus) -> None:
        assert corpus.distribution("alpha") == 3 * 2
        assert corpus.distribution("gamma") == 3 * 1
        assert corpus.distribution("delta") == 1 * 1

    def test_unknown_term_is_zero(self, corpus: Corpus) -> None:
        assert corpus.distribution("unknown") == 0.0

    def test_table_matches_pointwise(self, corpus: Corpus) -> None:
        table = corpus.distribution_table()
        for term in corpus.vocabulary:
            assert table[term] == corpus.distribution(term)

    def test_distribution_separates_spread_from_burst(self) -> None:
        """Two terms with equal total frequency but different spread
        have different Distribution — the property phase 1 relies on."""
        c = Corpus(
            [
                Document("a", "spread"),
                Document("b", "spread"),
                Document("c", "burst burst"),
            ]
        )
        assert c.distribution("spread") == 2 * 2
        assert c.distribution("burst") == 2 * 1


class TestReplace:
    def test_swaps_revision_and_returns_previous(self, corpus: Corpus) -> None:
        previous = corpus.replace(Document("d2", "epsilon epsilon"))
        assert previous.text == "alpha gamma gamma gamma"
        assert corpus.get("d2").text == "epsilon epsilon"
        assert len(corpus) == 3

    def test_preserves_insertion_order(self, corpus: Corpus) -> None:
        corpus.replace(Document("d1", "zeta"))
        assert corpus.doc_ids == ["d1", "d2", "d3"]

    def test_invalidates_global_statistics(self, corpus: Corpus) -> None:
        assert corpus.document_frequency["alpha"] == 2
        corpus.replace(Document("d2", "epsilon"))
        assert corpus.document_frequency["alpha"] == 1
        assert corpus.document_frequency["epsilon"] == 1
        assert corpus.collection_frequency["gamma"] == 0

    def test_unknown_id_rejected(self, corpus: Corpus) -> None:
        with pytest.raises(DocumentNotFoundError):
            corpus.replace(Document("d9", "nope"))
