"""The streaming synthetic corpus generator (DESIGN.md §13)."""

from __future__ import annotations

import random
from itertools import islice

import pytest

from repro.corpus.sampling import zipf_weights
from repro.corpus.stream import StreamedDoc, stream_synthetic_docs

VOCAB = [f"term{i:03d}" for i in range(50)]
WEIGHTS = zipf_weights(len(VOCAB), 0.8)


def _stream(seed: int = 9, **kwargs):
    params = dict(
        vocabulary=VOCAB,
        weights=WEIGHTS,
        num_documents=40,
        terms_per_document=6,
    )
    params.update(kwargs)
    return stream_synthetic_docs(random.Random(seed), **params)


class TestDeterminism:
    def test_same_seed_same_stream(self) -> None:
        assert list(_stream(seed=3)) == list(_stream(seed=3))

    def test_different_seed_different_stream(self) -> None:
        assert list(_stream(seed=3)) != list(_stream(seed=4))

    def test_prefix_stable_under_count(self) -> None:
        """The first k documents do not depend on how many more will be
        generated — a shard can size its stream freely."""
        short = list(_stream(seed=7, num_documents=10))
        long_prefix = list(islice(_stream(seed=7, num_documents=40), 10))
        assert short == long_prefix


class TestShape:
    def test_ids_lengths_and_tfs_in_range(self) -> None:
        docs = list(_stream())
        assert [d.doc_id for d in docs] == [f"doc{i:07d}" for i in range(40)]
        for doc in docs:
            assert 80 <= doc.length <= 240
            assert 1 <= len(doc.term_tfs) <= 6
            terms = [t for t, __ in doc.term_tfs]
            assert len(set(terms)) == len(terms), "duplicates must collapse"
            for term, tf in doc.term_tfs:
                assert term in VOCAB
                assert 1 <= tf <= 12

    def test_id_prefix_respected(self) -> None:
        doc = next(_stream(id_prefix="s03-d"))
        assert doc.doc_id == "s03-d0000000"

    def test_rows_are_immutable(self) -> None:
        doc = next(_stream())
        assert isinstance(doc, StreamedDoc)
        with pytest.raises(AttributeError):
            doc.length = 0  # type: ignore[misc]


class TestLaziness:
    def test_returns_a_generator_and_defers_work(self) -> None:
        rng = random.Random(5)
        state = rng.getstate()
        stream = stream_synthetic_docs(
            rng, VOCAB, WEIGHTS, num_documents=10**9, terms_per_document=6
        )
        # A billion-document stream costs nothing until consumed.
        assert rng.getstate() == state
        first = next(stream)
        assert first.doc_id == "doc0000000"
        assert rng.getstate() != state

    def test_zero_documents_yields_nothing(self) -> None:
        assert list(_stream(num_documents=0)) == []


class TestValidation:
    def test_negative_documents_rejected(self) -> None:
        with pytest.raises(ValueError):
            next(_stream(num_documents=-1))

    def test_zero_terms_rejected(self) -> None:
        with pytest.raises(ValueError):
            next(_stream(terms_per_document=0))

    def test_bad_length_bounds_rejected(self) -> None:
        with pytest.raises(ValueError):
            next(_stream(min_doc_length=100, max_doc_length=90))
        with pytest.raises(ValueError):
            next(_stream(min_doc_length=0))


class TestTurnover:
    def _revised(self, seed: int = 4, **kwargs):
        from repro.corpus.stream import stream_turnover

        docs = list(_stream(seed=9))
        return list(stream_turnover(random.Random(seed), docs, **kwargs))

    def test_keeps_ids_and_order(self) -> None:
        originals = list(_stream(seed=9))
        revised = self._revised()
        assert [d.doc_id for d in revised] == [d.doc_id for d in originals]

    def test_deterministic_for_a_seed(self) -> None:
        assert self._revised(seed=4) == self._revised(seed=4)
        assert self._revised(seed=4) != self._revised(seed=5)

    def test_actually_edits_the_stream(self) -> None:
        originals = list(_stream(seed=9))
        revised = self._revised()
        assert any(a != b for a, b in zip(originals, revised))

    def test_never_drops_every_term(self) -> None:
        revised = self._revised(drop_term_probability=0.95)
        assert all(d.term_tfs for d in revised)
        assert all(tf >= 1 for d in revised for __, tf in d.term_tfs)
        assert all(d.length >= 1 for d in revised)

    def test_validation(self) -> None:
        from repro.corpus.stream import stream_turnover

        with pytest.raises(ValueError):
            list(stream_turnover(random.Random(0), [], drop_term_probability=1.0))
        with pytest.raises(ValueError):
            list(stream_turnover(random.Random(0), [], tf_jitter=-1))


class TestReviseDocument:
    def _doc(self):
        from repro.corpus import Document

        return Document("doc", "alpha beta gamma delta " * 10, title="t")

    def test_same_id_new_text(self) -> None:
        from repro.corpus.stream import revise_document

        doc = self._doc()
        revised = revise_document(doc, random.Random(1))
        assert revised.doc_id == doc.doc_id
        assert revised.title == doc.title
        assert revised.text != doc.text
        # edits stay inside the document's own vocabulary
        assert set(revised.text.split()) <= set(doc.text.split())

    def test_deterministic_for_a_seed(self) -> None:
        from repro.corpus.stream import revise_document

        doc = self._doc()
        first = revise_document(doc, random.Random(3))
        second = revise_document(doc, random.Random(3))
        assert first.text == second.text

    def test_empty_document_passes_through(self) -> None:
        from repro.corpus import Document
        from repro.corpus.stream import revise_document

        revised = revise_document(Document("e", ""), random.Random(0))
        assert revised.doc_id == "e"
        assert revised.text == ""

    def test_edit_fraction_validated(self) -> None:
        from repro.corpus.stream import revise_document

        with pytest.raises(ValueError):
            revise_document(self._doc(), random.Random(0), edit_fraction=0.0)
        with pytest.raises(ValueError):
            revise_document(self._doc(), random.Random(0), edit_fraction=1.5)
