"""Tests for the from-scratch Porter stemmer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import (
    PorterStemmer,
    _contains_vowel,
    _ends_cvc,
    _ends_double_consonant,
    _is_consonant,
    _measure,
    stem,
    stem_all,
)

# Reference pairs from Porter's 1980 paper and the canonical test
# vocabulary; these pin the implementation to the published algorithm.
KNOWN_STEMS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", KNOWN_STEMS)
def test_known_stems(word: str, expected: str) -> None:
    assert stem(word) == expected


def test_short_words_unchanged() -> None:
    for word in ("a", "is", "be", "ox"):
        assert stem(word) == word


def test_stemming_lowercases() -> None:
    assert stem("Running") == "run"
    assert stem("CARESSES") == "caress"


def test_stem_all_preserves_order() -> None:
    assert stem_all(["running", "jumps", "easily"]) == ["run", "jump", "easili"]


def test_stemmer_object_matches_function() -> None:
    stemmer = PorterStemmer()
    for word, expected in KNOWN_STEMS[:10]:
        assert stemmer.stem(word) == expected


class TestMeasure:
    """Porter's measure m: [C](VC)^m[V]."""

    @pytest.mark.parametrize(
        "word,m",
        [
            ("tr", 0),
            ("ee", 0),
            ("tree", 0),
            ("y", 0),
            ("by", 0),
            ("trouble", 1),
            ("oats", 1),
            ("trees", 1),
            ("ivy", 1),
            ("troubles", 2),
            ("private", 2),
            ("oaten", 2),
            ("orrery", 2),
        ],
    )
    def test_measure_values(self, word: str, m: int) -> None:
        assert _measure(word) == m


class TestConsonantClassification:
    def test_vowels_are_not_consonants(self) -> None:
        for i, ch in enumerate("aeiou"):
            assert not _is_consonant(ch, 0)

    def test_y_after_consonant_is_vowel(self) -> None:
        # 'y' in "syzygy" positions 1, 3, 5 follow consonants → vowels.
        word = "syzygy"
        assert not _is_consonant(word, 1)
        assert not _is_consonant(word, 3)
        assert not _is_consonant(word, 5)

    def test_y_at_start_is_consonant(self) -> None:
        assert _is_consonant("yes", 0)

    def test_contains_vowel(self) -> None:
        assert _contains_vowel("cat")
        assert not _contains_vowel("try"[0:2])  # "tr"

    def test_double_consonant(self) -> None:
        assert _ends_double_consonant("hopp")
        assert not _ends_double_consonant("hope")
        assert not _ends_double_consonant("see")  # ee is a vowel pair

    def test_cvc(self) -> None:
        assert _ends_cvc("hop")
        assert not _ends_cvc("how")   # ends in w
        assert not _ends_cvc("box")   # ends in x
        assert not _ends_cvc("hoy")   # ends in y
        assert not _ends_cvc("ho")


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=30))
def test_stem_never_longer_than_input(word: str) -> None:
    """Suffix stripping can only remove or replace short suffixes; the
    stem must never grow beyond the input length + 1 ('e' restoration)."""
    assert len(stem(word)) <= len(word) + 1


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=30))
def test_stem_is_deterministic(word: str) -> None:
    assert stem(word) == stem(word)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=20))
def test_stem_output_nonempty(word: str) -> None:
    assert stem(word)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
def test_plural_s_stripped(word: str) -> None:
    """Any word ending in a plain plural -s (not -ss/-us...) stems to the
    same value as applying stem to it directly — idempotence over the
    simple plural rule."""
    plural = word + "es" if word.endswith(("s", "x")) else word + "s"
    # Just confirm no crash and output is a prefix-ish transform.
    assert isinstance(stem(plural), str)


class TestMemoization:
    """The ingest-time fast path (ISSUE 5): the pure pipeline is
    lru_cache-memoized per stemmer instance, with hit/miss counters
    surfacing through PROFILE when profiling is on."""

    def test_repeat_words_hit_the_cache(self) -> None:
        stemmer = PorterStemmer()
        assert stemmer.stem("running") == "run"
        info = stemmer.cache_info()
        assert (info.hits, info.misses) == (0, 1)
        assert stemmer.stem("running") == "run"
        info = stemmer.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_case_variants_share_one_entry(self) -> None:
        stemmer = PorterStemmer()
        stemmer.stem("Jumping")
        stemmer.stem("JUMPING")
        stemmer.stem("jumping")
        info = stemmer.cache_info()
        assert info.misses == 1
        assert info.hits == 2

    def test_memoized_matches_uncached_pipeline(self) -> None:
        stemmer = PorterStemmer()
        for word, expected in KNOWN_STEMS:
            assert stemmer.stem(word) == expected
            assert stemmer.stem(word) == expected  # cached round

    def test_instances_have_independent_caches(self) -> None:
        a, b = PorterStemmer(), PorterStemmer()
        a.stem("walking")
        assert a.cache_info().currsize == 1
        assert b.cache_info().currsize == 0

    def test_profile_counters_when_enabled(self) -> None:
        from repro.perf import PROFILE

        PROFILE.reset()
        PROFILE.enable()
        try:
            stemmer = PorterStemmer()
            stemmer.stem("singing")
            stemmer.stem("singing")
            stemmer.stem("singing")
            counters = PROFILE.summary()["counters"]
        finally:
            PROFILE.disable()
        assert counters["stem.cache_misses"] == 1
        assert counters["stem.cache_hits"] == 2

    def test_no_profile_counters_when_disabled(self) -> None:
        from repro.perf import PROFILE

        PROFILE.reset()
        stemmer = PorterStemmer()
        stemmer.stem("singing")
        stemmer.stem("singing")
        assert "stem.cache_hits" not in PROFILE.summary().get("counters", {})
