"""Tests for the end-to-end analysis pipeline."""

from __future__ import annotations

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.text.stopwords import LUCENE_STOP_WORDS
from repro.text.tokenizer import Tokenizer


class TestPipeline:
    def test_stopwords_then_stemming(self) -> None:
        assert Analyzer().analyze("The retrieving peers are retrieving") == [
            "retriev", "peer", "retriev",
        ]

    def test_order_and_multiplicity_preserved(self) -> None:
        out = Analyzer().analyze("index index tuning index")
        assert out == ["index", "index", "tune", "index"]

    def test_empty_input(self) -> None:
        assert Analyzer().analyze("") == []

    def test_all_stopwords(self) -> None:
        assert Analyzer().analyze("the and of to") == []

    def test_stemming_can_be_disabled(self) -> None:
        a = Analyzer(enable_stemming=False)
        assert a.analyze("running dogs") == ["running", "dogs"]

    def test_custom_stop_words(self) -> None:
        a = Analyzer(stop_words=frozenset({"chord"}))
        assert a.analyze("chord ring") == ["ring"]

    def test_custom_tokenizer(self) -> None:
        a = Analyzer(tokenizer=Tokenizer(min_length=5))
        assert a.analyze("ring routing") == ["rout"]


class TestTermFrequencies:
    def test_counter(self) -> None:
        freqs = Analyzer().term_frequencies("query query document")
        assert freqs == Counter({"queri": 2, "document": 1})

    def test_empty(self) -> None:
        assert Analyzer().term_frequencies("") == Counter()


class TestQueryAnalysis:
    def test_deduplicates(self) -> None:
        assert Analyzer().analyze_query("chord chord ring") == ["chord", "ring"]

    def test_first_occurrence_order(self) -> None:
        assert Analyzer().analyze_query("zebra apple zebra") == ["zebra", "appl"]

    def test_merges_inflections(self) -> None:
        # "index" and "indexes" stem to the same term → deduplicated.
        assert Analyzer().analyze_query("index indexes") == ["index"]


@given(st.text(max_size=300))
def test_no_stop_words_survive_before_stemming(text: str) -> None:
    """Stop-word removal precedes stemming (paper Section 6's pipeline
    order), so the *unstemmed* term stream never contains a stop word.
    (Stemming itself may legitimately create one — e.g. "ase" → "as" —
    which is faithful to the Lucene-style pipeline.)"""
    unstemmed = Analyzer(enable_stemming=False)
    for term in unstemmed.analyze(text):
        assert term not in LUCENE_STOP_WORDS


@given(st.text(max_size=300))
def test_analysis_deterministic(text: str) -> None:
    assert DEFAULT_ANALYZER.analyze(text) == DEFAULT_ANALYZER.analyze(text)


@given(st.text(max_size=300))
def test_query_analysis_is_subset_of_analysis(text: str) -> None:
    full = DEFAULT_ANALYZER.analyze(text)
    query = DEFAULT_ANALYZER.analyze_query(text)
    assert set(query) == set(full)
    assert len(query) == len(set(query))
