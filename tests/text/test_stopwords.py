"""Tests for the stop-word list."""

from __future__ import annotations

from repro.text.stopwords import (
    LUCENE_STOP_WORDS,
    is_stop_word,
    make_stop_word_set,
    remove_stop_words,
)


def test_lucene_list_has_33_words() -> None:
    """Lucene's StandardAnalyzer default English stop set is exactly 33
    words; the paper uses it verbatim."""
    assert len(LUCENE_STOP_WORDS) == 33


def test_expected_members() -> None:
    for word in ("the", "is", "a", "an", "and", "of", "to", "with", "will"):
        assert word in LUCENE_STOP_WORDS


def test_non_members() -> None:
    # Common English words NOT in Lucene's (deliberately small) list.
    for word in ("have", "from", "he", "she", "we", "you", "do"):
        assert word not in LUCENE_STOP_WORDS


def test_is_stop_word_case_insensitive() -> None:
    assert is_stop_word("THE")
    assert is_stop_word("The")
    assert not is_stop_word("chord")


def test_remove_stop_words_preserves_order() -> None:
    tokens = ["the", "quick", "fox", "and", "the", "hound"]
    assert remove_stop_words(tokens) == ["quick", "fox", "hound"]


def test_remove_stop_words_empty() -> None:
    assert remove_stop_words([]) == []


def test_remove_all_stop_words() -> None:
    assert remove_stop_words(["the", "and", "of"]) == []


def test_custom_stop_word_set() -> None:
    custom = make_stop_word_set(["Foo", "BAR", "foo"])
    assert custom == frozenset({"foo", "bar"})
    assert is_stop_word("FOO", custom)
    assert not is_stop_word("the", custom)


def test_list_is_frozen() -> None:
    assert isinstance(LUCENE_STOP_WORDS, frozenset)
