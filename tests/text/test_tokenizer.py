"""Tests for the tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import DEFAULT_TOKENIZER, Tokenizer, tokenize


class TestBasicTokenization:
    def test_splits_on_punctuation(self) -> None:
        assert tokenize("peer-to-peer, text; retrieval!") == [
            "peer", "to", "peer", "text", "retrieval",
        ]

    def test_lowercases(self) -> None:
        assert tokenize("Chord DHT Network") == ["chord", "dht", "network"]

    def test_empty_text(self) -> None:
        assert tokenize("") == []

    def test_whitespace_only(self) -> None:
        assert tokenize("   \t\n  ") == []

    def test_unicode_punctuation_is_separator(self) -> None:
        assert tokenize("query…document") == ["query", "document"]

    def test_numbers_dropped_by_default(self) -> None:
        assert tokenize("chapter 42 section 7b") == ["chapter", "section", "7b"]

    def test_single_letters_dropped_by_default(self) -> None:
        assert tokenize("a b chord c") == ["chord"]


class TestConfiguration:
    def test_keep_numbers(self) -> None:
        t = Tokenizer(keep_numbers=True)
        assert t.tokenize("top 20 answers") == ["top", "20", "answers"]

    def test_min_length(self) -> None:
        t = Tokenizer(min_length=4)
        assert t.tokenize("the chord ring") == ["chord", "ring"]

    def test_max_length_drops_blobs(self) -> None:
        t = Tokenizer(max_length=10)
        blob = "x" * 50
        assert t.tokenize(f"short {blob} words") == ["short", "words"]

    def test_invalid_min_length(self) -> None:
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_invalid_max_length(self) -> None:
        with pytest.raises(ValueError):
            Tokenizer(min_length=5, max_length=4)

    def test_iter_tokens_is_lazy(self) -> None:
        iterator = DEFAULT_TOKENIZER.iter_tokens("alpha beta")
        assert next(iterator) == "alpha"
        assert next(iterator) == "beta"


@given(st.text(max_size=500))
def test_tokens_are_lowercase_alnum(text: str) -> None:
    for token in tokenize(text):
        assert token == token.lower()
        assert token.isalnum()


@given(st.text(max_size=500))
def test_token_lengths_within_bounds(text: str) -> None:
    t = Tokenizer(min_length=2, max_length=40)
    for token in t.tokenize(text):
        assert 2 <= len(token) <= 40


@given(st.lists(st.sampled_from(["chord", "peer", "index", "query"]), max_size=20))
def test_space_joined_words_roundtrip(words: list) -> None:
    """Tokenizing space-joined known-good words returns them verbatim."""
    assert tokenize(" ".join(words)) == words
