"""Edge cases of the batched write path (ISSUE 5).

Unit-level companions to the ``test_ingest_equivalence`` property:
owner semantics that must hold identically on both write paths
(cursor resets, idempotent publication, partial-failure isolation) and
the indexer batch methods' cost/failure contracts (one lookup per
distinct peer via interval absorption, per-peer failure isolation,
``poll_batch`` matching ``poll_term`` term for term).
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.config import ChordConfig, SpriteConfig
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import PostingEntry
from repro.core.owner import OwnerPeer
from repro.corpus import Document
from repro.dht import ChordRing
from repro.perf import PROFILE


def make_ring(seed: int = 29, route_cache_size: int = 0) -> ChordRing:
    return ChordRing(
        ChordConfig(
            num_peers=16,
            id_bits=32,
            successor_list_size=4,
            seed=seed,
            route_cache_size=route_cache_size,
        )
    )


def make_owner(ring: ChordRing, batched: bool) -> OwnerPeer:
    config = SpriteConfig(
        initial_terms=2,
        terms_per_iteration=2,
        learning_iterations=1,
        max_index_terms=4,
        query_cache_size=32,
        batched_writes=batched,
    )
    protocol = IndexingProtocol(ring, query_cache_size=32)
    return OwnerPeer(ring.live_ids[0], protocol, config)


DOC = Document(
    "d1",
    "alpha alpha alpha beta beta gamma gamma delta epsilon zeta zeta zeta zeta",
)


@pytest.mark.parametrize("batched", [True, False])
class TestOwnerEdgeCases:
    def test_unshare_then_reshare_resets_poll_cursors(self, batched: bool) -> None:
        ring = make_ring()
        owner = make_owner(ring, batched)
        state = owner.share(DOC)
        issuer = ring.live_ids[3]
        owner.protocol.register_query(issuer, ("zeta", "alpha"))
        first_poll = owner.poll_queries(DOC.doc_id)
        assert first_poll == [("zeta", "alpha")]
        advanced = dict(state.poll_cursors)
        assert any(cursor >= 0 for cursor in advanced.values())

        owner.unshare(DOC.doc_id)
        fresh = owner.share(DOC)
        assert fresh is not state
        # A re-shared document starts from scratch: every cursor back at
        # -1, so the next poll re-observes the still-cached query.
        assert set(fresh.poll_cursors) == set(fresh.index_terms)
        assert all(cursor == -1 for cursor in fresh.poll_cursors.values())
        assert owner.poll_queries(DOC.doc_id) == [("zeta", "alpha")]

    def test_publishing_already_indexed_term_is_noop(self, batched: bool) -> None:
        ring = make_ring()
        owner = make_owner(ring, batched)
        state = owner.share(DOC)
        terms_before = list(state.index_terms)
        cursors_before = dict(state.poll_cursors)
        versions_before = {
            term: owner.protocol.slot_snapshot(term).version
            for term in terms_before
        }
        messages_before = ring.stats.total_messages

        owner._publish_terms(state, terms_before)

        assert state.index_terms == terms_before
        assert state.poll_cursors == cursors_before
        for term in terms_before:
            slot = owner.protocol.slot_snapshot(term)
            assert slot.version == versions_before[term]
            assert slot.indexed_document_frequency == 1
        assert ring.stats.total_messages == messages_before

    def test_one_failed_peer_does_not_lose_other_batches(self, batched: bool) -> None:
        ring = make_ring(seed=31)
        owner = make_owner(ring, batched)
        live_term, dead_term = _terms_on_distinct_peers(
            ring, owner.protocol, exclude={owner.node_id}
        )
        ring.fail(_responsible(ring, owner.protocol, dead_term))
        state = owner.share(
            Document("d-part", "alpha beta"), first_terms=[live_term, dead_term]
        )
        # The reachable peer's publication lands; the dead peer's term is
        # dropped (not indexed) instead of poisoning the whole batch.
        assert state.index_terms == [live_term]
        assert owner.protocol.indexed_document_frequency(live_term) == 1
        assert state.poll_cursors == {live_term: -1}


def _responsible(ring: ChordRing, protocol: IndexingProtocol, term: str) -> int:
    return ring.responsible_node(protocol.term_hash(term)).node_id


def _terms_on_distinct_peers(
    ring: ChordRing, protocol: IndexingProtocol, exclude: set
) -> Tuple[str, str]:
    """Two probe terms whose indexing peers differ, neither excluded and
    neither on the lookup path start (deterministic for a seeded ring)."""
    found = {}
    for i in range(200):
        term = f"probe{i:03d}"
        peer = _responsible(ring, protocol, term)
        if peer in exclude:
            continue
        if peer not in found:
            found[peer] = term
        if len(found) >= 2:
            peers = list(found)
            return found[peers[0]], found[peers[1]]
    raise AssertionError("could not find two distinct indexing peers")


class TestLocateWriteBatch:
    def test_one_lookup_per_distinct_peer(self) -> None:
        ring = make_ring()
        protocol = IndexingProtocol(ring, query_cache_size=32)
        owner_id = ring.live_ids[0]
        terms = [f"bulk{i:03d}" for i in range(48)]
        distinct_peers = {_responsible(ring, protocol, t) for t in terms}
        assert len(distinct_peers) < len(terms)  # 48 terms on a 16-peer ring

        lookups_before = len(ring.stats.lookup_hop_samples)
        postings = [
            (t, PostingEntry(doc_id="d", owner_peer=owner_id, raw_tf=1, doc_length=2))
            for t in terms
        ]
        published, failed = protocol.publish_batch(owner_id, postings)
        lookups = len(ring.stats.lookup_hop_samples) - lookups_before

        assert failed == set()
        assert published == set(terms)
        assert lookups == len(distinct_peers)

    def test_absorption_counted_in_profile(self) -> None:
        ring = make_ring()
        protocol = IndexingProtocol(ring, query_cache_size=32)
        owner_id = ring.live_ids[0]
        terms = [f"bulk{i:03d}" for i in range(48)]
        distinct_peers = {_responsible(ring, protocol, t) for t in terms}
        PROFILE.reset()
        PROFILE.enable()
        try:
            protocol.publish_batch(
                owner_id,
                [
                    (t, PostingEntry(doc_id="d", owner_peer=owner_id, raw_tf=1, doc_length=2))
                    for t in terms
                ],
            )
            counters = PROFILE.summary()["counters"]
        finally:
            PROFILE.disable()
        assert counters["ingest.write_lookups"] == len(distinct_peers)
        assert counters["ingest.absorbed_terms"] == len(terms) - len(distinct_peers)

    def test_batch_failure_isolated_to_dead_peers_terms(self) -> None:
        ring = make_ring(seed=31)
        protocol = IndexingProtocol(ring, query_cache_size=32)
        owner_id = ring.live_ids[0]
        live_term, dead_term = _terms_on_distinct_peers(
            ring, protocol, exclude={owner_id}
        )
        ring.fail(_responsible(ring, protocol, dead_term))
        posting = PostingEntry(doc_id="d", owner_peer=owner_id, raw_tf=1, doc_length=2)
        published, failed = protocol.publish_batch(
            owner_id, [(live_term, posting), (dead_term, posting)]
        )
        assert live_term in published
        assert dead_term in failed
        assert dead_term not in published


class TestPollBatch:
    def test_poll_batch_matches_poll_term_per_term(self) -> None:
        ring = make_ring()
        protocol = IndexingProtocol(ring, query_cache_size=32)
        owner_id = ring.live_ids[0]
        issuer = ring.live_ids[5]
        index_terms = ["alpha", "beta", "gamma", "delta"]
        posting = PostingEntry(doc_id="d", owner_peer=owner_id, raw_tf=2, doc_length=8)
        for term in index_terms:
            protocol.publish(owner_id, term, posting)
        queries: List[Tuple[str, ...]] = [
            ("alpha", "beta"),
            ("gamma",),
            ("beta", "delta", "alpha"),
            ("delta", "gamma"),
            ("epsilon", "alpha"),
        ]
        for terms in queries:
            protocol.register_query(issuer, terms)
        hashes = {t: protocol.term_hash(t) for t in index_terms}

        batched, failed = protocol.poll_batch(
            owner_id, [(t, -1) for t in index_terms], hashes
        )
        assert failed == set()
        assert set(batched) == set(index_terms)
        total = 0
        for term in index_terms:
            singles, latest = protocol.poll_term(owner_id, term, hashes, -1)
            assert batched[term] == (singles, latest)
            total += len(singles)
        # §3 closest-hash dedup: each registered query comes back from
        # exactly one of the index terms it contains.
        assert total == len(queries)

    def test_poll_batch_of_unindexed_term_reports_cursor_unchanged(self) -> None:
        ring = make_ring()
        protocol = IndexingProtocol(ring, query_cache_size=32)
        owner_id = ring.live_ids[0]
        hashes = {"ghost": protocol.term_hash("ghost")}
        results, failed = protocol.poll_batch(owner_id, [("ghost", 7)], hashes)
        assert failed == set()
        assert results == {"ghost": ([], 7)}
