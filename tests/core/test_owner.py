"""Tests for the owner peer: sharing and learning."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, SpriteConfig
from repro.core.indexer import IndexingProtocol
from repro.core.owner import OwnerPeer
from repro.corpus import Document
from repro.dht import ChordRing
from repro.exceptions import LearningError


@pytest.fixture()
def ring() -> ChordRing:
    return ChordRing(ChordConfig(num_peers=16, id_bits=32, seed=29))


@pytest.fixture()
def protocol(ring: ChordRing) -> IndexingProtocol:
    return IndexingProtocol(ring, query_cache_size=32)


@pytest.fixture()
def config() -> SpriteConfig:
    return SpriteConfig(
        initial_terms=2,
        terms_per_iteration=2,
        learning_iterations=2,
        max_index_terms=4,
        query_cache_size=32,
        top_k_answers=5,
    )


@pytest.fixture()
def owner(ring: ChordRing, protocol: IndexingProtocol, config: SpriteConfig) -> OwnerPeer:
    return OwnerPeer(ring.live_ids[0], protocol, config)


DOC = Document(
    "d1",
    "alpha alpha alpha beta beta gamma gamma delta epsilon zeta zeta zeta zeta",
)


class TestShare:
    def test_initial_terms_published(self, owner: OwnerPeer, protocol: IndexingProtocol) -> None:
        state = owner.share(DOC)
        # top-2 by frequency: zeta (4), alpha (3).
        assert state.index_terms == ["zeta", "alpha"]
        for term in state.index_terms:
            assert protocol.indexed_document_frequency(term) == 1

    def test_user_supplied_terms(self, owner: OwnerPeer) -> None:
        state = owner.share(Document("d2", DOC.text), first_terms=["gamma", "beta"])
        assert state.index_terms == ["gamma", "beta"]

    def test_double_share_rejected(self, owner: OwnerPeer) -> None:
        owner.share(DOC)
        with pytest.raises(LearningError):
            owner.share(DOC)

    def test_unshare_removes_postings(self, owner: OwnerPeer, protocol: IndexingProtocol) -> None:
        owner.share(DOC)
        owner.unshare("d1")
        assert protocol.indexed_document_frequency("zeta") == 0
        assert owner.num_shared == 0

    def test_index_terms_of_unknown_doc(self, owner: OwnerPeer) -> None:
        with pytest.raises(LearningError):
            owner.index_terms("ghost")


class TestLearning:
    def test_learning_grows_index(self, owner: OwnerPeer, protocol: IndexingProtocol, ring: ChordRing) -> None:
        owner.share(DOC)
        issuer = ring.live_ids[2]
        # Repeated queries on (beta, gamma): terms in doc, not yet indexed.
        for __ in range(5):
            protocol.register_query(issuer, ("beta", "gamma"))
        terms = owner.learn_document("d1")
        assert len(terms) == 4
        assert "beta" in terms and "gamma" in terms
        # The new terms are actually published.
        assert protocol.indexed_document_frequency("beta") == 1
        assert protocol.indexed_document_frequency("gamma") == 1

    def test_learning_without_queries_pads_by_frequency(self, owner: OwnerPeer) -> None:
        owner.share(DOC)
        terms = owner.learn_document("d1")
        # No evidence → padded with next most frequent doc terms.
        assert len(terms) == 4
        assert set(terms) >= {"zeta", "alpha"}

    def test_cap_respected(self, owner: OwnerPeer, protocol: IndexingProtocol, ring: ChordRing) -> None:
        owner.share(DOC)
        issuer = ring.live_ids[2]
        for t in ("beta", "gamma", "delta", "epsilon"):
            for __ in range(4):
                protocol.register_query(issuer, (t, "alpha"))
        for __ in range(4):
            owner.learn_document("d1")
        assert len(owner.index_terms("d1")) == 4  # max_index_terms

    def test_replacement_unpublishes_displaced_terms(
        self, owner: OwnerPeer, protocol: IndexingProtocol, ring: ChordRing
    ) -> None:
        owner.share(DOC)  # zeta, alpha published
        issuer = ring.live_ids[2]
        # Queries must contain an indexed term ("alpha") to be observed
        # at all (the paper's peer-12 awareness argument).  They bring
        # evidence for beta/gamma/delta/epsilon; all six scored terms
        # compete for 4 slots and zeta (never queried) is evicted.
        for __ in range(6):
            protocol.register_query(issuer, ("alpha", "beta", "gamma"))
            protocol.register_query(issuer, ("alpha", "delta", "epsilon"))
        owner.learn_document("d1", target_size=4)
        terms = set(owner.index_terms("d1"))
        assert "alpha" in terms            # strongest evidence (QF 12)
        assert "zeta" not in terms         # frequent but never queried
        assert len(terms & {"beta", "gamma", "delta", "epsilon"}) == 3
        assert protocol.indexed_document_frequency("zeta") == 0

    def test_incremental_polling_no_double_count(
        self, owner: OwnerPeer, protocol: IndexingProtocol, ring: ChordRing
    ) -> None:
        owner.share(DOC)
        issuer = ring.live_ids[2]
        for __ in range(3):
            protocol.register_query(issuer, ("zeta", "beta"))
        owner.learn_document("d1")
        qf_after_first = owner.shared["d1"].learner.stats["zeta"].query_frequency
        # No new queries → second poll must not re-count old ones.
        owner.learn_document("d1")
        assert owner.shared["d1"].learner.stats["zeta"].query_frequency == qf_after_first

    def test_learn_unshared_doc_raises(self, owner: OwnerPeer) -> None:
        with pytest.raises(LearningError):
            owner.learn_document("ghost")

    def test_learn_all(self, owner: OwnerPeer) -> None:
        owner.share(DOC)
        owner.share(Document("d2", "one one two two three"))
        owner.learn_all()
        assert owner.shared["d1"].learning_iterations_run == 1
        assert owner.shared["d2"].learning_iterations_run == 1

    def test_force_publish_requires_indexed_term(self, owner: OwnerPeer) -> None:
        owner.share(DOC)
        state = owner.shared["d1"]
        with pytest.raises(LearningError):
            owner._publish_terms_force(state, "epsilon")  # not indexed

    def test_force_publish_restores_lost_posting(
        self, owner: OwnerPeer, protocol: IndexingProtocol
    ) -> None:
        owner.share(DOC)
        state = owner.shared["d1"]
        term = state.index_terms[0]
        slot = protocol.slot_snapshot(term)
        slot.remove_posting("d1")
        assert protocol.indexed_document_frequency(term) == 0
        assert owner._publish_terms_force(state, term) is True
        assert protocol.indexed_document_frequency(term) == 1

    def test_target_bounded_by_document_vocabulary(self, owner: OwnerPeer) -> None:
        tiny = Document("tiny", "rock sand")   # both stem-stable words
        owner.share(tiny)
        terms = owner.learn_document("tiny", target_size=50)
        assert set(terms) == {"rock", "sand"}
