"""Tests for Bloom-compressed conjunctive query processing."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig
from repro.core.bloom_search import BloomQueryProcessor
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import PostingEntry
from repro.corpus import Query
from repro.dht import ChordRing


@pytest.fixture()
def ring() -> ChordRing:
    return ChordRing(ChordConfig(num_peers=16, id_bits=32, seed=97))


@pytest.fixture()
def protocol(ring: ChordRing) -> IndexingProtocol:
    return IndexingProtocol(ring)


@pytest.fixture()
def processor(protocol: IndexingProtocol) -> BloomQueryProcessor:
    return BloomQueryProcessor(protocol, assumed_corpus_size=1_000_000)


def publish(protocol, ring, term: str, doc_ids, tf: int = 2, length: int = 20) -> None:
    for doc_id in doc_ids:
        protocol.publish(
            ring.live_ids[0],
            term,
            PostingEntry(doc_id=doc_id, owner_peer=ring.live_ids[0], raw_tf=tf, doc_length=length),
        )


class TestConjunctiveSemantics:
    def test_intersection_only(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "alpha", ["d1", "d2", "d3"])
        publish(protocol, ring, "beta", ["d2", "d3", "d4"])
        ranked, __ = processor.execute(ring.live_ids[1], Query("q", ("alpha", "beta")))
        assert set(ranked.ids()) == {"d2", "d3"}

    def test_empty_intersection(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "alpha", ["d1"])
        publish(protocol, ring, "beta", ["d2"])
        ranked, execution = processor.execute(
            ring.live_ids[1], Query("q", ("alpha", "beta"))
        )
        assert len(ranked) == 0
        assert execution.candidates_after_chain <= 1  # FPs possible, tiny

    def test_single_term_passthrough(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "solo", ["d1", "d2"])
        ranked, execution = processor.execute(ring.live_ids[1], Query("q", ("solo",)))
        assert set(ranked.ids()) == {"d1", "d2"}
        assert execution.bytes_shipped > 0

    def test_unindexed_query(self, processor, ring) -> None:
        ranked, execution = processor.execute(ring.live_ids[0], Query("q", ("ghost",)))
        assert len(ranked) == 0
        assert execution.naive_bytes == 0

    def test_three_way_intersection(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "a", [f"d{i}" for i in range(20)])
        publish(protocol, ring, "b", [f"d{i}" for i in range(5, 20)])
        publish(protocol, ring, "c", ["d7", "d8", "d50"])
        ranked, __ = processor.execute(ring.live_ids[1], Query("q", ("a", "b", "c")))
        assert set(ranked.ids()) == {"d7", "d8"}


class TestCompression:
    def test_bloom_beats_naive_on_large_lists(self, processor, protocol, ring) -> None:
        """With big posting lists and a small intersection, shipping
        Bloom filters is much cheaper than shipping the lists."""
        big_a = [f"d{i}" for i in range(800)]
        big_b = [f"d{i}" for i in range(780, 1600)]
        publish(protocol, ring, "biga", big_a)
        publish(protocol, ring, "bigb", big_b)
        __, execution = processor.execute(ring.live_ids[1], Query("q", ("biga", "bigb")))
        assert execution.compression_ratio > 3.0

    def test_recall_preserved_despite_compression(self, processor, protocol, ring) -> None:
        """No true conjunctive answer is ever lost to the Bloom chain."""
        shared = [f"s{i}" for i in range(30)]
        publish(protocol, ring, "x", shared + [f"xa{i}" for i in range(200)])
        publish(protocol, ring, "y", shared + [f"ya{i}" for i in range(200)])
        ranked, __ = processor.execute(ring.live_ids[1], Query("q", ("x", "y")), top_k=None)
        assert set(ranked.ids()) == set(shared)

    def test_false_positives_filtered_from_ranking(self, processor, protocol, ring) -> None:
        """Even when the chain lets false positives through, the final
        ranking only contains true members of the intersection."""
        loose = BloomQueryProcessor(
            protocol, assumed_corpus_size=1_000_000, error_rate=0.3
        )
        publish(protocol, ring, "m", [f"d{i}" for i in range(100)])
        publish(protocol, ring, "n", [f"d{i}" for i in range(90, 200)])
        ranked, execution = loose.execute(ring.live_ids[1], Query("q", ("m", "n")))
        assert set(ranked.ids()) == {f"d{i}" for i in range(90, 100)}

    def test_invalid_error_rate(self, protocol) -> None:
        with pytest.raises(ValueError):
            BloomQueryProcessor(protocol, 1000, error_rate=1.5)


class TestRanking:
    def test_scores_consistent_with_lee_formula(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "p", ["d1"], tf=8, length=16)
        publish(protocol, ring, "q", ["d1"], tf=4, length=16)
        ranked, __ = processor.execute(ring.live_ids[1], Query("qq", ("p", "q")))
        assert ranked.ids() == ["d1"]
        assert ranked[0].score > 0

    def test_top_k(self, processor, protocol, ring) -> None:
        docs = [f"d{i}" for i in range(30)]
        publish(protocol, ring, "u", docs)
        publish(protocol, ring, "v", docs)
        ranked = processor.search(ring.live_ids[1], Query("q", ("u", "v")), top_k=5)
        assert len(ranked) == 5
