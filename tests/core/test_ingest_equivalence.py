"""Exactness of the batched write path (ISSUE 5).

The destination-grouped publish/unpublish/poll path
(``SpriteConfig.batched_writes=True``) must be *invisible in state*:
after any identical sequence of bulk shares, query registrations,
learning iterations, withdrawals, re-shares, and graceful churn, the
full write-visible state — slot postings and aggregates, the global
order in which slot versions were assigned, owner index terms, poll
cursors, and learner statistics — must be bit-identical to the seed
per-term path's.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig, SpriteConfig
from repro.core.indexer import IndexingProtocol
from repro.core.owner import OwnerPeer
from repro.corpus import Document
from repro.dht import ChordRing
from repro.sim.oracle import write_state_fingerprint

VOCAB = [f"kw{i:03d}" for i in range(18)]


class _Stack:
    """A bare ring + protocol + one owner peer, shaped like the
    ``DistributedSystem`` surface :func:`write_state_fingerprint` reads
    (``.ring`` and ``.owners``)."""

    def __init__(self, batched: bool, ring_seed: int) -> None:
        self.ring = ChordRing(
            ChordConfig(
                num_peers=16,
                id_bits=32,
                successor_list_size=4,
                seed=ring_seed,
                route_cache_size=4096,
            )
        )
        self.config = SpriteConfig(
            initial_terms=2,
            terms_per_iteration=2,
            learning_iterations=1,
            max_index_terms=5,
            query_cache_size=64,
            assumed_corpus_size=1000,
            batched_writes=batched,
        )
        self.protocol = IndexingProtocol(self.ring, query_cache_size=64)
        self.owner = OwnerPeer(self.ring.live_ids[0], self.protocol, self.config)
        self.owners = {self.owner.node_id: self.owner}


def _make_docs(rng: random.Random, num_docs: int) -> list:
    docs = []
    for d in range(num_docs):
        words = [rng.choice(VOCAB) for __ in range(rng.randint(6, 20))]
        docs.append(Document(f"d{d:03d}", " ".join(words)))
    return docs


def _replay(stack: _Stack, plan: dict) -> None:
    """Apply one shared operation plan to a stack.  Both stacks replay
    the *same* plan, so any state divergence is the write path's."""
    stack.owner.share_bulk(plan["docs"])
    issuer = stack.ring.live_ids[2]
    for terms in plan["queries"]:
        stack.protocol.register_query(issuer, terms)
    for __ in range(plan["learning_rounds"]):
        stack.owner.learn_all()
    if plan["churn"]:
        # Graceful churn: a non-owner peer departs, a new one joins,
        # and the ring re-stabilizes before the next write burst (the
        # regime in which grouped and per-term routing must agree).
        live = [n for n in stack.ring.live_ids if n != stack.owner.node_id]
        stack.ring.leave(live[plan["victim_index"] % len(live)])
        stack.ring.join(plan["joiner_id"])
        stack.ring.stabilize()
    doc_ids = [doc.doc_id for doc in plan["docs"]]
    withdrawn = doc_ids[: max(1, math.ceil(len(doc_ids) / 2))]
    stack.owner.unshare_bulk(withdrawn)
    stack.owner.share_bulk(
        [doc for doc in plan["docs"] if doc.doc_id in set(withdrawn)]
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_docs=st.integers(min_value=2, max_value=8),
    num_queries=st.integers(min_value=0, max_value=12),
    learning_rounds=st.integers(min_value=0, max_value=2),
    churn=st.booleans(),
)
def test_ingest_equivalence_property(
    seed: int,
    num_docs: int,
    num_queries: int,
    learning_rounds: int,
    churn: bool,
) -> None:
    """For any seeded ingest workload — bulk share, training queries,
    learning, graceful churn, withdraw and re-share — the batched and
    per-term write paths leave bit-identical write-visible state."""
    rng = random.Random(seed)
    ring_seed = rng.randint(0, 2**31)
    plan = {
        "docs": _make_docs(rng, num_docs),
        "queries": [
            tuple(rng.sample(VOCAB, rng.randint(1, 3)))
            for __ in range(num_queries)
        ],
        "learning_rounds": learning_rounds,
        "churn": churn,
        "victim_index": rng.randint(0, 10_000),
        "joiner_id": None,
    }
    batched = _Stack(batched=True, ring_seed=ring_seed)
    legacy = _Stack(batched=False, ring_seed=ring_seed)
    if churn:
        # Pick one joiner id that is fresh on both (identically seeded,
        # hence identical) rings.
        id_rng = random.Random(seed + 1)
        joiner = id_rng.randrange(batched.ring.space.size)
        while joiner in batched.ring.nodes or joiner in legacy.ring.nodes:
            joiner = id_rng.randrange(batched.ring.space.size)
        plan["joiner_id"] = joiner
    _replay(batched, plan)
    _replay(legacy, plan)
    fast = write_state_fingerprint(batched)
    slow = write_state_fingerprint(legacy)
    assert fast["slots"] == slow["slots"]
    assert fast["version_rank"] == slow["version_rank"]
    assert fast["owners"] == slow["owners"]


def test_bulk_share_matches_per_term_shares() -> None:
    """One destination-grouped bulk share ends in exactly the state a
    loop of per-term shares produces."""
    rng = random.Random(7)
    docs = _make_docs(rng, 6)
    batched = _Stack(batched=True, ring_seed=19)
    legacy = _Stack(batched=False, ring_seed=19)
    batched.owner.share_bulk(docs)
    for doc in docs:
        legacy.owner.share(doc)
    assert write_state_fingerprint(batched) == write_state_fingerprint(legacy)


def test_learning_iteration_matches_per_term_polls() -> None:
    """A full learning iteration — coalesced polls, batched index-diff
    publication — matches the per-term loop exactly, cursors included."""
    rng = random.Random(11)
    docs = _make_docs(rng, 4)
    queries = [tuple(rng.sample(VOCAB, 2)) for __ in range(10)]
    stacks = [_Stack(batched=True, ring_seed=23), _Stack(batched=False, ring_seed=23)]
    for stack in stacks:
        stack.owner.share_bulk(docs)
        issuer = stack.ring.live_ids[2]
        for terms in queries:
            stack.protocol.register_query(issuer, terms)
        stack.owner.learn_all()
        stack.owner.learn_all()  # second pass: cursors must prevent re-counting
    assert write_state_fingerprint(stacks[0]) == write_state_fingerprint(stacks[1])
