"""Tests for owner-side liveness maintenance."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, SpriteConfig
from repro.core import MaintenanceDaemon, SpriteSystem
from repro.corpus import Corpus, Document, Query
from repro.dht.messages import MessageKind

CHORD = ChordConfig(num_peers=24, id_bits=32, seed=131)


@pytest.fixture()
def system() -> SpriteSystem:
    corpus = Corpus(
        [
            Document(f"d{i}", f"alpha{i} alpha{i} beta{i} gamma{i} shared shared")
            for i in range(10)
        ]
    )
    system = SpriteSystem(
        corpus,
        sprite_config=SpriteConfig(
            initial_terms=3, terms_per_iteration=0, learning_iterations=0,
            max_index_terms=3,
        ),
        chord_config=CHORD,
    )
    system.share_corpus()
    return system


class TestHealthyRound:
    def test_all_postings_intact(self, system: SpriteSystem) -> None:
        report = MaintenanceDaemon(system).run_round()
        assert report.postings_republished == 0
        assert report.peers_unreachable == 0
        assert report.postings_intact == system.total_published_terms()

    def test_heartbeats_counted(self, system: SpriteSystem) -> None:
        MaintenanceDaemon(system).run_round()
        heartbeats = system.ring.stats.kind(MessageKind.HEARTBEAT)
        assert heartbeats.messages == system.total_published_terms()

    def test_rounds_are_idempotent(self, system: SpriteSystem) -> None:
        daemon = MaintenanceDaemon(system)
        first = daemon.run_round()
        second = daemon.run_round()
        assert second.postings_intact == first.postings_intact


class TestFailureWindow:
    def test_unreachable_peers_reported_before_repair(self, system: SpriteSystem) -> None:
        victim = system.ring.live_ids[5]
        had_slots = len(system.ring.node(victim).store) > 0
        system.ring.fail(victim)
        report = MaintenanceDaemon(system).run_round()
        if had_slots:
            assert report.peers_unreachable > 0

    def test_republication_after_repair(self, system: SpriteSystem) -> None:
        """After stabilize, lost slots must be healed by republication
        and retrieval must work again."""
        # Find a victim that actually holds slots.
        victim = next(
            n for n in system.ring.live_ids if system.ring.node(n).store
        )
        lost = len(system.ring.node(victim).store)
        system.ring.fail(victim)
        system.ring.stabilize()

        daemon = MaintenanceDaemon(system)
        report = daemon.run_round()
        assert report.postings_republished > 0

        # A second round finds everything intact.
        again = daemon.run_round()
        assert again.postings_republished == 0
        assert again.peers_unreachable == 0

    def test_heal_until_stable(self, system: SpriteSystem) -> None:
        victim = next(
            n for n in system.ring.live_ids if system.ring.node(n).store
        )
        system.ring.fail(victim)
        system.ring.stabilize()
        healed = MaintenanceDaemon(system).heal_until_stable()
        assert healed > 0
        # Full retrieval restored: every document findable via its terms.
        doc = system.corpus.get("d0")
        term = doc.top_terms(1)[0]
        ranked = system.search(Query("probe", (term,)), cache=False)
        assert "d0" in ranked.ids()

    def test_heal_until_stable_validates_budget(self, system: SpriteSystem) -> None:
        with pytest.raises(ValueError):
            MaintenanceDaemon(system).heal_until_stable(max_rounds=0)


class TestInteractionWithJoin:
    def test_join_does_not_trigger_republication(self, system: SpriteSystem) -> None:
        """A joiner takes over keys via Chord's key transfer, so no
        posting goes missing and no republication should happen."""
        system.ring.join(name="fresh-peer")
        report = MaintenanceDaemon(system).run_round()
        assert report.postings_republished == 0
