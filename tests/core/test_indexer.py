"""Tests for the indexing-peer protocol."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import PostingEntry
from repro.dht import ChordRing, MessageKind
from repro.exceptions import NodeFailedError


@pytest.fixture()
def ring() -> ChordRing:
    return ChordRing(ChordConfig(num_peers=16, id_bits=32, seed=13))


@pytest.fixture()
def protocol(ring: ChordRing) -> IndexingProtocol:
    return IndexingProtocol(ring, query_cache_size=8)


def posting(doc_id: str = "d1", tf: int = 3, length: int = 30) -> PostingEntry:
    return PostingEntry(doc_id=doc_id, owner_peer=0, raw_tf=tf, doc_length=length)


class TestHashing:
    def test_term_hash_memoized_and_stable(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        assert protocol.term_hash("chord") == ring.space.hash_key("chord")
        assert protocol.term_hash("chord") == protocol.term_hash("chord")

    def test_query_hash_order_invariant(self, protocol: IndexingProtocol) -> None:
        assert protocol.query_hash(("b", "a")) == protocol.query_hash(("a", "b"))

    def test_query_hash_differs_from_terms(self, protocol: IndexingProtocol) -> None:
        assert protocol.query_hash(("a", "b")) != protocol.query_hash(("a",))


class TestPublish:
    def test_publish_places_posting_at_responsible_peer(
        self, protocol: IndexingProtocol, ring: ChordRing
    ) -> None:
        owner = ring.live_ids[0]
        protocol.publish(owner, "chord", posting())
        slot = protocol.slot_snapshot("chord")
        assert slot is not None
        assert slot.inverted["d1"].raw_tf == 3
        holder = ring.successor_of(protocol.term_hash("chord"))
        assert ring.node(holder).get(protocol.term_hash("chord")) is slot

    def test_publish_counts_traffic(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        protocol.publish(ring.live_ids[0], "chord", posting())
        assert ring.stats.kind(MessageKind.PUBLISH_TERM).messages == 1
        assert ring.stats.kind(MessageKind.LOOKUP).messages == 1

    def test_indexed_document_frequency(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        owner = ring.live_ids[0]
        protocol.publish(owner, "chord", posting("d1"))
        protocol.publish(owner, "chord", posting("d2"))
        assert protocol.indexed_document_frequency("chord") == 2
        assert protocol.indexed_document_frequency("never") == 0


class TestUnpublish:
    def test_unpublish_removes_posting(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        owner = ring.live_ids[0]
        protocol.publish(owner, "chord", posting("d1"))
        assert protocol.unpublish(owner, "chord", "d1") is True
        assert protocol.indexed_document_frequency("chord") == 0

    def test_unpublish_missing_is_false(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        assert protocol.unpublish(ring.live_ids[0], "ghost", "d1") is False


class TestRegisterQuery:
    def test_cached_at_every_term_peer(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        issuer = ring.live_ids[0]
        count = protocol.register_query(issuer, ("alpha", "beta"))
        assert count == 2
        for term in ("alpha", "beta"):
            slot = protocol.slot_snapshot(term)
            assert slot is not None
            assert len(slot.cache) == 1

    def test_cache_respects_capacity(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        issuer = ring.live_ids[0]
        for i in range(20):
            protocol.register_query(issuer, (f"term{i}", "shared"))
        slot = protocol.slot_snapshot("shared")
        assert len(slot.cache) == 8  # capacity


class TestFetchPostings:
    def test_roundtrip(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        owner = ring.live_ids[0]
        protocol.publish(owner, "chord", posting("d1"))
        postings, df = protocol.fetch_postings(ring.live_ids[1], "chord")
        assert df == 1
        assert postings[0].doc_id == "d1"

    def test_unindexed_term_empty(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        postings, df = protocol.fetch_postings(ring.live_ids[0], "nothing")
        assert postings == [] and df == 0

    def test_failed_peer_raises(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        owner = ring.live_ids[0]
        protocol.publish(owner, "chord", posting("d1"))
        responsible = ring.successor_of(protocol.term_hash("chord"))
        ring.fail(responsible)
        issuer = next(n for n in ring.live_ids if n != responsible)
        with pytest.raises(NodeFailedError):
            protocol.fetch_postings(issuer, "chord")

    def test_traffic_recorded(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        owner = ring.live_ids[0]
        protocol.publish(owner, "chord", posting("d1"))
        protocol.fetch_postings(ring.live_ids[1], "chord")
        assert ring.stats.kind(MessageKind.SEARCH_TERM).messages == 1
        assert ring.stats.kind(MessageKind.POSTINGS).messages == 1


class TestPollDeduplication:
    """The Section 3 closest-hash rule: a query cached at several of a
    document's index-term peers is returned by exactly one of them."""

    def _hashes(self, protocol: IndexingProtocol, terms) -> dict:
        return {t: protocol.term_hash(t) for t in terms}

    def test_query_returned_exactly_once(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        issuer = ring.live_ids[0]
        owner = ring.live_ids[1]
        index_terms = ("alpha", "beta", "gamma")
        protocol.register_query(issuer, ("alpha", "beta"))
        hashes = self._hashes(protocol, index_terms)
        total = []
        for term in index_terms:
            fresh, __ = protocol.poll_term(owner, term, hashes, since=-1)
            total.extend(fresh)
        assert len(total) == 1
        assert total[0].terms == ("alpha", "beta")

    def test_dedup_respects_query_membership(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        """A query not containing the globally closest index term must
        still be returned — by the closest term it DOES contain."""
        issuer = ring.live_ids[0]
        owner = ring.live_ids[1]
        protocol.register_query(issuer, ("beta",))
        hashes = self._hashes(protocol, ("alpha", "beta"))
        collected = []
        for term in ("alpha", "beta"):
            fresh, __ = protocol.poll_term(owner, term, hashes, since=-1)
            collected.extend(fresh)
        assert len(collected) == 1

    def test_since_cursor_advances(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        issuer, owner = ring.live_ids[0], ring.live_ids[1]
        protocol.register_query(issuer, ("solo",))
        hashes = self._hashes(protocol, ("solo",))
        first, latest = protocol.poll_term(owner, "solo", hashes, since=-1)
        assert len(first) == 1
        again, __ = protocol.poll_term(owner, "solo", hashes, since=latest)
        assert again == []

    def test_poll_unindexed_term(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        fresh, latest = protocol.poll_term(
            ring.live_ids[0], "ghost", {"ghost": protocol.term_hash("ghost")}, since=-1
        )
        assert fresh == [] and latest == -1

    def test_poll_traffic_recorded(self, protocol: IndexingProtocol, ring: ChordRing) -> None:
        issuer, owner = ring.live_ids[0], ring.live_ids[1]
        protocol.register_query(issuer, ("solo",))
        protocol.poll_term(owner, "solo", self._hashes(protocol, ("solo",)), since=-1)
        assert ring.stats.kind(MessageKind.POLL_QUERIES).messages == 1
        assert ring.stats.kind(MessageKind.QUERY_BATCH).messages == 1
