"""Tests for distributed query processing (paper Section 4)."""

from __future__ import annotations

import math

import pytest

from repro.config import ChordConfig
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import PostingEntry
from repro.core.query_processing import QueryProcessor
from repro.corpus import Query
from repro.dht import ChordRing

ASSUMED_N = 1_000_000


@pytest.fixture()
def ring() -> ChordRing:
    return ChordRing(ChordConfig(num_peers=16, id_bits=32, seed=41))


@pytest.fixture()
def protocol(ring: ChordRing) -> IndexingProtocol:
    return IndexingProtocol(ring, query_cache_size=16)


@pytest.fixture()
def processor(protocol: IndexingProtocol) -> QueryProcessor:
    return QueryProcessor(protocol, assumed_corpus_size=ASSUMED_N)


def publish(protocol: IndexingProtocol, ring: ChordRing, term: str, doc: str, tf: int, length: int) -> None:
    protocol.publish(
        ring.live_ids[0],
        term,
        PostingEntry(doc_id=doc, owner_peer=ring.live_ids[0], raw_tf=tf, doc_length=length),
    )


class TestExecution:
    def test_single_term_ranking(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "chord", "heavy", tf=8, length=16)
        publish(protocol, ring, "chord", "light", tf=1, length=16)
        ranked = processor.search(ring.live_ids[1], Query("q", ("chord",)))
        assert ranked.ids() == ["heavy", "light"]

    def test_similarity_matches_paper_formula(self, processor, protocol, ring) -> None:
        """sim = (w_Q · w_D) / sqrt(|D|) with w from the assumed-N IDF
        and indexed document frequency."""
        publish(protocol, ring, "chord", "d1", tf=4, length=16)
        ranked = processor.search(ring.live_ids[1], Query("q", ("chord",)))
        idf = math.log(ASSUMED_N / 1)           # indexed df = 1
        expected = (idf * (4 / 16) * idf) / math.sqrt(16)
        assert ranked[0].score == pytest.approx(expected)

    def test_multi_term_consolidation(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "alpha", "both", tf=2, length=10)
        publish(protocol, ring, "beta", "both", tf=2, length=10)
        publish(protocol, ring, "alpha", "single", tf=2, length=10)
        ranked = processor.search(ring.live_ids[1], Query("q", ("alpha", "beta")))
        assert ranked.top_ids(1) == ["both"]

    def test_unindexed_terms_skipped(self, processor, ring) -> None:
        ranked, execution = processor.execute(
            ring.live_ids[0], Query("q", ("ghost",)), cache=False
        )
        assert len(ranked) == 0
        assert execution.terms_visited == 1
        assert execution.candidate_documents == 0

    def test_top_k_truncation(self, processor, protocol, ring) -> None:
        for i in range(6):
            publish(protocol, ring, "term", f"d{i}", tf=i + 1, length=20)
        ranked = processor.search(ring.live_ids[1], Query("q", ("term",)), top_k=3)
        assert len(ranked) == 3


class TestQueryCachingSideChannel:
    def test_search_registers_query(self, processor, protocol, ring) -> None:
        processor.search(ring.live_ids[0], Query("q", ("alpha", "beta")), cache=True)
        for term in ("alpha", "beta"):
            slot = protocol.slot_snapshot(term)
            assert slot is not None and len(slot.cache) == 1

    def test_cache_false_leaves_no_trace(self, processor, protocol, ring) -> None:
        processor.search(ring.live_ids[0], Query("q", ("alpha",)), cache=False)
        slot = protocol.slot_snapshot("alpha")
        assert slot is None or len(slot.cache) == 0


class TestFailureDegradation:
    def test_failed_term_dropped_not_fatal(self, processor, protocol, ring) -> None:
        """Section 7 option 1: when a term's peer is down, the term is
        discarded from the ranked-list computation."""
        publish(protocol, ring, "alive", "d1", tf=3, length=9)
        publish(protocol, ring, "dead", "d2", tf=3, length=9)
        victim = ring.successor_of(protocol.term_hash("dead"))
        ring.fail(victim)
        issuer = next(n for n in ring.live_ids if n != victim)
        ranked, execution = processor.execute(
            issuer, Query("q", ("alive", "dead")), cache=False
        )
        assert execution.terms_failed == 1
        assert execution.dropped_terms == ["dead"]
        assert ranked.ids() == ["d1"]

    def test_all_terms_failed_empty_answer(self, processor, protocol, ring) -> None:
        publish(protocol, ring, "gone", "d1", tf=1, length=5)
        victim = ring.successor_of(protocol.term_hash("gone"))
        ring.fail(victim)
        issuer = next(n for n in ring.live_ids if n != victim)
        ranked, execution = processor.execute(issuer, Query("q", ("gone",)), cache=False)
        assert len(ranked) == 0
        assert execution.terms_failed == 1


class TestDocumentFrequencyOverride:
    def test_override_changes_weights(self, protocol, ring) -> None:
        """The ablation hook substitutes true document frequencies: a
        much larger df shrinks the score."""
        publish(protocol, ring, "term", "d1", tf=2, length=10)
        plain = QueryProcessor(protocol, assumed_corpus_size=ASSUMED_N)
        overridden = QueryProcessor(
            protocol,
            assumed_corpus_size=ASSUMED_N,
            document_frequency_override={"term": 5000},
        )
        q = Query("q", ("term",))
        score_plain = plain.search(ring.live_ids[1], q, cache=False).scores()["d1"]
        score_over = overridden.search(ring.live_ids[1], q, cache=False).scores()["d1"]
        assert score_over < score_plain

    def test_override_missing_term_falls_back(self, protocol, ring) -> None:
        publish(protocol, ring, "other", "d1", tf=2, length=10)
        overridden = QueryProcessor(
            protocol,
            assumed_corpus_size=ASSUMED_N,
            document_frequency_override={"unrelated": 7},
        )
        ranked = overridden.search(ring.live_ids[1], Query("q", ("other",)), cache=False)
        assert ranked.ids() == ["d1"]


class TestIndexedDocumentFrequency:
    def test_idf_uses_indexed_df_not_true_df(self, processor, protocol, ring) -> None:
        """Two terms with equal TF in one doc: the one indexed by more
        documents gets the smaller weight — n'_k drives IDF."""
        publish(protocol, ring, "rare", "target", tf=2, length=10)
        publish(protocol, ring, "common", "target", tf=2, length=10)
        for i in range(8):
            publish(protocol, ring, "common", f"filler{i}", tf=1, length=10)
        ranked_rare = processor.search(ring.live_ids[1], Query("q1", ("rare",)), cache=False)
        ranked_common = processor.search(ring.live_ids[1], Query("q2", ("common",)), cache=False)
        assert ranked_rare.scores()["target"] > ranked_common.scores()["target"]
