"""Tests for qScore / QF / Score (paper Section 5.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scoring import (
    combined_score,
    q_score,
    query_frequencies,
    query_frequency,
)


class TestQScore:
    def test_full_overlap(self) -> None:
        assert q_score({"a", "b"}, {"a", "b", "c"}) == 1.0

    def test_partial_overlap(self) -> None:
        assert q_score({"a", "x", "y", "z"}, {"a", "b"}) == 0.25

    def test_no_overlap(self) -> None:
        assert q_score({"x"}, {"a"}) == 0.0

    def test_empty_query(self) -> None:
        assert q_score(set(), {"a"}) == 0.0

    def test_accepts_sequences(self) -> None:
        assert q_score(["a", "a", "b"], {"a"}) == 0.5  # deduped to {a,b}

    def test_asymmetry(self) -> None:
        """qScore normalizes by |Q|, NOT |D| — the paper's deliberate
        inversion of the conventional similarity role."""
        small_doc = {"a"}
        assert q_score({"a"}, small_doc) == 1.0
        assert q_score({"a", "b", "c", "d"}, small_doc) == 0.25


class TestQueryFrequency:
    QUERIES = [("a", "b"), ("a", "c"), ("b", "c"), ("a",)]

    def test_counts(self) -> None:
        assert query_frequency("a", self.QUERIES) == 3
        assert query_frequency("b", self.QUERIES) == 2
        assert query_frequency("z", self.QUERIES) == 0

    def test_batch_restricted_to_doc_terms(self) -> None:
        qf = query_frequencies(self.QUERIES, doc_terms={"a", "c"})
        assert qf == {"a": 3, "c": 2}

    def test_batch_empty_queries(self) -> None:
        assert query_frequencies([], {"a"}) == {}


class TestCombinedScore:
    def test_paper_figure_2b_arithmetic(self) -> None:
        """The worked example pins log to base 10:
        0.75·log 20 = 0.975, 0.75·log 5 = 0.524, (1/3)·log 30 = 0.492,
        (1/3)·log 32 = 0.501 (the paper prints 1/3 as 0.33)."""
        assert combined_score(0.75, 20) == pytest.approx(0.975, abs=2e-3)
        assert combined_score(0.75, 5) == pytest.approx(0.524, abs=2e-3)
        assert combined_score(1 / 3, 30) == pytest.approx(0.492, abs=2e-3)
        assert combined_score(1 / 3, 32) == pytest.approx(0.501, abs=2e-3)

    def test_figure_2b_replacement_decision(self) -> None:
        """t3 (0.75, QF 5) must outrank t5 (1/3, QF 32): the example's
        eviction under a 3-term cap."""
        assert combined_score(0.75, 5) > combined_score(1 / 3, 32)

    def test_single_query_scores_zero(self) -> None:
        assert combined_score(0.9, 1) == 0.0

    def test_zero_qf(self) -> None:
        assert combined_score(0.9, 0) == 0.0

    def test_zero_qscore(self) -> None:
        assert combined_score(0.0, 100) == 0.0

    def test_log_damps_qf(self) -> None:
        """Growing QF tenfold adds exactly +qscore to the score."""
        assert combined_score(0.5, 100) - combined_score(0.5, 10) == pytest.approx(0.5)


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=10**6),
)
def test_score_nonnegative(qs: float, qf: int) -> None:
    assert combined_score(qs, qf) >= 0.0


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.integers(min_value=2, max_value=10**4),
    st.integers(min_value=2, max_value=10**4),
)
def test_score_monotone_in_qf(qs: float, qf1: int, qf2: int) -> None:
    lo, hi = sorted((qf1, qf2))
    assert combined_score(qs, lo) <= combined_score(qs, hi)


@given(
    st.sets(st.sampled_from(list("abcdefgh")), min_size=1),
    st.sets(st.sampled_from(list("abcdefgh"))),
)
def test_qscore_bounded(query: set, doc: set) -> None:
    assert 0.0 <= q_score(query, doc) <= 1.0
