"""Tests for the basic-eSearch baseline."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, ESearchConfig
from repro.core import ESearchSystem, SpriteSystem
from repro.config import SpriteConfig
from repro.corpus import Corpus, Document, Query

CHORD = ChordConfig(num_peers=16, id_bits=32, seed=71)


@pytest.fixture()
def corpus() -> Corpus:
    return Corpus(
        [
            Document("d0", "alpha alpha alpha beta beta gamma delta epsilon"),
            Document("d1", "beta beta beta zeta zeta eta theta iota"),
            Document("d2", "gamma gamma gamma kappa kappa lam mu nu"),
        ]
    )


class TestStaticIndexing:
    def test_top_k_frequent_terms_published(self, corpus: Corpus) -> None:
        system = ESearchSystem(
            corpus, esearch_config=ESearchConfig(index_terms=2), chord_config=CHORD
        )
        system.share_corpus()
        assert set(system.index_terms("d0")) == {"alpha", "beta"}
        assert set(system.index_terms("d1")) == {"beta", "zeta"}

    def test_term_budget_respected(self, corpus: Corpus) -> None:
        system = ESearchSystem(
            corpus, esearch_config=ESearchConfig(index_terms=4), chord_config=CHORD
        )
        system.share_corpus()
        assert system.total_published_terms() == 3 * 4

    def test_budget_beyond_vocabulary(self, corpus: Corpus) -> None:
        system = ESearchSystem(
            corpus, esearch_config=ESearchConfig(index_terms=100), chord_config=CHORD
        )
        system.share_corpus()
        # Documents have 5 unique analyzed terms each; the budget clamps.
        assert system.total_published_terms() == 3 * 5


class TestNoLearning:
    def test_config_has_zero_iterations(self, corpus: Corpus) -> None:
        system = ESearchSystem(corpus, chord_config=CHORD)
        assert system.config.learning_iterations == 0
        assert system.config.terms_per_iteration == 0

    def test_queries_never_change_the_index(self, corpus: Corpus) -> None:
        system = ESearchSystem(
            corpus, esearch_config=ESearchConfig(index_terms=2), chord_config=CHORD
        )
        system.share_corpus()
        before = {d: tuple(system.index_terms(d)) for d in system.corpus.doc_ids}
        for i in range(10):
            system.search(Query(f"q{i}", ("epsilon", "theta")), cache=True)
        after = {d: tuple(system.index_terms(d)) for d in system.corpus.doc_ids}
        assert before == after


class TestRetrievalBehaviour:
    def test_indexed_terms_retrievable(self, corpus: Corpus) -> None:
        system = ESearchSystem(
            corpus, esearch_config=ESearchConfig(index_terms=2), chord_config=CHORD
        )
        system.share_corpus()
        ranked = system.search(Query("q", ("alpha",)), cache=False)
        assert ranked.ids() == ["d0"]

    def test_unindexed_document_terms_unfindable(self, corpus: Corpus) -> None:
        """The cost of static selection: low-frequency terms are simply
        not in the distributed index."""
        system = ESearchSystem(
            corpus, esearch_config=ESearchConfig(index_terms=2), chord_config=CHORD
        )
        system.share_corpus()
        ranked = system.search(Query("q", ("epsilon",)), cache=False)
        assert len(ranked) == 0

    def test_sprite_with_zero_learning_equals_esearch(self, corpus: Corpus) -> None:
        """At T = initial terms with no learning the two systems coincide
        (the Figure 4(b) T=5 point)."""
        esearch = ESearchSystem(
            corpus, esearch_config=ESearchConfig(index_terms=3), chord_config=CHORD
        )
        esearch.share_corpus()
        sprite = SpriteSystem(
            corpus,
            sprite_config=SpriteConfig(
                initial_terms=3,
                terms_per_iteration=0,
                learning_iterations=0,
                max_index_terms=3,
            ),
            chord_config=CHORD,
        )
        sprite.share_corpus()
        for q in (Query("qa", ("alpha",)), Query("qb", ("beta", "gamma"))):
            assert esearch.search(q, cache=False).ids() == sprite.search(q, cache=False).ids()
