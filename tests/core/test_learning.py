"""Tests for Algorithm 1 and term selection.

The centerpiece is the *equivalence property*: the paper argues the
incremental learner computes exactly what the naive
reprocess-everything learner computes (max is associative, QF is
cumulative).  We verify it with hypothesis over random query streams and
arbitrary batch splits.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.learning import (
    IncrementalLearner,
    RankedTerm,
    initial_terms,
    naive_rank_terms,
    select_index_terms,
)
from repro.corpus import Document

DOC_TEXT = (
    "alpha alpha alpha alpha beta beta beta gamma gamma delta "
    "epsilon zeta eta theta iota kappa"
)


@pytest.fixture()
def doc() -> Document:
    return Document("doc", DOC_TEXT)


class TestInitialTerms:
    def test_top_frequency(self, doc: Document) -> None:
        assert initial_terms(doc, 3) == ["alpha", "beta", "gamma"]

    def test_invalid_count(self, doc: Document) -> None:
        with pytest.raises(ValueError):
            initial_terms(doc, 0)


class TestIncrementalLearner:
    def test_no_queries_no_stats(self, doc: Document) -> None:
        learner = IncrementalLearner(doc)
        learner.observe([])
        assert learner.rank_list() == []

    def test_queries_without_doc_terms_ignored(self, doc: Document) -> None:
        learner = IncrementalLearner(doc)
        learner.observe([("unrelated", "terms")])
        assert learner.rank_list() == []

    def test_single_query_scores_zero_but_tracked(self, doc: Document) -> None:
        learner = IncrementalLearner(doc)
        learner.observe([("alpha", "beta")])
        assert learner.stats["alpha"].query_frequency == 1
        assert learner.score_of("alpha") == 0.0  # log10(1) = 0

    def test_repeated_queries_build_score(self, doc: Document) -> None:
        learner = IncrementalLearner(doc)
        learner.observe([("alpha", "beta")] * 10)
        assert learner.score_of("alpha") > 0.0

    def test_max_qscore_kept(self, doc: Document) -> None:
        learner = IncrementalLearner(doc)
        learner.observe([("alpha", "unknown1", "unknown2", "unknown3")])  # qs=0.25
        learner.observe([("alpha", "beta")])                              # qs=1.0
        assert learner.stats["alpha"].max_qscore == 1.0

    def test_rank_list_sorted(self, doc: Document) -> None:
        learner = IncrementalLearner(doc)
        learner.observe([("alpha", "beta")] * 5 + [("gamma", "nope", "nah", "zip")] * 3)
        ranked = learner.rank_list()
        scores = [rt.score for rt in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_unqueried_frequent_term_not_ranked(self, doc: Document) -> None:
        """The paper's 'term c' case: frequent in the document but never
        queried → absent from the rank list entirely."""
        learner = IncrementalLearner(doc)
        learner.observe([("delta", "epsilon")] * 4)
        ranked_terms = {rt.term for rt in learner.rank_list()}
        assert "alpha" not in ranked_terms
        assert "delta" in ranked_terms


class TestEquivalenceWithNaive:
    def test_simple_stream(self, doc: Document) -> None:
        queries = [("alpha", "beta"), ("alpha",), ("gamma", "delta"), ("alpha", "beta")]
        learner = IncrementalLearner(doc)
        for q in queries:
            learner.observe([q])
        assert learner.rank_list() == naive_rank_terms(doc, queries)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.sampled_from(
                    ["alpha", "beta", "gamma", "delta", "epsilon", "noise1", "noise2"]
                ),
                min_size=1,
                max_size=4,
                unique=True,
            ).map(tuple),
            max_size=25,
        ),
        st.data(),
    )
    def test_incremental_equals_naive_any_batching(self, queries, data) -> None:
        """Algorithm 1 ≡ naive recomputation for every stream and every
        way of batching it into learning iterations."""
        document = Document("doc", DOC_TEXT)
        learner = IncrementalLearner(document)
        remaining = list(queries)
        while remaining:
            cut = data.draw(st.integers(min_value=1, max_value=len(remaining)))
            batch, remaining = remaining[:cut], remaining[cut:]
            learner.observe(batch)
        assert learner.rank_list() == naive_rank_terms(document, queries)


class TestSelectIndexTerms:
    def _ranked(self, *pairs) -> list:
        return [RankedTerm(t, s) for t, s in pairs]

    def test_positive_scores_win(self, doc: Document) -> None:
        chosen = select_index_terms(
            doc,
            current_terms=["alpha", "beta"],
            rank_list=self._ranked(("zeta", 0.9), ("eta", 0.8)),
            target_size=2,
        )
        assert chosen == ["zeta", "eta"]

    def test_current_terms_retained_under_budget(self, doc: Document) -> None:
        chosen = select_index_terms(
            doc,
            current_terms=["alpha", "beta"],
            rank_list=self._ranked(("zeta", 0.9)),
            target_size=3,
        )
        assert chosen[0] == "zeta"
        assert set(chosen[1:]) == {"alpha", "beta"}

    def test_zero_scores_never_preempt(self, doc: Document) -> None:
        chosen = select_index_terms(
            doc,
            current_terms=["alpha"],
            rank_list=self._ranked(("zeta", 0.0)),
            target_size=1,
        )
        assert chosen == ["alpha"]

    def test_padding_with_frequent_terms(self, doc: Document) -> None:
        chosen = select_index_terms(
            doc, current_terms=[], rank_list=[], target_size=3
        )
        assert chosen == ["alpha", "beta", "gamma"]

    def test_figure_2b_replacement(self) -> None:
        """The worked example: t1, t2, t5 indexed; after learning, t3
        enters (0.524) and t5 (0.501) is evicted under a 3-term cap."""
        text = "t1 t2 t3 t5 filler filler"
        d = Document("fig2b", text)
        rank = self._ranked(("t1", 0.985), ("t2", 0.527), ("t3", 0.524), ("t5", 0.501))
        chosen = select_index_terms(d, ["t1", "t2", "t5"], rank, target_size=3)
        assert chosen == ["t1", "t2", "t3"]

    def test_invalid_target(self, doc: Document) -> None:
        with pytest.raises(ValueError):
            select_index_terms(doc, [], [], target_size=0)

    def test_no_duplicates(self, doc: Document) -> None:
        chosen = select_index_terms(
            doc,
            current_terms=["alpha", "zeta"],
            rank_list=self._ranked(("zeta", 0.9), ("alpha", 0.5)),
            target_size=4,
        )
        assert len(chosen) == len(set(chosen))
