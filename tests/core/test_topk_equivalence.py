"""Exactness of the top-k execution path (ISSUE 4).

The early-termination path (`QueryProcessor(early_termination=True)`)
must be *invisible in results*: identical documents, bit-identical
scores, identical tie-broken order versus both the batched exhaustive
path and the seed legacy path — under repeated keywords, failures,
document-frequency overrides, degenerate ``top_k`` values, zero-length
documents, and either posting-store backend.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import PostingEntry
from repro.core.query_processing import QueryProcessor
from repro.corpus.relevance import Query
from repro.dht.ring import ChordRing

VOCAB = [f"kw{i:03d}" for i in range(24)]


class _RawQuery:
    """Query stand-in that skips the sorted-set normalization, to reach
    the processors' own repeated-keyword guard."""

    def __init__(self, query_id: str, terms) -> None:
        self.query_id = query_id
        self.terms = tuple(terms)


def build_stack(
    *,
    early_termination: bool = True,
    batch: bool = True,
    columnar: bool = True,
    result_cache: int = 0,
    override=None,
    seed: int = 11,
    num_docs: int = 25,
    zero_length_docs: int = 0,
):
    ring = ChordRing(ChordConfig(num_peers=32, seed=seed, route_cache_size=4096))
    protocol = IndexingProtocol(
        ring, columnar_postings=columnar, result_cache_size=result_cache
    )
    processor = QueryProcessor(
        protocol,
        assumed_corpus_size=10_000,
        document_frequency_override=override,
        batch_fetch=batch,
        early_termination=early_termination,
        result_cache=result_cache > 0,
    )
    rng = random.Random(seed)
    for d in range(num_docs):
        doc_id = f"d{d:03d}"
        owner = ring.random_live_id(rng)
        length = 0 if d < zero_length_docs else 40 + 9 * d
        for term in sorted(rng.sample(VOCAB, 5)):
            protocol.publish(
                owner,
                term,
                PostingEntry(doc_id, owner, rng.randint(1, 9), length),
            )
    return ring, protocol, processor


def pairs(ranked):
    return [(e.doc_id, e.score) for e in ranked]


def run_query(processor, ring, query, top_k):
    issuer = ring.live_ids[0]
    return processor.execute(issuer, query, top_k=top_k, cache=False)


class TestEdgeCases:
    def test_repeated_keywords_score_once(self) -> None:
        ring_t, __, proc_t = build_stack(early_termination=True)
        ring_b, __, proc_b = build_stack(early_termination=False)
        # Query normalizes keywords to a sorted set, so repeats collapse
        # before execution; both paths must agree on the collapsed view.
        query = Query("rep", (VOCAB[3], VOCAB[3], VOCAB[9], VOCAB[3]))
        assert query.terms == tuple(sorted({VOCAB[3], VOCAB[9]}))
        ranked_t, exec_t = run_query(proc_t, ring_t, query, top_k=5)
        ranked_b, exec_b = run_query(proc_b, ring_b, query, top_k=5)
        assert pairs(ranked_t) == pairs(ranked_b)
        assert exec_t.terms_visited == exec_b.terms_visited == 2
        assert exec_t.postings_retrieved == exec_b.postings_retrieved

    def test_repeated_terms_fed_directly_score_once(self) -> None:
        """The processor's own dedup guard, exercised below the Query
        normalization layer: a repeated term contributes exactly once."""
        ring_t, __, proc_t = build_stack(early_termination=True)
        ring_b, __, proc_b = build_stack(early_termination=False)
        single = Query("one", (VOCAB[3],))
        issuer_t, issuer_b = ring_t.live_ids[0], ring_b.live_ids[0]
        repeated = (VOCAB[3], VOCAB[3], VOCAB[3])
        ranked_t, __ = proc_t._execute_topk(
            issuer_t, _RawQuery("raw", repeated), top_k=5, cache=False
        )
        ranked_b, __ = proc_b._execute_batched(
            issuer_b, _RawQuery("raw", repeated), top_k=5, cache=False
        )
        base, __ = run_query(proc_b, ring_b, single, top_k=5)
        assert pairs(ranked_t) == pairs(ranked_b) == pairs(base)

    def test_all_terms_failed_returns_empty(self) -> None:
        ring, protocol, proc = build_stack(early_termination=True)
        query = Query("dead", (VOCAB[0], VOCAB[1]))
        for term in query.terms:
            ring.fail(ring.successor_of(protocol.term_hash(term)))
        issuer = ring.live_ids[0]
        ranked, execution = proc.execute(issuer, query, top_k=5, cache=False)
        assert len(ranked) == 0
        assert execution.terms_failed == 2
        assert list(execution.dropped_terms) == list(query.terms)

    def test_top_k_zero_returns_empty(self) -> None:
        ring, __, proc = build_stack(early_termination=True)
        ranked, __ = run_query(proc, ring, Query("z", (VOCAB[2],)), top_k=0)
        assert len(ranked) == 0

    def test_top_k_beyond_candidates_returns_all(self) -> None:
        ring_t, __, proc_t = build_stack(early_termination=True)
        ring_b, __, proc_b = build_stack(early_termination=False)
        query = Query("wide", (VOCAB[4], VOCAB[11]))
        ranked_t, __ = run_query(proc_t, ring_t, query, top_k=10_000)
        ranked_b, __ = run_query(proc_b, ring_b, query, top_k=10_000)
        assert pairs(ranked_t) == pairs(ranked_b)
        assert len(ranked_t) > 0

    def test_zero_length_documents_rank_last_identically(self) -> None:
        ring_t, __, proc_t = build_stack(early_termination=True, zero_length_docs=6)
        ring_b, __, proc_b = build_stack(early_termination=False, zero_length_docs=6)
        for term in VOCAB:
            query = Query(f"q-{term}", (term,))
            ranked_t, __ = run_query(proc_t, ring_t, query, top_k=8)
            ranked_b, __ = run_query(proc_b, ring_b, query, top_k=8)
            assert pairs(ranked_t) == pairs(ranked_b)

    def test_unbounded_top_k_skips_the_termination_path(self) -> None:
        ring, __, proc = build_stack(early_termination=True)
        ranked, __ = proc.execute(
            ring.live_ids[0], Query("all", (VOCAB[5],)), top_k=None, cache=False
        )
        # top_k=None cannot early-terminate: full candidate set returned.
        assert len(ranked) > 0


class TestBackendEquivalence:
    def test_columnar_and_legacy_stores_rank_identically(self) -> None:
        ring_c, __, proc_c = build_stack(columnar=True)
        ring_l, __, proc_l = build_stack(columnar=False)
        rng = random.Random(5)
        for i in range(30):
            k = rng.randint(1, 3)
            query = Query(f"q{i}", tuple(rng.sample(VOCAB, k)))
            ranked_c, __ = run_query(proc_c, ring_c, query, top_k=7)
            ranked_l, __ = run_query(proc_l, ring_l, query, top_k=7)
            assert pairs(ranked_c) == pairs(ranked_l)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    top_k=st.integers(min_value=0, max_value=40),
    num_terms=st.integers(min_value=1, max_value=4),
    fail_first_term=st.booleans(),
    use_override=st.booleans(),
)
def test_equivalence_property(
    seed: int,
    top_k: int,
    num_terms: int,
    fail_first_term: bool,
    use_override: bool,
) -> None:
    """For any seeded workload — including peer failures and document
    frequency overrides — the three execution paths return identical
    documents, scores, and order."""
    rng = random.Random(seed)
    terms = tuple(rng.choice(VOCAB) for __ in range(num_terms))
    override = (
        {term: rng.randint(1, 50) for term in set(terms)} if use_override else None
    )
    query = Query("prop", terms)

    rankings = []
    for early, batch in ((True, True), (False, True), (False, False)):
        ring, protocol, processor = build_stack(
            early_termination=early,
            batch=batch,
            override=override,
            seed=seed % 17,
        )
        if fail_first_term:
            victim = ring.successor_of(protocol.term_hash(terms[0]))
            ring.fail(victim)
            if victim == ring.live_ids[0]:
                return  # issuer crashed; nothing to compare
        ranked, __ = run_query(processor, ring, query, top_k=top_k)
        rankings.append(pairs(ranked))
    assert rankings[0] == rankings[1] == rankings[2]
