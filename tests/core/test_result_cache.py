"""The query-result cache (ISSUE 4 layer 3).

Validation is version-based, never time-based: an entry answers a
request only if the exact ordered keyword tuple matches, the cached
depth covers the requested ``top_k``, every term slot's globally-unique
version is unchanged, and the same set of terms was dropped to
failures.  Any publish/unpublish (including learning replacement) bumps
a slot version and must invalidate dependent results on next probe.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import CachedResult, PostingEntry, QueryResultCache
from repro.core.query_processing import QueryProcessor
from repro.corpus.relevance import Query
from repro.dht.messages import MessageKind
from repro.dht.ring import ChordRing
from repro.ir.ranking import RankedList

VOCAB = [f"rc{i:02d}" for i in range(12)]


def build_stack(result_cache: int = 64, seed: int = 3):
    ring = ChordRing(ChordConfig(num_peers=24, seed=seed, route_cache_size=4096))
    protocol = IndexingProtocol(ring, result_cache_size=result_cache)
    processor = QueryProcessor(
        protocol,
        assumed_corpus_size=10_000,
        batch_fetch=True,
        early_termination=True,
        result_cache=result_cache > 0,
    )
    rng = random.Random(seed)
    for d in range(20):
        doc_id = f"d{d:03d}"
        owner = ring.random_live_id(rng)
        length = 30 + 11 * d
        for term in sorted(rng.sample(VOCAB, 4)):
            protocol.publish(
                owner,
                term,
                PostingEntry(doc_id, owner, rng.randint(1, 9), length),
            )
    return ring, protocol, processor


def execute(ring, processor, terms, top_k=5, cache=True):
    query = Query("rcq", tuple(terms))
    return processor.execute(ring.live_ids[0], query, top_k=top_k, cache=cache)


class TestCachedResultMatching:
    def _entry(self) -> CachedResult:
        return CachedResult(
            terms=("a", "b"),
            top_k=10,
            slot_versions={"a": 4, "b": 9},
            failed_terms=frozenset(),
            ranked=RankedList({"d1": 1.0}),
        )

    def test_exact_match(self) -> None:
        entry = self._entry()
        assert entry.matches(("a", "b"), 10, {"a": 4, "b": 9}, frozenset())

    def test_shallower_request_is_served(self) -> None:
        assert self._entry().matches(("a", "b"), 3, {"a": 4, "b": 9}, frozenset())

    def test_deeper_request_misses(self) -> None:
        assert not self._entry().matches(
            ("a", "b"), 11, {"a": 4, "b": 9}, frozenset()
        )

    def test_term_order_mismatch_misses(self) -> None:
        # Same keyword set, different order: scores would accumulate in
        # a different float order, so the entry must not be served.
        assert not self._entry().matches(
            ("b", "a"), 5, {"a": 4, "b": 9}, frozenset()
        )

    def test_version_mismatch_misses(self) -> None:
        assert not self._entry().matches(
            ("a", "b"), 5, {"a": 4, "b": 10}, frozenset()
        )

    def test_failed_set_mismatch_misses(self) -> None:
        assert not self._entry().matches(
            ("a", "b"), 5, {"a": 4, "b": 9}, frozenset({"a"})
        )


class TestQueryResultCacheLRU:
    def test_capacity_floor(self) -> None:
        with pytest.raises(ValueError):
            QueryResultCache(0)

    def test_least_recently_used_is_evicted(self) -> None:
        cache = QueryResultCache(2)
        entries = {
            h: CachedResult((str(h),), 1, {}, frozenset(), RankedList({}))
            for h in (1, 2, 3)
        }
        cache.put(1, entries[1])
        cache.put(2, entries[2])
        cache.get(1)  # refresh 1 → 2 becomes LRU
        cache.put(3, entries[3])
        assert cache.get(2) is None
        assert cache.get(1) is entries[1]
        assert cache.get(3) is entries[3]
        assert len(cache) == 2

    def test_invalidate(self) -> None:
        cache = QueryResultCache(2)
        cache.put(1, CachedResult(("x",), 1, {}, frozenset(), RankedList({})))
        assert cache.invalidate(1)
        assert not cache.invalidate(1)


class TestEndToEnd:
    def test_repeat_query_is_served_from_cache(self) -> None:
        ring, protocol, processor = build_stack()
        terms = (VOCAB[0], VOCAB[5])
        first, exec_first = execute(ring, processor, terms)
        again, exec_again = execute(ring, processor, terms)
        assert not exec_first.cache_hit
        assert exec_again.cache_hit
        assert [(e.doc_id, e.score) for e in again] == [
            (e.doc_id, e.score) for e in first
        ]
        entries, hits, misses = protocol.result_cache_stats()
        assert (entries, hits, misses) == (1, 1, 1)

    def test_shallower_repeat_served_truncated(self) -> None:
        ring, __, processor = build_stack()
        terms = (VOCAB[0], VOCAB[5])
        deep, __ = execute(ring, processor, terms, top_k=8)
        shallow, execution = execute(ring, processor, terms, top_k=3)
        assert execution.cache_hit
        assert [(e.doc_id, e.score) for e in shallow] == [
            (e.doc_id, e.score) for e in deep
        ][:3]

    def test_deeper_repeat_rescans(self) -> None:
        ring, __, processor = build_stack()
        terms = (VOCAB[0],)
        execute(ring, processor, terms, top_k=2)
        __, execution = execute(ring, processor, terms, top_k=9)
        assert not execution.cache_hit

    def test_publish_invalidates(self) -> None:
        ring, protocol, processor = build_stack()
        terms = (VOCAB[1], VOCAB[2])
        execute(ring, processor, terms)
        owner = ring.live_ids[1]
        # High impact (tf 9, length 10) so the new document must rank.
        protocol.publish(
            owner, VOCAB[2], PostingEntry("fresh-doc", owner, 9, 10)
        )
        fresh, execution = execute(ring, processor, terms)
        assert not execution.cache_hit
        assert fresh.contains("fresh-doc")
        # The refreshed result is re-cached and hit on the next repeat.
        __, execution = execute(ring, processor, terms)
        assert execution.cache_hit

    def test_unpublish_invalidates(self) -> None:
        ring, protocol, processor = build_stack()
        terms = (VOCAB[1], VOCAB[2])
        first, __ = execute(ring, processor, terms)
        victim_doc = first[0].doc_id
        protocol.unpublish(ring.live_ids[0], VOCAB[2], victim_doc)
        after, execution = execute(ring, processor, terms)
        assert not execution.cache_hit
        # A positive contribution was removed: strictly lower score now.
        assert after.scores().get(victim_doc, 0.0) < first[0].score

    def test_failure_set_change_invalidates(self) -> None:
        ring, protocol, processor = build_stack()
        terms = (VOCAB[3], VOCAB[7])
        execute(ring, processor, terms)
        victim = ring.successor_of(protocol.term_hash(VOCAB[7]))
        if victim == ring.live_ids[0]:
            pytest.skip("issuer is the indexing peer for this seed")
        result_home = protocol._result_home(
            ring.live_ids[0], protocol.query_hash(tuple(sorted(terms)))
        )[0]
        if victim == result_home:
            pytest.skip("result home is the indexing peer for this seed")
        ring.fail(victim)
        __, execution = execute(ring, processor, terms)
        assert not execution.cache_hit
        assert execution.terms_failed == 1

    def test_cache_disabled_sends_no_result_messages(self) -> None:
        ring, __, processor = build_stack(result_cache=0)
        execute(ring, processor, (VOCAB[0],))
        execute(ring, processor, (VOCAB[0],))
        for kind in (
            MessageKind.RESULT_PROBE,
            MessageKind.RESULT_VALUE,
            MessageKind.RESULT_STORE,
        ):
            assert ring.stats.kind(kind).messages == 0

    def test_unregistered_probe_uses_version_messages(self) -> None:
        """cache=False still validates freshness — via the batched
        version probe instead of registration piggybacking."""
        ring, __, processor = build_stack()
        execute(ring, processor, (VOCAB[0],), cache=False)
        assert ring.stats.kind(MessageKind.VERSION_PROBE).messages > 0
        __, execution = execute(ring, processor, (VOCAB[0],), cache=False)
        assert execution.cache_hit

    def test_frequency_override_bypasses_cache(self) -> None:
        ring, protocol, __ = build_stack()
        processor = QueryProcessor(
            protocol,
            assumed_corpus_size=10_000,
            document_frequency_override={VOCAB[0]: 5},
            batch_fetch=True,
            early_termination=True,
            result_cache=True,
        )
        execute(ring, processor, (VOCAB[0],))
        __, execution = execute(ring, processor, (VOCAB[0],))
        assert not execution.cache_hit
        assert protocol.result_cache_stats() == (0, 0, 0)


class TestHashMemoization:
    def test_protocol_and_ring_agree_on_term_positions(self) -> None:
        """ISSUE 4 satellite: one memoization layer — the protocol's
        term_hash must be the ring space's hash_key, same values."""
        ring, protocol, __ = build_stack()
        for term in VOCAB + ["never-published-term"]:
            assert protocol.term_hash(term) == ring.space.hash_key(term)

    def test_no_private_hash_cache_remains(self) -> None:
        ring, protocol, __ = build_stack()
        assert not hasattr(protocol, "_hash_cache")


class TestFreshnessProperty:
    """Hypothesis property (ISSUE 8 satellite): the result cache never
    serves a response whose recorded slot versions predate an
    interleaved publish/unpublish to one of the query's terms.

    The model is deliberately simple: with a perfect transport and no
    churn, a repeat query must HIT exactly when nothing touched its
    terms since the last full execution, must MISS (and recompute)
    after any interleaved mutation of a query term, and every served
    ranking — cached or not — must equal a from-scratch uncached
    execution of the same query.  Mutations to *unrelated* terms must
    not shake the entry loose.
    """

    OPS = st.lists(
        st.tuples(
            st.sampled_from(["query", "publish", "unpublish", "decoy"]),
            st.integers(min_value=0, max_value=1),  # query-term index
            st.integers(min_value=0, max_value=4),  # doc-id salt
        ),
        min_size=1,
        max_size=30,
    )

    @given(ops=OPS, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_no_stale_serve_under_interleaved_writes(
        self, ops, seed: int
    ) -> None:
        ring, protocol, processor = build_stack(seed=seed)
        rng = random.Random(seed)
        query_terms = (VOCAB[0], VOCAB[1])
        issuer = ring.live_ids[0]

        published: dict = {term: set() for term in VOCAB}
        executed_once = False
        dirty = False  # a query term mutated since the last execution

        for op, term_idx, salt in ops:
            term = query_terms[term_idx]
            doc_id = f"prop{salt}"
            if op == "publish":
                owner = ring.random_live_id(rng)
                protocol.publish(
                    owner,
                    term,
                    PostingEntry(doc_id, owner, 1 + salt, 40 + 7 * salt),
                )
                published[term].add(doc_id)
                dirty = True
            elif op == "unpublish":
                removed = protocol.unpublish(issuer, term, doc_id)
                assert removed == (doc_id in published[term])
                if removed:
                    published[term].discard(doc_id)
                    dirty = True
            elif op == "decoy":
                # Same write, unrelated term: must not invalidate.
                owner = ring.random_live_id(rng)
                protocol.publish(
                    owner,
                    VOCAB[-1],
                    PostingEntry(doc_id, owner, 1 + salt, 40 + 7 * salt),
                )
            else:
                ranked, execution = execute(ring, processor, query_terms)
                assert execution.cache_hit == (executed_once and not dirty)
                fresh, __ = execute(
                    ring, processor, query_terms, cache=False
                )
                assert [(e.doc_id, e.score) for e in ranked] == [
                    (e.doc_id, e.score) for e in fresh
                ]
                executed_once = True
                dirty = False
