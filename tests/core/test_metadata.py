"""Tests for SPRITE metadata structures."""

from __future__ import annotations

import pytest

from repro.core.metadata import (
    CachedQuery,
    PostingEntry,
    QueryCache,
    TermSlot,
    TermStats,
)


class TestPostingEntry:
    def test_normalized_tf(self) -> None:
        entry = PostingEntry(doc_id="d1", owner_peer=7, raw_tf=3, doc_length=12)
        assert entry.normalized_tf == pytest.approx(0.25)

    def test_zero_length_document(self) -> None:
        entry = PostingEntry(doc_id="d1", owner_peer=7, raw_tf=0, doc_length=0)
        assert entry.normalized_tf == 0.0

    def test_frozen(self) -> None:
        entry = PostingEntry("d1", 7, 3, 12)
        with pytest.raises(AttributeError):
            entry.raw_tf = 9  # type: ignore[misc]


class TestQueryCache:
    def test_sequences_monotone(self) -> None:
        cache = QueryCache(capacity=10)
        a = cache.add(("a",), query_hash=1)
        b = cache.add(("b",), query_hash=2)
        assert b.sequence == a.sequence + 1

    def test_capacity_evicts_oldest(self) -> None:
        cache = QueryCache(capacity=2)
        cache.add(("a",), 1)
        cache.add(("b",), 2)
        cache.add(("c",), 3)
        terms = [e.terms for e in cache]
        assert terms == [("b",), ("c",)]

    def test_reissue_appends_fresh_arrival(self) -> None:
        """Identical queries are stored per-arrival (QF counts repeats —
        the popularity signal under skewed streams)."""
        cache = QueryCache(capacity=5)
        cache.add(("a",), 1)
        cache.add(("b",), 2)
        refreshed = cache.add(("a",), 1)   # re-issued popular query
        assert refreshed.sequence == 2
        assert [e.terms for e in cache] == [("a",), ("b",), ("a",)]
        assert len(cache.since(-1)) == 3

    def test_since_returns_only_newer(self) -> None:
        cache = QueryCache(capacity=10)
        cache.add(("a",), 1)
        marker = cache.latest_sequence
        cache.add(("b",), 2)
        cache.add(("c",), 3)
        fresh = cache.since(marker)
        assert [e.terms for e in fresh] == [("b",), ("c",)]

    def test_since_with_no_new(self) -> None:
        cache = QueryCache(capacity=10)
        cache.add(("a",), 1)
        assert cache.since(cache.latest_sequence) == []

    def test_latest_sequence_empty(self) -> None:
        assert QueryCache(capacity=4).latest_sequence == -1

    def test_invalid_capacity(self) -> None:
        with pytest.raises(ValueError):
            QueryCache(capacity=0)

    def test_len(self) -> None:
        cache = QueryCache(capacity=5)
        cache.add(("a",), 1)
        cache.add(("b",), 2)
        assert len(cache) == 2


class TestTermSlot:
    def test_indexed_document_frequency(self) -> None:
        slot = TermSlot(term="chord")
        slot.add_posting(PostingEntry("d1", 1, 1, 10))
        slot.add_posting(PostingEntry("d2", 2, 1, 10))
        assert slot.indexed_document_frequency == 2

    def test_add_overwrites_same_doc(self) -> None:
        slot = TermSlot(term="chord")
        slot.add_posting(PostingEntry("d1", 1, 1, 10))
        slot.add_posting(PostingEntry("d1", 1, 5, 10))
        assert slot.indexed_document_frequency == 1
        assert slot.inverted["d1"].raw_tf == 5

    def test_remove_posting(self) -> None:
        slot = TermSlot(term="chord")
        slot.add_posting(PostingEntry("d1", 1, 1, 10))
        removed = slot.remove_posting("d1")
        assert removed is not None
        assert slot.indexed_document_frequency == 0
        assert slot.remove_posting("d1") is None


class TestTermStats:
    def test_absorb_maxes_qscore(self) -> None:
        stats = TermStats()
        stats.absorb(0.5, 3)
        stats.absorb(0.3, 2)
        stats.absorb(0.8, 1)
        assert stats.max_qscore == 0.8

    def test_absorb_accumulates_qf(self) -> None:
        stats = TermStats()
        stats.absorb(0.5, 3)
        stats.absorb(0.3, 2)
        assert stats.query_frequency == 5
