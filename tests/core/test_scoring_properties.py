"""Property-based tests for the learning signal (paper Section 5.3).

Hypothesis-driven checks of the algebraic properties the learning loop
silently relies on: Score is non-negative and monotone in both of its
inputs, qScore is a proper overlap ratio, the incremental learner is
insensitive to query arrival order (max is associative, QF cumulative),
and term selection under the max-terms cap is deterministic with
alphabetical tie-breaking.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.learning import (
    IncrementalLearner,
    RankedTerm,
    naive_rank_terms,
    select_index_terms,
)
from repro.core.scoring import combined_score, q_score, query_frequency
from repro.corpus import Document

#: A small shared alphabet keeps query/document overlap likely.
TERMS = st.sampled_from([f"t{i}" for i in range(12)])
QUERY = st.lists(TERMS, min_size=1, max_size=4, unique=True).map(tuple)
QUERIES = st.lists(QUERY, min_size=0, max_size=25)

SCORES = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
QFS = st.integers(min_value=0, max_value=10**6)


def make_document(terms: frozenset) -> Document:
    """A document whose analyzed term set is exactly *terms* (the tN
    tokens survive the analyzer unchanged)."""
    return Document(doc_id="pd", text=" ".join(sorted(terms)) or "solitary")


class TestCombinedScore:
    @given(qscore=SCORES, qf=QFS)
    def test_non_negative(self, qscore: float, qf: int) -> None:
        assert combined_score(qscore, qf) >= 0.0

    @given(qscore=SCORES, qf=QFS)
    def test_zero_iff_no_evidence(self, qscore: float, qf: int) -> None:
        score = combined_score(qscore, qf)
        if qf <= 1 or qscore <= 0.0:
            assert score == 0.0
        else:
            assert score > 0.0

    @given(qscore=SCORES, qf_low=QFS, qf_high=QFS)
    def test_monotone_in_query_frequency(
        self, qscore: float, qf_low: int, qf_high: int
    ) -> None:
        low, high = sorted((qf_low, qf_high))
        assert combined_score(qscore, low) <= combined_score(qscore, high)

    @given(a=SCORES, b=SCORES, qf=QFS)
    def test_monotone_in_qscore(self, a: float, b: float, qf: int) -> None:
        low, high = sorted((a, b))
        assert combined_score(low, qf) <= combined_score(high, qf)


class TestQScore:
    @given(
        query=st.sets(TERMS, min_size=1, max_size=6),
        doc=st.sets(TERMS, max_size=12),
    )
    def test_is_an_overlap_ratio(self, query: set, doc: set) -> None:
        score = q_score(query, doc)
        assert 0.0 <= score <= 1.0
        if query <= doc:
            assert score == 1.0
        if not (query & doc):
            assert score == 0.0

    @given(doc=st.sets(TERMS, max_size=12))
    def test_empty_query_scores_zero(self, doc: set) -> None:
        assert q_score(set(), doc) == 0.0

    @given(query=st.sets(TERMS, min_size=1, max_size=6), doc=st.sets(TERMS, max_size=12))
    def test_sequence_and_set_inputs_agree(self, query: set, doc: set) -> None:
        # duplicated sequence entries must not inflate the ratio
        assert q_score(sorted(query) * 2, doc) == q_score(query, doc)


class TestLearnerOrderInsensitivity:
    @settings(max_examples=50, deadline=None)
    @given(
        queries=QUERIES,
        doc_terms=st.frozensets(TERMS, min_size=1, max_size=12),
        split=st.integers(min_value=0, max_value=25),
    )
    def test_batching_does_not_change_rank_list(
        self, queries, doc_terms, split: int
    ) -> None:
        """Observing Q as one batch, or as any prefix/suffix split,
        yields the same statistics — the associativity Algorithm 1's
        incrementality rests on."""
        document = make_document(doc_terms)
        one_shot = IncrementalLearner(document)
        one_shot.observe(queries)
        batched = IncrementalLearner(document)
        cut = min(split, len(queries))
        batched.observe(queries[:cut])
        batched.observe(queries[cut:])
        assert one_shot.rank_list() == batched.rank_list()

    @settings(max_examples=50, deadline=None)
    @given(
        queries=QUERIES,
        doc_terms=st.frozensets(TERMS, min_size=1, max_size=12),
        seed=st.randoms(use_true_random=False),
    )
    def test_incremental_matches_naive_under_permutation(
        self, queries, doc_terms, seed
    ) -> None:
        """The incremental learner equals the naive full-history learner
        for any arrival order of the same query multiset."""
        document = make_document(doc_terms)
        shuffled = list(queries)
        seed.shuffle(shuffled)
        learner = IncrementalLearner(document)
        for query in shuffled:
            learner.observe([query])
        naive = [rt for rt in naive_rank_terms(document, queries) if rt.score > 0]
        incremental = [rt for rt in learner.rank_list() if rt.score > 0]
        assert incremental == naive

    @given(queries=QUERIES, doc_terms=st.frozensets(TERMS, min_size=1, max_size=12))
    def test_query_frequency_matches_learner_stats(
        self, queries, doc_terms
    ) -> None:
        document = make_document(doc_terms)
        learner = IncrementalLearner(document)
        learner.observe(queries)
        for term, stats in learner.stats.items():
            assert stats.query_frequency == query_frequency(term, queries)


class TestSelectionDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(
        doc_terms=st.frozensets(TERMS, min_size=3, max_size=12),
        queries=QUERIES,
        target=st.integers(min_value=1, max_value=8),
    )
    def test_selection_is_deterministic_and_capped(
        self, doc_terms, queries, target: int
    ) -> None:
        document = make_document(doc_terms)
        learner = IncrementalLearner(document)
        learner.observe(queries)
        current = document.top_terms(3)
        first = select_index_terms(document, current, learner.rank_list(), target)
        second = select_index_terms(document, current, learner.rank_list(), target)
        assert first == second
        assert len(first) == min(target, len(set(document.term_freqs)))
        assert len(set(first)) == len(first)

    def test_equal_scores_break_ties_alphabetically(self) -> None:
        """Under the cap, equally scored terms are admitted in
        alphabetical order — replacement cannot depend on dict order."""
        document = Document(doc_id="tie", text="zeta yank xray walt vamp")
        rank = [
            RankedTerm("zeta", 0.5),
            RankedTerm("xray", 0.5),
            RankedTerm("yank", 0.5),
        ]
        ranked = sorted(rank, key=lambda rt: (-rt.score, rt.term))
        chosen = select_index_terms(document, ["walt"], ranked, target_size=2)
        assert chosen == ["xray", "yank"]

    def test_rank_list_tie_break_is_alphabetical(self) -> None:
        document = Document(doc_id="tie2", text="alpha beta")
        learner = IncrementalLearner(document)
        # two terms with identical evidence: same qScore, same QF
        learner.observe([("alpha", "beta"), ("alpha", "beta")])
        ranked = learner.rank_list()
        assert [rt.term for rt in ranked] == ["alpha", "beta"]
        assert ranked[0].score == ranked[1].score
