"""Tests for the system facades (DistributedSystem / SpriteSystem)."""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, SpriteConfig
from repro.core import SpriteSystem
from repro.corpus import Corpus, Document, Query
from repro.exceptions import LearningError

CHORD = ChordConfig(num_peers=24, id_bits=32, seed=61)


@pytest.fixture()
def corpus() -> Corpus:
    docs = []
    for i in range(12):
        topic = ["chord ring lookup", "retrieval ranking index", "churn failure replica"][i % 3]
        filler = f"filler{i} filler{i} pad{i}"
        docs.append(Document(f"d{i}", f"{topic} {topic} {filler}"))
    return Corpus(docs)


@pytest.fixture()
def sprite(corpus: Corpus, fast_sprite_config: SpriteConfig) -> SpriteSystem:
    return SpriteSystem(corpus, sprite_config=fast_sprite_config, chord_config=CHORD)


class TestSharing:
    def test_share_corpus_publishes_everything(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        assert sprite.total_published_terms() == 12 * 3  # initial_terms=3

    def test_share_is_idempotent(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        sprite.share_corpus()
        assert sprite.total_published_terms() == 12 * 3

    def test_owner_assignment_deterministic(self, sprite: SpriteSystem, corpus: Corpus) -> None:
        sprite.share_corpus()
        again = SpriteSystem(corpus, sprite_config=sprite.config, chord_config=CHORD)
        again.share_corpus()
        for doc_id in corpus.doc_ids:
            assert sprite.owner_of(doc_id).node_id == again.owner_of(doc_id).node_id

    def test_owner_of_unshared_raises(self, sprite: SpriteSystem) -> None:
        with pytest.raises(LearningError):
            sprite.owner_of("d0")

    def test_index_terms_accessible(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        terms = sprite.index_terms("d0")
        assert len(terms) == 3


class TestSearchPath:
    def test_search_finds_matching_documents(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        ranked = sprite.search(Query("q", ("chord", "ring")), cache=False)
        assert len(ranked) > 0
        for doc_id in ranked.ids():
            assert int(doc_id[1:]) % 3 == 0  # only the chord-topic docs

    def test_search_respects_config_top_k(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        ranked = sprite.search(Query("q", ("chord",)), cache=False)
        assert len(ranked) <= sprite.config.top_k_answers

    def test_register_queries_counts(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        count = sprite.register_queries([Query("q1", ("chord", "ring"))])
        assert count == 2


class TestLearningLoop:
    def test_learning_requires_share(self, sprite: SpriteSystem) -> None:
        with pytest.raises(LearningError):
            sprite.run_learning_iteration()

    def test_learning_grows_index_sizes(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        sprite.register_queries(
            [Query(f"q{i}", ("chord", "lookup")) for i in range(4)]
        )
        sprite.run_learning(iterations=1)
        sizes = sprite.learning_summary()
        # Target is 3 + 3 = 6, clamped to each document's 5 unique terms.
        assert all(size == 5 for size in sizes.values())

    def test_full_schedule_caps_at_max(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        sprite.run_learning()  # 2 iterations × 3 terms → 9 (= cap)
        sizes = sprite.learning_summary()
        assert all(size <= sprite.config.max_index_terms for size in sizes.values())

    def test_learning_indexes_queried_terms(self, sprite: SpriteSystem) -> None:
        """A query term present in a document but outside its initial
        index must enter after learning (the d/e terms of Figure 1)."""
        sprite.share_corpus()
        target = "d0"
        initial = set(sprite.index_terms(target))
        assert "lookup" in sprite.corpus.get(target).term_freqs
        queried = ("chord", "lookup")
        sprite.register_queries([Query(f"q{i}", queried) for i in range(5)])
        sprite.run_learning(iterations=1)
        after = set(sprite.index_terms(target))
        assert "lookup" in after or "lookup" in initial

    def test_stats_accumulate_traffic(self, sprite: SpriteSystem) -> None:
        """The default (batched) write path publishes via PUBLISH_BATCH
        messages: one per distinct destination peer, together carrying
        every (doc, term) posting and never more batches than the
        legacy path's one-message-per-posting."""
        from repro.dht.messages import MessageKind, POSTING_BYTES, TERM_BYTES

        sprite.share_corpus()
        batch = sprite.ring.stats.kind(MessageKind.PUBLISH_BATCH)
        assert sprite.ring.stats.kind(MessageKind.PUBLISH_TERM).messages == 0
        assert 0 < batch.messages <= 12 * 3
        assert batch.bytes >= 12 * 3 * (TERM_BYTES + POSTING_BYTES)
        assert batch.hops >= batch.messages  # ≥1 hop each

    def test_stats_accumulate_traffic_legacy_path(self, corpus: Corpus) -> None:
        """batched_writes=False keeps the seed per-term profile."""
        from repro.dht.messages import MessageKind

        sprite = SpriteSystem(
            corpus,
            sprite_config=SpriteConfig(
                initial_terms=3,
                terms_per_iteration=2,
                learning_iterations=1,
                max_index_terms=5,
                query_cache_size=50,
                assumed_corpus_size=1000,
                batched_writes=False,
            ),
            chord_config=CHORD,
        )
        sprite.share_corpus()
        publish = sprite.ring.stats.kind(MessageKind.PUBLISH_TERM)
        assert publish.messages == 12 * 3
        assert publish.hops >= publish.messages  # ≥1 hop each


class TestDiagnostics:
    def test_execute_returns_diagnostics(self, sprite: SpriteSystem) -> None:
        sprite.share_corpus()
        ranked, execution = sprite.execute(Query("q", ("chord",)), cache=False)
        assert execution.terms_visited == 1
        assert execution.postings_retrieved >= len(ranked.ids())
