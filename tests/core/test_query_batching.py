"""Equivalence of the optimized query path (ISSUE 2).

Two independent claims, each load-bearing for the perf layer:

* **batched ≡ legacy** — ``QueryProcessor(batch_fetch=True)`` (per-peer
  merged fetches + one-pass flat-dict scoring) returns bit-identical
  ranked lists to the retained legacy path (per-term fetches +
  nested-dict scoring), including under peer failures, while sending no
  more SEARCH/POSTINGS messages;
* **cache-on ≡ cache-off** (satellite) — with the route cache enabled
  vs disabled, identical rankings *and* identical per-kind
  ``NetworkStats`` message counts under the perfect transport, across a
  churning ring.
"""

from __future__ import annotations

import random

import pytest

from repro.config import ChordConfig
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import PostingEntry
from repro.core.query_processing import QueryProcessor
from repro.corpus.relevance import Query
from repro.dht.messages import MessageKind
from repro.dht.ring import ChordRing

VOCAB = [f"kw{i:03d}" for i in range(40)]


def build_stack(route_cache: int = 65536, batch: bool = True, seed: int = 7):
    ring = ChordRing(
        ChordConfig(num_peers=64, seed=seed, route_cache_size=route_cache)
    )
    protocol = IndexingProtocol(ring)
    processor = QueryProcessor(
        protocol, assumed_corpus_size=10_000, batch_fetch=batch
    )
    rng = random.Random(seed)
    for d in range(30):
        doc_id = f"d{d:03d}"
        owner = ring.random_live_id(rng)
        length = 50 + 7 * d
        for term in sorted(rng.sample(VOCAB, 6)):
            protocol.publish(
                owner,
                term,
                PostingEntry(doc_id, owner, rng.randint(1, 9), length),
            )
    return ring, protocol, processor


def query_stream(count: int = 40, seed: int = 23):
    rng = random.Random(seed)
    queries = []
    for i in range(count):
        k = rng.randint(1, 3)
        queries.append(Query(f"q{i:03d}", tuple(sorted(rng.sample(VOCAB, k)))))
    return queries


def run_stream(ring, processor, queries, churn: bool = False):
    rankings = []
    for i, query in enumerate(queries):
        if churn and i and i % 10 == 0:
            ring.join(name=f"late-{i}")
            ring.leave(ring.live_ids[(i * 13) % ring.num_live])
            ring.stabilize()
        issuer = ring.live_ids[(i * 5) % ring.num_live]
        ranked, __ = processor.execute(issuer, query, top_k=10)
        rankings.append([(e.doc_id, e.score) for e in ranked])
    return rankings


class TestBatchedEqualsLegacy:
    def test_identical_rankings_bit_for_bit(self) -> None:
        ring_b, __, proc_batched = build_stack(batch=True)
        ring_l, __, proc_legacy = build_stack(batch=False)
        queries = query_stream()
        batched = run_stream(ring_b, proc_batched, queries)
        legacy = run_stream(ring_l, proc_legacy, queries)
        # Exact equality, scores included: the one-pass scorer performs
        # the same float operations in the same order.
        assert batched == legacy

    def test_batching_never_sends_more_search_traffic(self) -> None:
        ring_b, __, proc_batched = build_stack(batch=True)
        ring_l, __, proc_legacy = build_stack(batch=False)
        queries = query_stream()
        run_stream(ring_b, proc_batched, queries)
        run_stream(ring_l, proc_legacy, queries)
        for kind in (MessageKind.SEARCH_TERM, MessageKind.POSTINGS):
            assert (
                ring_b.stats.kind(kind).messages
                <= ring_l.stats.kind(kind).messages
            )
        # Lookup counts are identical: batching merges message pairs,
        # not routing work.
        assert (
            ring_b.stats.kind(MessageKind.LOOKUP).messages
            == ring_l.stats.kind(MessageKind.LOOKUP).messages
        )

    def test_terms_sharing_a_peer_share_one_message_pair(self) -> None:
        ring, protocol, __ = build_stack()
        # Find two vocabulary terms resolving to the same indexing peer.
        by_peer = {}
        pair = None
        for term in VOCAB:
            peer = ring.successor_of(protocol.term_hash(term))
            if peer in by_peer:
                pair = (by_peer[peer], term)
                break
            by_peer[peer] = term
        if pair is None:
            pytest.skip("no colliding terms for this seed")
        before_s = ring.stats.kind(MessageKind.SEARCH_TERM).messages
        before_p = ring.stats.kind(MessageKind.POSTINGS).messages
        results, failed = protocol.fetch_postings_batch(ring.live_ids[0], pair)
        assert not failed and set(results) == set(pair)
        assert ring.stats.kind(MessageKind.SEARCH_TERM).messages == before_s + 1
        assert ring.stats.kind(MessageKind.POSTINGS).messages == before_p + 1

    def test_identical_failure_degradation(self) -> None:
        """Both paths drop exactly the terms whose peer crashed
        (Section 7), in query order, and rank the remainder equally."""
        ring_b, proto_b, proc_batched = build_stack(batch=True)
        ring_l, proto_l, proc_legacy = build_stack(batch=False)
        probe = Query("probe", (VOCAB[0], VOCAB[7], VOCAB[21]))
        victim = ring_b.successor_of(proto_b.term_hash(VOCAB[7]))
        ring_b.fail(victim)
        ring_l.fail(victim)
        issuer = next(n for n in ring_b.live_ids if n != victim)
        ranked_b, exec_b = proc_batched.execute(issuer, probe, cache=False)
        ranked_l, exec_l = proc_legacy.execute(issuer, probe, cache=False)
        assert exec_b.dropped_terms == exec_l.dropped_terms
        assert exec_b.terms_failed == exec_l.terms_failed
        assert [(e.doc_id, e.score) for e in ranked_b] == [
            (e.doc_id, e.score) for e in ranked_l
        ]

    def test_unindexed_terms_return_empty_like_legacy(self) -> None:
        ring, __, proc = build_stack(batch=True)
        ranked, execution = proc.execute(
            ring.live_ids[0], Query("ghost", ("nosuchterm",)), cache=False
        )
        assert len(ranked) == 0
        assert execution.terms_visited == 1
        assert execution.candidate_documents == 0


class TestRouteCacheEquivalence:
    def test_identical_rankings_and_message_counts(self) -> None:
        """ISSUE 2 satellite: cache on vs off — same ranked lists, same
        per-kind message counts, under perfect transport with churn."""
        ring_on, __, proc_on = build_stack(route_cache=65536)
        ring_off, __, proc_off = build_stack(route_cache=0)
        assert ring_on.route_cache is not None and ring_off.route_cache is None
        queries = query_stream(count=60)
        rankings_on = run_stream(ring_on, proc_on, queries, churn=True)
        rankings_off = run_stream(ring_off, proc_off, queries, churn=True)
        assert rankings_on == rankings_off
        assert ring_on.route_cache.hits > 0  # the fast path actually ran
        counts_on = {
            kind: stats.messages for kind, stats in ring_on.stats.snapshot().items()
        }
        counts_off = {
            kind: stats.messages for kind, stats in ring_off.stats.snapshot().items()
        }
        assert counts_on == counts_off
        # Bytes match too for everything but LOOKUP (whose per-kind
        # accounting carries hops, not bytes — and cached hits are
        # allowed to take fewer hops).
        for kind, stats in ring_on.stats.snapshot().items():
            if kind is not MessageKind.LOOKUP:
                assert stats.bytes == ring_off.stats.kind(kind).bytes
        assert (
            ring_on.stats.kind(MessageKind.LOOKUP).hops
            <= ring_off.stats.kind(MessageKind.LOOKUP).hops
        )
