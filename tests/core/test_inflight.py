"""Tests for the capture-at-dispatch / timeline-replay bridge.

The contract under test (DESIGN.md §15): running an operation under
:meth:`ChordRing.capture_messages` must not change what it computes —
only observe which messages it sent — and the captured timeline must
replay through the event-driven scheduler to yield a completion time.
"""

from __future__ import annotations

import pytest

from repro.config import ChordConfig, SpriteConfig
from repro.core import SpriteSystem
from repro.core.inflight import (
    CapturedOp,
    capture_operation,
    capture_query,
    dispatch,
    dispatch_query,
)
from repro.corpus import Corpus, Document, Query
from repro.net import Scheduler

CHORD = ChordConfig(num_peers=24, id_bits=32, seed=61)


@pytest.fixture()
def corpus() -> Corpus:
    docs = []
    for i in range(12):
        topic = [
            "chord ring lookup",
            "retrieval ranking index",
            "churn failure replica",
        ][i % 3]
        docs.append(Document(f"d{i}", f"{topic} {topic} filler{i} pad{i}"))
    return Corpus(docs)


@pytest.fixture()
def sprite(corpus: Corpus, fast_sprite_config: SpriteConfig) -> SpriteSystem:
    system = SpriteSystem(
        corpus, sprite_config=fast_sprite_config, chord_config=CHORD
    )
    system.share_corpus()
    return system


def q(terms: str, qid: str = "q1") -> Query:
    from repro.text.analyzer import DEFAULT_ANALYZER

    return Query(qid, tuple(DEFAULT_ANALYZER.analyze_query(terms)))


class TestCaptureMessages:
    def test_capture_records_message_kinds_and_destinations(self, sprite) -> None:
        with sprite.ring.capture_messages() as log:
            sprite.search(q("chord ring"), cache=False)
        assert len(log) > 0
        for trace in log.records:
            assert isinstance(trace.kind, str)
            assert trace.dst in sprite.ring.nodes

    def test_capture_does_not_change_results(self, sprite) -> None:
        """Attaching the capture log activates per-hop transport
        delivery; rankings must be unaffected."""
        baseline = sprite.search(q("retrieval ranking"), cache=False)
        with sprite.ring.capture_messages():
            captured = sprite.search(q("retrieval ranking"), cache=False)
        assert [(a.doc_id, a.score) for a in baseline] == [
            (a.doc_id, a.score) for a in captured
        ]

    def test_capture_detaches_on_exit(self, sprite) -> None:
        assert sprite.ring.transport.trace is None
        with sprite.ring.capture_messages():
            assert sprite.ring.transport.active
        assert sprite.ring.transport.trace is None
        assert not sprite.ring.transport.active

    def test_capture_detaches_on_error(self, sprite) -> None:
        with pytest.raises(RuntimeError):
            with sprite.ring.capture_messages():
                raise RuntimeError("boom")
        assert sprite.ring.transport.trace is None

    def test_prior_trace_log_still_sees_captured_traffic(self, sprite) -> None:
        from repro.net import TraceLog

        outer = TraceLog()
        sprite.ring.transport.trace = outer
        try:
            with sprite.ring.capture_messages() as inner:
                sprite.search(q("chord ring"), cache=False)
            assert len(inner) > 0
            assert outer.records[-len(inner):] == inner.records
            assert sprite.ring.transport.trace is outer
        finally:
            sprite.ring.transport.trace = None

    def test_nested_captures_compose(self, sprite) -> None:
        with sprite.ring.capture_messages() as outer:
            with sprite.ring.capture_messages() as inner:
                sprite.search(q("chord ring"), cache=False)
            assert outer.records == inner.records


class TestCaptureQuery:
    def test_result_matches_plain_execute(self, sprite) -> None:
        ranked, execution = sprite.execute(q("churn failure"), cache=False)
        op = capture_query(sprite, q("churn failure"), cache=False)
        cap_ranked, cap_execution = op.result
        assert [(a.doc_id, a.score) for a in ranked] == [
            (a.doc_id, a.score) for a in cap_ranked
        ]
        assert op.label == "query:q1"
        assert op.messages == len(op.timeline) > 0

    def test_timeline_message_count_covers_terms_contacted(self, sprite) -> None:
        op = capture_query(sprite, q("retrieval ranking"), cache=False)
        kinds = {kind for kind, _dst in op.timeline}
        # At minimum the query path sent term searches (plus routing).
        assert "search_term" in kinds or "query_batch" in kinds

    def test_execute_captured_facade(self, sprite) -> None:
        ranked, execution, op = sprite.execute_captured(
            q("chord ring"), cache=False
        )
        assert isinstance(op, CapturedOp)
        assert op.result[0] is ranked
        assert op.result[1] is execution

    def test_capture_operation_wraps_arbitrary_callables(self, sprite) -> None:
        op = capture_operation(
            sprite,
            lambda: sprite.search(q("chord ring"), cache=False),
            label="custom",
        )
        assert op.label == "custom"
        assert op.messages > 0
        assert len(op.result) >= 0  # the RankedList came through


class TestDispatch:
    def test_dispatched_timeline_completes_with_latency(self, sprite) -> None:
        op = capture_query(sprite, q("chord ring"), cache=False)
        sched = Scheduler(service_time_ms=0.25)
        future = dispatch(sched, op)
        sched.run()
        assert future.done
        assert future.latency_ms > 0.0
        assert len(future.receipts) == op.messages

    def test_dispatch_query_exposes_semantics_and_timing(self, sprite) -> None:
        op = capture_query(sprite, q("retrieval ranking"), cache=False)
        sched = Scheduler(service_time_ms=0.25)
        inflight = dispatch_query(sched, op, delay_ms=2.0)
        assert not inflight.done
        sched.run()
        assert inflight.done
        assert inflight.latency_ms > 0.0
        assert len(list(inflight.ranked)) > 0
        assert inflight.execution is op.result[1]

    def test_concurrent_queries_share_peer_queues(self, sprite) -> None:
        """Two identical captured queries hammer the same peers; the
        second must observe queueing the first did not."""
        op = capture_query(sprite, q("chord ring"), cache=False)
        sched = Scheduler(service_time_ms=2.0)
        first = dispatch(sched, op)
        second = dispatch(sched, op)
        sched.run()
        assert second.latency_ms > first.latency_ms
