"""Tests for configuration validation and derived values."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    ALL_CONFIG_TYPES,
    ChordConfig,
    ESearchConfig,
    ExperimentConfig,
    NetworkConfig,
    QueryGenConfig,
    SpriteConfig,
    SyntheticCorpusConfig,
    WorkloadConfig,
    paper_experiment_config,
    small_experiment_config,
)
from repro.exceptions import ConfigurationError


class TestDefaultsMatchPaper:
    def test_sprite_section_6_2(self) -> None:
        cfg = SpriteConfig()
        assert cfg.initial_terms == 5
        assert cfg.terms_per_iteration == 5
        assert cfg.learning_iterations == 3
        assert cfg.max_index_terms == 20
        assert cfg.top_k_answers == 20
        assert cfg.total_terms_after_learning == 20

    def test_querygen_section_6_1(self) -> None:
        cfg = QueryGenConfig()
        assert cfg.queries_per_original == 9       # k = 9
        assert cfg.overlap_ratio == 0.7            # O = 70%
        assert cfg.candidate_pool_size == 5        # S = 5
        assert cfg.ranked_list_depth == 1000       # E = 1000

    def test_esearch_default_budget(self) -> None:
        assert ESearchConfig().index_terms == 20

    def test_zipf_slope(self) -> None:
        assert WorkloadConfig().zipf_slope == 0.5


class TestValidation:
    def test_sprite_max_below_initial(self) -> None:
        with pytest.raises(ConfigurationError):
            SpriteConfig(initial_terms=10, max_index_terms=5)

    def test_sprite_zero_cache(self) -> None:
        with pytest.raises(ConfigurationError):
            SpriteConfig(query_cache_size=0)

    def test_chord_too_many_peers_for_ring(self) -> None:
        with pytest.raises(ConfigurationError):
            ChordConfig(num_peers=10_000, id_bits=8)

    def test_querygen_overlap_bounds(self) -> None:
        with pytest.raises(ConfigurationError):
            QueryGenConfig(overlap_ratio=1.5)

    def test_experiment_train_fraction(self) -> None:
        with pytest.raises(ConfigurationError):
            ExperimentConfig(train_fraction=1.0)

    def test_workload_negative_slope(self) -> None:
        with pytest.raises(ConfigurationError):
            WorkloadConfig(zipf_slope=-0.5)


class TestNetworkConfig:
    def test_defaults_are_perfect_transport(self) -> None:
        cfg = NetworkConfig()
        assert cfg.transport == "perfect"
        assert cfg.drop_probability == 0.0

    def test_experiment_config_embeds_network(self) -> None:
        assert ExperimentConfig().network == NetworkConfig()

    def test_unknown_transport_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkConfig(transport="carrier-pigeon")

    def test_unknown_latency_model_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkConfig(latency_model="bimodal")

    def test_drop_probability_bounds(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=1.5)
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=-0.1)
        NetworkConfig(drop_probability=1.0)  # boundary is legal

    def test_timeout_must_be_positive(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkConfig(timeout_ms=0.0)

    def test_negative_retries_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkConfig(max_retries=-1)

    def test_uniform_bounds_ordered(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkConfig(latency_low_ms=100.0, latency_high_ms=50.0)

    def test_lognormal_needs_positive_median(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkConfig(latency_model="lognormal", latency_ms=0.0)


class TestDerived:
    def test_total_terms_capped(self) -> None:
        cfg = SpriteConfig(
            initial_terms=5, terms_per_iteration=10, learning_iterations=5,
            max_index_terms=20,
        )
        assert cfg.total_terms_after_learning == 20

    def test_with_max_terms_schedules_enough_iterations(self) -> None:
        base = SpriteConfig()
        for target in (5, 10, 15, 20, 25, 30):
            derived = base.with_max_terms(target)
            assert derived.max_index_terms == target
            assert derived.total_terms_after_learning == target

    def test_with_max_terms_five_means_no_learning(self) -> None:
        derived = SpriteConfig().with_max_terms(5)
        assert derived.learning_iterations == 0


class TestFactories:
    def test_all_configs_frozen(self) -> None:
        for config_type in ALL_CONFIG_TYPES:
            assert dataclasses.fields(config_type)  # is a dataclass
            instance = config_type()
            first_field = dataclasses.fields(config_type)[0].name
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(instance, first_field, None)

    def test_small_config_valid_and_fast_sized(self) -> None:
        cfg = small_experiment_config()
        assert cfg.corpus.num_documents <= 500

    def test_paper_config_scale(self) -> None:
        cfg = paper_experiment_config()
        assert cfg.corpus.num_original_queries == 63
        assert cfg.querygen.queries_per_original == 9

    def test_seed_threading(self) -> None:
        a = small_experiment_config(seed=1)
        b = small_experiment_config(seed=2)
        assert a.corpus.seed != b.corpus.seed
