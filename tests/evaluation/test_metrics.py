"""Tests for precision/recall metrics and the centralized-ratio."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corpus import Qrels
from repro.evaluation.metrics import (
    AggregateResult,
    aggregate,
    dcg,
    evaluate_rankings,
    ndcg_against_reference,
    precision_recall_at,
    relative_to_centralized,
)
from repro.ir.ranking import RankedList


def ranked(*ids: str) -> RankedList:
    return RankedList([(doc_id, float(len(ids) - i)) for i, doc_id in enumerate(ids)])


class TestPrecisionRecall:
    def test_paper_definitions(self) -> None:
        """precision K'/K, recall K'/R."""
        pr = precision_recall_at(ranked("a", "b", "c", "d"), {"a", "c", "x"}, k=4)
        assert pr.precision == pytest.approx(2 / 4)
        assert pr.recall == pytest.approx(2 / 3)
        assert pr.hits == 2

    def test_cutoff_shorter_than_list(self) -> None:
        pr = precision_recall_at(ranked("a", "b", "c"), {"c"}, k=2)
        assert pr.precision == 0.0
        assert pr.recall == 0.0

    def test_list_shorter_than_cutoff(self) -> None:
        pr = precision_recall_at(ranked("a"), {"a"}, k=10)
        assert pr.precision == pytest.approx(1 / 10)
        assert pr.recall == 1.0

    def test_empty_relevant_set(self) -> None:
        pr = precision_recall_at(ranked("a"), set(), k=5)
        assert pr.precision == 0.0 and pr.recall == 0.0

    def test_accepts_plain_sequences(self) -> None:
        pr = precision_recall_at(["a", "b"], {"b"}, k=2)
        assert pr.precision == 0.5

    def test_invalid_cutoff(self) -> None:
        with pytest.raises(ValueError):
            precision_recall_at(ranked("a"), {"a"}, k=0)


class TestAggregation:
    def test_mean_over_queries(self) -> None:
        results = {
            "q1": precision_recall_at(ranked("a", "b"), {"a"}, k=2),
            "q2": precision_recall_at(ranked("c", "d"), {"c", "d"}, k=2),
        }
        agg = aggregate(results)
        assert agg.mean_precision == pytest.approx((0.5 + 1.0) / 2)
        assert agg.num_queries == 2

    def test_unjudged_queries_skipped(self) -> None:
        results = {
            "good": precision_recall_at(ranked("a"), {"a"}, k=1),
            "unjudged": precision_recall_at(ranked("b"), set(), k=1),
        }
        agg = aggregate(results)
        assert agg.num_queries == 1
        assert agg.mean_precision == 1.0

    def test_all_unjudged(self) -> None:
        agg = aggregate({"q": precision_recall_at(ranked("a"), set(), k=1)})
        assert agg.mean_precision == 0.0 and agg.num_queries == 0

    def test_evaluate_rankings(self) -> None:
        qrels = Qrels({"q1": {"a"}, "q2": {"z"}})
        agg = evaluate_rankings({"q1": ranked("a", "b"), "q2": ranked("b", "c")}, qrels, k=2)
        assert agg.mean_precision == pytest.approx((0.5 + 0.0) / 2)


class TestRelativeResult:
    def test_ratio_of_means(self) -> None:
        qrels = Qrels({"q1": {"a", "b"}})
        system = {"q1": ranked("a", "x")}
        central = {"q1": ranked("a", "b")}
        rel = relative_to_centralized(system, central, qrels, k=2)
        assert rel.precision_ratio == pytest.approx(0.5)
        assert rel.recall_ratio == pytest.approx(0.5)

    def test_perfect_system_ratio_one(self) -> None:
        qrels = Qrels({"q1": {"a"}})
        rankings = {"q1": ranked("a")}
        rel = relative_to_centralized(rankings, rankings, qrels, k=1)
        assert rel.precision_ratio == 1.0
        assert rel.recall_ratio == 1.0

    def test_zero_reference_guard(self) -> None:
        qrels = Qrels({"q1": {"a"}})
        rel = relative_to_centralized(
            {"q1": ranked("x")}, {"q1": ranked("y")}, qrels, k=1
        )
        assert rel.precision_ratio == 0.0

    def test_only_common_queries_compared(self) -> None:
        qrels = Qrels({"q1": {"a"}, "q2": {"b"}})
        rel = relative_to_centralized(
            {"q1": ranked("a")},
            {"q1": ranked("a"), "q2": ranked("b")},
            qrels,
            k=1,
        )
        assert rel.system.num_queries == 1
        assert rel.reference.num_queries == 1


@given(
    st.lists(st.sampled_from(list("abcdefgh")), min_size=1, max_size=8, unique=True),
    st.sets(st.sampled_from(list("abcdefgh")), min_size=1),
    st.integers(min_value=1, max_value=10),
)
def test_precision_recall_bounds(doc_ids: list, relevant: set, k: int) -> None:
    pr = precision_recall_at(ranked(*doc_ids), relevant, k)
    assert 0.0 <= pr.precision <= 1.0
    assert 0.0 <= pr.recall <= 1.0
    assert pr.hits <= min(k, len(relevant))


class TestDcg:
    def test_rank_discount(self) -> None:
        from math import log2

        assert dcg([3.0, 2.0, 1.0]) == pytest.approx(
            3.0 + 2.0 / log2(3) + 1.0 / log2(4)
        )

    def test_empty_gains(self) -> None:
        assert dcg([]) == 0.0


class TestNdcgAgainstReference:
    def test_perfect_agreement_is_one(self) -> None:
        assert ndcg_against_reference(
            ranked("a", "b", "c"), ranked("a", "b", "c"), k=3
        ) == pytest.approx(1.0)

    def test_reversed_order_hand_computed(self) -> None:
        from math import log2

        # Reference [a,b,c] at k=3 grades a=3, b=2, c=1; the reversed
        # system ranking earns 1, 2, 3 at discounts 1, log2(3), 2.
        got = ndcg_against_reference(
            ranked("c", "b", "a"), ranked("a", "b", "c"), k=3
        )
        ideal = 3.0 + 2.0 / log2(3) + 1.0 / 2.0
        assert got == pytest.approx((1.0 + 2.0 / log2(3) + 3.0 / 2.0) / ideal)

    def test_disjoint_rankings_score_zero(self) -> None:
        assert ndcg_against_reference(
            ranked("x", "y"), ranked("a", "b"), k=2
        ) == 0.0

    def test_missing_tail_scores_below_one(self) -> None:
        partial = ndcg_against_reference(ranked("a"), ranked("a", "b"), k=2)
        assert 0.0 < partial < 1.0

    def test_empty_reference_is_zero(self) -> None:
        assert ndcg_against_reference(ranked("a"), ranked(), k=5) == 0.0

    def test_accepts_plain_sequences(self) -> None:
        assert ndcg_against_reference(["a", "b"], ["a", "b"], k=2) == 1.0

    def test_k_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            ndcg_against_reference(ranked("a"), ranked("a"), k=0)

    def test_k_truncates_both_sides(self) -> None:
        # Beyond-k disagreement is invisible at k=1.
        assert ndcg_against_reference(
            ranked("a", "x", "y"), ranked("a", "b", "c"), k=1
        ) == pytest.approx(1.0)
