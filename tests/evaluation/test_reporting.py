"""Tests for the result-table formatters."""

from __future__ import annotations

from repro.evaluation.experiments import CostRow, Fig4aRow, Fig4bRow, Fig4cRow
from repro.evaluation.metrics import AggregateResult, RelativeResult
from repro.evaluation.reporting import (
    _table,
    format_cost,
    format_fig4a,
    format_fig4b,
    format_fig4c,
)


def rel(precision: float, recall: float) -> RelativeResult:
    return RelativeResult(
        system=AggregateResult(precision, recall, {"q": None}),  # type: ignore[arg-type]
        reference=AggregateResult(1.0, 1.0, {"q": None}),  # type: ignore[arg-type]
    )


class TestTableRenderer:
    def test_column_alignment(self) -> None:
        table = _table(["name", "value"], [["a", "1"], ["longer", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_header_rule(self) -> None:
        table = _table(["x"], [["1"]])
        assert "-" in table.splitlines()[1]


class TestFigureFormatters:
    def test_fig4a_percentages(self) -> None:
        rows = [Fig4aRow(num_answers=5, sprite=rel(0.9, 0.85), esearch=rel(0.8, 0.75))]
        table = format_fig4a(rows)
        assert "90.0%" in table
        assert "80.0%" in table
        assert "85.0%" in table

    def test_fig4b_stream_column(self) -> None:
        rows = [
            Fig4bRow(
                stream="w-zipf", index_terms=10,
                sprite=rel(0.7, 0.7), esearch=rel(0.6, 0.6),
            )
        ]
        table = format_fig4b(rows)
        assert "w-zipf" in table and "10" in table

    def test_fig4c_terms_column(self) -> None:
        rows = [
            Fig4cRow(
                iteration=3, active_group="A",
                sprite=rel(0.8, 0.8), esearch=rel(0.7, 0.7),
                sprite_terms=15, esearch_terms=15,
            )
        ]
        table = format_fig4c(rows)
        assert "15/15" in table and "A" in table

    def test_cost_kib_and_per_doc(self) -> None:
        rows = [
            CostRow(
                strategy="sprite", published_terms=100, publish_messages=100,
                publish_hops=420, publish_bytes=10240,
                messages_per_document=20.0,
            )
        ]
        table = format_cost(rows)
        assert "sprite" in table
        assert "10" in table     # KiB
        assert "20.0" in table   # msgs/doc
