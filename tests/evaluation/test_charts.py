"""Tests for the ASCII chart renderers."""

from __future__ import annotations

from repro.evaluation.charts import bar_chart, line_chart, ratio_series_from_rows


class TestLineChart:
    def test_renders_all_series_markers(self) -> None:
        chart = line_chart(
            {
                "SPRITE": [(5, 0.9), (10, 0.92), (20, 0.91)],
                "eSearch": [(5, 0.88), (10, 0.86), (20, 0.84)],
            }
        )
        assert "*" in chart and "o" in chart
        assert "SPRITE" in chart and "eSearch" in chart

    def test_axis_labels(self) -> None:
        chart = line_chart(
            {"s": [(0, 0.0), (1, 1.0)]}, y_label="ratio", x_label="answers"
        )
        assert "ratio" in chart
        assert "answers" in chart

    def test_empty_series(self) -> None:
        assert line_chart({}) == "(no data)"
        assert line_chart({"s": []}) == "(no data)"

    def test_flat_series_does_not_crash(self) -> None:
        chart = line_chart({"flat": [(1, 0.5), (2, 0.5), (3, 0.5)]})
        assert "*" in chart

    def test_extremes_plotted_at_edges(self) -> None:
        chart = line_chart({"s": [(0, 0.0), (100, 1.0)]}, width=40, height=10)
        lines = chart.splitlines()
        top_row = next(line for line in lines if "┤" in line)
        assert top_row.rstrip().endswith("*")


class TestBarChart:
    def test_proportional_bars(self) -> None:
        chart = bar_chart({"big": 100.0, "small": 25.0})
        big_line, small_line = chart.splitlines()
        assert big_line.count("█") > small_line.count("█") * 2

    def test_values_shown(self) -> None:
        chart = bar_chart({"x": 42.0}, unit=" msgs")
        assert "42" in chart and "msgs" in chart

    def test_empty(self) -> None:
        assert bar_chart({}) == "(no data)"

    def test_zero_values(self) -> None:
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart  # renders without dividing by zero


class TestRowConversion:
    def test_fig4a_rows_to_series(self, small_env) -> None:
        from repro.evaluation import run_fig4a

        rows = run_fig4a(small_env, answer_counts=(5, 10))
        series = ratio_series_from_rows(rows, "num_answers")
        assert set(series) == {"SPRITE", "eSearch"}
        assert [x for x, __ in series["SPRITE"]] == [5.0, 10.0]
        chart = line_chart(series)
        assert "SPRITE" in chart
