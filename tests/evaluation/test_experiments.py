"""Tests for the per-figure experiment runners (on the small config).

These check the *mechanics* of each runner (row structure, budgets,
group switching); the paper-shape assertions live in the benchmarks,
which run at the larger default scale.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    build_esearch,
    build_trained_sprite,
    run_cost_comparison,
    run_fig4a,
    run_fig4b,
    run_fig4c,
)
from repro.evaluation.reporting import (
    format_cost,
    format_fig4a,
    format_fig4b,
    format_fig4c,
)


@pytest.fixture(scope="module")
def env(small_env):
    return small_env


class TestBuilders:
    def test_trained_sprite_reaches_budget(self, env) -> None:
        system = build_trained_sprite(env)
        sizes = system.learning_summary()
        budget = env.config.sprite.total_terms_after_learning
        assert all(size <= budget for size in sizes.values())
        assert max(sizes.values()) == budget

    def test_esearch_budget(self, env) -> None:
        system = build_esearch(env, index_terms=7)
        for doc_id in env.corpus.doc_ids[:5]:
            assert len(system.index_terms(doc_id)) <= 7


class TestFig4a:
    @pytest.fixture(scope="class")
    def rows(self, small_env):
        return run_fig4a(small_env, answer_counts=(5, 10, 20))

    def test_row_per_cutoff(self, rows) -> None:
        assert [r.num_answers for r in rows] == [5, 10, 20]

    def test_ratios_in_plausible_range(self, rows) -> None:
        for row in rows:
            for rel in (row.sprite, row.esearch):
                assert 0.0 <= rel.precision_ratio <= 1.5
                assert 0.0 <= rel.recall_ratio <= 1.5

    def test_sprite_not_worse_than_esearch_at_large_k(self, rows) -> None:
        large = rows[-1]
        assert large.sprite.precision_ratio >= large.esearch.precision_ratio - 0.05

    def test_formatting(self, rows) -> None:
        table = format_fig4a(rows)
        assert "SPRITE P" in table
        assert str(rows[0].num_answers) in table


class TestFig4b:
    @pytest.fixture(scope="class")
    def rows(self, small_env):
        return run_fig4b(small_env, term_counts=(5, 15), streams=("w/o-r",))

    def test_grid_shape(self, rows) -> None:
        assert len(rows) == 2
        assert {r.index_terms for r in rows} == {5, 15}

    def test_more_terms_not_worse(self, rows) -> None:
        by_terms = {r.index_terms: r for r in rows}
        assert (
            by_terms[15].sprite.precision_ratio
            >= by_terms[5].sprite.precision_ratio - 0.1
        )

    def test_formatting(self, rows) -> None:
        assert "w/o-r" in format_fig4b(rows)


class TestFig4c:
    @pytest.fixture(scope="class")
    def rows(self, small_env):
        return run_fig4c(small_env, iterations=4, switch_at=3, max_terms=12)

    def test_iteration_count(self, rows) -> None:
        assert [r.iteration for r in rows] == [1, 2, 3, 4]

    def test_group_switch(self, rows) -> None:
        assert [r.active_group for r in rows] == ["A", "A", "B", "B"]

    def test_term_growth_capped(self, rows) -> None:
        assert all(r.sprite_terms <= 12 for r in rows)
        assert all(r.esearch_terms <= 12 for r in rows)

    def test_esearch_terms_track_schedule(self, rows) -> None:
        assert rows[0].esearch_terms == 5       # evaluated before growth
        assert rows[-1].esearch_terms == 12

    def test_formatting(self, rows) -> None:
        table = format_fig4c(rows)
        assert "group" in table and "B" in table


class TestCostComparison:
    @pytest.fixture(scope="class")
    def rows(self, small_env):
        return run_cost_comparison(small_env)

    def test_three_strategies(self, rows) -> None:
        assert [r.strategy for r in rows] == ["sprite", "esearch", "index-everything"]

    def test_index_everything_is_most_expensive(self, rows) -> None:
        by_name = {r.strategy: r for r in rows}
        assert (
            by_name["index-everything"].publish_messages
            > by_name["esearch"].publish_messages
        )
        assert (
            by_name["index-everything"].publish_messages
            > by_name["sprite"].publish_messages
        )

    def test_messages_match_terms(self, rows) -> None:
        for row in rows:
            # Every published (doc, term) pair costs at least one message
            # (learning republications can add more for SPRITE).
            assert row.publish_messages >= row.published_terms

    def test_formatting(self, rows) -> None:
        assert "index-everything" in format_cost(rows)
