"""Tests for environment construction."""

from __future__ import annotations

import pytest

from repro.config import small_experiment_config
from repro.corpus import Corpus, Document, Qrels, Query, QuerySet
from repro.evaluation.experiment import (
    build_environment,
    build_environment_from_collection,
)


class TestBuildEnvironment:
    def test_sizes_follow_config(self, small_env, small_config) -> None:
        cfg = small_config
        assert len(small_env.corpus) == cfg.corpus.num_documents
        expected_queries = cfg.corpus.num_original_queries * (
            cfg.querygen.queries_per_original + 1
        )
        assert len(small_env.full_set) == expected_queries

    def test_split_is_even(self, small_env) -> None:
        assert abs(len(small_env.train) - len(small_env.test)) <= 1

    def test_split_disjoint(self, small_env) -> None:
        train_ids = {q.query_id for q in small_env.train}
        test_ids = {q.query_id for q in small_env.test}
        assert not train_ids & test_ids

    def test_centralized_sees_whole_corpus(self, small_env) -> None:
        assert small_env.centralized.index.num_documents == len(small_env.corpus)

    def test_ranking_cache_consistency(self, small_env) -> None:
        q = small_env.test.queries[0]
        first = small_env.centralized_ranking(q)
        second = small_env.centralized_ranking(q)
        assert first is second  # memoized

    def test_centralized_rankings_batch(self, small_env) -> None:
        queries = small_env.test.queries[:3]
        rankings = small_env.centralized_rankings(queries)
        assert set(rankings) == {q.query_id for q in queries}

    def test_deterministic_rebuild(self, small_config) -> None:
        env1 = build_environment(small_config)
        env2 = build_environment(small_config)
        assert [q.terms for q in env1.full_set] == [q.terms for q in env2.full_set]
        assert [q.query_id for q in env1.train] == [q.query_id for q in env2.train]


class TestUserSuppliedCollection:
    def test_from_collection(self) -> None:
        corpus = Corpus(
            [
                Document(f"d{i}", f"alpha{i % 3} beta{i % 5} gamma delta " * 4)
                for i in range(20)
            ]
        )
        originals = QuerySet(
            [Query("q1", ("gamma", "alpha0")), Query("q2", ("delta", "beta1"))],
            Qrels({"q1": {"d0", "d3"}, "q2": {"d1", "d6"}}),
        )
        env = build_environment_from_collection(
            corpus, originals, small_experiment_config()
        )
        assert env.model is None
        assert len(env.full_set) > len(originals)
        env.full_set.qrels.validate_against(corpus.doc_ids)
