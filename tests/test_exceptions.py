"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    ConfigurationError,
    CorpusError,
    DHTError,
    DocumentNotFoundError,
    EmptyRingError,
    LearningError,
    NodeFailedError,
    NodeNotFoundError,
    QueryError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            ConfigurationError,
            CorpusError,
            DHTError,
            DocumentNotFoundError,
            EmptyRingError,
            LearningError,
            NodeFailedError,
            NodeNotFoundError,
            QueryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type) -> None:
        assert issubclass(exc_type, ReproError)

    def test_dht_family(self) -> None:
        assert issubclass(NodeFailedError, DHTError)
        assert issubclass(NodeNotFoundError, DHTError)
        assert issubclass(EmptyRingError, DHTError)

    def test_corpus_family(self) -> None:
        assert issubclass(DocumentNotFoundError, CorpusError)

    def test_payload_attributes(self) -> None:
        assert DocumentNotFoundError("d9").doc_id == "d9"
        assert NodeFailedError(42).node_id == 42
        assert NodeNotFoundError(7).node_id == 7


class TestPublicApi:
    def test_all_exports_resolve(self) -> None:
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export: {name}"

    def test_version(self) -> None:
        assert repro.__version__.count(".") == 2

    def test_key_entry_points(self) -> None:
        assert callable(repro.build_environment)
        assert callable(repro.build_trained_sprite)
        assert callable(repro.run_fig4a)
