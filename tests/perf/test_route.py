"""The routing benchmark (``perf --mode route``, DESIGN.md §16): spec
parsing, grid determinism, worker-count invariance, and the cross-ring
checksum oracle."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.perf.route import (
    RouteWorkloadConfig,
    parse_ring_specs,
    ring_label,
    route_smoke_config,
    run_route_cell,
    run_route_workload,
)


def tiny_config(**kwargs) -> RouteWorkloadConfig:
    """A sub-second grid for unit tests (smaller than the CI smoke)."""
    base = route_smoke_config().replaced(
        peers_grid=(200,),
        num_documents=30,
        vocabulary_size=200,
        num_queries=200,
        distinct_queries=40,
        num_query_peers=8,
        churn_every=50,
    )
    return base.replaced(**kwargs) if kwargs else base


class TestParseRingSpecs:
    def test_parses_grid(self) -> None:
        assert parse_ring_specs("chord,record:4,record:8") == (
            ("chord", 2),
            ("record", 4),
            ("record", 8),
        )

    def test_record_defaults_to_arity_two(self) -> None:
        assert parse_ring_specs("record") == (("record", 2),)

    def test_whitespace_tolerated(self) -> None:
        assert parse_ring_specs(" chord , record:8 ") == (
            ("chord", 2),
            ("record", 8),
        )

    @pytest.mark.parametrize(
        "text",
        ("", "chord,,record", "pastry", "chord:4", "record:x", "record:1",
         "chord,chord", "record:8,record:8"),
    )
    def test_rejects_malformed_specs(self, text: str) -> None:
        with pytest.raises(ConfigurationError):
            parse_ring_specs(text)

    def test_ring_label_round_trip(self) -> None:
        for text in ("chord", "record:8"):
            ((kind, arity),) = parse_ring_specs(text)
            assert ring_label(kind, arity) == text
        assert ring_label("record", 2) == "record:2"


class TestRouteCell:
    def test_cell_is_deterministic(self) -> None:
        cfg = tiny_config()
        a = run_route_cell(cfg, 200, "record", 8)
        b = run_route_cell(cfg, 200, "record", 8)
        a.build_s = b.build_s = a.query_s = b.query_s = 0.0
        assert a == b

    def test_cell_measures_routing(self) -> None:
        cell = run_route_cell(tiny_config(), 200, "chord", 2)
        assert cell.lookups > 0
        assert cell.mean_hops > 1.0
        assert cell.p99_hops >= cell.mean_hops
        assert cell.lookup_messages > cell.lookups  # multi-hop lookups
        assert cell.build_entries > 0
        assert cell.churn_entries > 0
        assert cell.churn_events == 3  # 200 queries / churn_every 50 - 1


class TestRouteWorkload:
    def test_grid_matches_and_reduces_hops(self) -> None:
        result = run_route_workload(tiny_config())
        assert result.checksums_match
        assert result.rings == ["chord", "record:8"]
        assert result.hop_reduction(200, "record:8") > 0.10
        chord = result.cell(200, "chord")
        record = result.cell(200, "record:8")
        assert record["finger_table_size"] > chord["finger_table_size"]
        assert record["lookup_messages"] < chord["lookup_messages"]

    def test_worker_count_does_not_change_results(self) -> None:
        serial = run_route_workload(tiny_config(workers=1))
        pooled = run_route_workload(tiny_config(workers=2))
        strip = lambda cells: [
            {k: v for k, v in c.items() if k not in ("build_s", "query_s")}
            for c in cells
        ]
        assert strip(serial.cells) == strip(pooled.cells)
        assert pooled.workers == 2

    def test_summary_table_shape(self) -> None:
        result = run_route_workload(tiny_config())
        table = result.summary_table()
        assert "hops_mean" in table and "churn_entries" in table
        assert "cross-ring ranking checksums: MATCH" in table
        assert table.count("\n") == len(result.cells) + 1  # header + verdict

    def test_cell_lookup_raises_on_unknown(self) -> None:
        result = run_route_workload(tiny_config())
        with pytest.raises(KeyError):
            result.cell(200, "record:32")

    def test_replaced_coerces_grids_to_tuples(self) -> None:
        cfg = tiny_config().replaced(peers_grid=[100], ring_specs=["chord"])
        assert cfg.peers_grid == (100,)
        assert cfg.ring_specs == ("chord",)

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"peers_grid": ()},
            {"ring_specs": ()},
            {"workers": 0},
            {"ring_specs": ("chord", "chord")},
            {"ring_specs": ("chord,record:8", "record:8")},
        ),
    )
    def test_workload_validation(self, kwargs) -> None:
        with pytest.raises(ConfigurationError):
            run_route_workload(tiny_config(**kwargs))
