"""The scale-out harness: shard partitioning, worker-count
determinism, and the merged measurement record (DESIGN.md §13)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.perf import PROFILE
from repro.perf.scale import (
    ScaleWorkloadConfig,
    ShardedHarness,
    _shard_slice,
    run_scale_workload,
    scale_paper_config,
    scale_smoke_config,
)


def tiny_config(**kwargs) -> ScaleWorkloadConfig:
    base = ScaleWorkloadConfig(
        num_peers=120,
        num_documents=90,
        vocabulary_size=150,
        terms_per_document=6,
        num_queries=80,
        distinct_queries=25,
        queriers_per_shard=6,
        num_shards=4,
        workers=1,
    )
    return base.replaced(**kwargs)


class TestShardSlice:
    def test_slices_partition_the_total(self) -> None:
        for total in (0, 1, 7, 100, 100_001):
            for num_shards in (1, 3, 16):
                slices = [
                    _shard_slice(total, num_shards, i) for i in range(num_shards)
                ]
                assert sum(slices) == total
                # Remainder goes to the low shards: sizes differ by <= 1
                # and never increase with shard id.
                assert max(slices) - min(slices) <= 1
                assert slices == sorted(slices, reverse=True)


class TestDeterminism:
    def test_worker_count_does_not_change_results(self) -> None:
        """The unit of determinism is the shard: fanning the same
        config over 1 or 4 worker processes must produce identical
        per-shard and merged checksums."""
        cfg = tiny_config()
        inline = run_scale_workload(cfg.replaced(workers=1))
        pooled = run_scale_workload(cfg.replaced(workers=4))
        assert inline.shard_checksums == pooled.shard_checksums
        assert inline.ranking_checksum == pooled.ranking_checksum
        assert inline.postings_published == pooled.postings_published
        assert pooled.workers == 4

    def test_same_config_reproduces(self) -> None:
        cfg = tiny_config()
        assert (
            run_scale_workload(cfg).ranking_checksum
            == run_scale_workload(cfg).ranking_checksum
        )

    def test_seed_and_sharding_change_results(self) -> None:
        base = run_scale_workload(tiny_config())
        reseeded = run_scale_workload(tiny_config(seed=9999))
        repartitioned = run_scale_workload(tiny_config(num_shards=2))
        assert base.ranking_checksum != reseeded.ranking_checksum
        # Shard count fixes the partitioning, so it is part of the
        # workload identity — unlike the worker count.
        assert base.ranking_checksum != repartitioned.ranking_checksum


class TestMergedRecord:
    def test_result_is_json_friendly_and_complete(self) -> None:
        result = run_scale_workload(tiny_config())
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["num_peers"] == 120
        assert payload["num_shards"] == 4
        assert len(payload["shard_checksums"]) == 4
        assert payload["queries_per_s"] > 0
        assert payload["wall_queries_per_s"] > 0
        assert payload["postings_published"] > 0
        assert payload["peak_rss_kb"] >= 0
        assert set(payload["profile"]) == {"timers", "counters", "gauges"}

    def test_inline_run_records_per_shard_memory_gauges(self) -> None:
        result = run_scale_workload(tiny_config(num_shards=2))
        gauges = result.profile["gauges"]
        for shard_id in range(2):
            for phase in ("build", "publish", "query"):
                assert f"mem.shard{shard_id}.{phase}.rss_kb" in gauges
        assert gauges["mem.peak_rss_kb"] == result.peak_rss_kb

    def test_workload_leaves_global_profile_disabled(self) -> None:
        run_scale_workload(tiny_config(num_shards=1))
        assert not PROFILE.enabled


class TestValidation:
    def test_rejects_bad_shards_workers_and_kernel(self) -> None:
        with pytest.raises(ConfigurationError):
            ShardedHarness(tiny_config(num_shards=0))
        with pytest.raises(ConfigurationError):
            ShardedHarness(tiny_config(workers=0))
        with pytest.raises(ConfigurationError):
            ShardedHarness(tiny_config(kernel="simd"))

    def test_named_configs_have_the_tracked_shapes(self) -> None:
        paper = scale_paper_config()
        smoke = scale_smoke_config()
        assert paper.num_peers == 100_000
        assert paper.num_shards == 16
        assert smoke.num_peers < 1_000
        assert smoke.num_shards == 4
        # Both stay valid harness inputs.
        ShardedHarness(paper)
        ShardedHarness(smoke)
