"""The opt-in profiling layer and the perf workload plumbing."""

from __future__ import annotations

from repro.perf import PROFILE, PerfProfile, memory_usage
from repro.perf.bench import (
    PerfWorkloadConfig,
    run_perf_workload,
    smoke_config,
)


class TestPerfProfile:
    def test_disabled_by_default_and_resettable(self) -> None:
        profile = PerfProfile()
        assert not profile.enabled
        profile.enable()
        profile.add_time("lookup", 0.25)
        profile.count("hits", 3)
        profile.reset()
        assert profile.total_seconds("lookup") == 0.0
        assert profile.counter("hits") == 0

    def test_add_time_accumulates(self) -> None:
        profile = PerfProfile().enable()
        profile.add_time("lookup", 0.5)
        profile.add_time("lookup", 0.25)
        assert profile.total_seconds("lookup") == 0.75
        assert profile.calls("lookup") == 2

    def test_timer_context_records_only_when_enabled(self) -> None:
        profile = PerfProfile()
        with profile.timer("span"):
            pass
        assert profile.calls("span") == 0
        profile.enable()
        with profile.timer("span"):
            pass
        assert profile.calls("span") == 1
        assert profile.total_seconds("span") >= 0.0

    def test_summary_and_report_shape(self) -> None:
        profile = PerfProfile().enable()
        profile.add_time("lookup", 0.002)
        profile.count("route_cache.hit", 7)
        summary = profile.summary()
        assert summary["timers"]["lookup"]["calls"] == 1
        assert summary["counters"]["route_cache.hit"] == 7
        text = profile.report()
        assert "lookup" in text and "route_cache.hit" in text

    def test_module_singleton_starts_disabled(self) -> None:
        assert isinstance(PROFILE, PerfProfile)
        assert not PROFILE.enabled


class TestMemoryAccounting:
    def test_memory_usage_snapshot_shape(self) -> None:
        snapshot = memory_usage()
        assert set(snapshot) == {"rss_kb", "peak_rss_kb", "allocated_blocks"}
        # Linux/macOS report real numbers; the fallback is all-zero.
        assert snapshot["peak_rss_kb"] >= snapshot["rss_kb"] >= 0
        assert snapshot["allocated_blocks"] >= 0

    def test_gauges_set_max_and_reset(self) -> None:
        profile = PerfProfile().enable()
        profile.gauge("mem.x.rss_kb", 10)
        profile.gauge("mem.x.rss_kb", 4)  # gauge overwrites
        profile.max_gauge("mem.peak_rss_kb", 7)
        profile.max_gauge("mem.peak_rss_kb", 3)  # max keeps the high-water
        assert profile.gauge_value("mem.x.rss_kb") == 4
        assert profile.gauge_value("mem.peak_rss_kb") == 7
        assert profile.gauge_value("absent", default=-1.0) == -1.0
        profile.reset()
        assert profile.gauge_value("mem.peak_rss_kb") == 0.0

    def test_gauges_ignored_while_disabled(self) -> None:
        profile = PerfProfile()
        profile.gauge("g", 5)
        profile.max_gauge("m", 5)
        assert profile.gauge_value("g") == 0.0
        assert profile.gauge_value("m") == 0.0

    def test_record_memory_writes_gauges_only_when_enabled(self) -> None:
        profile = PerfProfile()
        snapshot = profile.record_memory("phase")
        assert set(snapshot) == {"rss_kb", "peak_rss_kb", "allocated_blocks"}
        assert profile.gauge_value("mem.phase.rss_kb") == 0.0
        profile.enable()
        snapshot = profile.record_memory("phase")
        assert profile.gauge_value("mem.phase.rss_kb") == snapshot["rss_kb"]
        assert (
            profile.gauge_value("mem.peak_rss_kb") == snapshot["peak_rss_kb"]
        )

    def test_summary_and_report_include_gauges(self) -> None:
        profile = PerfProfile().enable()
        profile.gauge("mem.build.rss_kb", 1234)
        summary = profile.summary()
        assert summary["gauges"]["mem.build.rss_kb"] == 1234
        assert "mem.build.rss_kb" in profile.report()


class TestPerfWorkload:
    def test_smoke_workload_is_deterministic_and_equivalent(self) -> None:
        """The tracked scenario: the optimized and baseline stacks must
        produce the same ranking checksum (speed-only changes), and the
        same config must reproduce the same measurement inputs."""
        cfg = smoke_config().replaced(num_queries=150, num_peers=100)
        optimized = run_perf_workload(cfg)
        baseline = run_perf_workload(cfg.replaced(optimized=False))
        again = run_perf_workload(cfg)
        assert optimized.ranking_checksum == baseline.ranking_checksum
        assert optimized.ranking_checksum == again.ranking_checksum
        assert optimized.lookups == baseline.lookups
        assert optimized.route_cache is not None
        assert optimized.route_cache["hits"] > 0
        assert baseline.route_cache is None

    def test_result_record_is_json_friendly(self) -> None:
        import json

        cfg = PerfWorkloadConfig(
            num_peers=60,
            num_documents=20,
            vocabulary_size=80,
            terms_per_document=6,
            num_queries=40,
            distinct_queries=15,
            num_query_peers=8,
            churn_every=20,
        )
        result = run_perf_workload(cfg)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["num_queries"] == 40
        assert payload["queries_per_s"] > 0
        assert set(payload["profile"]) == {"timers", "counters", "gauges"}
        assert payload["peak_rss_kb"] >= 0

    def test_workload_leaves_global_profile_disabled(self) -> None:
        cfg = PerfWorkloadConfig(
            num_peers=60,
            num_documents=10,
            vocabulary_size=50,
            terms_per_document=5,
            num_queries=20,
            distinct_queries=10,
            num_query_peers=4,
            churn_every=0,
        )
        run_perf_workload(cfg)
        assert not PROFILE.enabled
