"""Tests for the concurrency workload engine.

A single tiny deployment (module-scoped — capture is the expensive
part) backs every check: equivalence of the replayed grid with the
call-stack path, closed-loop scaling, straggler tail inflation, open
loop arrivals, and run-to-run determinism of whole cells.
"""

from __future__ import annotations

import pytest

from repro.net import Scheduler
from repro.perf.concurrency import (
    ConcurrencyConfig,
    ConcurrentRuntime,
    _build_deployment,
    paper_scale_config,
    run_closed_cell,
    run_concurrency_grid,
    run_open_cell,
    smoke_config,
)

TINY = ConcurrencyConfig(
    num_peers=60,
    num_documents=30,
    vocabulary_size=150,
    terms_per_document=8,
    num_ops=150,
    distinct_queries=40,
    num_query_peers=12,
    clients_grid=(1, 8, 32),
    open_loop_rates_per_s=(1000.0, 6000.0),
)


@pytest.fixture(scope="module")
def deployment():
    dep, _capture_s = _build_deployment(TINY)
    return dep


@pytest.fixture(scope="module")
def grid():
    return run_concurrency_grid(TINY)


class TestEquivalence:
    def test_every_cell_checksum_matches_the_synchronous_path(self, grid) -> None:
        """The grid changes *when* ops complete, never *what* they
        return: all cells and the call-stack re-execution agree."""
        assert grid.sync_ranking_checksum  # verify_sync ran
        assert grid.checksums_match
        checksums = {c.ranking_checksum for c in grid.cells}
        assert checksums == {grid.sync_ranking_checksum}

    def test_single_client_completes_in_submission_order(self, deployment) -> None:
        cell = run_closed_cell(TINY, deployment, clients=1, service_time_ms=0.25)
        assert cell.ops == TINY.num_ops
        # One op in flight at a time: no queueing anywhere.
        assert cell.max_queue_depth == 1
        assert cell.mean_wait_ms == 0.0


class TestClosedLoopScaling:
    def test_more_clients_raise_throughput(self, grid) -> None:
        """The headline acceptance gate: closed-loop throughput with the
        full client population beats the single-client baseline."""
        for st in TINY.service_times_ms:
            single = grid.cell(clients=1, service_time_ms=st, stragglers=False)
            many = grid.cell(clients=32, service_time_ms=st, stragglers=False)
            assert many.throughput_ops_per_s > single.throughput_ops_per_s
            assert many.makespan_ms < single.makespan_ms

    def test_contention_raises_latency_with_load(self, grid) -> None:
        st = TINY.service_times_ms[0]
        single = grid.cell(clients=1, service_time_ms=st, stragglers=False)
        many = grid.cell(clients=32, service_time_ms=st, stragglers=False)
        assert many.latency_p99_ms >= single.latency_p99_ms
        assert many.max_queue_depth > single.max_queue_depth

    def test_slower_service_lowers_throughput(self, grid) -> None:
        fast = grid.cell(clients=32, service_time_ms=0.25, stragglers=False)
        slow = grid.cell(clients=32, service_time_ms=1.0, stragglers=False)
        assert slow.throughput_ops_per_s < fast.throughput_ops_per_s


class TestStragglers:
    def test_stragglers_inflate_deep_tail_not_median(self, grid) -> None:
        st = TINY.service_times_ms[0]
        base = grid.cell(clients=32, service_time_ms=st, stragglers=False)
        slow = grid.cell(clients=32, service_time_ms=st, stragglers=True)
        # The deep tail visibly inflates...
        assert slow.latency_p99_9_ms > base.latency_p99_9_ms
        # ...while the median stays in the same regime (< 2x).
        assert slow.latency_p50_ms < 2.0 * base.latency_p50_ms

    def test_straggler_peers_intersect_the_workload(self, deployment) -> None:
        contacted = {
            dst for op in deployment.captured.values() for _k, dst in op.timeline
        }
        assert deployment.slow_peers
        assert set(deployment.slow_peers) <= contacted


class TestOpenLoop:
    def test_higher_arrival_rate_builds_deeper_queues(self, grid) -> None:
        gentle = grid.cell(mode="open", arrival_rate_per_s=1000.0)
        flood = grid.cell(mode="open", arrival_rate_per_s=6000.0)
        assert flood.max_queue_depth >= gentle.max_queue_depth
        assert flood.latency_p99_ms >= gentle.latency_p99_ms

    def test_open_loop_rate_validation(self, deployment) -> None:
        with pytest.raises(ValueError):
            run_open_cell(TINY, deployment, 0.0, 0.25)


class TestDeterminism:
    def test_cells_reproduce_bit_for_bit(self, deployment) -> None:
        a = run_closed_cell(TINY, deployment, clients=8, service_time_ms=0.25)
        b = run_closed_cell(TINY, deployment, clients=8, service_time_ms=0.25)
        assert a.schedule_fingerprint == b.schedule_fingerprint
        da, db = a.to_dict(), b.to_dict()
        da.pop("wall_s"), db.pop("wall_s")
        assert da == db

    def test_open_cells_reproduce(self, deployment) -> None:
        a = run_open_cell(TINY, deployment, 1000.0, 0.25)
        b = run_open_cell(TINY, deployment, 1000.0, 0.25)
        assert a.schedule_fingerprint == b.schedule_fingerprint

    def test_distinct_cells_have_distinct_fingerprints(self, grid) -> None:
        prints = [c.schedule_fingerprint for c in grid.cells]
        assert len(set(prints)) == len(prints)


class TestResultShape:
    def test_grid_covers_all_tracked_cells(self, grid) -> None:
        closed = [c for c in grid.cells if c.mode == "closed" and not c.stragglers]
        straggler = [c for c in grid.cells if c.stragglers]
        open_cells = [c for c in grid.cells if c.mode == "open"]
        assert len(closed) == len(TINY.clients_grid) * len(TINY.service_times_ms)
        assert len(straggler) == len(TINY.clients_grid)
        assert len(open_cells) == len(TINY.open_loop_rates_per_s)

    def test_to_dict_is_json_friendly(self, grid) -> None:
        import json

        payload = json.dumps(grid.to_dict())
        assert "checksums_match" in payload

    def test_cell_selector_rejects_ambiguity(self, grid) -> None:
        with pytest.raises(KeyError):
            grid.cell(mode="closed")

    def test_named_configs_have_tracked_shapes(self) -> None:
        paper = paper_scale_config()
        smoke = smoke_config()
        assert paper.num_peers > smoke.num_peers
        assert paper.clients_grid == smoke.clients_grid == (1, 16, 64)
        assert smoke.replaced(num_ops=7).num_ops == 7


class TestConcurrentRuntime:
    def test_dispatch_order_equals_submission_order_at_concurrency_one(
        self, tiny_corpus, tiny_queries, fast_sprite_config
    ) -> None:
        """The live-dispatch front-end at concurrency 1: results equal
        the plain call-stack path, query by query."""
        from repro.config import ChordConfig
        from repro.core import SpriteSystem

        def build():
            system = SpriteSystem(
                tiny_corpus,
                sprite_config=fast_sprite_config,
                chord_config=ChordConfig(num_peers=12, id_bits=16, seed=7),
            )
            system.share_corpus()
            return system

        baseline = build()
        expected = [
            [(e.doc_id, e.score) for e in baseline.search(q)]
            for q in tiny_queries
        ]

        system = build()
        runtime = ConcurrentRuntime(system, Scheduler(service_time_ms=0.25))
        for q in tiny_queries:
            runtime.submit(q)
        completed = runtime.run()
        actual = [
            [(e.doc_id, e.score) for e in ranked]
            for _q, (ranked, _execution) in completed
        ]
        assert actual == expected
