"""Optional-dependency guards for the perf extra."""

from __future__ import annotations

import pytest

import repro.perf.compat as compat
from repro.exceptions import ConfigurationError
from repro.perf import have_numpy, numpy_or_none, require_numpy


class TestProbe:
    def test_probe_is_cached(self, monkeypatch) -> None:
        monkeypatch.setattr(compat, "_NUMPY", None)
        first = compat.numpy_or_none()
        assert compat._NUMPY is not None  # probed exactly once
        assert compat.numpy_or_none() is first

    def test_have_numpy_matches_probe(self) -> None:
        assert have_numpy() == (numpy_or_none() is not None)

    def test_require_returns_module_when_present(self) -> None:
        if not have_numpy():
            pytest.skip("numpy not installed (perf extra)")
        module = require_numpy("test")
        assert module.__name__ == "numpy"


class TestAbsentNumpy:
    """Simulated absence: the probe cache is forced to 'probed, absent'."""

    @pytest.fixture(autouse=True)
    def _without_numpy(self, monkeypatch):
        monkeypatch.setattr(compat, "_NUMPY", False)

    def test_probe_reports_absent(self) -> None:
        assert compat.numpy_or_none() is None
        assert not compat.have_numpy()

    def test_require_raises_actionable_error(self) -> None:
        with pytest.raises(ConfigurationError) as excinfo:
            compat.require_numpy("QueryProcessor(kernel='numpy')")
        message = str(excinfo.value)
        assert "QueryProcessor(kernel='numpy')" in message
        assert "repro[perf]" in message
        assert "python" in message  # names the fallback path
