"""Shared fixtures for the test suite.

Expensive artifacts (the small experiment environment, trained systems)
are session-scoped; tests must treat them as read-only.  Tests that
mutate system state build their own instances from the cheap factories.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ChordConfig,
    ExperimentConfig,
    QueryGenConfig,
    SpriteConfig,
    SyntheticCorpusConfig,
    small_experiment_config,
)
from repro.corpus import Corpus, Document, Qrels, Query, QuerySet
from repro.dht import ChordRing
from repro.evaluation import build_environment
from repro.ir import CentralizedSystem

#: Hand-written documents with known term statistics.  Each document
#: mentions "peer" so stemming/stopword behaviour is easy to reason
#: about; frequencies are deliberately asymmetric.
TINY_DOCS = {
    "doc-a": (
        "chord chord chord overlay overlay routing peer network network "
        "lookup finger table stabilize"
    ),
    "doc-b": (
        "retrieval retrieval retrieval ranking ranking precision recall "
        "peer index index index inverted"
    ),
    "doc-c": (
        "learning learning query query query tuning index peer progressive "
        "selective examples history"
    ),
    "doc-d": (
        "zipf distribution terms terms corpus frequency frequency peer "
        "vocabulary statistics sampling"
    ),
    "doc-e": (
        "replication successor failure churn peer peer heartbeat recovery "
        "replica promote stabilize stabilize"
    ),
    "doc-f": (
        "gossip flooding unstructured gnutella peer radius neighborhood "
        "bandwidth overhead overhead overhead"
    ),
}


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """Six tiny hand-written documents."""
    return Corpus(
        Document(doc_id=doc_id, text=text) for doc_id, text in TINY_DOCS.items()
    )


@pytest.fixture(scope="session")
def tiny_queries(tiny_corpus) -> QuerySet:
    """Queries with hand-assigned judgments over the tiny corpus."""
    analyzer = tiny_corpus.analyzer
    queries = [
        Query("tq1", tuple(analyzer.analyze_query("chord overlay routing"))),
        Query("tq2", tuple(analyzer.analyze_query("retrieval ranking index"))),
        Query("tq3", tuple(analyzer.analyze_query("learning query tuning"))),
        Query("tq4", tuple(analyzer.analyze_query("replication failure churn"))),
    ]
    qrels = Qrels(
        {
            "tq1": {"doc-a"},
            "tq2": {"doc-b", "doc-c"},
            "tq3": {"doc-c"},
            "tq4": {"doc-e"},
        }
    )
    return QuerySet(queries, qrels)


@pytest.fixture(scope="session")
def tiny_centralized(tiny_corpus) -> CentralizedSystem:
    return CentralizedSystem(tiny_corpus)


@pytest.fixture(scope="session")
def small_config() -> ExperimentConfig:
    return small_experiment_config()


@pytest.fixture(scope="session")
def small_env(small_config):
    """The full small experimental environment (corpus + generated
    queries + centralized system).  Read-only."""
    return build_environment(small_config)


@pytest.fixture(scope="session")
def micro_corpus_config() -> SyntheticCorpusConfig:
    """A very small synthetic corpus config for tests that build their
    own systems (fast: < 100 ms)."""
    return SyntheticCorpusConfig(
        num_documents=60,
        num_topics=6,
        vocabulary_size=420,
        topic_core_size=20,
        mean_doc_length=60,
        min_doc_length=20,
        num_original_queries=8,
        relevant_per_query=8,
        seed=99,
    )


@pytest.fixture()
def small_ring() -> ChordRing:
    """A fresh 16-node ring per test (mutation allowed)."""
    return ChordRing(ChordConfig(num_peers=16, successor_list_size=4, seed=7))


@pytest.fixture()
def fast_sprite_config() -> SpriteConfig:
    return SpriteConfig(
        initial_terms=3,
        terms_per_iteration=3,
        learning_iterations=2,
        max_index_terms=9,
        query_cache_size=64,
        top_k_answers=10,
    )
