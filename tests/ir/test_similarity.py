"""Tests for the similarity functions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.similarity import (
    consolidate,
    cosine_similarity,
    lee_similarity,
    weight_norm,
)


class TestLeeSimilarity:
    """The paper's sim(Q,D) = Σ w_Q·w_D / sqrt(|D|)."""

    def test_formula(self) -> None:
        q = {"a": 2.0, "b": 1.0}
        d = {"a": 0.5, "b": 1.5}
        assert lee_similarity(q, d, doc_term_count=4) == pytest.approx(
            (2.0 * 0.5 + 1.0 * 1.5) / 2.0
        )

    def test_missing_doc_terms_score_zero(self) -> None:
        """A query term the document never published contributes 0 —
        the 'w_ij erroneously assumed to be zero' effect of Section 4."""
        q = {"a": 2.0, "b": 3.0}
        d = {"a": 1.0}
        assert lee_similarity(q, d, 1) == pytest.approx(2.0)

    def test_zero_length_document(self) -> None:
        assert lee_similarity({"a": 1.0}, {"a": 1.0}, 0) == 0.0

    def test_no_overlap(self) -> None:
        assert lee_similarity({"a": 1.0}, {"b": 1.0}, 9) == 0.0

    def test_longer_documents_penalized(self) -> None:
        q = {"a": 1.0}
        d = {"a": 1.0}
        assert lee_similarity(q, d, 4) > lee_similarity(q, d, 16)


class TestCosineSimilarity:
    def test_identical_vectors(self) -> None:
        v = {"a": 3.0, "b": 4.0}
        assert cosine_similarity(v, v, weight_norm(v)) == pytest.approx(1.0)

    def test_orthogonal_vectors(self) -> None:
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}, 1.0) == 0.0

    def test_zero_norm_document(self) -> None:
        assert cosine_similarity({"a": 1.0}, {}, 0.0) == 0.0

    def test_zero_query(self) -> None:
        assert cosine_similarity({}, {"a": 1.0}, 1.0) == 0.0

    def test_bounded_by_one(self) -> None:
        q = {"a": 1.0, "b": 2.0}
        d = {"a": 5.0, "b": 0.5, "c": 9.0}
        sim = cosine_similarity(q, d, weight_norm(d))
        assert 0.0 <= sim <= 1.0 + 1e-9


class TestWeightNorm:
    def test_pythagoras(self) -> None:
        assert weight_norm({"a": 3.0, "b": 4.0}) == pytest.approx(5.0)

    def test_empty(self) -> None:
        assert weight_norm({}) == 0.0


class TestConsolidate:
    def test_pivot(self) -> None:
        by_term = {
            "a": {"d1": 1.0, "d2": 2.0},
            "b": {"d1": 3.0},
        }
        by_doc = consolidate(by_term)
        assert by_doc == {"d1": {"a": 1.0, "b": 3.0}, "d2": {"a": 2.0}}

    def test_empty(self) -> None:
        assert consolidate({}) == {}


@given(
    st.dictionaries(
        st.sampled_from(list("abcdef")),
        st.floats(min_value=0.0, max_value=10.0),
        max_size=6,
    ),
    st.dictionaries(
        st.sampled_from(list("abcdef")),
        st.floats(min_value=0.0, max_value=10.0),
        max_size=6,
    ),
    st.integers(min_value=1, max_value=1000),
)
def test_lee_similarity_nonnegative_and_scales(q: dict, d: dict, length: int) -> None:
    sim = lee_similarity(q, d, length)
    assert sim >= 0.0
    # Doubling all query weights doubles the score (bilinearity).
    doubled = lee_similarity({k: 2 * v for k, v in q.items()}, d, length)
    assert doubled == pytest.approx(2 * sim, abs=1e-6)
