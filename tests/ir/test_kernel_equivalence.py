"""Bit-identity of the vectorized scoring kernels (DESIGN.md §13).

The numpy kernel path (`QueryProcessor(kernel="numpy")`) is pure
data-layout acceleration: identical documents, bit-identical scores,
identical tie-broken order versus the scalar path — slot by slot
(hypothesis over random columns) and end to end (hypothesis over seeded
workloads, early termination on and off, peer failures included).
Without numpy the kernels step aside: every entry point returns
``None`` and the processor refuses ``kernel="numpy"`` with a pointed
error.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChordConfig
from repro.core.indexer import IndexingProtocol
from repro.core.metadata import PostingEntry
from repro.core.query_processing import QueryProcessor
from repro.corpus.relevance import Query
from repro.dht.ring import ChordRing
from repro.exceptions import ConfigurationError
from repro.ir import kernels
from repro.ir.postings import ColumnarPostings, DocTable
from repro.ir.weighting import TfIdfWeighting, idf
from repro.perf.compat import have_numpy

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (perf extra)"
)

VOCAB = [f"kw{i:03d}" for i in range(24)]


def build_stack(*, kernel: str, seed: int = 11, early_termination: bool = True):
    ring = ChordRing(ChordConfig(num_peers=32, seed=seed, route_cache_size=4096))
    protocol = IndexingProtocol(ring, columnar_postings=True)
    processor = QueryProcessor(
        protocol,
        assumed_corpus_size=10_000,
        batch_fetch=True,
        early_termination=early_termination,
        kernel=kernel,
    )
    rng = random.Random(seed)
    for d in range(25):
        doc_id = f"d{d:03d}"
        owner = ring.random_live_id(rng)
        length = 40 + 9 * d
        for term in sorted(rng.sample(VOCAB, 5)):
            protocol.publish(
                owner,
                term,
                PostingEntry(doc_id, owner, rng.randint(1, 9), length),
            )
    return ring, protocol, processor


def pairs(ranked):
    return [(e.doc_id, e.score) for e in ranked]


@needs_numpy
class TestSlotKernel:
    """The per-slot kernel against a transliterated scalar loop."""

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),  # doc number
                st.integers(min_value=1, max_value=50),  # raw tf
                st.integers(min_value=0, max_value=500),  # doc length
            ),
            min_size=0,
            max_size=60,
        ),
        query_weight=st.floats(min_value=0.0, max_value=20.0),
        document_frequency=st.integers(min_value=1, max_value=2000),
    )
    @settings(max_examples=80, deadline=None)
    def test_slot_contributions_bit_identical(
        self, rows, query_weight, document_frequency
    ) -> None:
        table = DocTable()
        store = ColumnarPostings(doc_table=table)
        for doc_no, raw_tf, length in rows:
            store.add(f"doc{doc_no}", owner_peer=1, raw_tf=raw_tf, doc_length=length)
        corpus_size = 10_000
        result = kernels.slot_contributions(
            store, query_weight, document_frequency, corpus_size
        )
        assert result is not None
        doc_index, contribution, length_col = result
        assert len(doc_index) == len(contribution) == len(length_col) == len(store)
        idf_value = idf(corpus_size, document_frequency)
        for pos, (doc_id, __, raw_tf, doc_length) in enumerate(store.rows()):
            ntf = raw_tf / doc_length if doc_length > 0 else 0.0
            # The scalar path's exact expression and operation order.
            expected = query_weight * (ntf * idf_value)
            assert table.doc_id(int(doc_index[pos])) == doc_id
            assert float(contribution[pos]) == expected
            assert int(length_col[pos]) == doc_length

    def test_views_cached_until_mutation(self) -> None:
        store = ColumnarPostings(doc_table=DocTable())
        store.add("a", 1, 3, 100)
        first = kernels.slot_columns(store)
        assert kernels.slot_columns(store) is first  # same version: cached
        first_version = store.kernel_scratch.version
        # Contract: callers must not hold views across mutations — the
        # live export would block the column resize.
        del first
        store.add("b", 1, 2, 90)  # mutation drops the scratch
        second = kernels.slot_columns(store)
        assert store.kernel_scratch.version != first_version
        assert second[0].size == 2

    def test_mutation_after_views_does_not_raise(self) -> None:
        """array() refuses to resize with exported buffers; the scratch
        drop must run before any append/delete."""
        store = ColumnarPostings(doc_table=DocTable())
        store.add("a", 1, 3, 100)
        kernels.slot_columns(store)
        store.add("b", 1, 2, 90)  # would raise BufferError without drop()
        store.remove("a")
        assert len(store) == 1


class TestRescoreFallback:
    def test_rescore_without_terms_is_empty(self) -> None:
        if not have_numpy():
            pytest.skip("numpy not installed (perf extra)")
        assert kernels.rescore([], TfIdfWeighting(corpus_size=100)) == {}

    def test_rescore_none_without_numpy(self, monkeypatch) -> None:
        import repro.perf.compat as compat

        monkeypatch.setattr(compat, "_NUMPY", False)
        assert kernels.slot_columns(ColumnarPostings(doc_table=DocTable())) is None
        assert kernels.rescore([], TfIdfWeighting(corpus_size=100)) is None

    def test_processor_rejects_numpy_kernel_without_numpy(
        self, monkeypatch
    ) -> None:
        import repro.perf.compat as compat

        monkeypatch.setattr(compat, "_NUMPY", False)
        ring = ChordRing(ChordConfig(num_peers=8, seed=1))
        protocol = IndexingProtocol(ring)
        with pytest.raises(ConfigurationError, match="repro\\[perf\\]"):
            QueryProcessor(protocol, assumed_corpus_size=100, kernel="numpy")

    def test_processor_rejects_unknown_kernel(self) -> None:
        ring = ChordRing(ChordConfig(num_peers=8, seed=1))
        protocol = IndexingProtocol(ring)
        with pytest.raises(ConfigurationError, match="kernel must be one of"):
            QueryProcessor(protocol, assumed_corpus_size=100, kernel="simd")


@needs_numpy
class TestEndToEnd:
    def test_numpy_kernel_falls_back_on_legacy_slots(self) -> None:
        """Non-columnar slots cannot be viewed; the numpy processor must
        silently take the scalar path and still match a python one."""
        def legacy_stack(kernel: str):
            ring = ChordRing(ChordConfig(num_peers=16, seed=3))
            protocol = IndexingProtocol(ring, columnar_postings=False)
            processor = QueryProcessor(
                protocol, assumed_corpus_size=10_000, kernel=kernel
            )
            rng = random.Random(3)
            for d in range(12):
                owner = ring.random_live_id(rng)
                for term in sorted(rng.sample(VOCAB, 4)):
                    protocol.publish(
                        owner,
                        term,
                        PostingEntry(f"d{d}", owner, rng.randint(1, 9), 50 + d),
                    )
            return ring, processor

        ring_n, proc_n = legacy_stack("numpy")
        ring_p, proc_p = legacy_stack("python")
        for term in VOCAB[:8]:
            query = Query(f"q-{term}", (term,))
            ranked_n, __ = proc_n.execute(
                ring_n.live_ids[0], query, top_k=6, cache=False
            )
            ranked_p, __ = proc_p.execute(
                ring_p.live_ids[0], query, top_k=6, cache=False
            )
            assert pairs(ranked_n) == pairs(ranked_p)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        top_k=st.integers(min_value=0, max_value=40),
        num_terms=st.integers(min_value=1, max_value=4),
        early_termination=st.booleans(),
        fail_first_term=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_kernel_equivalence_property(
        self,
        seed: int,
        top_k: int,
        num_terms: int,
        early_termination: bool,
        fail_first_term: bool,
    ) -> None:
        """For any seeded workload — early termination on or off, peer
        failures included — the numpy and python kernels return
        identical documents, scores, and order."""
        rng = random.Random(seed)
        terms = tuple(rng.choice(VOCAB) for __ in range(num_terms))
        query = Query("prop", tuple(sorted(set(terms))))

        rankings = []
        for kernel in ("numpy", "python"):
            ring, protocol, processor = build_stack(
                kernel=kernel,
                seed=seed % 17,
                early_termination=early_termination,
            )
            if fail_first_term:
                victim = ring.successor_of(protocol.term_hash(query.terms[0]))
                ring.fail(victim)
                if victim == ring.live_ids[0]:
                    return  # issuer crashed; nothing to compare
            ranked, __ = processor.execute(
                ring.live_ids[0], query, top_k=top_k, cache=False
            )
            rankings.append(pairs(ranked))
        assert rankings[0] == rankings[1]
