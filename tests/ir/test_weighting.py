"""Tests for TF·IDF weighting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.weighting import TfIdfWeighting, idf, tf_idf


class TestIdf:
    def test_formula(self) -> None:
        assert idf(1000, 10) == pytest.approx(math.log(100))

    def test_zero_document_frequency(self) -> None:
        assert idf(1000, 0) == 0.0

    def test_zero_corpus(self) -> None:
        assert idf(0, 5) == 0.0

    def test_df_exceeding_corpus_clamped(self) -> None:
        """A term 'in more documents than the corpus size' (possible only
        with the assumed-N trick misconfigured) clamps to IDF 0, never
        negative."""
        assert idf(10, 100) == 0.0

    def test_monotone_decreasing_in_df(self) -> None:
        values = [idf(10_000, df) for df in (1, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)


class TestTfIdf:
    def test_formula(self) -> None:
        assert tf_idf(0.25, 1000, 10) == pytest.approx(0.25 * math.log(100))

    def test_zero_tf(self) -> None:
        assert tf_idf(0.0, 1000, 10) == 0.0


class TestWeightingScheme:
    def test_document_weight(self) -> None:
        w = TfIdfWeighting(corpus_size=1_000_000)
        assert w.document_weight(0.1, 50) == pytest.approx(
            0.1 * math.log(1_000_000 / 50)
        )

    def test_query_weight_is_idf(self) -> None:
        w = TfIdfWeighting(corpus_size=1_000_000)
        assert w.query_weight(50) == pytest.approx(math.log(1_000_000 / 50))

    def test_scheme_is_frozen(self) -> None:
        w = TfIdfWeighting(corpus_size=100)
        with pytest.raises(AttributeError):
            w.corpus_size = 5  # type: ignore[misc]


@given(
    st.integers(min_value=2, max_value=10**7),
    st.integers(min_value=1, max_value=10**6),
)
def test_idf_nonnegative(corpus_size: int, df: int) -> None:
    assert idf(corpus_size, df) >= 0.0


@given(st.integers(min_value=1, max_value=10**5))
def test_ranking_invariant_to_scale_of_n(df: int) -> None:
    """Section 4's argument: as long as N is shared, its absolute scale
    shifts all IDFs but preserves order.  Verify order preservation for
    two dfs (both below N) under two different Ns."""
    df2 = df * 2 + 1
    for n in (10**6, 10**9):
        assert idf(n, df) > idf(n, df2)
