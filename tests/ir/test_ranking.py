"""Tests for RankedList."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.ranking import RankedList, ScoredDoc


@pytest.fixture()
def ranked() -> RankedList:
    return RankedList({"d1": 0.5, "d2": 0.9, "d3": 0.1, "d4": 0.9})


class TestOrdering:
    def test_descending_by_score(self, ranked: RankedList) -> None:
        scores = [e.score for e in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_tie_break_by_doc_id(self, ranked: RankedList) -> None:
        # d2 and d4 tie at 0.9 → d2 first (ascending id).
        assert ranked.top_ids(2) == ["d2", "d4"]

    def test_accepts_pairs(self) -> None:
        rl = RankedList([("x", 1.0), ("y", 2.0)])
        assert rl.top_ids(2) == ["y", "x"]

    def test_deterministic(self, ranked: RankedList) -> None:
        again = RankedList({"d4": 0.9, "d3": 0.1, "d2": 0.9, "d1": 0.5})
        assert ranked.ids() == again.ids()


class TestAccess:
    def test_len(self, ranked: RankedList) -> None:
        assert len(ranked) == 4

    def test_getitem(self, ranked: RankedList) -> None:
        assert ranked[0] == ScoredDoc("d2", 0.9)

    def test_top_k_shorter_than_list(self, ranked: RankedList) -> None:
        assert len(ranked.top(2)) == 2

    def test_top_k_longer_than_list(self, ranked: RankedList) -> None:
        assert len(ranked.top(99)) == 4

    def test_rank_of(self, ranked: RankedList) -> None:
        assert ranked.rank_of("d2") == 0
        assert ranked.rank_of("d3") == 3
        assert ranked.rank_of("ghost") == -1

    def test_contains(self, ranked: RankedList) -> None:
        assert ranked.contains("d1")
        assert not ranked.contains("ghost")

    def test_scores_mapping(self, ranked: RankedList) -> None:
        assert ranked.scores()["d1"] == 0.5

    def test_id_set(self, ranked: RankedList) -> None:
        assert ranked.id_set(2) == {"d2", "d4"}
        assert ranked.id_set() == {"d1", "d2", "d3", "d4"}


class TestTruncate:
    def test_truncate_produces_new_list(self, ranked: RankedList) -> None:
        top2 = ranked.truncate(2)
        assert len(top2) == 2
        assert top2.ids() == ["d2", "d4"]
        assert len(ranked) == 4  # original untouched

    def test_truncate_beyond_length(self, ranked: RankedList) -> None:
        assert len(ranked.truncate(100)) == 4

    def test_empty_list(self) -> None:
        rl = RankedList({})
        assert len(rl) == 0
        assert rl.top_ids(5) == []


class TestTopK:
    """The heap-based selection must equal full-sort-then-slice,
    including deterministic tie ordering (regression pin for the
    ``heapq.nsmallest`` rewrite of ``truncate``/``top_k``)."""

    def test_top_k_equals_sort_and_slice(self) -> None:
        scores = {"a": 1.0, "b": 3.0, "c": 2.0, "d": 3.0, "e": 0.5}
        assert RankedList.top_k(scores, 3).ids() == RankedList(scores).ids()[:3]

    def test_tie_ordering_pinned(self) -> None:
        # Four-way tie: selection must keep ascending doc-id order and
        # cut deterministically at k.
        scores = {"d": 1.0, "b": 1.0, "c": 1.0, "a": 1.0, "z": 2.0}
        assert RankedList.top_k(scores, 3).ids() == ["z", "a", "b"]

    def test_top_k_zero_and_beyond_length(self) -> None:
        scores = {"a": 1.0, "b": 2.0}
        assert RankedList.top_k(scores, 0).ids() == []
        assert RankedList.top_k(scores, 99).ids() == ["b", "a"]

    @given(
        st.dictionaries(
            st.text(alphabet="abcdxyz", min_size=1, max_size=4),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            max_size=30,
        ),
        st.integers(min_value=0, max_value=35),
    )
    def test_top_k_matches_truncate_and_sort(self, scores: dict, k: int) -> None:
        full = RankedList(scores)
        selected = RankedList.top_k(scores, k)
        assert selected.ids() == full.ids()[:k]
        assert selected.ids() == full.truncate(k).ids()
        assert [e.score for e in selected] == [e.score for e in full][:k]


@given(
    st.dictionaries(
        st.text(alphabet="abcdxyz", min_size=1, max_size=4),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        max_size=30,
    )
)
def test_rank_of_consistent_with_iteration(scores: dict) -> None:
    rl = RankedList(scores)
    for rank, entry in enumerate(rl):
        assert rl.rank_of(entry.doc_id) == rank
    assert len(rl) == len(scores)
