"""Tests for the centralized inverted index."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document
from repro.ir.inverted_index import InvertedIndex


@pytest.fixture()
def corpus() -> Corpus:
    return Corpus(
        [
            Document("d1", "chord chord ring"),
            Document("d2", "chord lookup lookup lookup"),
            Document("d3", "ring ring ring finger"),
        ]
    )


@pytest.fixture()
def index(corpus: Corpus) -> InvertedIndex:
    return InvertedIndex.from_corpus(corpus)


class TestConstruction:
    def test_document_count(self, index: InvertedIndex) -> None:
        assert index.num_documents == 3

    def test_term_count(self, index: InvertedIndex) -> None:
        assert index.num_terms == 4  # chord, ring, lookup, finger

    def test_total_postings(self, index: InvertedIndex) -> None:
        # d1: chord, ring; d2: chord, lookup; d3: ring, finger → 6.
        assert index.total_postings == 6

    def test_contains(self, index: InvertedIndex) -> None:
        assert "chord" in index
        assert "ghost" not in index

    def test_duplicate_add_ignored(self, corpus: Corpus, index: InvertedIndex) -> None:
        index.add_document(corpus.get("d1"))
        assert index.num_documents == 3


class TestStatistics:
    def test_document_frequency(self, index: InvertedIndex) -> None:
        assert index.document_frequency("chord") == 2
        assert index.document_frequency("finger") == 1
        assert index.document_frequency("ghost") == 0

    def test_doc_length(self, index: InvertedIndex) -> None:
        assert index.doc_length("d1") == 3
        assert index.doc_length("missing") == 0

    def test_postings_content(self, index: InvertedIndex) -> None:
        postings = {p.doc_id: p for p in index.postings("chord")}
        assert postings["d1"].raw_tf == 2
        assert postings["d1"].normalized_tf == pytest.approx(2 / 3)
        assert postings["d1"].doc_length == 3
        assert postings["d2"].raw_tf == 1

    def test_postings_for_unknown_term(self, index: InvertedIndex) -> None:
        assert index.postings("ghost") == []


class TestRemoval:
    def test_remove_document(self, corpus: Corpus, index: InvertedIndex) -> None:
        index.remove_document(corpus.get("d1"))
        assert index.num_documents == 2
        assert index.document_frequency("chord") == 1
        assert index.doc_length("d1") == 0

    def test_remove_deletes_empty_posting_lists(
        self, corpus: Corpus, index: InvertedIndex
    ) -> None:
        index.remove_document(corpus.get("d3"))
        assert index.document_frequency("finger") == 0
        assert "finger" not in index

    def test_remove_unknown_is_noop(self, index: InvertedIndex) -> None:
        ghost = Document("ghost", "phantom terms")
        index.remove_document(ghost)
        assert index.num_documents == 3

    def test_add_after_remove(self, corpus: Corpus, index: InvertedIndex) -> None:
        doc = corpus.get("d2")
        index.remove_document(doc)
        index.add_document(doc)
        assert index.num_documents == 3
        assert index.document_frequency("lookup") == 1
