"""Tests for the centralized reference system."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document, Query
from repro.exceptions import QueryError
from repro.ir.centralized import CentralizedSystem


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(
        [
            Document("chordy", "chord chord chord ring lookup"),
            Document("ringy", "ring ring ring ring finger"),
            Document("mixed", "chord ring finger lookup stabilize"),
            Document("offtopic", "gossip flooding bandwidth radius"),
        ]
    )


@pytest.fixture(scope="module")
def system(corpus: Corpus) -> CentralizedSystem:
    return CentralizedSystem(corpus)


class TestSearch:
    def test_returns_only_matching_documents(self, system: CentralizedSystem) -> None:
        ranked = system.search(Query("q", ("chord",)))
        assert set(ranked.ids()) == {"chordy", "mixed"}

    def test_frequency_drives_rank(self, system: CentralizedSystem) -> None:
        ranked = system.search(Query("q", ("chord",)))
        assert ranked.top_ids(1) == ["chordy"]

    def test_multi_term_union(self, system: CentralizedSystem) -> None:
        ranked = system.search(Query("q", ("chord", "ring")))
        assert set(ranked.ids()) == {"chordy", "ringy", "mixed"}

    def test_unknown_terms_ignored(self, system: CentralizedSystem) -> None:
        ranked = system.search(Query("q", ("chord", "zzzunknown")))
        assert set(ranked.ids()) == {"chordy", "mixed"}

    def test_all_unknown_terms_empty_result(self, system: CentralizedSystem) -> None:
        assert len(system.search(Query("q", ("zzz",)))) == 0

    def test_top_k_truncation(self, system: CentralizedSystem) -> None:
        ranked = system.search(Query("q", ("ring",)), top_k=1)
        assert len(ranked) == 1

    def test_scores_positive(self, system: CentralizedSystem) -> None:
        ranked = system.search(Query("q", ("finger",)))
        assert all(e.score > 0 for e in ranked)

    def test_rare_term_beats_common_term(self, corpus: Corpus) -> None:
        """IDF must prefer the document matching the rarer term when TF
        is comparable."""
        c = Corpus(
            [
                Document("common", "shared shared shared"),
                Document("rare", "unique unique unique"),
                Document("pad1", "shared filler filler"),
                Document("pad2", "shared filler2 filler2"),
            ]
        )
        s = CentralizedSystem(c)
        # Query terms must be analyzed (stemmed) like document text.
        terms = tuple(c.analyzer.analyze_query("shared unique"))
        ranked = s.search(Query("q", terms))
        assert ranked.top_ids(1) == ["rare"]


class TestNormalizationModes:
    def test_cosine_mode(self, corpus: Corpus) -> None:
        cosine = CentralizedSystem(corpus, normalization="cosine")
        ranked = cosine.search(Query("q", ("chord", "ring")))
        assert set(ranked.ids()) == {"chordy", "ringy", "mixed"}
        assert all(0.0 <= e.score <= 1.0 + 1e-9 for e in ranked)

    def test_invalid_mode_rejected(self, corpus: Corpus) -> None:
        with pytest.raises(QueryError):
            CentralizedSystem(corpus, normalization="bm25")  # type: ignore[arg-type]

    def test_modes_agree_on_single_term_membership(self, corpus: Corpus) -> None:
        lee = CentralizedSystem(corpus, normalization="lee")
        cosine = CentralizedSystem(corpus, normalization="cosine")
        q = Query("q", ("lookup",))
        assert set(lee.search(q).ids()) == set(cosine.search(q).ids())


class TestDeterminism:
    def test_repeat_searches_identical(self, system: CentralizedSystem) -> None:
        q = Query("q", ("chord", "ring", "finger"))
        assert system.search(q).ids() == system.search(q).ids()
