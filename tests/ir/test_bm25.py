"""Tests for the BM25 reference system."""

from __future__ import annotations

import math

import pytest

from repro.corpus import Corpus, Document, Query
from repro.ir import BM25System


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(
        [
            Document("heavy", "chord chord chord chord ring"),
            Document("light", "chord ring ring lookup"),
            Document("long", "chord " + "filler " * 60),
            Document("other", "gossip flooding bandwidth"),
        ]
    )


@pytest.fixture(scope="module")
def system(corpus: Corpus) -> BM25System:
    return BM25System(corpus)


class TestIdf:
    def test_rare_term_higher_idf(self, system: BM25System) -> None:
        assert system.idf("gossip") > system.idf("chord")

    def test_unknown_term(self, system: BM25System) -> None:
        # df = 0 → ln((N + 0.5)/0.5 + 1), finite and positive.
        assert system.idf("zzz") > 0

    def test_never_negative(self, system: BM25System) -> None:
        # Even a term in every document keeps idf ≥ ln(1 + small) > 0.
        assert system.idf("chord") > 0


class TestSearch:
    def test_matching_documents_only(self, system: BM25System) -> None:
        ranked = system.search(Query("q", ("chord",)))
        assert set(ranked.ids()) == {"heavy", "light", "long"}

    def test_tf_saturation(self, corpus: Corpus) -> None:
        """BM25's hallmark: term frequency saturates — 4 occurrences
        score less than 4× one occurrence."""
        system = BM25System(corpus)
        ranked = system.search(Query("q", ("chord",)))
        scores = ranked.scores()
        assert scores["heavy"] < 4 * scores["light"]

    def test_length_normalization(self, system: BM25System) -> None:
        """Same tf, much longer document → lower score."""
        ranked = system.search(Query("q", ("chord",)))
        scores = ranked.scores()
        assert scores["light"] > scores["long"]

    def test_top_k(self, system: BM25System) -> None:
        assert len(system.search(Query("q", ("chord",)), top_k=2)) == 2

    def test_b_zero_disables_length_normalization(self, corpus: Corpus) -> None:
        flat = BM25System(corpus, b=0.0)
        scores = flat.search(Query("q", ("chord",))).scores()
        # With b=0, 'long' (tf=1) ties 'light' (tf=1) exactly.
        assert scores["long"] == pytest.approx(scores["light"])

    def test_parameter_validation(self, corpus: Corpus) -> None:
        with pytest.raises(ValueError):
            BM25System(corpus, k1=-1)
        with pytest.raises(ValueError):
            BM25System(corpus, b=1.5)


class TestAgainstClassicTfIdf:
    def test_same_candidate_sets(self, corpus: Corpus) -> None:
        from repro.ir import CentralizedSystem

        classic = CentralizedSystem(corpus)
        bm25 = BM25System(corpus)
        for terms in (("chord",), ("ring", "lookup"), ("gossip",)):
            q = Query("q", terms)
            assert set(classic.search(q).ids()) == set(bm25.search(q).ids())
