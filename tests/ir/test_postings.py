"""Tests for the columnar posting store and its legacy reference."""

from __future__ import annotations

import copy
from math import sqrt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.postings import (
    ColumnarPostings,
    DocTable,
    LegacyPostings,
    posting_impact,
)


@pytest.fixture()
def columnar() -> ColumnarPostings:
    return ColumnarPostings(DocTable())


class TestPostingImpact:
    def test_matches_definition(self) -> None:
        assert posting_impact(4, 16) == (4 / 16) / sqrt(16)

    def test_degenerate_lengths_score_zero(self) -> None:
        assert posting_impact(3, 0) == 0.0
        assert posting_impact(3, -5) == 0.0


class TestDocTable:
    def test_intern_is_idempotent(self) -> None:
        table = DocTable()
        assert table.intern("a") == table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.doc_id(1) == "b"
        assert len(table) == 2

    def test_deepcopy_shares_the_registry(self) -> None:
        table = DocTable()
        table.intern("a")
        clone = copy.deepcopy(table)
        assert clone is table

    def test_deepcopy_of_columnar_store_shares_doc_table(self) -> None:
        table = DocTable()
        store = ColumnarPostings(table)
        store.add("doc", 1, 2, 10)
        replica = copy.deepcopy(store)
        assert replica._docs is table
        assert replica.lookup("doc") == store.lookup("doc")


@pytest.mark.parametrize("make", [ColumnarPostings, LegacyPostings])
class TestStoreSemantics:
    """Both backends must expose identical dict-like semantics."""

    def test_insertion_order_preserved(self, make) -> None:
        store = make()
        for i, doc in enumerate(["c", "a", "b"]):
            store.add(doc, 10 + i, 1 + i, 100)
        assert [r[0] for r in store.rows()] == ["c", "a", "b"]

    def test_overwrite_keeps_position(self, make) -> None:
        store = make()
        store.add("x", 1, 1, 100)
        store.add("y", 2, 2, 100)
        store.add("x", 9, 9, 90)
        assert [r[0] for r in store.rows()] == ["x", "y"]
        assert store.lookup("x") == ("x", 9, 9, 90)
        assert len(store) == 2

    def test_remove_shifts_tail(self, make) -> None:
        store = make()
        for doc in ["a", "b", "c", "d"]:
            store.add(doc, 1, 1, 100)
        removed = store.remove("b")
        assert removed == ("b", 1, 1, 100)
        assert [r[0] for r in store.rows()] == ["a", "c", "d"]
        assert "b" not in store
        assert store.remove("b") is None

    def test_scoring_lookup_matches_posting_values(self, make) -> None:
        store = make()
        store.add("doc", 7, 3, 12)
        ntf, length = store.scoring_lookup("doc")
        assert ntf == 3 / 12
        assert length == 12
        assert store.scoring_lookup("ghost") is None

    def test_zero_length_document_scores_zero(self, make) -> None:
        store = make()
        store.add("doc", 7, 3, 0)
        ntf, __ = store.scoring_lookup("doc")
        assert ntf == 0.0
        assert store.max_impact == 0.0

    def test_impact_rows_sorted_with_doc_id_tie_break(self, make) -> None:
        store = make()
        store.add("b", 1, 2, 100)  # impact 0.002
        store.add("a", 1, 2, 100)  # same impact, earlier id
        store.add("c", 1, 8, 100)  # impact 0.008
        assert [r[0] for r in store.impact_rows()] == ["c", "a", "b"]

    def test_max_impact_tracks_additions_and_removals(self, make) -> None:
        store = make()
        assert store.max_impact == 0.0
        store.add("low", 1, 1, 100)
        store.add("high", 1, 50, 100)
        assert store.max_impact == posting_impact(50, 100)
        # Removing the maximum must trigger recomputation.
        store.remove("high")
        assert store.max_impact == posting_impact(1, 100)
        store.remove("low")
        assert store.max_impact == 0.0

    def test_max_impact_after_overwriting_the_maximum(self, make) -> None:
        store = make()
        store.add("a", 1, 40, 100)
        store.add("b", 1, 10, 100)
        store.add("a", 1, 5, 100)  # demote the maximum in place
        assert store.max_impact == posting_impact(10, 100)

    def test_versions_are_unique_and_bump_on_mutation(self, make) -> None:
        store = make()
        seen = {store.version}
        store.add("a", 1, 1, 100)
        assert store.version not in seen
        seen.add(store.version)
        store.add("a", 1, 2, 100)  # overwrite also bumps
        assert store.version not in seen
        seen.add(store.version)
        store.remove("a")
        assert store.version not in seen

    def test_versions_globally_unique_across_stores(self, make) -> None:
        a, b = make(), make()
        a.add("doc", 1, 1, 100)
        b.add("doc", 1, 1, 100)
        assert a.version != b.version


class TestBackendEquivalence:
    """Differential: the two backends enumerate and aggregate
    identically under any mutation sequence."""

    @given(
        st.lists(
            st.tuples(
                st.booleans(),  # True = add, False = remove
                st.sampled_from(["d0", "d1", "d2", "d3", "d4"]),
                st.integers(min_value=1, max_value=20),
                st.integers(min_value=-2, max_value=50),
            ),
            max_size=40,
        )
    )
    def test_same_rows_and_aggregates(self, ops) -> None:
        columnar = ColumnarPostings(DocTable())
        legacy = LegacyPostings()
        for is_add, doc, tf, length in ops:
            if is_add:
                columnar.add(doc, 7, tf, length)
                legacy.add(doc, 7, tf, length)
            else:
                removed_c = columnar.remove(doc)
                removed_l = legacy.remove(doc)
                # The columnar store clamps lengths on ingest; compare
                # modulo the clamp, which scoring treats identically.
                if removed_l is not None:
                    clamped = (*removed_l[:3], max(0, removed_l[3]))
                    assert removed_c == clamped
                else:
                    assert removed_c is None
        c_rows = [(d, o, t, max(0, l)) for d, o, t, l in legacy.rows()]
        assert list(columnar.rows()) == c_rows
        assert len(columnar) == len(legacy)
        assert columnar.max_impact == pytest.approx(legacy.max_impact)
        assert [r[0] for r in columnar.impact_rows()] == [
            r[0] for r in legacy.impact_rows()
        ]
