"""The paper's query generator (Section 6.1).

Benchmark query sets have little inter-query similarity, so the paper
derives k = 9 new queries from each original TREC query in two phases:

**Phase 1 — term selection.**  A new query Q' keeps a fraction
O = |Q'₁|/|Q| of the original terms (randomly chosen) and replaces each
dropped term with a *distributionally similar* term from the whole
corpus: among the S = 5 terms minimizing
``|Distribution(t_dropped) − Distribution(t_candidate)|`` (where
``Distribution(t) = Freq(t) × Num(t)``), one is picked at random.  The
replacements keep the generated stream's term statistics faithful to the
original while injecting realistic noise terms.

**Phase 2 — identifying relevant documents.**  Using the centralized
system's deep ranked lists RL (for Q) and RL' (for Q'), limited to the
top E = 1000: every RL' document already judged relevant to Q becomes
relevant to Q' and *marks* the Q-relevant document at the most similar
RL rank; every remaining unmarked Q-relevant document in RL donates its
rank — the RL' document at the same rank becomes relevant to Q'.  The
new relevant set thus mirrors the original's rank distribution.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Set, Tuple

from ..config import QueryGenConfig
from ..corpus.corpus import Corpus
from ..corpus.relevance import Qrels, Query, QuerySet
from ..exceptions import QueryError
from ..ir.centralized import CentralizedSystem
from ..ir.ranking import RankedList


class DistributionNeighbors:
    """Nearest-neighbour search over ``Distribution(t)`` values.

    Pre-sorts the vocabulary by Distribution so the top-S closest terms
    to any anchor value are found with one binary search plus a local
    two-pointer scan — the corpus-wide scan the paper describes, made
    O(log V + S).
    """

    def __init__(self, corpus: Corpus) -> None:
        table = corpus.distribution_table()
        self._sorted: List[Tuple[float, str]] = sorted(
            (value, term) for term, value in table.items()
        )
        self._values = [v for v, __ in self._sorted]
        self._table = table

    def distribution(self, term: str) -> float:
        """Distribution(t), 0.0 for out-of-vocabulary terms."""
        return self._table.get(term, 0.0)

    def closest(self, term: str, count: int, exclude: Set[str]) -> List[str]:
        """The *count* terms with Distribution closest to *term*'s,
        excluding *term* itself and anything in *exclude*."""
        anchor = self.distribution(term)
        exclude = exclude | {term}
        idx = bisect_left(self._values, anchor)
        lo, hi = idx - 1, idx
        found: List[Tuple[float, str]] = []
        n = len(self._sorted)
        while len(found) < count and (lo >= 0 or hi < n):
            lo_gap = anchor - self._values[lo] if lo >= 0 else float("inf")
            hi_gap = self._values[hi] - anchor if hi < n else float("inf")
            if lo_gap <= hi_gap:
                value, candidate = self._sorted[lo]
                lo -= 1
            else:
                value, candidate = self._sorted[hi]
                hi += 1
            if candidate not in exclude:
                found.append((abs(value - anchor), candidate))
        found.sort()
        return [t for __, t in found[:count]]


class QueryGenerator:
    """Generate the evaluation query set from the original queries."""

    def __init__(
        self,
        corpus: Corpus,
        centralized: CentralizedSystem,
        config: QueryGenConfig | None = None,
    ) -> None:
        self.corpus = corpus
        self.centralized = centralized
        self.config = config if config is not None else QueryGenConfig()
        self.neighbors = DistributionNeighbors(corpus)

    # -- phase 1 ----------------------------------------------------------

    def _phase1_terms(
        self, original: Query, rng: random.Random
    ) -> Tuple[str, ...]:
        """Build one new query's term set: keep ⌈O·|Q|⌉ original terms,
        replace the rest with Distribution-similar corpus terms."""
        cfg = self.config
        terms = list(original.terms)
        keep_count = max(1, round(cfg.overlap_ratio * len(terms)))
        keep_count = min(keep_count, len(terms))
        kept = rng.sample(terms, keep_count)
        dropped = [t for t in terms if t not in kept]

        replacements: List[str] = []
        exclude = set(kept)
        for term in dropped:
            candidates = self.neighbors.closest(
                term, cfg.candidate_pool_size, exclude=exclude | set(replacements)
            )
            if not candidates:
                continue
            replacements.append(rng.choice(candidates))
        new_terms = tuple(sorted(set(kept) | set(replacements)))
        if not new_terms:
            raise QueryError(f"generated empty query from {original.query_id!r}")
        return new_terms

    # -- phase 2 -------------------------------------------------------------

    def _phase2_relevant(
        self,
        original_rl: RankedList,
        original_relevant: Set[str],
        new_rl: RankedList,
    ) -> Set[str]:
        """Map the original query's relevant documents onto the new
        query's ranked list (Figure 3's marking procedure)."""
        depth = self.config.ranked_list_depth
        rl_ids = original_rl.top_ids(depth)
        new_ids = new_rl.top_ids(depth)

        orig_rel_ranks = [
            rank for rank, doc_id in enumerate(rl_ids) if doc_id in original_relevant
        ]
        unmarked = set(orig_rel_ranks)
        relevant_new: Set[str] = set()

        # Step 1: shared answers — RL' documents already relevant to Q.
        for new_rank, doc_id in enumerate(new_ids):
            if doc_id not in original_relevant:
                continue
            relevant_new.add(doc_id)
            if unmarked:
                closest = min(unmarked, key=lambda r: (abs(r - new_rank), r))
                unmarked.discard(closest)

        # Step 2: rank transplants — each still-unmarked relevant rank of
        # RL donates its position in RL'.
        for rank in sorted(unmarked):
            if rank < len(new_ids):
                relevant_new.add(new_ids[rank])
        return relevant_new

    # -- public API --------------------------------------------------------------

    def generate(self, originals: QuerySet) -> QuerySet:
        """Derive k new queries (with qrels) from every original query.

        Returns a :class:`QuerySet` containing only the generated
        queries; ids are ``"<origin>.<i>"`` and carry ``origin_id`` so
        workloads can group derived queries with their original.
        """
        cfg = self.config
        rng = random.Random(cfg.seed)
        queries: List[Query] = []
        qrels = Qrels()

        for original in originals:
            original_rl = self.centralized.search(original).truncate(
                cfg.ranked_list_depth
            )
            original_relevant = originals.qrels.relevant(original.query_id)
            for i in range(cfg.queries_per_original):
                terms = self._phase1_terms(original, rng)
                new_query = Query(
                    query_id=f"{original.query_id}.{i}",
                    terms=terms,
                    origin_id=original.query_id,
                )
                new_rl = self.centralized.search(new_query).truncate(
                    cfg.ranked_list_depth
                )
                relevant = self._phase2_relevant(
                    original_rl, original_relevant, new_rl
                )
                queries.append(new_query)
                qrels.set_relevant(new_query.query_id, relevant)
        return QuerySet(queries, qrels)

    def generate_with_originals(self, originals: QuerySet) -> QuerySet:
        """Generated queries plus the originals themselves, sharing one
        qrels object — the paper's "630 queries" include the 63
        originals' derivatives; including originals is useful for
        workloads that need the full family."""
        generated = self.generate(originals)
        merged = Qrels()
        for qid in originals.qrels:
            merged.set_relevant(qid, originals.qrels.relevant(qid))
        for qid in generated.qrels:
            merged.set_relevant(qid, generated.qrels.relevant(qid))
        return QuerySet(list(originals.queries) + list(generated.queries), merged)
