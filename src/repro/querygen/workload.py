"""Query-stream shaping for the experiments.

The paper evaluates under three stream regimes:

* the default split — "we split these queries into 2 equal groups: a
  training set and a testing set.  The queries are randomly assigned";
* "w/o-r" — every query appears exactly once (the adversarial,
  no-repeats extreme of Figure 4(b));
* "w-zipf" — query frequency "roughly inversely proportional to the
  popularity of the query" with Zipf slope 0.5;
* the Figure 4(c) pattern change — the query set is "evenly partitioned
  into two groups such that all new queries and their corresponding
  original query are in the same group".
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..config import WorkloadConfig
from ..corpus.relevance import Query, QuerySet
from ..corpus.sampling import ZipfSampler
from ..exceptions import QueryError


def random_split(
    query_set: QuerySet, train_fraction: float = 0.5, seed: int = 5415
) -> Tuple[QuerySet, QuerySet]:
    """Randomly assign queries to (train, test) groups; qrels shared."""
    if not 0.0 < train_fraction < 1.0:
        raise QueryError("train_fraction must be in (0, 1)")
    rng = random.Random(seed)
    ids = [q.query_id for q in query_set.queries]
    rng.shuffle(ids)
    cut = int(len(ids) * train_fraction)
    train_ids = set(ids[:cut])
    return query_set.split(train_ids)


def without_repeats_stream(
    query_set: QuerySet, seed: int = 271828
) -> List[Query]:
    """The "w/o-r" stream: each query exactly once, in random order —
    the extreme "biased against SPRITE" case where the least can be
    learned from repetition."""
    rng = random.Random(seed)
    stream = list(query_set.queries)
    rng.shuffle(stream)
    return stream


def zipf_stream(
    query_set: QuerySet,
    config: WorkloadConfig | None = None,
) -> List[Query]:
    """The "w-zipf" stream: queries drawn with Zipf(slope) popularity.

    Popularity rank is a random permutation of the query set (seeded),
    and the stream length defaults to the set size, so every experiment
    sees a comparable volume of traffic whichever regime it uses.
    """
    cfg = config if config is not None else WorkloadConfig()
    rng = random.Random(cfg.seed)
    ranked = list(query_set.queries)
    rng.shuffle(ranked)  # the popularity ordering
    sampler = ZipfSampler(ranked, cfg.zipf_slope)
    length = cfg.stream_length if cfg.stream_length > 0 else len(ranked)
    return sampler.sample_many(rng, length)


def pattern_change_groups(
    query_set: QuerySet, seed: int = 1405
) -> Tuple[QuerySet, QuerySet]:
    """The Figure 4(c) partition: split into two equal-sized groups of
    *query families* — every generated query lands in the same group as
    its original, so the second group is entirely unseen during the
    first phase."""
    rng = random.Random(seed)
    families: Dict[str, List[Query]] = {}
    for query in query_set.queries:
        families.setdefault(query.origin_id, []).append(query)
    origin_ids = sorted(families)
    rng.shuffle(origin_ids)

    group_a: List[Query] = []
    group_b: List[Query] = []
    # Greedy balance by family size keeps the two groups even when
    # family sizes differ (they normally don't: k+1 queries each).
    for origin in origin_ids:
        target = group_a if len(group_a) <= len(group_b) else group_b
        target.extend(families[origin])
    return (
        QuerySet(group_a, query_set.qrels),
        QuerySet(group_b, query_set.qrels),
    )


def interleave_training_testing(
    queries: List[Query], train_fraction: float = 0.5, seed: int = 99
) -> Tuple[List[Query], List[Query]]:
    """Split a *stream* (possibly with repeats) into train/test halves
    while preserving order within each half."""
    if not 0.0 < train_fraction < 1.0:
        raise QueryError("train_fraction must be in (0, 1)")
    rng = random.Random(seed)
    train: List[Query] = []
    test: List[Query] = []
    for query in queries:
        (train if rng.random() < train_fraction else test).append(query)
    return train, test
