"""Search-trace workloads with temporal locality.

The paper's third motivating observation rests on the Excite [19] and
AltaVista [14] trace analyses: real query streams have strong locality —
"many are repeatedly issued by either the same or other users".  The
plain "w-zipf" stream models *global* popularity skew; this module adds
the *session* structure those trace studies report:

* users arrive in sessions; within a session, queries come from one
  interest (one original-query family) and repeat/refine;
* sessions themselves are Zipf-popular over families;
* a configurable fraction of queries are verbatim re-issues of the
  session's previous query (the trace studies' repeat phenomenon).

The resulting stream plugs into the same training pipeline as the
Figure 4(b) workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..corpus.relevance import Query, QuerySet
from ..corpus.sampling import ZipfSampler
from ..exceptions import ConfigurationError, QueryError


@dataclass(frozen=True)
class TraceConfig:
    """Session-trace parameters (defaults from the cited trace studies'
    qualitative findings: short sessions, high repeat rates)."""

    num_sessions: int = 200
    mean_session_length: int = 4
    repeat_probability: float = 0.4
    family_zipf_slope: float = 0.8
    seed: int = 60902

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ConfigurationError("num_sessions must be >= 1")
        if self.mean_session_length < 1:
            raise ConfigurationError("mean_session_length must be >= 1")
        if not 0.0 <= self.repeat_probability <= 1.0:
            raise ConfigurationError("repeat_probability must be in [0, 1]")
        if self.family_zipf_slope < 0.0:
            raise ConfigurationError("family_zipf_slope must be >= 0")


class SessionTraceGenerator:
    """Generate a session-structured query stream from a query set."""

    def __init__(self, query_set: QuerySet, config: TraceConfig | None = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self._families: Dict[str, List[Query]] = {}
        for query in query_set.queries:
            self._families.setdefault(query.origin_id, []).append(query)
        if not self._families:
            raise QueryError("query set has no queries")

    def generate(self) -> List[Query]:
        """Produce the stream (queries repeat; order is the trace)."""
        cfg = self.config
        rng = random.Random(cfg.seed)
        family_ids = sorted(self._families)
        rng.shuffle(family_ids)  # popularity ordering
        family_sampler = ZipfSampler(family_ids, cfg.family_zipf_slope)

        stream: List[Query] = []
        for __ in range(cfg.num_sessions):
            family = self._families[family_sampler.sample(rng)]
            length = max(1, int(rng.expovariate(1.0 / cfg.mean_session_length)))
            previous: Query | None = None
            for __ in range(length):
                if previous is not None and rng.random() < cfg.repeat_probability:
                    query = previous           # verbatim re-issue
                else:
                    query = rng.choice(family)  # refinement within interest
                stream.append(query)
                previous = query
        return stream

    def locality_statistics(self, stream: List[Query]) -> Dict[str, float]:
        """Trace-study style statistics: repeat rate and family locality.

        * ``repeat_rate`` — fraction of queries identical to the
          immediately preceding query (the studies' headline number);
        * ``family_switch_rate`` — fraction of adjacent pairs that cross
          interest families (low = strong session locality);
        * ``distinct_fraction`` — distinct queries over stream length.
        """
        if not stream:
            return {"repeat_rate": 0.0, "family_switch_rate": 0.0, "distinct_fraction": 0.0}
        repeats = sum(
            1 for prev, cur in zip(stream, stream[1:]) if prev.query_id == cur.query_id
        )
        switches = sum(
            1 for prev, cur in zip(stream, stream[1:]) if prev.origin_id != cur.origin_id
        )
        pairs = max(1, len(stream) - 1)
        return {
            "repeat_rate": repeats / pairs,
            "family_switch_rate": switches / pairs,
            "distinct_fraction": len({q.query_id for q in stream}) / len(stream),
        }
