"""Query generation (paper Section 6.1) and workload shaping."""

from .generator import DistributionNeighbors, QueryGenerator
from .trace import SessionTraceGenerator, TraceConfig
from .workload import (
    interleave_training_testing,
    pattern_change_groups,
    random_split,
    without_repeats_stream,
    zipf_stream,
)

__all__ = [
    "DistributionNeighbors",
    "QueryGenerator",
    "SessionTraceGenerator",
    "TraceConfig",
    "interleave_training_testing",
    "pattern_change_groups",
    "random_split",
    "without_repeats_stream",
    "zipf_stream",
]
