"""English stop-word list.

The paper (Section 6) states: "The default stop-word-list in Lucene is
used for this purpose."  This module embeds exactly that list — the 33
words of Lucene's ``StandardAnalyzer.ENGLISH_STOP_WORDS_SET`` — so the
reproduction filters the same tokens the original system did.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

#: Lucene's default English stop words (StandardAnalyzer), verbatim.
LUCENE_STOP_WORDS: FrozenSet[str] = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "but", "by",
        "for", "if", "in", "into", "is", "it", "no", "not", "of",
        "on", "or", "such", "that", "the", "their", "then", "there",
        "these", "they", "this", "to", "was", "will", "with",
    }
)


def is_stop_word(token: str, stop_words: FrozenSet[str] = LUCENE_STOP_WORDS) -> bool:
    """Return ``True`` if *token* (case-insensitively) is a stop word."""
    return token.lower() in stop_words


def remove_stop_words(
    tokens: Iterable[str], stop_words: FrozenSet[str] = LUCENE_STOP_WORDS
) -> list[str]:
    """Filter stop words out of a token stream, preserving order.

    >>> remove_stop_words(["the", "quick", "fox"])
    ['quick', 'fox']
    """
    return [t for t in tokens if t.lower() not in stop_words]


def make_stop_word_set(words: Iterable[str]) -> FrozenSet[str]:
    """Build a custom stop-word set (lower-cased, deduplicated).

    Useful when reproducing on corpora in other languages or with a
    domain-specific list; everything downstream accepts the resulting
    frozen set wherever ``LUCENE_STOP_WORDS`` is accepted.
    """
    return frozenset(w.lower() for w in words)
