"""The end-to-end text analysis pipeline.

The paper preprocesses text "in the standard way: removing the terms in
the stop-word-list, and then stemming is applied to the remaining terms"
(Section 6).  :class:`Analyzer` packages tokenizer → stop-word filter →
stemmer into one object that both the centralized IR substrate and the
distributed systems share, so every system sees an identical term space.
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, List

from .stemmer import PorterStemmer
from .stopwords import LUCENE_STOP_WORDS
from .tokenizer import Tokenizer


class Analyzer:
    """Tokenize, filter stop words, and stem.

    Parameters
    ----------
    tokenizer:
        The :class:`~repro.text.tokenizer.Tokenizer` to use; defaults to
        the package default settings.
    stop_words:
        A frozen set of stop words; defaults to Lucene's list per the
        paper.  Pass ``frozenset()`` to disable stop-word removal.
    stemmer:
        A stemmer object exposing ``stem(word) -> str``; defaults to the
        from-scratch Porter stemmer.  Pass ``None`` to disable stemming.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        stop_words: FrozenSet[str] = LUCENE_STOP_WORDS,
        stemmer: PorterStemmer | None = None,
        enable_stemming: bool = True,
    ) -> None:
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.stop_words = stop_words
        self.stemmer = stemmer if stemmer is not None else PorterStemmer()
        self.enable_stemming = enable_stemming

    def analyze(self, text: str) -> List[str]:
        """Return the analyzed term sequence for *text*.

        Order and multiplicity are preserved so callers can compute term
        frequencies and positional statistics.

        A single pass with a per-call token → term memo: each distinct
        raw token pays the stop-word check and stem once per document
        instead of once per occurrence (``None`` marks a dropped token).

        >>> Analyzer().analyze("The retrieving peers are retrieving")
        ['retriev', 'peer', 'retriev']
        """
        terms = []
        memo: dict[str, str | None] = {}
        for token in self.tokenizer.iter_tokens(text):
            if token in memo:
                final = memo[token]
            elif token in self.stop_words:
                final = memo[token] = None
            else:
                final = self.stemmer.stem(token) if self.enable_stemming else token
                memo[token] = final if final else None
            if final:
                terms.append(final)
        return terms

    def term_frequencies(self, text: str) -> Counter:
        """Return a ``Counter`` of analyzed term → occurrence count."""
        return Counter(self.analyze(text))

    def analyze_query(self, text: str) -> List[str]:
        """Analyze a query string into a deduplicated term list.

        Queries in the paper are keyword sets; duplicates within one
        query carry no meaning, so they are removed (first occurrence
        kept, order preserved for determinism).
        """
        seen = set()
        out: List[str] = []
        for term in self.analyze(text):
            if term not in seen:
                seen.add(term)
                out.append(term)
        return out


#: Shared default analyzer (Lucene stop words + Porter stemming).
DEFAULT_ANALYZER = Analyzer()
