"""Porter stemming algorithm, implemented from scratch.

The paper (Section 5.2) applies "the stemming algorithm to unify terms by
removing the suffix, such as 'ed' and 'ing'".  In 2007-era IR that means
Porter's algorithm (M.F. Porter, "An algorithm for suffix stripping",
Program 14(3), 1980).  This is a faithful implementation of the original
1980 definition — steps 1a through 5b — with no external dependencies.

The public entry points are :func:`stem` (functional) and
:class:`PorterStemmer` (reusable object, useful when a caller wants to
swap in a different stemmer implementation behind the same interface).
"""

from __future__ import annotations

from functools import lru_cache

from ..perf.profile import PROFILE

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    """Return True if ``word[i]`` is a consonant in Porter's sense.

    A letter is a consonant if it is not a/e/i/o/u and is not a 'y'
    preceded by a consonant ('y' after a consonant acts as a vowel,
    e.g. the 'y' in "syzygy").
    """
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Compute Porter's *measure* m of a stem.

    Writing the stem as ``[C](VC)^m[V]`` where C is a maximal run of
    consonants and V a maximal run of vowels, m counts the VC pairs.
    E.g. m("tr") = 0, m("trouble") = 1, m("troubles") = 2.
    """
    m = 0
    i = 0
    n = len(stem)
    # Skip the optional initial consonant run.
    while i < n and _is_consonant(stem, i):
        i += 1
    # Count VC sequences.
    while i < n:
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        m += 1
        while i < n and _is_consonant(stem, i):
            i += 1
    return m


def _contains_vowel(stem: str) -> bool:
    """Return True if the stem contains at least one vowel."""
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    """Return True if the word ends with a doubled consonant (e.g. -tt)."""
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """Return True for a consonant-vowel-consonant ending where the final
    consonant is not w, x or y (the *o* condition of Porter's paper)."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


class PorterStemmer:
    """Reusable Porter stemmer.

    Words shorter than three characters are returned unchanged, as in
    Porter's reference implementation.

    The pipeline is pure, so each instance memoizes it with an
    ``lru_cache`` (the same treatment ``md5_hash`` got in the DHT
    layer): corpora repeat their vocabulary constantly, and re-running
    all eight suffix steps per token dominated analysis time.  Cache
    hits/misses are counted under ``stem.cache_*`` when :data:`PROFILE`
    is enabled.
    """

    #: Bound on distinct lower-cased tokens memoized per instance.
    CACHE_SIZE = 1 << 16

    def __init__(self) -> None:
        self._cached = lru_cache(maxsize=self.CACHE_SIZE)(self._stem_uncached)

    def stem(self, word: str) -> str:
        """Return the Porter stem of *word* (lower-cased)."""
        if not PROFILE.enabled:
            return self._cached(word.lower())
        before = self._cached.cache_info().hits
        result = self._cached(word.lower())
        if self._cached.cache_info().hits > before:
            PROFILE.count("stem.cache_hits")
        else:
            PROFILE.count("stem.cache_misses")
        return result

    def cache_info(self):
        """Hit/miss statistics of the memoized pipeline."""
        return self._cached.cache_info()

    def _stem_uncached(self, word: str) -> str:
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- step 1a: plurals ------------------------------------------------

    @staticmethod
    def _step1a(w: str) -> str:
        if w.endswith("sses"):
            return w[:-2]
        if w.endswith("ies"):
            return w[:-2]
        if w.endswith("ss"):
            return w
        if w.endswith("s"):
            return w[:-1]
        return w

    # -- step 1b: -ed / -ing ---------------------------------------------

    def _step1b(self, w: str) -> str:
        if w.endswith("eed"):
            if _measure(w[:-3]) > 0:
                return w[:-1]
            return w
        flag = False
        if w.endswith("ed") and _contains_vowel(w[:-2]):
            w = w[:-2]
            flag = True
        elif w.endswith("ing") and _contains_vowel(w[:-3]):
            w = w[:-3]
            flag = True
        if flag:
            if w.endswith(("at", "bl", "iz")):
                return w + "e"
            if _ends_double_consonant(w) and w[-1] not in "lsz":
                return w[:-1]
            if _measure(w) == 1 and _ends_cvc(w):
                return w + "e"
        return w

    # -- step 1c: -y -> -i -------------------------------------------------

    @staticmethod
    def _step1c(w: str) -> str:
        if w.endswith("y") and _contains_vowel(w[:-1]):
            return w[:-1] + "i"
        return w

    # -- steps 2-4: suffix tables ----------------------------------------

    _STEP2 = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"),
        ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
        ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
        ("iviti", "ive"), ("biliti", "ble"),
    )

    _STEP3 = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"),
        ("iciti", "ic"), ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    _STEP4 = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant",
        "ement", "ment", "ent", "ou", "ism", "ate", "iti", "ous",
        "ive", "ize",
    )

    def _step2(self, w: str) -> str:
        for suffix, replacement in self._STEP2:
            if w.endswith(suffix):
                stem = w[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return w
        return w

    def _step3(self, w: str) -> str:
        for suffix, replacement in self._STEP3:
            if w.endswith(suffix):
                stem = w[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return w
        return w

    def _step4(self, w: str) -> str:
        # Longest-match first: sort once by length descending.
        for suffix in sorted(self._STEP4, key=len, reverse=True):
            if w.endswith(suffix):
                stem = w[: -len(suffix)]
                if _measure(stem) > 1:
                    return stem
                return w
        # Special case: -ion only strips after s or t.
        if w.endswith("ion"):
            stem = w[:-3]
            if stem and stem[-1] in "st" and _measure(stem) > 1:
                return stem
        return w

    # -- step 5: tidy up ---------------------------------------------------

    @staticmethod
    def _step5a(w: str) -> str:
        if w.endswith("e"):
            stem = w[:-1]
            m = _measure(stem)
            if m > 1:
                return stem
            if m == 1 and not _ends_cvc(stem):
                return stem
        return w

    @staticmethod
    def _step5b(w: str) -> str:
        if _measure(w) > 1 and _ends_double_consonant(w) and w.endswith("l"):
            return w[:-1]
        return w


_SHARED = PorterStemmer()


def stem(word: str) -> str:
    """Stem a single word with the module-level shared stemmer.

    >>> stem("caresses")
    'caress'
    >>> stem("running")
    'run'
    >>> stem("relational")
    'relat'
    """
    return _SHARED.stem(word)


def stem_all(words: list[str]) -> list[str]:
    """Stem every word in a list, preserving order."""
    return [_SHARED.stem(w) for w in words]
