"""Text-processing substrate: tokenization, stop words, stemming.

This package gives every retrieval system in the reproduction an
identical view of the term space — the paper's "standard" preprocessing
(Lucene stop-word list + stemming) is implemented once here and shared.
"""

from .analyzer import DEFAULT_ANALYZER, Analyzer
from .stemmer import PorterStemmer, stem, stem_all
from .stopwords import (
    LUCENE_STOP_WORDS,
    is_stop_word,
    make_stop_word_set,
    remove_stop_words,
)
from .tokenizer import DEFAULT_TOKENIZER, Tokenizer, tokenize

__all__ = [
    "Analyzer",
    "DEFAULT_ANALYZER",
    "DEFAULT_TOKENIZER",
    "LUCENE_STOP_WORDS",
    "PorterStemmer",
    "Tokenizer",
    "is_stop_word",
    "make_stop_word_set",
    "remove_stop_words",
    "stem",
    "stem_all",
    "tokenize",
]
