"""Tokenization for document and query text.

A deliberately simple, deterministic tokenizer in the spirit of Lucene's
``StandardAnalyzer`` as the paper would have used it: split on
non-alphanumeric characters, lower-case, and drop pure numbers and
too-short tokens.  All knobs are explicit constructor arguments.
"""

from __future__ import annotations

import re
from typing import Iterator, List

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


class Tokenizer:
    """Split raw text into lower-cased word tokens.

    Parameters
    ----------
    min_length:
        Tokens shorter than this are dropped (default 2 — single letters
        carry no retrieval signal and inflate the term space).
    max_length:
        Tokens longer than this are dropped (default 40, guards against
        base64 blobs and URLs masquerading as terms).
    keep_numbers:
        When ``False`` (the default) purely numeric tokens are dropped;
        mixed alphanumerics like ``mp3`` are always kept.
    """

    def __init__(
        self,
        min_length: int = 2,
        max_length: int = 40,
        keep_numbers: bool = False,
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        self.min_length = min_length
        self.max_length = max_length
        self.keep_numbers = keep_numbers

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens from *text* one at a time (lazy)."""
        for match in _TOKEN_RE.finditer(text):
            token = match.group().lower()
            if not self.min_length <= len(token) <= self.max_length:
                continue
            if not self.keep_numbers and token.isdigit():
                continue
            yield token

    def tokenize(self, text: str) -> List[str]:
        """Return the full token list for *text*.

        >>> Tokenizer().tokenize("Peer-to-Peer Text Retrieval!")
        ['peer', 'to', 'peer', 'text', 'retrieval']
        """
        return list(self.iter_tokens(text))


#: A shared default tokenizer used across the package.
DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> List[str]:
    """Tokenize with the package default settings."""
    return DEFAULT_TOKENIZER.tokenize(text)
