"""Okapi BM25 — an alternative centralized reference weighting.

The paper's centralized system uses "a classic TF·IDF scheme"; BM25 is
the stronger modern reference, included here as an *ablation of the
reference itself*: how much of the distributed systems' measured gap to
"centralized" is an artifact of the reference's weighting choice?

Standard Robertson/Spärck-Jones formulation::

    idf(t)   = ln( (N - n_t + 0.5) / (n_t + 0.5) + 1 )
    score(D) = Σ_t idf(t) · tf · (k1 + 1) / (tf + k1·(1 - b + b·|D|/avgdl))
"""

from __future__ import annotations

import math
from typing import Dict

from ..corpus.corpus import Corpus
from ..corpus.relevance import Query
from ..ir.inverted_index import InvertedIndex
from ..ir.ranking import RankedList


class BM25System:
    """Full-knowledge BM25 retrieval (drop-in alternative to
    :class:`~repro.ir.centralized.CentralizedSystem`).

    Parameters follow the common defaults k1 = 1.2, b = 0.75.
    """

    def __init__(self, corpus: Corpus, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be >= 0")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self.corpus = corpus
        self.index = InvertedIndex.from_corpus(corpus)
        self.k1 = k1
        self.b = b
        self._avgdl = corpus.average_document_length

    def idf(self, term: str) -> float:
        """BM25's smoothed IDF (never negative)."""
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        return math.log((n - df + 0.5) / (df + 0.5) + 1.0)

    def search(self, query: Query, top_k: int | None = None) -> RankedList:
        """Rank all documents matching any query term."""
        scores: Dict[str, float] = {}
        for term in query.terms:
            idf = self.idf(term)
            if idf <= 0.0:
                continue
            for posting in self.index.postings(term):
                tf = posting.raw_tf
                denom = tf + self.k1 * (
                    1.0 - self.b + self.b * posting.doc_length / self._avgdl
                )
                gain = idf * tf * (self.k1 + 1.0) / denom
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + gain
        ranked = RankedList(scores)
        return ranked if top_k is None else ranked.truncate(top_k)
