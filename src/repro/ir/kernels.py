"""Vectorized scoring kernels over columnar posting stores (DESIGN.md §13).

:class:`~repro.ir.postings.ColumnarPostings` already keeps a slot's
postings as parallel ``array`` columns; this module views those columns
through **zero-copy** ``np.frombuffer`` and scores an entire slot per
query term in one vectorized pass — replacing the per-posting python
loop of the query processor's phase B with a handful of array ops.

Bit-identity contract
---------------------

The kernels are an off-switchable acceleration, held to the same
standard as every other optimization layer in this repo: documents,
scores, and tie-broken order must be **bit-identical** to the scalar
path.  The argument:

* the scalar contribution is ``qw * (ntf * idf)`` (``document_weight``
  computes ``ntf * idf`` first, then the caller multiplies by ``qw``);
  the kernel evaluates the same two multiplications elementwise in the
  same order, and IEEE-754 multiplication is deterministic;
* a document appears at most once per term slot, so per-document
  accumulation order is *term order* in both shapes; the kernel adds
  one term's contributions at a time (``np.add.at`` with per-call
  unique indices), which is exactly that order;
* the final normalization ``dot / sqrt(len)`` uses ``np.sqrt`` and
  float64 division, both correctly rounded exactly like ``math.sqrt``
  and python's ``/``;
* document lengths are integers < 2**53, exact in float64.

``tests/ir/test_kernel_equivalence.py`` proves the property with
hypothesis; the sim oracle's sixth comparison replays a full system
flow through both kernels.

View lifetime
-------------

Views are cached on the store's :class:`~repro.ir.postings.KernelScratch`,
keyed by slot version, so a hot slot pays ``np.frombuffer`` once per
*mutation* rather than once per query.  The store drops the scratch
before any column resize (``array`` forbids resizing while a buffer is
exported) and replication deep-copies it to an empty scratch — see
``KernelScratch`` for the full contract.  Callers must treat views as
read-only and must not hold them across store mutations.

This module imports numpy lazily through :mod:`repro.perf.compat`; with
numpy absent every entry point returns ``None`` and callers fall back
to the scalar path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..perf.compat import numpy_or_none
from .postings import ColumnarPostings
from .weighting import TfIdfWeighting, idf


def slot_columns(store: ColumnarPostings):
    """Zero-copy numpy views ``(doc_index, ntf, length, impact)`` over
    *store*'s columns, cached per slot version.  ``None`` without numpy.
    """
    np = numpy_or_none()
    if np is None:
        return None
    scratch = store.kernel_scratch
    if scratch.views is not None and scratch.version == store.version:
        return scratch.views
    n = len(store)
    # array('q') is always 8 bytes; array('L') is platform-sized.
    length_dtype = np.uint32 if store._length.itemsize == 4 else np.uint64
    if n == 0:
        views = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=length_dtype),
            np.empty(0, dtype=np.float64),
        )
    else:
        views = (
            np.frombuffer(store._doc_index, dtype=np.int64),
            np.frombuffer(store._ntf, dtype=np.float64),
            np.frombuffer(store._length, dtype=length_dtype),
            np.frombuffer(store._impact, dtype=np.float64),
        )
    scratch.views = views
    scratch.version = store.version
    return views


def slot_contributions(
    store: ColumnarPostings,
    query_weight: float,
    document_frequency: int,
    corpus_size: int,
):
    """Score one whole slot against a query term in one vectorized pass.

    Returns ``(doc_index, contribution, length)`` arrays — the per-unit
    inputs phase B accumulates — or ``None`` without numpy.  Each
    contribution is ``qw * (ntf * idf)``, the scalar path's expression
    with the scalar path's operation order.
    """
    views = slot_columns(store)
    if views is None:
        return None
    doc_index, ntf, length, __ = views
    idf_value = idf(corpus_size, document_frequency)
    contribution = query_weight * (ntf * idf_value)
    return doc_index, contribution, length


def rescore(
    term_infos: Sequence[tuple],
    weighting: TfIdfWeighting,
    survivors: Optional[Set[str]] = None,
) -> Optional[Dict[str, float]]:
    """Vectorized phase-B rescore: final ``{doc_id: score}`` for every
    candidate (restricted to *survivors* when given), bit-identical to
    the scalar accumulation loops.

    *term_infos* rows are the query processor's
    ``(term, view, query_weight, effective_df, bound)`` tuples in legacy
    encounter order.  Returns ``None`` — caller falls back to the
    scalar path — when numpy is unavailable, any term's slot is not
    columnar, or the slots do not share one doc table.
    """
    np = numpy_or_none()
    if np is None:
        return None
    stores: List[ColumnarPostings] = []
    table = None
    for info in term_infos:
        store = info[1].columnar_store()
        if store is None:
            return None
        if table is None:
            table = store._docs
        elif store._docs is not table:
            return None
        stores.append(store)
    if not stores:
        return {}
    if survivors is not None:
        if not survivors:
            return {}
        survivor_index = np.array(
            sorted(
                idx
                for idx in (table.index_of(doc_id) for doc_id in survivors)
                if idx is not None
            ),
            dtype=np.int64,
        )

    corpus_size = weighting.corpus_size
    selected: List[Tuple[object, object, object]] = []
    for store, info in zip(stores, term_infos):
        qw, df = info[2], info[3]
        doc_index, contribution, length = slot_contributions(
            store, qw, df, corpus_size
        )
        if survivors is not None:
            mask = np.isin(doc_index, survivor_index)
            doc_index = doc_index[mask]
            contribution = contribution[mask]
            length = length[mask]
        if doc_index.size:
            selected.append((doc_index, contribution, length))
    if not selected:
        return {}

    candidates = np.unique(np.concatenate([s[0] for s in selected]))
    dot = np.zeros(candidates.size, dtype=np.float64)
    lengths = np.zeros(candidates.size, dtype=np.int64)
    for doc_index, contribution, length in selected:
        position = np.searchsorted(candidates, doc_index)
        # Indices are unique within one term slot, so each np.add.at
        # call touches distinct positions: accumulation is per-document
        # in term order — the scalar loops' exact order.
        np.add.at(dot, position, contribution)
        lengths[position] = length
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(
            lengths > 0, dot / np.sqrt(lengths.astype(np.float64)), 0.0
        )
    doc_of = table.doc_id
    return {
        doc_of(int(index)): float(score)
        for index, score in zip(candidates, scores)
    }
