"""Term-weighting schemes.

The paper's Section 4 uses the classic formula

    w_ik = t_ik × log(N / n_k)

where ``t_ik`` is the length-normalized term frequency, ``N`` the corpus
size, and ``n_k`` the document frequency.  The centralized reference
system knows the true N and n_k; the distributed systems substitute a
fixed large N ("a sufficiently large N") and the *indexed document
frequency* n'_k counted from the retrieved inverted list.  Both variants
are expressed through :class:`TfIdfWeighting` with different statistics
providers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def idf(corpus_size: int, document_frequency: int) -> float:
    """``log(N / n_k)`` with guards for degenerate inputs.

    Terms appearing in zero documents get IDF 0 (they cannot contribute
    to any similarity anyway), and a document frequency exceeding the
    assumed corpus size is clamped so the logarithm never goes negative
    — this can happen in the distributed setting only if the caller
    configured an unrealistically small assumed N.
    """
    if document_frequency <= 0 or corpus_size <= 0:
        return 0.0
    ratio = corpus_size / document_frequency
    if ratio < 1.0:
        ratio = 1.0
    return math.log(ratio)


def tf_idf(normalized_tf: float, corpus_size: int, document_frequency: int) -> float:
    """The paper's ``w_ik = t_ik × log(N / n_k)``."""
    return normalized_tf * idf(corpus_size, document_frequency)


@dataclass(frozen=True)
class TfIdfWeighting:
    """A term-weighting scheme bound to a corpus-size assumption.

    Parameters
    ----------
    corpus_size:
        N — the true corpus size (centralized) or the assumed large N
        (distributed, paper Section 4).
    """

    corpus_size: int

    def document_weight(self, normalized_tf: float, document_frequency: int) -> float:
        """Weight of a term in a document."""
        return tf_idf(normalized_tf, self.corpus_size, document_frequency)

    def query_weight(self, document_frequency: int) -> float:
        """Weight of a term in a query.

        Keyword queries carry no meaningful term frequency (each keyword
        appears once), so the query-side weight is the IDF alone — the
        standard choice for short keyword queries and the one that makes
        the ranking invariant to the absolute scale of N, as Section 4
        argues.
        """
        return idf(self.corpus_size, document_frequency)
