"""Centralized IR substrate: indexing, weighting, similarity, ranking."""

from .bm25 import BM25System
from .centralized import CentralizedSystem
from .inverted_index import InvertedIndex, Posting
from .postings import (
    ColumnarPostings,
    DocTable,
    LegacyPostings,
    posting_impact,
)
from .ranking import RankedList, ScoredDoc
from .similarity import (
    consolidate,
    cosine_similarity,
    lee_similarity,
    weight_norm,
)
from .weighting import TfIdfWeighting, idf, tf_idf

__all__ = [
    "BM25System",
    "CentralizedSystem",
    "ColumnarPostings",
    "DocTable",
    "InvertedIndex",
    "LegacyPostings",
    "Posting",
    "posting_impact",
    "RankedList",
    "ScoredDoc",
    "TfIdfWeighting",
    "consolidate",
    "cosine_similarity",
    "idf",
    "lee_similarity",
    "tf_idf",
    "weight_norm",
]
