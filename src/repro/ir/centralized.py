"""The centralized reference system.

Paper Section 6: "The centralized system acts as an ideal distributed
system with perfect global knowledge, including the exact document
frequency and total number of documents in the corpus.  (We used a
classic TF·IDF scheme in the centralized system)."

All precision/recall figures in the paper are reported *relative to this
system*, so it is both the upper baseline and the oracle used by the
query generator's phase 2 (ranked lists RL and RL').
"""

from __future__ import annotations

from typing import Dict, Iterable, Literal

from ..corpus.corpus import Corpus
from ..corpus.relevance import Query
from ..exceptions import QueryError
from .inverted_index import InvertedIndex
from .ranking import RankedList
from .similarity import cosine_similarity, lee_similarity, weight_norm
from .weighting import TfIdfWeighting

Normalization = Literal["lee", "cosine"]


class CentralizedSystem:
    """Full-knowledge TF·IDF retrieval over an in-memory inverted index.

    Parameters
    ----------
    corpus:
        The document collection; indexed in full at construction.
    normalization:
        ``"lee"`` (default) uses the same Lee-et-al. similarity as the
        distributed systems, which isolates the effect of *partial
        indexing* (the paper's variable of interest) from the choice of
        normalization.  ``"cosine"`` gives the textbook cosine variant
        for ablation.
    """

    def __init__(self, corpus: Corpus, normalization: Normalization = "lee") -> None:
        self.corpus = corpus
        self.index = InvertedIndex.from_corpus(corpus)
        self.weighting = TfIdfWeighting(corpus_size=self.index.num_documents)
        if normalization not in ("lee", "cosine"):
            raise QueryError(f"unknown normalization: {normalization!r}")
        self.normalization = normalization
        self._doc_norms: Dict[str, float] | None = None

    # -- internals -------------------------------------------------------

    def _build_norms(self) -> Dict[str, float]:
        """Full document-vector norms (cosine mode only, built lazily)."""
        if self._doc_norms is None:
            norms: Dict[str, Dict[str, float]] = {}
            for term in self.index.terms():
                df = self.index.document_frequency(term)
                for posting in self.index.postings(term):
                    norms.setdefault(posting.doc_id, {})[term] = (
                        self.weighting.document_weight(posting.normalized_tf, df)
                    )
            self._doc_norms = {d: weight_norm(w) for d, w in norms.items()}
        return self._doc_norms

    def _query_weights(self, terms: Iterable[str]) -> Dict[str, float]:
        weights = {}
        for term in terms:
            df = self.index.document_frequency(term)
            if df > 0:
                weights[term] = self.weighting.query_weight(df)
        return weights

    # -- public API ----------------------------------------------------------

    def search(self, query: Query, top_k: int | None = None) -> RankedList:
        """Rank all matching documents for *query*.

        Returns the full ranked list when ``top_k`` is None (the query
        generator needs deep lists); otherwise truncates to *top_k*.
        """
        query_weights = self._query_weights(query.terms)
        doc_weights: Dict[str, Dict[str, float]] = {}
        for term, qw in query_weights.items():
            df = self.index.document_frequency(term)
            for posting in self.index.postings(term):
                doc_weights.setdefault(posting.doc_id, {})[term] = (
                    self.weighting.document_weight(posting.normalized_tf, df)
                )

        scores: Dict[str, float] = {}
        if self.normalization == "cosine":
            norms = self._build_norms()
            for doc_id, weights in doc_weights.items():
                scores[doc_id] = cosine_similarity(
                    query_weights, weights, norms.get(doc_id, 0.0)
                )
        else:
            for doc_id, weights in doc_weights.items():
                scores[doc_id] = lee_similarity(
                    query_weights, weights, self.index.doc_length(doc_id)
                )

        ranked = RankedList(scores)
        return ranked if top_k is None else ranked.truncate(top_k)
