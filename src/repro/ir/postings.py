"""Columnar posting storage for distributed term slots.

The seed implementation kept each indexing peer's inverted list as a
dict of per-posting objects; every fetch materialized and every scoring
pass chased one heap object per posting.  This module stores a slot's
postings as parallel columns instead:

* an ``array('q')`` of doc-id *indices* into a shared interned
  :class:`DocTable` (strings stored once per process, not once per
  posting);
* an ``array('q')`` of raw term frequencies and an ``array('L')`` of
  document lengths (u32 semantics — lengths are clamped to >= 0 on
  ingest; a non-positive length scores 0 either way);
* an ``array('d')`` of precomputed normalized term frequencies and
  per-posting *impacts* (``ntf / sqrt(len)`` — a posting's score
  contribution per unit of query weight).

Alongside the columns each store incrementally maintains the slot
aggregates the query processor's early-termination path needs:

* the indexed document frequency (column length);
* ``max_impact`` — an upper bound on any posting's impact, updated on
  every publish and lazily recomputed after a removal that may have
  deleted the maximum;
* a **version** counter drawn from a process-global monotone sequence,
  bumped on every mutation.  Because the sequence is global, two slot
  states that report the same version are guaranteed to hold identical
  postings — even across deep copies (replication) and slot lineages —
  which is what makes version equality a sound query-result-cache
  validity check.

Column order mirrors dict semantics exactly — insertion order, in-place
overwrite keeps a posting's position, removal shifts the tail — so a
columnar slot and a legacy dict slot enumerate postings identically and
the two backends produce bit-identical score accumulation order.

:class:`LegacyPostings` is the retained reference backend with the same
interface; differential tests run both.  This module must not import
:mod:`repro.core` (the slot layer converts rows to ``PostingEntry``).
"""

from __future__ import annotations

import itertools
from array import array
from math import sqrt
from typing import Dict, Iterator, List, Optional, Tuple

#: One posting as a plain row: (doc_id, owner_peer, raw_tf, doc_length).
PostingRow = Tuple[str, int, int, int]

#: One impact-ordered scoring row: (doc_id, normalized_tf, doc_length, impact).
ImpactRow = Tuple[str, float, int, float]

# Process-global version sequence (see module docstring: global
# monotonicity is what makes "same version => same content" hold across
# replicas and recreated slots).
_VERSIONS = itertools.count(1)


def next_version() -> int:
    """Draw the next globally-unique slot version."""
    return next(_VERSIONS)


def posting_impact(raw_tf: int, doc_length: int) -> float:
    """``ntf / sqrt(len)`` — the score a posting contributes per unit of
    combined query/IDF weight; 0 for degenerate lengths, matching the
    scoring guard in the query processor."""
    if doc_length <= 0:
        return 0.0
    return (raw_tf / doc_length) / sqrt(doc_length)


class DocTable:
    """Append-only doc-id intern table shared by every columnar slot.

    Interning maps each document id string to a small integer index so
    posting columns store 8-byte ints instead of string references.  The
    table is append-only and therefore safe to *share* rather than copy:
    ``__deepcopy__`` returns ``self`` so replicating a slot (the
    replication manager deep-copies node stores) does not duplicate the
    registry per replica.
    """

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._ids: List[str] = []

    def intern(self, doc_id: str) -> int:
        """Index of *doc_id*, assigning the next slot on first sight."""
        idx = self._index.get(doc_id)
        if idx is None:
            idx = len(self._ids)
            self._index[doc_id] = idx
            self._ids.append(doc_id)
        return idx

    def doc_id(self, index: int) -> str:
        """The document id interned at *index*."""
        return self._ids[index]

    def index_of(self, doc_id: str) -> Optional[int]:
        """The interned index of *doc_id*, or ``None`` if never seen."""
        return self._index.get(doc_id)

    def __len__(self) -> int:
        return len(self._ids)

    def __deepcopy__(self, memo) -> "DocTable":
        return self


#: Default shared intern table (one per process is the point).
GLOBAL_DOC_TABLE = DocTable()


class KernelScratch:
    """Per-store scratch slot for :mod:`repro.ir.kernels` column views.

    The vectorized kernels build zero-copy ``np.frombuffer`` views over
    a store's columns and cache them here, keyed by the slot version.
    Two hard constraints shape this object:

    * ``array`` refuses to **resize** while any view exports its buffer
      (``BufferError``), so the store drops the scratch at the top of
      every mutation — before the column resize — releasing the export;
    * replication deep-copies node stores, and a copied view would
      alias the *original* buffers, so ``__deepcopy__`` yields a fresh
      empty scratch instead of copying anything.
    """

    __slots__ = ("version", "views")

    def __init__(self) -> None:
        self.version = -1
        self.views: Optional[tuple] = None

    def drop(self) -> None:
        """Release the cached views (and their buffer exports)."""
        if self.views is not None:
            self.views = None
            self.version = -1

    def __deepcopy__(self, memo) -> "KernelScratch":
        return KernelScratch()


class ColumnarPostings:
    """Parallel-array posting store with incremental slot aggregates."""

    def __init__(self, doc_table: Optional[DocTable] = None) -> None:
        self._docs = doc_table if doc_table is not None else GLOBAL_DOC_TABLE
        self._doc_index = array("q")
        self._raw_tf = array("q")
        self._length = array("L")
        self._ntf = array("d")
        self._impact = array("d")
        # Owner ids may exceed 64 bits (the ring width is configurable up
        # to 128), so they live in a plain list beside the arrays.
        self._owner: List[int] = []
        self._pos: Dict[str, int] = {}
        self._max_impact = 0.0
        self._max_dirty = False
        self._version = next_version()
        self.kernel_scratch = KernelScratch()

    # -- aggregates ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Globally-unique content version (bumped on every mutation)."""
        return self._version

    @property
    def max_impact(self) -> float:
        """Upper bound on any stored posting's impact."""
        if self._max_dirty:
            self._max_impact = max(self._impact, default=0.0)
            self._max_dirty = False
        return self._max_impact

    def __len__(self) -> int:
        return len(self._doc_index)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._pos

    # -- mutation -----------------------------------------------------------

    def add(self, doc_id: str, owner_peer: int, raw_tf: int, doc_length: int) -> None:
        """Insert or overwrite the posting for *doc_id* (dict semantics:
        an overwrite keeps the posting's enumeration position)."""
        self.kernel_scratch.drop()
        length = doc_length if doc_length > 0 else 0
        ntf = raw_tf / doc_length if doc_length > 0 else 0.0
        impact = posting_impact(raw_tf, doc_length)
        row = self._pos.get(doc_id)
        if row is None:
            self._pos[doc_id] = len(self._doc_index)
            self._doc_index.append(self._docs.intern(doc_id))
            self._owner.append(owner_peer)
            self._raw_tf.append(raw_tf)
            self._length.append(length)
            self._ntf.append(ntf)
            self._impact.append(impact)
        else:
            if self._impact[row] >= self._max_impact:
                self._max_dirty = True
            self._owner[row] = owner_peer
            self._raw_tf[row] = raw_tf
            self._length[row] = length
            self._ntf[row] = ntf
            self._impact[row] = impact
        if not self._max_dirty and impact > self._max_impact:
            self._max_impact = impact
        self._version = next_version()

    def remove(self, doc_id: str) -> Optional[PostingRow]:
        """Delete and return the posting for *doc_id* (``None`` if absent).

        Removal shifts the tail left — O(n), acceptable for the rare
        unpublish during learning replacement — so enumeration order
        stays identical to a dict's.
        """
        self.kernel_scratch.drop()
        row = self._pos.pop(doc_id, None)
        if row is None:
            return None
        removed = (
            doc_id,
            self._owner[row],
            self._raw_tf[row],
            self._length[row],
        )
        if self._impact[row] >= self._max_impact:
            self._max_dirty = True
        del self._doc_index[row], self._raw_tf[row], self._length[row]
        del self._ntf[row], self._impact[row], self._owner[row]
        for shifted_doc, pos in self._pos.items():
            if pos > row:
                self._pos[shifted_doc] = pos - 1
        self._version = next_version()
        return removed

    # -- reads --------------------------------------------------------------

    def lookup(self, doc_id: str) -> Optional[PostingRow]:
        """The posting row for *doc_id*, or ``None``."""
        row = self._pos.get(doc_id)
        if row is None:
            return None
        return (doc_id, self._owner[row], self._raw_tf[row], self._length[row])

    def scoring_lookup(self, doc_id: str) -> Optional[Tuple[float, int]]:
        """``(normalized_tf, doc_length)`` for *doc_id*, or ``None`` —
        the two inputs the scorer needs, straight from the columns."""
        row = self._pos.get(doc_id)
        if row is None:
            return None
        return (self._ntf[row], self._length[row])

    def rows(self) -> Iterator[PostingRow]:
        """All postings in insertion (dict-equivalent) order."""
        docs = self._docs
        for i in range(len(self._doc_index)):
            yield (
                docs.doc_id(self._doc_index[i]),
                self._owner[i],
                self._raw_tf[i],
                self._length[i],
            )

    def impact_rows(self) -> List[ImpactRow]:
        """Scoring rows sorted by descending impact, doc-id tie-break —
        the enumeration order of the early-termination path."""
        docs = self._docs
        rows = [
            (docs.doc_id(self._doc_index[i]), self._ntf[i], self._length[i], self._impact[i])
            for i in range(len(self._doc_index))
        ]
        rows.sort(key=lambda r: (-r[3], r[0]))
        return rows


class LegacyPostings:
    """The seed dict-of-rows posting store, retained as the reference
    backend: same interface as :class:`ColumnarPostings`, with the slot
    aggregates computed on demand instead of incrementally."""

    def __init__(self) -> None:
        self._rows: Dict[str, Tuple[int, int, int]] = {}
        self._version = next_version()

    @property
    def version(self) -> int:
        return self._version

    @property
    def max_impact(self) -> float:
        return max(
            (posting_impact(tf, length) for __, tf, length in self._rows.values()),
            default=0.0,
        )

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._rows

    def add(self, doc_id: str, owner_peer: int, raw_tf: int, doc_length: int) -> None:
        self._rows[doc_id] = (owner_peer, raw_tf, doc_length)
        self._version = next_version()

    def remove(self, doc_id: str) -> Optional[PostingRow]:
        row = self._rows.pop(doc_id, None)
        if row is None:
            return None
        self._version = next_version()
        return (doc_id, row[0], row[1], row[2])

    def lookup(self, doc_id: str) -> Optional[PostingRow]:
        row = self._rows.get(doc_id)
        if row is None:
            return None
        return (doc_id, row[0], row[1], row[2])

    def scoring_lookup(self, doc_id: str) -> Optional[Tuple[float, int]]:
        row = self._rows.get(doc_id)
        if row is None:
            return None
        __, tf, length = row
        return (tf / length if length > 0 else 0.0, length)

    def rows(self) -> Iterator[PostingRow]:
        for doc_id, (owner, tf, length) in self._rows.items():
            yield (doc_id, owner, tf, length)

    def impact_rows(self) -> List[ImpactRow]:
        rows = [
            (
                doc_id,
                tf / length if length > 0 else 0.0,
                length if length > 0 else 0,
                posting_impact(tf, length),
            )
            for doc_id, (__, tf, length) in self._rows.items()
        ]
        rows.sort(key=lambda r: (-r[3], r[0]))
        return rows
