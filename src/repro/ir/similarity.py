"""Query-document similarity functions.

The paper adopts the *second method* of Lee, Chuang and Seamons
("Document ranking and the vector-space model", IEEE Software 1997):

    sim(Q, D_i) = ( Σ_j  w_Q,j × w_i,j ) / sqrt(number of terms in D_i)

i.e. an inner product normalized by the square root of the document's
term count (a cheap surrogate for full cosine normalization — "This
formula simplifies the normalization ... its performance is shown to be
almost the same as the original formula").  Full cosine similarity is
also provided for the centralized reference and for ablations.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping


def lee_similarity(
    query_weights: Mapping[str, float],
    doc_weights: Mapping[str, float],
    doc_term_count: int,
) -> float:
    """Lee et al. second-method similarity (the paper's formula).

    Parameters
    ----------
    query_weights:
        term → query-side weight (terms absent from the mapping have
        weight zero).
    doc_weights:
        term → document-side weight for the *matching* terms; terms of
        the document that the distributed index never published simply
        do not appear here, which is exactly the "w_ij erroneously
        assumed to be zero" effect Section 4 describes.
    doc_term_count:
        "number of terms in D_i" — available in the inverted-list
        metadata.  Zero-length documents score 0.
    """
    if doc_term_count <= 0:
        return 0.0
    dot = 0.0
    for term, qw in query_weights.items():
        dw = doc_weights.get(term)
        if dw is not None:
            dot += qw * dw
    return dot / math.sqrt(doc_term_count)


def cosine_similarity(
    query_weights: Mapping[str, float],
    doc_weights: Mapping[str, float],
    doc_norm: float,
) -> float:
    """Classic cosine similarity with a precomputed document norm.

    Used by the centralized reference in "full cosine" mode and by the
    ablation bench comparing the two normalizations.
    """
    if doc_norm <= 0.0:
        return 0.0
    query_norm = math.sqrt(sum(w * w for w in query_weights.values()))
    if query_norm <= 0.0:
        return 0.0
    dot = 0.0
    for term, qw in query_weights.items():
        dw = doc_weights.get(term)
        if dw is not None:
            dot += qw * dw
    return dot / (doc_norm * query_norm)


def weight_norm(weights: Mapping[str, float]) -> float:
    """Euclidean norm of a weight vector."""
    return math.sqrt(sum(w * w for w in weights.values()))


def consolidate(entries: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Pivot term → (doc → weight) postings into doc → (term → weight).

    This is the querying peer's "index entries for the same document are
    consolidated" step (paper Section 3) factored out so both the
    distributed systems and tests share one implementation.
    """
    by_doc: Dict[str, Dict[str, float]] = {}
    for term, postings in entries.items():
        for doc_id, weight in postings.items():
            by_doc.setdefault(doc_id, {})[term] = weight
    return by_doc
