"""Centralized inverted index.

The full-knowledge index underlying the paper's "ideal" reference
system: every analyzed term of every document is indexed, with exact
document frequencies and the exact corpus size.  The distributed
systems' indexing peers hold *partial* versions of the same posting
structure (see :mod:`repro.core.metadata`); this module is the complete
centralized substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..corpus.corpus import Corpus
from ..corpus.document import Document


@dataclass(frozen=True)
class Posting:
    """One inverted-list entry.

    ``normalized_tf`` is the paper's t_ik (raw frequency over document
    length); ``doc_length`` the analyzed term-occurrence count of the
    document (used by Lee-style normalization as "number of terms").
    """

    doc_id: str
    raw_tf: int
    normalized_tf: float
    doc_length: int


class InvertedIndex:
    """term → list of :class:`Posting`, plus exact global statistics."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[str, Posting]] = {}
        self._doc_count = 0
        self._doc_lengths: Dict[str, int] = {}

    @classmethod
    def from_corpus(cls, corpus: Corpus) -> "InvertedIndex":
        """Index every document of *corpus* in full."""
        index = cls()
        for doc in corpus:
            index.add_document(doc)
        return index

    def add_document(self, doc: Document) -> None:
        """Index all analyzed terms of *doc*."""
        if doc.doc_id in self._doc_lengths:
            return
        self._doc_lengths[doc.doc_id] = doc.length
        self._doc_count += 1
        for term, raw in doc.term_freqs.items():
            self._postings.setdefault(term, {})[doc.doc_id] = Posting(
                doc_id=doc.doc_id,
                raw_tf=raw,
                normalized_tf=raw / doc.length if doc.length else 0.0,
                doc_length=doc.length,
            )

    def remove_document(self, doc: Document) -> None:
        """Remove *doc* from every posting list (for churn experiments)."""
        if doc.doc_id not in self._doc_lengths:
            return
        del self._doc_lengths[doc.doc_id]
        self._doc_count -= 1
        for term in list(doc.term_freqs):
            postings = self._postings.get(term)
            if postings is not None:
                postings.pop(doc.doc_id, None)
                if not postings:
                    del self._postings[term]

    # -- statistics ---------------------------------------------------------

    @property
    def num_documents(self) -> int:
        """Exact corpus size N."""
        return self._doc_count

    @property
    def num_terms(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    @property
    def total_postings(self) -> int:
        """Total posting entries across all terms (index size)."""
        return sum(len(p) for p in self._postings.values())

    def document_frequency(self, term: str) -> int:
        """Exact n_k — number of documents containing *term*."""
        return len(self._postings.get(term, ()))

    def postings(self, term: str) -> List[Posting]:
        """The posting list for *term* (empty list if unindexed)."""
        return list(self._postings.get(term, {}).values())

    def doc_length(self, doc_id: str) -> int:
        """Analyzed length of a document, 0 if unknown."""
        return self._doc_lengths.get(doc_id, 0)

    def terms(self) -> Iterable[str]:
        """All indexed terms."""
        return self._postings.keys()

    def __contains__(self, term: str) -> bool:
        return term in self._postings
