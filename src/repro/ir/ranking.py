"""Ranked result lists.

A :class:`RankedList` is the universal result currency of the
reproduction: the centralized system, SPRITE, eSearch, the query
generator's phase 2 (which reasons about rank positions), and the
evaluation metrics all consume it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Set, Tuple


def _rank_key(kv: Tuple[str, float]) -> Tuple[float, str]:
    """Sort key realizing the canonical order: descending score,
    ascending doc id."""
    return (-kv[1], kv[0])


@dataclass(frozen=True)
class ScoredDoc:
    """One ranked entry: a document id with its similarity score."""

    doc_id: str
    score: float


class RankedList:
    """An immutable, deterministic ranked list of documents.

    Sorting is by descending score with ascending doc-id tie-break, so
    two systems computing identical scores always produce identical
    orderings — essential for reproducible experiments.
    """

    def __init__(self, scored: Mapping[str, float] | Sequence[Tuple[str, float]]) -> None:
        items = scored.items() if isinstance(scored, Mapping) else scored
        ordered = sorted(items, key=_rank_key)
        self._entries: List[ScoredDoc] = [ScoredDoc(d, s) for d, s in ordered]
        self._rank_of: Dict[str, int] = {
            e.doc_id: i for i, e in enumerate(self._entries)
        }

    @classmethod
    def _from_ordered(cls, ordered: Sequence[Tuple[str, float]]) -> "RankedList":
        """Construct from pairs already in canonical order (no re-sort)."""
        ranked = cls.__new__(cls)
        ranked._entries = [ScoredDoc(d, s) for d, s in ordered]
        ranked._rank_of = {e.doc_id: i for i, e in enumerate(ranked._entries)}
        return ranked

    @classmethod
    def top_k(
        cls, scored: Mapping[str, float] | Sequence[Tuple[str, float]], k: int
    ) -> "RankedList":
        """The best *k* entries selected with a bounded heap instead of a
        full sort — O(n log k) versus O(n log n).

        ``heapq.nsmallest`` under the canonical ``(-score, doc_id)`` key
        is documented to equal ``sorted(...)[:k]``, so the result —
        including tie-broken order — is identical to
        ``RankedList(scored).truncate(k)``.
        """
        items = scored.items() if isinstance(scored, Mapping) else scored
        return cls._from_ordered(heapq.nsmallest(k, items, key=_rank_key))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScoredDoc]:
        return iter(self._entries)

    def __getitem__(self, rank: int) -> ScoredDoc:
        return self._entries[rank]

    def top(self, k: int) -> List[ScoredDoc]:
        """The best *k* entries (fewer if the list is shorter)."""
        return self._entries[:k]

    def top_ids(self, k: int) -> List[str]:
        """Document ids of the best *k* entries."""
        return [e.doc_id for e in self._entries[:k]]

    def truncate(self, k: int) -> "RankedList":
        """A new ranked list containing only the best *k* entries."""
        return RankedList._from_ordered(
            [(e.doc_id, e.score) for e in self._entries[:k]]
        )

    def rank_of(self, doc_id: str) -> int:
        """0-based rank of *doc_id*, or -1 if not ranked."""
        return self._rank_of.get(doc_id, -1)

    def contains(self, doc_id: str) -> bool:
        """Whether *doc_id* appears anywhere in the list."""
        return doc_id in self._rank_of

    def ids(self) -> List[str]:
        """All document ids in rank order."""
        return [e.doc_id for e in self._entries]

    def id_set(self, k: int | None = None) -> Set[str]:
        """The set of the top-*k* (or all) document ids."""
        if k is None:
            return set(self._rank_of)
        return {e.doc_id for e in self._entries[:k]}

    def scores(self) -> Dict[str, float]:
        """doc id → score mapping."""
        return {e.doc_id: e.score for e in self._entries}
