"""Section 7 extensions: load balancing and query expansion."""

from .load_balance import HotTermAdvice, HotTermAdvisor, HotTermCache
from .query_expansion import LocalContextAnalyzer, expansion_gain
from .range_sharing import LoadSnapshot, RangeSharingBalancer

__all__ = [
    "HotTermAdvice",
    "HotTermAdvisor",
    "HotTermCache",
    "LoadSnapshot",
    "LocalContextAnalyzer",
    "RangeSharingBalancer",
    "expansion_gain",
]
