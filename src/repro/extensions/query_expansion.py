"""Query expansion via local context analysis (paper Section 7, third
discussion).

"Since cooperation among peers is not as close as in a distributed
system ..., local context analysis technique can be employed in SPRITE.
In local context analysis, global information is not required. ...
the co-occurrence of nouns in a document is analyzed.  Queries are
enriched accordingly."

:class:`LocalContextAnalyzer` implements the classic pseudo-relevance
variant: run the query, take the top-n retrieved documents as the local
context, score every candidate term by its co-occurrence with the query
terms inside that context, and append the best non-query terms.  No
global statistics are used — only the retrieved documents, which the
querying peer has anyway.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from ..corpus.corpus import Corpus
from ..corpus.relevance import Query
from ..exceptions import QueryError
from ..ir.ranking import RankedList


class LocalContextAnalyzer:
    """Pseudo-relevance query expansion over a local document context.

    Parameters
    ----------
    corpus:
        Used only to read the *retrieved* documents' term statistics —
        the analyzer never consults corpus-global frequencies, honouring
        the "no global information" constraint.
    context_size:
        Number of top-ranked documents forming the local context.
    expansion_terms:
        How many terms to append to the query.
    """

    def __init__(
        self,
        corpus: Corpus,
        context_size: int = 10,
        expansion_terms: int = 3,
    ) -> None:
        if context_size < 1:
            raise ValueError("context_size must be >= 1")
        if expansion_terms < 0:
            raise ValueError("expansion_terms must be >= 0")
        self.corpus = corpus
        self.context_size = context_size
        self.expansion_terms = expansion_terms

    def score_candidates(
        self, query: Query, context_doc_ids: Sequence[str]
    ) -> List[Tuple[str, float]]:
        """Score candidate expansion terms by query-term co-occurrence.

        A candidate term c scores ``Σ_q log(1 + co(c, q))`` over the
        query terms q, where ``co(c, q)`` sums, over the context
        documents containing both, the product of their frequencies —
        the standard local-context-analysis co-occurrence aggregate.
        """
        query_terms = set(query.terms)
        co: Dict[str, Dict[str, float]] = {}
        for doc_id in context_doc_ids:
            doc = self.corpus.get(doc_id)
            freqs = doc.term_freqs
            present_query_terms = [t for t in query_terms if t in freqs]
            if not present_query_terms:
                continue
            for candidate, c_freq in freqs.items():
                if candidate in query_terms:
                    continue
                bucket = co.setdefault(candidate, {})
                for q_term in present_query_terms:
                    bucket[q_term] = bucket.get(q_term, 0.0) + c_freq * freqs[q_term]

        scored = [
            (
                candidate,
                sum(math.log1p(v) for v in per_query.values()),
            )
            for candidate, per_query in co.items()
        ]
        scored.sort(key=lambda cs: (-cs[1], cs[0]))
        return scored

    def expand(
        self,
        query: Query,
        search: Callable[[Query], RankedList],
    ) -> Query:
        """Expand *query* using a first-pass retrieval.

        *search* is any ranked-retrieval callable (centralized, SPRITE,
        or eSearch search functions all fit).  Returns a new query with
        up to ``expansion_terms`` extra terms and id suffix ``"+lca"``.
        """
        first_pass = search(query)
        context = first_pass.top_ids(self.context_size)
        if not context:
            return query
        scored = self.score_candidates(query, context)
        extra = [term for term, score in scored[: self.expansion_terms] if score > 0]
        if not extra:
            return query
        return Query(
            query_id=f"{query.query_id}+lca",
            terms=tuple(query.terms) + tuple(extra),
            origin_id=query.origin_id,
        )


def expansion_gain(
    analyzer: LocalContextAnalyzer,
    queries: Sequence[Query],
    search: Callable[[Query], RankedList],
    relevant_of: Callable[[str], set],
    k: int,
) -> Tuple[float, float]:
    """Measure mean precision@k before and after expansion.

    ``relevant_of`` maps an *original* query id to its relevant set (the
    expanded query inherits its origin's judgments).
    """
    if k < 1:
        raise QueryError("k must be >= 1")
    base_scores: List[float] = []
    expanded_scores: List[float] = []
    for query in queries:
        relevant = relevant_of(query.query_id)
        if not relevant:
            continue
        base = search(query).top_ids(k)
        base_scores.append(sum(1 for d in base if d in relevant) / k)
        expanded_query = analyzer.expand(query, search)
        expanded = search(expanded_query).top_ids(k)
        expanded_scores.append(sum(1 for d in expanded if d in relevant) / k)
    if not base_scores:
        return 0.0, 0.0
    return (
        sum(base_scores) / len(base_scores),
        sum(expanded_scores) / len(expanded_scores),
    )
