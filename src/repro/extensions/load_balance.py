"""Load-balancing extensions (paper Section 7, second discussion).

Two unbalanced-load scenarios and their remedies:

(a) **Hot indexed terms.**  A term appearing in many documents makes its
    indexing peer a maintenance hotspot, yet contributes little to
    similarity (high document frequency → small IDF).  The remedy:
    "advise the document owner peers that the term has a high document
    frequency.  The document owner peers can then discard the term and
    pick an analogously important term to index."
    → :class:`HotTermAdvisor`.

(b) **Hot query terms.**  Terms queried by many users overload their
    indexing peer at query time.  The LAR-style remedy: cache a hot
    term's postings at the peers responsible for terms that co-occur
    with it in queries, so those peers can answer without contacting the
    hot peer.  → :class:`HotTermCache`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.indexer import IndexingProtocol
from ..core.system import DistributedSystem
from ..dht.messages import Message, MessageKind, POSTING_BYTES, TERM_BYTES
from ..core.metadata import PostingEntry, TermSlot


@dataclass(frozen=True)
class HotTermAdvice:
    """One piece of advice sent to owners: a term whose indexed document
    frequency exceeded the hotness threshold."""

    term: str
    indexed_document_frequency: int


class HotTermAdvisor:
    """Scenario (a): detect maintenance-hot terms and have owners
    replace them with analogously important ones.

    Parameters
    ----------
    system:
        Any distributed retrieval system built on the shared base.
    df_threshold:
        Indexed document frequency above which a term is advised away.
    """

    def __init__(self, system: DistributedSystem, df_threshold: int) -> None:
        if df_threshold < 1:
            raise ValueError("df_threshold must be >= 1")
        self.system = system
        self.df_threshold = df_threshold

    def find_hot_terms(self) -> List[HotTermAdvice]:
        """Scan every term slot in the ring for over-threshold terms."""
        advice: List[HotTermAdvice] = []
        seen = set()
        for node_id in self.system.ring.live_ids:
            node = self.system.ring.node(node_id)
            for slot in node.store.values():
                if not isinstance(slot, TermSlot) or slot.term in seen:
                    continue
                seen.add(slot.term)
                df = slot.indexed_document_frequency
                if df > self.df_threshold:
                    advice.append(HotTermAdvice(slot.term, df))
        advice.sort(key=lambda a: (-a.indexed_document_frequency, a.term))
        return advice

    def apply_advice(self, advice: HotTermAdvice) -> int:
        """Advise every owner indexing *advice.term*: drop it and index
        the next most important unindexed term of the document instead.
        Returns the number of documents that switched terms.

        Each advised owner receives exactly one message ("The overhead is
        very small since it only requires one communication").
        """
        switched = 0
        for owner in self.system.owners.values():
            if not self.system.ring.is_live(owner.node_id):
                continue  # a crashed owner's documents are offline
            for doc_id in list(owner.shared):
                state = owner.shared[doc_id]
                if advice.term not in state.index_terms:
                    continue
                self.system.ring.send(
                    Message(
                        kind=MessageKind.ADVISE_HOT_TERM,
                        src=self.system.ring.successor_of(
                            self.system.protocol.term_hash(advice.term)
                        ),
                        dst=owner.node_id,
                        size_bytes=TERM_BYTES * 2,
                    )
                )
                replacement = self._replacement_for(state, advice.term)
                owner._unpublish_terms(state, [advice.term])
                if replacement is not None:
                    owner._publish_terms(state, [replacement])
                switched += 1
        return switched

    @staticmethod
    def _replacement_for(state, hot_term: str) -> Optional[str]:
        """The document's best term not already indexed: highest learned
        score first, then highest raw frequency."""
        indexed = set(state.index_terms)
        ranked = [
            rt.term
            for rt in state.learner.rank_list()
            if rt.term not in indexed and rt.term != hot_term and rt.score > 0
        ]
        if ranked:
            return ranked[0]
        for term in state.document.top_terms(state.document.unique_terms):
            if term not in indexed and term != hot_term:
                return term
        return None

    def rebalance(self) -> Tuple[int, int]:
        """Full pass: find hot terms, apply all advice.  Returns
        (number of hot terms, number of document term switches)."""
        hot = self.find_hot_terms()
        switches = sum(self.apply_advice(a) for a in hot)
        return len(hot), switches


class HotTermCache:
    """Scenario (b): LAR-style caching of hot query terms.

    Observes query-term co-occurrence, then pushes the postings of the
    hottest queried terms to the indexing peers of their most frequent
    co-occurring terms.  :meth:`fetch_postings` mirrors the protocol
    call but serves from a co-located cache when possible, saving the
    round-trip to the hot peer.
    """

    def __init__(self, protocol: IndexingProtocol, cache_capacity: int = 32) -> None:
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        self.protocol = protocol
        self.cache_capacity = cache_capacity
        self.query_term_counts: Counter = Counter()
        self.cooccurrence: Dict[str, Counter] = {}
        #: hot term → (cached postings, indexed df), held at partner peers.
        self._caches: Dict[str, Tuple[List[PostingEntry], int]] = {}
        self.hits = 0
        self.misses = 0

    def observe_query(self, terms: Tuple[str, ...]) -> None:
        """Record a query for popularity/co-occurrence statistics."""
        for term in terms:
            self.query_term_counts[term] += 1
            counter = self.cooccurrence.setdefault(term, Counter())
            for other in terms:
                if other != term:
                    counter[other] += 1

    def hottest_terms(self, count: int) -> List[str]:
        """The *count* most-queried terms so far."""
        return [t for t, __ in self.query_term_counts.most_common(count)]

    def refresh(self, num_hot: int | None = None) -> int:
        """Push the hottest terms' postings into partner caches
        (bounded by capacity).  Returns the number of cached terms."""
        budget = min(
            num_hot if num_hot is not None else self.cache_capacity,
            self.cache_capacity,
        )
        self._caches.clear()
        for term in self.hottest_terms(budget):
            partners = self.cooccurrence.get(term)
            if not partners:
                continue
            slot = self.protocol.slot_snapshot(term)
            if slot is None or slot.indexed_document_frequency == 0:
                continue
            postings = list(slot.entries())
            self._caches[term] = (postings, slot.indexed_document_frequency)
            partner = partners.most_common(1)[0][0]
            self.protocol.ring.send(
                Message(
                    kind=MessageKind.REPLICATE,
                    src=self.protocol.ring.successor_of(self.protocol.term_hash(term)),
                    dst=self.protocol.ring.successor_of(self.protocol.term_hash(partner)),
                    size_bytes=len(postings) * POSTING_BYTES,
                )
            )
        return len(self._caches)

    def fetch_postings(
        self, issuer_id: int, term: str
    ) -> Tuple[List[PostingEntry], int]:
        """Protocol-compatible fetch that serves cached hot terms
        locally (no routed message to the hot peer)."""
        cached = self._caches.get(term)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        return self.protocol.fetch_postings(issuer_id, term)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
