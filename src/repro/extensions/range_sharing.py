"""Range-sharing load balance (paper Section 7, scenario (b) tail).

"If a peer is responsible for indexing many terms, then it can invite an
underloaded peer to share the range it is responsible for as in
Range-partition.  The invited peer passes over its original partition to
its successor and shares a range with the overloaded peer."

Implemented on the Chord substrate: the invited (underloaded) peer
gracefully leaves its position — Chord's leave hands its keys to its
successor — and rejoins at the midpoint of the overloaded peer's arc,
taking over (old-predecessor, midpoint] via Chord's join-time key
transfer.  Both halves of the manoeuvre reuse the ring's own membership
machinery, so routing state and key placement stay consistent by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..dht.ring import ChordRing
from ..exceptions import DHTError


@dataclass(frozen=True)
class LoadSnapshot:
    """Per-peer slot counts at one instant, heaviest first."""

    loads: Tuple[Tuple[int, int], ...]   # (node_id, slot_count)

    @property
    def heaviest(self) -> Tuple[int, int]:
        return self.loads[0]

    @property
    def lightest(self) -> Tuple[int, int]:
        return self.loads[-1]

    @property
    def imbalance(self) -> float:
        """Heaviest load over mean load (1.0 = perfectly even)."""
        total = sum(count for __, count in self.loads)
        if total == 0:
            return 1.0
        mean = total / len(self.loads)
        return self.heaviest[1] / mean if mean else 1.0


class RangeSharingBalancer:
    """Iteratively shed load from the heaviest peer onto the lightest."""

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring

    def snapshot(self) -> LoadSnapshot:
        """Measure per-peer primary-slot counts."""
        loads = sorted(
            (
                (node_id, len(self.ring.node(node_id).store))
                for node_id in self.ring.live_ids
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return LoadSnapshot(tuple(loads))

    def _arc_midpoint(self, node_id: int) -> int:
        """Midpoint of (predecessor, node] — where the helper lands."""
        pred = self.ring.predecessor_of(node_id)
        gap = self.ring.space.distance(pred, node_id)
        if gap < 2:
            raise DHTError(f"arc of node {node_id} too small to split")
        return (pred + gap // 2) % self.ring.space.size

    def rebalance_step(self) -> Optional[Tuple[int, int, int]]:
        """One sharing round: move the lightest peer into the heaviest
        peer's range.  Returns (overloaded, helper_old_id, helper_new_id)
        or ``None`` when the load is already balanced enough to leave
        alone (heaviest ≤ 2 slots or heaviest == lightest)."""
        snap = self.snapshot()
        overloaded, heavy_count = snap.heaviest
        helper, light_count = snap.lightest
        if heavy_count <= 2 or heavy_count <= light_count or overloaded == helper:
            return None
        midpoint = self._arc_midpoint(overloaded)
        if midpoint in self.ring.nodes:
            return None
        # The helper hands its own (small) range to its successor...
        self.ring.leave(helper)
        # ...and rejoins splitting the overloaded peer's arc; Chord's
        # join-time key transfer moves the first half of the slots.
        new_id = self.ring.join(node_id=midpoint)
        return overloaded, helper, new_id

    def rebalance(self, max_steps: int = 8, target_imbalance: float = 2.0) -> List[Tuple[int, int, int]]:
        """Repeat sharing steps until the imbalance ratio drops under
        *target_imbalance* or no further improvement is possible."""
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if target_imbalance < 1.0:
            raise ValueError("target_imbalance must be >= 1.0")
        moves: List[Tuple[int, int, int]] = []
        for __ in range(max_steps):
            if self.snapshot().imbalance <= target_imbalance:
                break
            move = self.rebalance_step()
            if move is None:
                break
            moves.append(move)
        return moves
