"""The tracked concurrency workload (DESIGN.md §15).

Every other bench in this package measures the *sequential* cost of the
hot paths.  This one measures behaviour under **concurrent load**: many
in-flight queries contending for the same per-peer service queues, with
timeout/retry races against slow peers — the regime where throughput
and tail latency (p99/p99.9) actually live.

The engine is the capture-at-dispatch / timeline-replay contract of
:mod:`repro.core.inflight`:

1. **Deployment + capture** — build a ring, publish a Zipf-skewed
   synthetic index, and capture each distinct query's message timeline
   *once* by executing it synchronously under
   :meth:`~repro.dht.ring.ChordRing.capture_messages`.  The captured
   rankings are the semantics; they never change again.
2. **Grid replay** — a fixed, seeded operation stream (Zipf-popular
   repeats of the pool) is replayed through a fresh
   :class:`~repro.net.sched.Scheduler` per cell of a
   clients × service-time grid, in closed-loop (each of N clients
   issues its next op when the previous completes) and open-loop
   (seeded Poisson arrivals at a configured rate) modes, plus a
   straggler column where a small fraction of peers serve far slower.

Because every cell replays the *same* captured timelines over the same
op stream, the ranking checksum — computed in submission order — is
identical in every cell and identical to re-executing the stream
synchronously on the call-stack path (the run asserts both).  The grid
changes *when* queries complete, never *what* they return; the sim
oracle's seventh comparison enforces the same property end-to-end with
live dispatch (:class:`ConcurrentRuntime`).

``benchmarks/test_bench_concurrency.py`` records the grid into
``benchmarks/BENCH_CONCURRENCY.json``; ``repro perf --mode concurrency``
prints it.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass, field
from hashlib import sha256
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ChordConfig
from ..core.indexer import IndexingProtocol
from ..core.inflight import CapturedOp
from ..core.metadata import PostingEntry
from ..core.query_processing import QueryProcessor
from ..corpus.relevance import Query
from ..dht.ring import ChordRing
from ..net.sched import Scheduler, replay_timeline
from ..net.trace import percentile
from ..net.transport import DeliveryPolicy


@dataclass(frozen=True)
class ConcurrencyConfig:
    """Shape of one concurrency benchmark run.

    The default is the tracked paper-scale grid; ``smoke_config``
    shrinks every axis for CI.  All randomness (deployment, query pool,
    op stream, open-loop arrivals, scheduler jitter) derives from
    ``seed``, so a config identifies one exact run.
    """

    # -- deployment --------------------------------------------------------
    num_peers: int = 1000
    num_documents: int = 150
    vocabulary_size: int = 700
    terms_per_document: int = 14
    # -- workload ----------------------------------------------------------
    num_ops: int = 3000
    distinct_queries: int = 200
    max_query_terms: int = 3
    num_query_peers: int = 48
    zipf_exponent: float = 0.8
    top_k: int = 20
    # -- runtime grid ------------------------------------------------------
    clients_grid: Tuple[int, ...] = (1, 16, 64)
    service_times_ms: Tuple[float, ...] = (0.25, 1.0)
    open_loop_rates_per_s: Tuple[float, ...] = (2000.0, 8000.0)
    queue_depth: int = 64
    timeout_ms: float = 40.0
    max_retries: int = 2
    backoff_base_ms: float = 2.0
    #: Straggler column: this fraction of peers serve ``slow_peer_factor``
    #: times slower (the tail-inflation scenario the issue tracks).
    slow_peer_fraction: float = 0.02
    slow_peer_factor: float = 20.0
    seed: int = 4777
    #: Skip the synchronous re-execution equivalence pass (the sim
    #: oracle still covers it; benches keep it on).
    verify_sync: bool = True

    def replaced(self, **kwargs) -> "ConcurrencyConfig":
        merged = {**asdict(self), **kwargs}
        return ConcurrencyConfig(**merged)


def paper_scale_config() -> ConcurrencyConfig:
    """The tracked 1,000-peer / 3,000-op grid."""
    return ConcurrencyConfig()


def smoke_config() -> ConcurrencyConfig:
    """A seconds-scale shrink of the same grid for CI."""
    return ConcurrencyConfig(
        num_peers=150,
        num_documents=50,
        vocabulary_size=250,
        terms_per_document=10,
        num_ops=400,
        distinct_queries=60,
        num_query_peers=16,
        open_loop_rates_per_s=(2000.0, 8000.0),
    )


@dataclass
class CellResult:
    """One grid cell's readout (JSON-friendly).

    ``throughput_ops_per_s`` and the latency percentiles are in
    *virtual* time — the discrete-event clock — so they measure the
    modelled system, not the host CPU.  ``wall_s`` is the host cost of
    simulating the cell.
    """

    mode: str  # "closed" | "open"
    clients: int  # closed-loop population (0 for open-loop cells)
    arrival_rate_per_s: float  # open-loop rate (0.0 for closed-loop)
    service_time_ms: float
    stragglers: bool
    ops: int
    makespan_ms: float
    throughput_ops_per_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_p99_9_ms: float
    latency_mean_ms: float
    max_queue_depth: int
    mean_wait_ms: float
    utilization_mean: float
    utilization_max: float
    messages_sent: int
    retries: int
    timeouts: int
    queue_drops: int
    ranking_checksum: str
    schedule_fingerprint: str
    wall_s: float

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class ConcurrencyResult:
    """Full grid outcome: per-cell readouts plus the equivalence data."""

    num_peers: int
    num_ops: int
    distinct_queries: int
    capture_s: float
    sync_s: float
    #: Checksum of the op stream's rankings in submission order —
    #: identical in every cell by construction.
    ranking_checksum: str
    #: The same stream re-executed synchronously on the call-stack path
    #: (empty when ``verify_sync`` is off).
    sync_ranking_checksum: str
    cells: List[CellResult] = field(default_factory=list)

    @property
    def checksums_match(self) -> bool:
        return all(c.ranking_checksum == self.ranking_checksum for c in self.cells) and (
            not self.sync_ranking_checksum
            or self.sync_ranking_checksum == self.ranking_checksum
        )

    def cell(
        self,
        mode: str = "closed",
        clients: Optional[int] = None,
        service_time_ms: Optional[float] = None,
        stragglers: Optional[bool] = None,
        arrival_rate_per_s: Optional[float] = None,
    ) -> CellResult:
        """The unique cell matching the given coordinates."""
        matches = [
            c
            for c in self.cells
            if c.mode == mode
            and (clients is None or c.clients == clients)
            and (service_time_ms is None or c.service_time_ms == service_time_ms)
            and (stragglers is None or c.stragglers == stragglers)
            and (
                arrival_rate_per_s is None
                or c.arrival_rate_per_s == arrival_rate_per_s
            )
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} cells match "
                f"(mode={mode}, clients={clients}, st={service_time_ms}, "
                f"stragglers={stragglers}, rate={arrival_rate_per_s})"
            )
        return matches[0]

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["checksums_match"] = self.checksums_match
        return data


def _zipf_weights(n: int, exponent: float) -> List[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(n)]


@dataclass
class _Deployment:
    """The captured workload a grid replays: per-distinct-query
    timelines + rankings, and the fixed op stream over them."""

    ring: ChordRing
    processor: QueryProcessor
    pool: List[Query]
    issuer_of: Dict[str, int]
    captured: Dict[str, CapturedOp]
    stream: List[int]  # op i = pool[stream[i]]
    slow_peers: Dict[int, float]


def _build_deployment(cfg: ConcurrencyConfig) -> Tuple[_Deployment, float]:
    """Build the system, capture every distinct query's timeline once,
    and fix the op stream.  Returns (deployment, capture_seconds)."""
    rng = random.Random(cfg.seed)
    t0 = perf_counter()
    ring = ChordRing(
        ChordConfig(
            num_peers=cfg.num_peers,
            seed=cfg.seed,
            route_cache_size=65536,
            incremental_repair=True,
        )
    )
    protocol = IndexingProtocol(ring)
    processor = QueryProcessor(protocol, assumed_corpus_size=1_000_000)

    vocab = [f"term{i:04d}" for i in range(cfg.vocabulary_size)]
    weights = _zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
    for d in range(cfg.num_documents):
        doc_id = f"doc{d:05d}"
        owner_id = ring.random_live_id(rng)
        doc_length = rng.randint(80, 240)
        terms = list(
            dict.fromkeys(
                rng.choices(vocab, weights=weights, k=cfg.terms_per_document)
            )
        )
        for term in terms:
            protocol.publish(
                owner_id,
                term,
                PostingEntry(
                    doc_id=doc_id,
                    owner_peer=owner_id,
                    raw_tf=rng.randint(1, 12),
                    doc_length=doc_length,
                ),
            )

    pool: List[Query] = []
    for i in range(cfg.distinct_queries):
        k = rng.randint(1, cfg.max_query_terms)
        terms = tuple(dict.fromkeys(rng.choices(vocab, weights=weights, k=k)))
        pool.append(Query(query_id=f"concq{i:04d}", terms=terms))
    issuer_pool = rng.sample(ring.live_ids, cfg.num_query_peers)
    issuer_of = {
        query.query_id: issuer_pool[i % len(issuer_pool)]
        for i, query in enumerate(pool)
    }

    # Capture each distinct query exactly once, in pool order.  The op
    # stream replays these fixed timelines, so no cell's behaviour can
    # leak into another through route caches or any other shared state.
    captured: Dict[str, CapturedOp] = {}
    for query in pool:
        with ring.capture_messages() as log:
            ranked, _execution = processor.execute(
                issuer_of[query.query_id], query, top_k=cfg.top_k, cache=False
            )
        captured[query.query_id] = CapturedOp(
            label=f"query:{query.query_id}",
            timeline=tuple((t.kind, t.dst) for t in log.records),
            result=ranked,
        )

    pool_weights = _zipf_weights(cfg.distinct_queries, cfg.zipf_exponent)
    stream = rng.choices(range(cfg.distinct_queries), weights=pool_weights, k=cfg.num_ops)

    # Stragglers: a seeded sample of peers that appear in the captured
    # timelines (so the slow column actually intersects the workload).
    contacted = sorted({dst for op in captured.values() for _k, dst in op.timeline})
    slow_count = max(1, int(len(contacted) * cfg.slow_peer_fraction))
    slow_rng = random.Random(cfg.seed + 1)
    slow_peers = {
        peer: cfg.slow_peer_factor for peer in slow_rng.sample(contacted, slow_count)
    }

    return (
        _Deployment(
            ring=ring,
            processor=processor,
            pool=pool,
            issuer_of=issuer_of,
            captured=captured,
            stream=stream,
            slow_peers=slow_peers,
        ),
        perf_counter() - t0,
    )


def _stream_checksum(dep: _Deployment, rankings: Sequence) -> str:
    """Digest the op stream's rankings in submission order (the same
    construction as ``repro.perf.bench``)."""
    digest = sha256()
    for idx, ranked in zip(dep.stream, rankings):
        digest.update(dep.pool[idx].query_id.encode())
        for entry in ranked:
            digest.update(f"{entry.doc_id}:{entry.score!r}".encode())
    return digest.hexdigest()


def _grid_checksum(dep: _Deployment) -> str:
    """Every cell's submission-order checksum: the captured rankings."""
    return _stream_checksum(
        dep, [dep.captured[dep.pool[idx].query_id].result for idx in dep.stream]
    )


def _make_scheduler(
    cfg: ConcurrencyConfig, service_time_ms: float, stragglers: bool, dep: _Deployment
) -> Scheduler:
    return Scheduler(
        policy=DeliveryPolicy(
            timeout_ms=cfg.timeout_ms,
            max_retries=cfg.max_retries,
            backoff_base_ms=cfg.backoff_base_ms,
            backoff_factor=2.0,
            jitter_ms=0.5,
        ),
        service_time_ms=service_time_ms,
        queue_depth=cfg.queue_depth,
        slow_peers=dep.slow_peers if stragglers else None,
        seed=cfg.seed,
    )


def _cell_from_scheduler(
    sched: Scheduler,
    dep: _Deployment,
    *,
    mode: str,
    clients: int,
    arrival_rate_per_s: float,
    service_time_ms: float,
    stragglers: bool,
    wall_s: float,
) -> CellResult:
    latencies = sched.latencies()
    stats = sched.stats()
    makespan = stats["makespan_ms"]
    return CellResult(
        mode=mode,
        clients=clients,
        arrival_rate_per_s=arrival_rate_per_s,
        service_time_ms=service_time_ms,
        stragglers=stragglers,
        ops=len(latencies),
        makespan_ms=makespan,
        throughput_ops_per_s=(
            round(len(latencies) / makespan * 1000.0, 2) if makespan else 0.0
        ),
        latency_p50_ms=round(percentile(latencies, 50), 4),
        latency_p99_ms=round(percentile(latencies, 99), 4),
        latency_p99_9_ms=round(percentile(latencies, 99.9), 4),
        latency_mean_ms=(
            round(sum(latencies) / len(latencies), 4) if latencies else 0.0
        ),
        max_queue_depth=int(stats["max_queue_depth"]),
        mean_wait_ms=stats["mean_wait_ms"],
        utilization_mean=stats["utilization_mean"],
        utilization_max=stats["utilization_max"],
        messages_sent=int(stats["messages_sent"]),
        retries=int(stats["retries"]),
        timeouts=int(stats["timeouts"]),
        queue_drops=int(stats["queue_drops"]),
        ranking_checksum=_grid_checksum(dep),
        schedule_fingerprint=sched.fingerprint(),
        wall_s=round(wall_s, 4),
    )


def run_closed_cell(
    cfg: ConcurrencyConfig,
    dep: _Deployment,
    clients: int,
    service_time_ms: float,
    stragglers: bool = False,
) -> CellResult:
    """Closed-loop cell: *clients* concurrent issuers share the op
    stream through a global cursor — each dispatches its next op the
    moment its previous one completes (zero think time)."""
    t0 = perf_counter()
    sched = _make_scheduler(cfg, service_time_ms, stragglers, dep)
    cursor = {"next": 0}

    def issue_next(_completed=None) -> None:
        i = cursor["next"]
        if i >= len(dep.stream):
            return
        cursor["next"] = i + 1
        op = dep.captured[dep.pool[dep.stream[i]].query_id]
        future = sched.spawn(replay_timeline(op.timeline), label=op.label)
        future.add_done_callback(issue_next)

    for _client in range(min(clients, len(dep.stream))):
        issue_next()
    sched.run()
    return _cell_from_scheduler(
        sched,
        dep,
        mode="closed",
        clients=clients,
        arrival_rate_per_s=0.0,
        service_time_ms=service_time_ms,
        stragglers=stragglers,
        wall_s=perf_counter() - t0,
    )


def run_open_cell(
    cfg: ConcurrencyConfig,
    dep: _Deployment,
    arrival_rate_per_s: float,
    service_time_ms: float,
    stragglers: bool = False,
) -> CellResult:
    """Open-loop cell: the op stream arrives on a seeded Poisson
    process at *arrival_rate_per_s*, regardless of completions — the
    regime where overload shows up as queue growth and drops instead of
    self-throttling."""
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival_rate_per_s must be > 0")
    t0 = perf_counter()
    sched = _make_scheduler(cfg, service_time_ms, stragglers, dep)
    arrival_rng = random.Random(cfg.seed + 2)
    mean_gap_ms = 1000.0 / arrival_rate_per_s
    at = 0.0
    for idx in dep.stream:
        op = dep.captured[dep.pool[idx].query_id]
        sched.spawn(replay_timeline(op.timeline), label=op.label, delay_ms=at)
        at += -math.log(1.0 - arrival_rng.random()) * mean_gap_ms
    sched.run()
    return _cell_from_scheduler(
        sched,
        dep,
        mode="open",
        clients=0,
        arrival_rate_per_s=arrival_rate_per_s,
        service_time_ms=service_time_ms,
        stragglers=stragglers,
        wall_s=perf_counter() - t0,
    )


def run_concurrency_grid(cfg: ConcurrencyConfig) -> ConcurrencyResult:
    """Execute the full tracked grid: closed-loop clients × service
    times, the straggler column, and the open-loop arrival-rate cells.
    Deterministic for a given config."""
    dep, capture_s = _build_deployment(cfg)

    sync_checksum = ""
    sync_s = 0.0
    if cfg.verify_sync:
        # The call-stack path, same stream, same system: the grid's
        # checksum must equal this or the replay layer changed results.
        t0 = perf_counter()
        rankings = []
        for idx in dep.stream:
            query = dep.pool[idx]
            ranked = dep.processor.search(
                dep.issuer_of[query.query_id], query, top_k=cfg.top_k, cache=False
            )
            rankings.append(ranked)
        sync_checksum = _stream_checksum(dep, rankings)
        sync_s = perf_counter() - t0

    result = ConcurrencyResult(
        num_peers=cfg.num_peers,
        num_ops=cfg.num_ops,
        distinct_queries=cfg.distinct_queries,
        capture_s=round(capture_s, 4),
        sync_s=round(sync_s, 4),
        ranking_checksum=_grid_checksum(dep),
        sync_ranking_checksum=sync_checksum,
    )
    for service_time_ms in cfg.service_times_ms:
        for clients in cfg.clients_grid:
            result.cells.append(
                run_closed_cell(cfg, dep, clients, service_time_ms)
            )
    # The straggler column: the fast service tier with slow peers on.
    for clients in cfg.clients_grid:
        result.cells.append(
            run_closed_cell(
                cfg, dep, clients, cfg.service_times_ms[0], stragglers=True
            )
        )
    for rate in cfg.open_loop_rates_per_s:
        result.cells.append(
            run_open_cell(cfg, dep, rate, cfg.service_times_ms[0])
        )
    return result


class ConcurrentRuntime:
    """Event-driven execution front-end for a live SPRITE system.

    Unlike the grid (which replays pre-captured timelines), this
    dispatches operations against the *real* system at their scheduled
    virtual instant: each operation executes synchronously under
    message capture when its turn arrives — in deterministic event
    order — and its captured timeline then replays for timing.  State
    mutations (query-cache registrations, route caches) therefore
    happen in dispatch order, which at concurrency 1 *is* submission
    order: rankings and the quiescent state fingerprint are
    bit-identical to the plain call-stack path.  The sim oracle's
    seventh comparison runs exactly that experiment.
    """

    def __init__(self, system, scheduler: Scheduler) -> None:
        self.system = system
        self.scheduler = scheduler
        #: (query, OpFuture) in submission order; each future's result
        #: is the dispatched ``(ranked, execution)`` pair.
        self.submitted: List[Tuple[Query, object]] = []

    def submit(
        self,
        query: Query,
        top_k: Optional[int] = None,
        cache: bool = True,
        delay_ms: float = 0.0,
    ):
        def program():
            ranked, execution, op = self.system.execute_captured(
                query, top_k=top_k, cache=cache
            )
            yield from replay_timeline(op.timeline)
            return ranked, execution

        future = self.scheduler.spawn(
            program(), label=f"query:{query.query_id}", delay_ms=delay_ms
        )
        self.submitted.append((query, future))
        return future

    def run(self) -> List[Tuple[Query, object]]:
        """Drain the event loop; returns ``(query, (ranked, execution))``
        pairs in submission order."""
        self.scheduler.run()
        return [(query, future.result) for query, future in self.submitted]
