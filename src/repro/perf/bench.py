"""The tracked end-to-end performance workload.

One reproducible scenario exercises every hot path the optimization
layer touches: build a ring, publish a synthetic term index, run a
Zipf-popular query stream from a fixed set of querying peers (repeated
queries are what a route cache feeds on — the paper's "w-zipf" streams
repeat queries heavily), and interleave join/leave churn so stabilize
cost shows up in the totals.

``run_perf_workload(cfg)`` executes the scenario once and returns a
:class:`PerfWorkloadResult` with phase timings, throughput, network
statistics, and a **ranking checksum** — a digest of every query's
ranked answer list.  Running the workload with ``optimized=False``
(route cache off, incremental repair off, legacy per-term fetch and
nested-dict scoring) must produce the *same checksum*: the optimization
layer changes speed, never results.  ``benchmarks/test_bench_perf.py``
asserts exactly that while recording before/after numbers into
``BENCH_PERF.json``.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from hashlib import sha256
from time import perf_counter
from typing import Dict, List, Optional

from ..config import ChordConfig
from ..core.indexer import IndexingProtocol
from ..core.metadata import PostingEntry
from ..core.query_processing import QueryProcessor
from ..corpus.relevance import Query
from ..dht.messages import MessageKind
from ..dht.recursive import build_ring
from .profile import PROFILE


@dataclass(frozen=True)
class PerfWorkloadConfig:
    """Shape of one benchmark scenario.

    The default is the tracked "paper-scale" workload of ISSUE 2:
    2,000 peers / 5,000 queries.  The CI smoke run shrinks every axis
    (see ``smoke_config``) so it finishes in a couple of seconds.
    """

    num_peers: int = 2000
    num_documents: int = 180
    vocabulary_size: int = 900
    terms_per_document: int = 16
    num_queries: int = 5000
    distinct_queries: int = 600
    max_query_terms: int = 3
    num_query_peers: int = 64
    churn_every: int = 200
    zipf_exponent: float = 0.8
    seed: int = 4111
    optimized: bool = True
    #: Exact max-score early termination (ISSUE 4); only meaningful with
    #: ``optimized=True`` (the legacy path has no bounded-top-k mode).
    early_termination: bool = True
    #: Per-indexing-peer query-result cache capacity (0 = off).
    result_cache_size: int = 0
    #: Phase-B scoring kernel ("python" scalar / "numpy" vectorized,
    #: DESIGN.md §13); identical rankings either way.
    kernel: str = "python"
    #: Overlay routing structure ("chord" / "record", DESIGN.md §16);
    #: rankings are bit-identical across rings — only hop counts differ.
    ring: str = "chord"
    #: ReCord branching factor (only meaningful with ``ring="record"``).
    ring_arity: int = 2

    def replaced(self, **kwargs) -> "PerfWorkloadConfig":
        merged = {**asdict(self), **kwargs}
        return PerfWorkloadConfig(**merged)


def paper_scale_config(optimized: bool = True) -> PerfWorkloadConfig:
    """The 2,000-peer / 5,000-query workload the issue tracks."""
    return PerfWorkloadConfig(optimized=optimized)


def smoke_config(optimized: bool = True) -> PerfWorkloadConfig:
    """A seconds-scale shrink of the same scenario for CI."""
    return PerfWorkloadConfig(
        num_peers=200,
        num_documents=60,
        vocabulary_size=300,
        terms_per_document=12,
        num_queries=500,
        distinct_queries=80,
        num_query_peers=16,
        churn_every=100,
        optimized=optimized,
    )


@dataclass
class PerfWorkloadResult:
    """Measured outcome of one workload run (JSON-friendly)."""

    optimized: bool
    num_peers: int
    num_queries: int
    build_s: float
    publish_s: float
    query_s: float
    churn_s: float
    total_s: float
    queries_per_s: float
    lookups: int
    lookups_per_s: float
    mean_lookup_hops: float
    total_messages: int
    ranking_checksum: str
    route_cache: Optional[Dict[str, float]]
    profile: Dict[str, Dict[str, object]]
    #: Query-result-cache counters (entries/hits/misses); ``None`` when
    #: result caching was off for the run.
    result_cache: Optional[Dict[str, int]] = None
    #: Process peak RSS at the end of the run (kb; see
    #: :func:`repro.perf.profile.memory_usage`).  Per-phase snapshots
    #: live in the profile's ``mem.*`` gauges.
    peak_rss_kb: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def _zipf_weights(n: int, exponent: float) -> List[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(n)]


def run_perf_workload(cfg: PerfWorkloadConfig) -> PerfWorkloadResult:
    """Execute the scenario once and measure it.

    Deterministic for a given config: same seed → same ring, documents,
    query stream, churn schedule, and (optimized or not) the same
    ranking checksum.
    """
    prior_enabled = PROFILE.enabled
    PROFILE.reset()
    PROFILE.enable()
    try:
        return _run(cfg)
    finally:
        if not prior_enabled:
            PROFILE.disable()


def _run(cfg: PerfWorkloadConfig) -> PerfWorkloadResult:
    rng = random.Random(cfg.seed)

    t0 = perf_counter()
    chord = ChordConfig(
        num_peers=cfg.num_peers,
        seed=cfg.seed,
        route_cache_size=65536 if cfg.optimized else 0,
        incremental_repair=cfg.optimized,
    )
    ring = build_ring(
        getattr(cfg, "ring", "chord"), chord, arity=getattr(cfg, "ring_arity", 2)
    )
    protocol = IndexingProtocol(ring, result_cache_size=cfg.result_cache_size)
    processor = QueryProcessor(
        protocol,
        assumed_corpus_size=1_000_000,
        batch_fetch=cfg.optimized,
        early_termination=cfg.early_termination,
        result_cache=cfg.result_cache_size > 0,
        kernel=getattr(cfg, "kernel", "python"),
    )
    build_s = perf_counter() - t0
    PROFILE.record_memory("build")

    # -- publish a synthetic term index (Zipf-skewed vocabulary) ----------
    vocab = [f"term{i:04d}" for i in range(cfg.vocabulary_size)]
    weights = _zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
    t0 = perf_counter()
    for d in range(cfg.num_documents):
        doc_id = f"doc{d:05d}"
        owner_id = ring.random_live_id(rng)
        doc_length = rng.randint(80, 240)
        terms = list(
            dict.fromkeys(
                rng.choices(vocab, weights=weights, k=cfg.terms_per_document)
            )
        )
        for term in terms:
            protocol.publish(
                owner_id,
                term,
                PostingEntry(
                    doc_id=doc_id,
                    owner_peer=owner_id,
                    raw_tf=rng.randint(1, 12),
                    doc_length=doc_length,
                ),
            )
    publish_s = perf_counter() - t0
    PROFILE.record_memory("publish")

    # -- query pool: distinct queries with Zipf popularity ----------------
    pool: List[Query] = []
    for q in range(cfg.distinct_queries):
        k = rng.randint(1, cfg.max_query_terms)
        terms = tuple(
            dict.fromkeys(rng.choices(vocab, weights=weights, k=k))
        )
        pool.append(Query(query_id=f"perfq{q:04d}", terms=terms))
    pool_weights = _zipf_weights(cfg.distinct_queries, cfg.zipf_exponent)
    issuer_pool = rng.sample(ring.live_ids, cfg.num_query_peers)
    issuer_of = {
        query.query_id: issuer_pool[i % len(issuer_pool)]
        for i, query in enumerate(pool)
    }

    # -- query stream with interleaved churn ------------------------------
    checksum = sha256()
    protected = set(issuer_pool)
    lookups_before = ring.stats.kind(MessageKind.LOOKUP).messages
    query_s = 0.0
    churn_s = 0.0
    t_phase = perf_counter()
    for i in range(cfg.num_queries):
        if cfg.churn_every and i and i % cfg.churn_every == 0:
            query_s += perf_counter() - t_phase
            t_churn = perf_counter()
            ring.join(name=f"churner-{i}")
            candidates = [n for n in ring.live_ids if n not in protected]
            ring.leave(rng.choice(candidates))
            ring.stabilize()
            churn_s += perf_counter() - t_churn
            t_phase = perf_counter()
        query = pool[rng.choices(range(cfg.distinct_queries), weights=pool_weights)[0]]
        ranked, __ = processor.execute(issuer_of[query.query_id], query, top_k=20)
        checksum.update(query.query_id.encode())
        for entry in ranked:
            checksum.update(f"{entry.doc_id}:{entry.score!r}".encode())
    query_s += perf_counter() - t_phase
    memory = PROFILE.record_memory("query")

    lookups = ring.stats.kind(MessageKind.LOOKUP).messages - lookups_before
    total_s = build_s + publish_s + query_s + churn_s
    return PerfWorkloadResult(
        optimized=cfg.optimized,
        num_peers=cfg.num_peers,
        num_queries=cfg.num_queries,
        build_s=round(build_s, 4),
        publish_s=round(publish_s, 4),
        query_s=round(query_s, 4),
        churn_s=round(churn_s, 4),
        total_s=round(total_s, 4),
        queries_per_s=round(cfg.num_queries / query_s, 2) if query_s else 0.0,
        lookups=lookups,
        lookups_per_s=round(lookups / (query_s + churn_s), 2)
        if query_s + churn_s
        else 0.0,
        mean_lookup_hops=round(ring.stats.mean_lookup_hops, 3),
        total_messages=ring.stats.total_messages,
        ranking_checksum=checksum.hexdigest(),
        route_cache=ring.route_cache.stats() if ring.route_cache else None,
        profile=PROFILE.summary(),
        result_cache=(
            dict(
                zip(
                    ("entries", "hits", "misses"),
                    protocol.result_cache_stats(),
                )
            )
            if cfg.result_cache_size > 0
            else None
        ),
        peak_rss_kb=memory["peak_rss_kb"],
    )
