"""Optional-dependency guards for the performance layer.

numpy powers the vectorized scoring kernels (:mod:`repro.ir.kernels`)
but is deliberately **optional**: the core system, the tier-1 test
suite, and every default code path are pure python.  numpy ships in the
``perf`` extra (``pip install repro[perf]``); anything that needs it
goes through :func:`require_numpy` so a missing install fails with one
clear, actionable message instead of a deep ``ImportError``.

The import itself is lazy — probing for numpy costs nothing until the
first caller actually asks, so importing :mod:`repro.perf` (which every
ring does, for ``PROFILE``) never pays numpy's startup time.
"""

from __future__ import annotations

from typing import Any, Optional

from ..exceptions import ConfigurationError

#: Tri-state cache: ``None`` = not probed yet, ``False`` = probed and
#: absent, otherwise the imported module object.
_NUMPY: Any = None


def numpy_or_none() -> Optional[Any]:
    """The ``numpy`` module if importable, else ``None`` (probed once)."""
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy
        except ImportError:
            _NUMPY = False
        else:
            _NUMPY = numpy
    return _NUMPY or None


def have_numpy() -> bool:
    """True when numpy is importable in this interpreter."""
    return numpy_or_none() is not None


def require_numpy(feature: str = "this feature") -> Any:
    """Return the ``numpy`` module or raise a clear configuration error.

    *feature* names what the caller was trying to do, so the message
    points at the exact knob that pulled in the dependency.
    """
    module = numpy_or_none()
    if module is None:
        raise ConfigurationError(
            f"{feature} requires numpy, which is not installed. "
            "Install the perf extra (pip install 'repro[perf]') or "
            "plain numpy, or switch back to the pure-python path "
            "(scoring kernel 'python')."
        )
    return module
