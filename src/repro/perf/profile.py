"""Opt-in hot-path profiling: wall-clock timers plus event counters.

The simulator's hot paths (DHT lookups, posting fetches, similarity
scoring, the learning loop) carry lightweight hooks that report into a
module-level :class:`PerfProfile`.  Profiling is **off by default** and
the hooks reduce to a single attribute check, so the instrumented code
pays effectively nothing when nobody is measuring.

Usage::

    from repro.perf import PROFILE

    PROFILE.enable()
    ... run a workload ...
    print(PROFILE.report())
    PROFILE.disable()

Timers use :func:`time.perf_counter`; counters are plain integers
(route-cache hits/misses, full vs incremental stabilizations, batched
fetches, ...).  ``summary()`` returns a plain dict suitable for JSON
serialization — the ``perf`` CLI subcommand and the benchmark harness
both print it.

Beyond timers and counters the profile carries **gauges** — last-value
measurements, used for the memory accounting of DESIGN.md §13: the
workloads call :meth:`PerfProfile.record_memory` at phase boundaries,
which snapshots :func:`memory_usage` (current RSS, lifetime peak RSS,
live allocation count) into ``mem.<label>.*`` gauges so every tracked
benchmark reports memory alongside throughput.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator


def memory_usage() -> Dict[str, int]:
    """Process memory snapshot, cheap enough for phase boundaries.

    ``rss_kb``
        Current resident set size from ``/proc/self/status`` (0 where
        procfs is unavailable).
    ``peak_rss_kb``
        Lifetime peak RSS from ``getrusage`` (kilobytes; macOS reports
        bytes and is converted).  Monotone per process.
    ``allocated_blocks``
        Live CPython allocation count (:func:`sys.getallocatedblocks`)
        — a deterministic allocation gauge that, unlike RSS, moves even
        when the allocator never returns pages to the OS.
    """
    peak_kb = 0
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":
            peak_kb //= 1024
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        peak_kb = 0
    rss_kb = 0
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    rss_kb = int(line.split()[1])
                    break
    except (OSError, ValueError):  # pragma: no cover - no procfs
        rss_kb = 0
    # ru_maxrss is sampled by the kernel and can trail VmRSS by a few
    # pages right after an allocation spike; clamp so "peak" is never
    # reported below "current".
    return {
        "rss_kb": rss_kb,
        "peak_rss_kb": max(peak_kb, rss_kb),
        "allocated_blocks": sys.getallocatedblocks(),
    }


class PerfProfile:
    """Aggregated timers and counters for one profiling session."""

    __slots__ = ("enabled", "_total_s", "_calls", "_counters", "_gauges")

    def __init__(self) -> None:
        self.enabled = False
        self._total_s: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "PerfProfile":
        """Start collecting (returns self for chaining)."""
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop collecting; accumulated data stays readable."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every timer, counter, and gauge."""
        self._total_s.clear()
        self._calls.clear()
        self._counters.clear()
        self._gauges.clear()

    # -- recording ---------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate one timed span (hot paths call this directly with
        a pre-measured delta so the disabled case stays branch-cheap)."""
        self._total_s[name] = self._total_s.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter."""
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a last-value measurement (later calls overwrite).

        Unlike the timer/counter hooks — whose hot-path callers check
        ``enabled`` themselves — gauges are phase-boundary measurements,
        so the guard lives here and callers need no branch."""
        if self.enabled:
            self._gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Record a gauge that keeps the maximum across calls."""
        if not self.enabled:
            return
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def record_memory(self, label: str = "") -> Dict[str, int]:
        """Snapshot process memory into ``mem.<label>.*`` gauges.

        Returns the raw :func:`memory_usage` snapshot either way;
        gauges are only written while the profile is enabled.  Peak RSS
        additionally feeds a run-wide ``mem.peak_rss_kb`` max-gauge so
        a single number summarizes the whole workload.
        """
        usage = memory_usage()
        if self.enabled:
            prefix = f"mem.{label}." if label else "mem."
            for key, value in usage.items():
                self._gauges[prefix + key] = value
            self.max_gauge("mem.peak_rss_kb", usage["peak_rss_kb"])
        return usage

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context-manager form for coarse (non-hot-path) spans."""
        if not self.enabled:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add_time(name, perf_counter() - t0)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def total_seconds(self, name: str) -> float:
        """Accumulated seconds of a timer (0.0 if never used)."""
        return self._total_s.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Number of spans recorded under a timer name."""
        return self._calls.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a gauge (*default* if never recorded)."""
        return self._gauges.get(name, default)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot:
        ``{"timers": ..., "counters": ..., "gauges": ...}``."""
        return {
            "timers": {
                name: {
                    "calls": self._calls.get(name, 0),
                    "total_s": round(total, 6),
                    "mean_us": round(
                        1e6 * total / self._calls[name], 3
                    )
                    if self._calls.get(name)
                    else 0.0,
                }
                for name, total in sorted(self._total_s.items())
            },
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }

    def report(self) -> str:
        """Human-readable table of the summary."""
        s = self.summary()
        lines = ["timer                       calls      total_s     mean_us"]
        for name, row in s["timers"].items():
            lines.append(
                f"{name:<24} {row['calls']:>9} {row['total_s']:>12.4f} "
                f"{row['mean_us']:>11.2f}"
            )
        if s["counters"]:
            lines.append("")
            lines.append("counter                      value")
            for name, value in s["counters"].items():
                lines.append(f"{name:<24} {value:>10}")
        if s["gauges"]:
            lines.append("")
            lines.append("gauge                        value")
            for name, value in s["gauges"].items():
                lines.append(f"{name:<24} {value:>10}")
        return "\n".join(lines)


#: The module-level profile every instrumented hot path reports into.
#: Disabled by default; ``PROFILE.enable()`` turns collection on.
PROFILE = PerfProfile()
