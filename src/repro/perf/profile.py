"""Opt-in hot-path profiling: wall-clock timers plus event counters.

The simulator's hot paths (DHT lookups, posting fetches, similarity
scoring, the learning loop) carry lightweight hooks that report into a
module-level :class:`PerfProfile`.  Profiling is **off by default** and
the hooks reduce to a single attribute check, so the instrumented code
pays effectively nothing when nobody is measuring.

Usage::

    from repro.perf import PROFILE

    PROFILE.enable()
    ... run a workload ...
    print(PROFILE.report())
    PROFILE.disable()

Timers use :func:`time.perf_counter`; counters are plain integers
(route-cache hits/misses, full vs incremental stabilizations, batched
fetches, ...).  ``summary()`` returns a plain dict suitable for JSON
serialization — the ``perf`` CLI subcommand and the benchmark harness
both print it.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator


class PerfProfile:
    """Aggregated timers and counters for one profiling session."""

    __slots__ = ("enabled", "_total_s", "_calls", "_counters")

    def __init__(self) -> None:
        self.enabled = False
        self._total_s: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "PerfProfile":
        """Start collecting (returns self for chaining)."""
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop collecting; accumulated data stays readable."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every timer and counter."""
        self._total_s.clear()
        self._calls.clear()
        self._counters.clear()

    # -- recording ---------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate one timed span (hot paths call this directly with
        a pre-measured delta so the disabled case stays branch-cheap)."""
        self._total_s[name] = self._total_s.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter."""
        self._counters[name] = self._counters.get(name, 0) + n

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context-manager form for coarse (non-hot-path) spans."""
        if not self.enabled:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add_time(name, perf_counter() - t0)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def total_seconds(self, name: str) -> float:
        """Accumulated seconds of a timer (0.0 if never used)."""
        return self._total_s.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Number of spans recorded under a timer name."""
        return self._calls.get(name, 0)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot: ``{"timers": ..., "counters": ...}``."""
        return {
            "timers": {
                name: {
                    "calls": self._calls.get(name, 0),
                    "total_s": round(total, 6),
                    "mean_us": round(
                        1e6 * total / self._calls[name], 3
                    )
                    if self._calls.get(name)
                    else 0.0,
                }
                for name, total in sorted(self._total_s.items())
            },
            "counters": dict(sorted(self._counters.items())),
        }

    def report(self) -> str:
        """Human-readable table of the summary."""
        s = self.summary()
        lines = ["timer                       calls      total_s     mean_us"]
        for name, row in s["timers"].items():
            lines.append(
                f"{name:<24} {row['calls']:>9} {row['total_s']:>12.4f} "
                f"{row['mean_us']:>11.2f}"
            )
        if s["counters"]:
            lines.append("")
            lines.append("counter                      value")
            for name, value in s["counters"].items():
                lines.append(f"{name:<24} {value:>10}")
        return "\n".join(lines)


#: The module-level profile every instrumented hot path reports into.
#: Disabled by default; ``PROFILE.enable()`` turns collection on.
PROFILE = PerfProfile()
