"""The tracked bulk-ingest benchmark (ISSUE 5).

One reproducible write-heavy scenario exercises the batched write path
end to end: analyze a synthetic corpus (repeating vocabulary with
morphological variants, so the memoized stemmer has something to
memoize), bulk-share it from a handful of ingest peers into a
paper-scale ring, register a training query stream, run a learning
iteration (coalesced polls), then cycle withdraw/re-share churn over a
rotating corpus slice — the "document turnover" regime the ROADMAP's
millions-of-users north star implies.

``run_ingest_workload(cfg)`` executes the scenario once and returns an
:class:`IngestWorkloadResult` with phase timings, build / re-publish
throughput, write-path message accounting, stemmer cache statistics,
and a **ranking checksum** over a fixed evaluation query set.  Running
the workload with ``batched=False`` (the seed per-term write path) must
produce the *same checksum* — batching changes message grouping and
speed, never state.  ``benchmarks/test_bench_ingest.py`` asserts
exactly that while recording before/after numbers into
``BENCH_INGEST.json``.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from hashlib import sha256
from time import perf_counter
from typing import Dict, List, Optional

from ..config import ChordConfig, SpriteConfig
from ..core.indexer import IndexingProtocol
from ..core.owner import OwnerPeer
from ..core.query_processing import QueryProcessor
from ..corpus.document import Document
from ..corpus.relevance import Query
from ..dht.ring import ChordRing
from ..text.analyzer import Analyzer
from .profile import PROFILE

#: Suffix variants attached to vocabulary words when synthesizing text:
#: each word appears inflected, so analysis exercises the stemmer the
#: way real prose does (and the stem memo has repeats to collapse).
_SUFFIXES = ("", "s", "ing", "ed")


@dataclass(frozen=True)
class IngestWorkloadConfig:
    """Shape of one ingest scenario.

    The default is the tracked "paper-scale" workload: a 2,000-peer
    ring ingesting 600 documents from 8 ingest peers over a 300-word
    vocabulary — enough vocabulary repetition that destination grouping
    collapses each owner's publish burst onto far fewer indexing peers
    than (document, term) pairs.  The CI smoke run shrinks every axis
    (see ``ingest_smoke_config``).
    """

    num_peers: int = 2000
    num_documents: int = 600
    num_ingest_peers: int = 8
    vocabulary_size: int = 300
    words_per_document: int = 120
    initial_terms: int = 12
    num_queries: int = 400
    distinct_queries: int = 120
    max_query_terms: int = 3
    num_eval_queries: int = 60
    churn_cycles: int = 20
    churn_slice: int = 30
    ring_churn_every: int = 5
    zipf_exponent: float = 0.8
    seed: int = 4111
    batched: bool = True
    #: Route caching on the ring (PR 2).  The ``legacy`` comparison arm
    #: turns it off to reproduce the seed write path end to end, the
    #: same convention as ``BENCH_PERF.json``'s "before" mode.
    route_cache: bool = True

    def replaced(self, **kwargs) -> "IngestWorkloadConfig":
        merged = {**asdict(self), **kwargs}
        return IngestWorkloadConfig(**merged)


def ingest_paper_config(batched: bool = True) -> IngestWorkloadConfig:
    """The 2,000-peer / 600-document workload the issue tracks."""
    return IngestWorkloadConfig(batched=batched)


def ingest_smoke_config(batched: bool = True) -> IngestWorkloadConfig:
    """A seconds-scale shrink of the same scenario for CI."""
    return IngestWorkloadConfig(
        num_peers=200,
        num_documents=120,
        num_ingest_peers=4,
        vocabulary_size=150,
        words_per_document=60,
        num_queries=120,
        distinct_queries=40,
        num_eval_queries=20,
        churn_cycles=6,
        churn_slice=15,
        batched=batched,
    )


@dataclass
class IngestWorkloadResult:
    """Measured outcome of one workload run (JSON-friendly)."""

    batched: bool
    num_peers: int
    num_documents: int
    analyze_s: float
    build_s: float
    learn_s: float
    churn_s: float
    total_s: float
    #: Corpus-build throughput: documents shared per second.
    docs_per_s_build: float
    #: Churn-phase throughput: documents withdrawn + re-shared per second.
    docs_per_s_republish: float
    #: Write-category messages per document during the build phase.
    publish_messages_per_doc: float
    #: Write-category abstract bytes per document during the build phase.
    publish_bytes_per_doc: float
    #: DHT lookups per document during the build phase.
    lookups_per_doc: float
    write_messages_total: int
    stem_cache: Dict[str, int]
    ranking_checksum: str
    profile: Dict[str, Dict[str, object]]

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class IngestComparison:
    """Measured outcome of one three-arm write-path comparison.

    Mirrors the ``BENCH_TOPK.json`` convention: ``legacy`` is the seed
    execution path end to end (per-term publishes, no route cache) —
    the acceptance baseline — while ``per_term`` isolates this PR's
    incremental win by running per-term writes over the already
    route-cached ring.
    """

    legacy: IngestWorkloadResult
    per_term: IngestWorkloadResult
    batched: IngestWorkloadResult
    #: Build docs/s of the batched path over the seed ``legacy`` path —
    #: the acceptance criterion (>= 2x at paper scale).
    speedup_build: float
    #: Build docs/s over the route-cached per-term path — the win of
    #: destination grouping alone.
    speedup_build_vs_per_term: float
    #: Churn re-publish docs/s, batched over the seed ``legacy`` path.
    speedup_republish: float
    #: Per-term publish messages per document over batched — how many
    #: fewer write-path messages each ingested document costs.
    message_ratio: float
    checksums_match: bool

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def _zipf_weights(n: int, exponent: float) -> List[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(n)]


def _synth_text(rng: random.Random, vocab: List[str], weights: List[float], num_words: int) -> str:
    words = rng.choices(vocab, weights=weights, k=num_words)
    return " ".join(w + rng.choice(_SUFFIXES) for w in words)


def run_ingest_workload(cfg: IngestWorkloadConfig) -> IngestWorkloadResult:
    """Execute the scenario once and measure it.

    Deterministic for a given config: same seed → same ring, corpus,
    query stream, churn schedule, and (batched or not) the same ranking
    checksum.
    """
    prior_enabled = PROFILE.enabled
    PROFILE.reset()
    PROFILE.enable()
    try:
        return _run(cfg)
    finally:
        if not prior_enabled:
            PROFILE.disable()


def _run(cfg: IngestWorkloadConfig) -> IngestWorkloadResult:
    rng = random.Random(cfg.seed)

    # -- phase 1: text analysis (the ingest-time fast path) ----------------
    vocab = [f"voc{i:03d}" for i in range(cfg.vocabulary_size)]
    weights = _zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
    docs = [
        Document(
            f"doc{d:05d}",
            _synth_text(rng, vocab, weights, cfg.words_per_document),
        )
        for d in range(cfg.num_documents)
    ]
    # A fresh analyzer per run so the stem memo's hit/miss statistics
    # reflect this corpus alone, not whatever ran before in-process.
    analyzer = Analyzer()
    t0 = perf_counter()
    for doc in docs:
        doc.analyze(analyzer)
    analyze_s = perf_counter() - t0
    stem_info = analyzer.stemmer.cache_info()

    # -- build the ring and the ingest owner peers -------------------------
    ring = ChordRing(
        ChordConfig(
            num_peers=cfg.num_peers,
            seed=cfg.seed,
            route_cache_size=65536 if cfg.route_cache else 0,
        )
    )
    sprite = SpriteConfig(
        initial_terms=cfg.initial_terms,
        terms_per_iteration=4,
        learning_iterations=1,
        max_index_terms=cfg.initial_terms + 4,
        query_cache_size=500,
        assumed_corpus_size=cfg.num_documents,
        batched_writes=cfg.batched,
    )
    protocol = IndexingProtocol(ring, query_cache_size=500)
    owner_ids = rng.sample(ring.live_ids, cfg.num_ingest_peers)
    owners = [OwnerPeer(node_id, protocol, sprite) for node_id in owner_ids]
    slice_of: Dict[int, List[Document]] = {i: [] for i in range(len(owners))}
    owner_index_of: Dict[str, int] = {}
    for d, doc in enumerate(docs):
        slice_of[d % len(owners)].append(doc)
        owner_index_of[doc.doc_id] = d % len(owners)

    # -- phase 2: bulk corpus build ----------------------------------------
    before = ring.stats.snapshot()
    lookup_count_before = len(ring.stats.lookup_hop_samples)
    t0 = perf_counter()
    for i, owner in enumerate(owners):
        owner.share_bulk(slice_of[i])
    build_s = perf_counter() - t0
    build_delta = ring.stats.delta_since(before)
    write_messages = 0
    write_bytes = 0
    for kind, stats in build_delta.items():
        if kind.value in _WRITE_KINDS:
            write_messages += stats.messages
            write_bytes += stats.bytes
    build_lookups = len(ring.stats.lookup_hop_samples) - lookup_count_before

    # -- phase 3: training queries + one learning iteration ----------------
    pool = [
        Query(
            query_id=f"ingq{q:04d}",
            terms=tuple(
                dict.fromkeys(
                    rng.choices(vocab, weights=weights, k=rng.randint(1, cfg.max_query_terms))
                )
            ),
        )
        for q in range(cfg.distinct_queries)
    ]
    pool_weights = _zipf_weights(cfg.distinct_queries, cfg.zipf_exponent)
    issuers = rng.sample(ring.live_ids, 16)
    t0 = perf_counter()
    for q in range(cfg.num_queries):
        query = pool[rng.choices(range(cfg.distinct_queries), weights=pool_weights)[0]]
        protocol.register_query(issuers[q % len(issuers)], query.terms)
    for owner in owners:
        owner.learn_all()
    learn_s = perf_counter() - t0

    # -- phase 4: withdraw / re-share churn cycles --------------------------
    protected = set(owner_ids) | set(issuers)
    republished = 0
    t0 = perf_counter()
    for cycle in range(cfg.churn_cycles):
        if cfg.ring_churn_every and cycle and cycle % cfg.ring_churn_every == 0:
            ring.join(name=f"ingest-churner-{cycle}")
            candidates = [n for n in ring.live_ids if n not in protected]
            ring.leave(rng.choice(candidates))
            ring.stabilize()
        start = (cycle * cfg.churn_slice) % cfg.num_documents
        batch = docs[start : start + cfg.churn_slice]
        if not batch:
            continue
        for i, owner in enumerate(owners):
            mine = [d for d in batch if owner_index_of[d.doc_id] == i]
            if not mine:
                continue
            owner.unshare_bulk([d.doc_id for d in mine])
            owner.share_bulk(mine)
            republished += len(mine)
    churn_s = perf_counter() - t0

    # -- phase 5: evaluation queries + ranking checksum ---------------------
    processor = QueryProcessor(
        protocol, assumed_corpus_size=cfg.num_documents, batch_fetch=True
    )
    checksum = sha256()
    for q in range(cfg.num_eval_queries):
        query = pool[q % len(pool)]
        ranked = processor.search(
            issuers[q % len(issuers)], query, top_k=20, cache=False
        )
        checksum.update(query.query_id.encode())
        for entry in ranked:
            checksum.update(f"{entry.doc_id}:{entry.score!r}".encode())

    total_s = analyze_s + build_s + learn_s + churn_s
    return IngestWorkloadResult(
        batched=cfg.batched,
        num_peers=cfg.num_peers,
        num_documents=cfg.num_documents,
        analyze_s=round(analyze_s, 4),
        build_s=round(build_s, 4),
        learn_s=round(learn_s, 4),
        churn_s=round(churn_s, 4),
        total_s=round(total_s, 4),
        docs_per_s_build=round(cfg.num_documents / build_s, 2) if build_s else 0.0,
        docs_per_s_republish=round(republished / churn_s, 2) if churn_s else 0.0,
        publish_messages_per_doc=round(write_messages / cfg.num_documents, 3),
        publish_bytes_per_doc=round(write_bytes / cfg.num_documents, 1),
        lookups_per_doc=round(build_lookups / cfg.num_documents, 3),
        write_messages_total=write_messages,
        stem_cache={
            "hits": stem_info.hits,
            "misses": stem_info.misses,
            "currsize": stem_info.currsize,
        },
        ranking_checksum=checksum.hexdigest(),
        profile=PROFILE.summary(),
    )


#: Kind names counted as write-path traffic in the build phase (the
#: build phase sends no polls; they are listed for completeness and
#: mirror ``repro.dht.messages.WRITE_PATH_KINDS``).
_WRITE_KINDS = frozenset(
    {
        "publish_term",
        "unpublish_term",
        "publish_batch",
        "unpublish_batch",
        "poll_queries",
        "poll_batch",
        "query_batch",
    }
)


def run_ingest_comparison(cfg: IngestWorkloadConfig) -> IngestComparison:
    """Run the scenario once per write path and compare.

    Deterministic for a given config: all arms consume the same seeded
    workload, so their ranking checksums must agree bit for bit (the
    route cache changes routing cost, never routing *results*, on the
    stabilized ring the workload maintains).
    """
    legacy = run_ingest_workload(cfg.replaced(batched=False, route_cache=False))
    per_term = run_ingest_workload(cfg.replaced(batched=False, route_cache=True))
    batched = run_ingest_workload(cfg.replaced(batched=True, route_cache=True))
    return IngestComparison(
        legacy=legacy,
        per_term=per_term,
        batched=batched,
        speedup_build=_ratio(batched.docs_per_s_build, legacy.docs_per_s_build),
        speedup_build_vs_per_term=_ratio(
            batched.docs_per_s_build, per_term.docs_per_s_build
        ),
        speedup_republish=_ratio(
            batched.docs_per_s_republish, legacy.docs_per_s_republish
        ),
        message_ratio=_ratio(
            legacy.publish_messages_per_doc, batched.publish_messages_per_doc
        ),
        checksums_match=(
            legacy.ranking_checksum
            == per_term.ranking_checksum
            == batched.ranking_checksum
        ),
    )


def _ratio(after: float, before: float) -> float:
    return round(after / before, 2) if before else 0.0
