"""The scale-out workload: process-sharded phases at 100k-peer scale.

Paper-scale benches (2k peers) finish in about a second; this harness
is how the repo chases the 10⁵–10⁶-node regime real DHT deployments
live in (see PAPERS.md on BitTorrent-DHT indexing).  The workload is
partitioned into **shards**: each shard is an independent sub-ring with
its own slice of the peer, document, and query budget, its own seeded
RNG stream, and a streamed synthetic corpus (documents are generated,
published as one destination-grouped batch, and dropped — never
materialized as a list).

Determinism contract (DESIGN.md §13)
------------------------------------

The unit of determinism is the **shard, not the worker**: shard *i*'s
entire run is a pure function of ``(config, i)`` — its RNG seed is
``seed · 1_000_003 + i``, an integer derivation (never tuple seeding,
which hashes and therefore varies across processes under
``PYTHONHASHSEED``).  Workers only decide *where* shards execute:
``workers=1`` runs them inline, ``workers=N`` fans them out over a
``multiprocessing`` pool, and the merge step concatenates per-shard
ranking checksums in shard-id order either way.  Hence the invariant
``tests/perf/test_scale.py`` pins: the merged checksum is identical for
any worker count.

Throughput is reported two ways: ``queries_per_s`` divides by summed
per-shard query seconds (per-core throughput — stable across worker
counts and CI machines, the number the BENCH_SCALE gate watches) and
``wall_queries_per_s`` divides by harness wall clock (what parallelism
actually buys).  Memory is accounted per shard (peak RSS + allocation
delta) and rolled up as the max across shard processes.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from hashlib import sha256
from time import perf_counter
from typing import Dict, List, Tuple

from ..config import SCORING_KERNELS, ChordConfig
from ..core.indexer import IndexingProtocol
from ..core.metadata import PostingEntry
from ..core.query_processing import QueryProcessor
from ..corpus.relevance import Query
from ..corpus.sampling import CategoricalSampler, zipf_weights
from ..corpus.stream import stream_synthetic_docs
from ..dht.ring import ChordRing
from ..exceptions import ConfigurationError
from .profile import PROFILE, memory_usage

#: Per-shard seed stride (prime, far above any shard count) — keeps the
#: integer seed streams of distinct (seed, shard) pairs disjoint.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class ScaleWorkloadConfig:
    """Shape of one scale-out run.

    The default is the tracked mid-size row; ``scale_smoke_config`` /
    ``scale_paper_config`` give the CI and headline shapes.  Shard
    count fixes the partitioning (and therefore the results); the
    worker count is pure execution placement.
    """

    num_peers: int = 20_000
    num_documents: int = 25_000
    vocabulary_size: int = 6_000
    terms_per_document: int = 8
    num_queries: int = 6_000
    distinct_queries: int = 600
    max_query_terms: int = 3
    queriers_per_shard: int = 32
    top_k: int = 20
    num_shards: int = 8
    workers: int = 1
    kernel: str = "python"
    zipf_exponent: float = 0.8
    early_termination: bool = True
    result_cache_size: int = 0
    seed: int = 6111

    def replaced(self, **kwargs) -> "ScaleWorkloadConfig":
        merged = {**asdict(self), **kwargs}
        return ScaleWorkloadConfig(**merged)


def scale_paper_config() -> ScaleWorkloadConfig:
    """The 100k-peer / ~1M-posting headline row of BENCH_SCALE.json."""
    return ScaleWorkloadConfig(
        num_peers=100_000,
        num_documents=125_000,
        vocabulary_size=12_000,
        num_queries=10_000,
        distinct_queries=1_000,
        num_shards=16,
        workers=2,
    )


def scale_smoke_config() -> ScaleWorkloadConfig:
    """A seconds-scale shrink for CI (still 4 shards / 2 workers)."""
    return ScaleWorkloadConfig(
        num_peers=400,
        num_documents=600,
        vocabulary_size=500,
        num_queries=400,
        distinct_queries=100,
        queriers_per_shard=8,
        num_shards=4,
        workers=2,
    )


def _shard_slice(total: int, num_shards: int, shard_id: int) -> int:
    """Shard *shard_id*'s share of *total* (remainder to low shards)."""
    share, remainder = divmod(total, num_shards)
    return share + (1 if shard_id < remainder else 0)


@dataclass
class ShardResult:
    """One shard's measured outcome (plain fields: crosses processes)."""

    shard_id: int
    num_peers: int
    num_documents: int
    num_queries: int
    build_s: float
    publish_s: float
    query_s: float
    postings_published: int
    ranking_checksum: str
    peak_rss_kb: int
    allocated_blocks_delta: int


def _run_shard(cfg: ScaleWorkloadConfig, shard_id: int) -> ShardResult:
    """Run one shard inline: build its sub-ring, stream-publish its
    corpus slice, run its query stream.  Deterministic in
    ``(cfg, shard_id)`` — see the module docstring."""
    seed = cfg.seed * _SEED_STRIDE + shard_id
    rng = random.Random(seed)
    num_peers = max(1, _shard_slice(cfg.num_peers, cfg.num_shards, shard_id))
    num_documents = _shard_slice(cfg.num_documents, cfg.num_shards, shard_id)
    num_queries = _shard_slice(cfg.num_queries, cfg.num_shards, shard_id)
    blocks_before = memory_usage()["allocated_blocks"]

    t0 = perf_counter()
    ring = ChordRing(
        ChordConfig(
            num_peers=num_peers,
            seed=seed,
            route_cache_size=65536,
            incremental_repair=True,
        )
    )
    protocol = IndexingProtocol(ring, result_cache_size=cfg.result_cache_size)
    processor = QueryProcessor(
        protocol,
        assumed_corpus_size=1_000_000,
        early_termination=cfg.early_termination,
        result_cache=cfg.result_cache_size > 0,
        kernel=cfg.kernel,
    )
    build_s = perf_counter() - t0
    PROFILE.record_memory(f"shard{shard_id}.build")

    # -- streamed publish: generate → batch-publish → drop ----------------
    vocabulary = [f"term{i:05d}" for i in range(cfg.vocabulary_size)]
    weights = zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
    postings_published = 0
    t0 = perf_counter()
    for doc in stream_synthetic_docs(
        rng,
        vocabulary=vocabulary,
        weights=weights,
        num_documents=num_documents,
        terms_per_document=cfg.terms_per_document,
        id_prefix=f"s{shard_id:02d}-doc",
    ):
        owner_id = ring.random_live_id(rng)
        batch = [
            (
                term,
                PostingEntry(
                    doc_id=doc.doc_id,
                    owner_peer=owner_id,
                    raw_tf=raw_tf,
                    doc_length=doc.length,
                ),
            )
            for term, raw_tf in doc.term_tfs
        ]
        protocol.publish_batch(owner_id, batch)
        postings_published += len(batch)
    publish_s = perf_counter() - t0
    PROFILE.record_memory(f"shard{shard_id}.publish")

    # -- query stream: Zipf-popular picks from a distinct pool ------------
    term_sampler = CategoricalSampler(vocabulary, weights)
    pool: List[Query] = []
    for q in range(cfg.distinct_queries):
        k = rng.randint(1, cfg.max_query_terms)
        terms = tuple(dict.fromkeys(term_sampler.sample_many(rng, k)))
        pool.append(Query(query_id=f"s{shard_id:02d}-q{q:05d}", terms=terms))
    issuers = rng.sample(
        ring.live_ids, min(cfg.queriers_per_shard, num_peers)
    )
    pick_sampler = CategoricalSampler(
        range(cfg.distinct_queries),
        zipf_weights(cfg.distinct_queries, cfg.zipf_exponent),
    )
    picks = pick_sampler.sample_many(rng, num_queries)

    checksum = sha256()
    t0 = perf_counter()
    for i, pick in enumerate(picks):
        query = pool[pick]
        ranked, __ = processor.execute(
            issuers[i % len(issuers)], query, top_k=cfg.top_k
        )
        checksum.update(query.query_id.encode())
        for entry in ranked:
            checksum.update(f"{entry.doc_id}:{entry.score!r}".encode())
    query_s = perf_counter() - t0
    memory = PROFILE.record_memory(f"shard{shard_id}.query")

    return ShardResult(
        shard_id=shard_id,
        num_peers=num_peers,
        num_documents=num_documents,
        num_queries=num_queries,
        build_s=round(build_s, 4),
        publish_s=round(publish_s, 4),
        query_s=round(query_s, 4),
        postings_published=postings_published,
        ranking_checksum=checksum.hexdigest(),
        peak_rss_kb=memory["peak_rss_kb"],
        allocated_blocks_delta=memory["allocated_blocks"] - blocks_before,
    )


def _shard_worker(payload: Tuple[Dict, int]) -> Dict:
    """Pool entry point (module-level so it pickles under spawn)."""
    cfg_dict, shard_id = payload
    return asdict(_run_shard(ScaleWorkloadConfig(**cfg_dict), shard_id))


@dataclass
class ScaleWorkloadResult:
    """Merged outcome of one sharded run (JSON-friendly)."""

    num_peers: int
    num_documents: int
    num_queries: int
    num_shards: int
    workers: int
    kernel: str
    build_s: float
    publish_s: float
    query_s: float
    wall_s: float
    #: Per-core throughputs: totals over summed per-shard phase seconds
    #: — stable across worker counts, the gated numbers.
    queries_per_s: float
    docs_per_s: float
    postings_per_s: float
    #: End-to-end throughput against harness wall clock (includes
    #: build + publish and reflects actual parallelism).
    wall_queries_per_s: float
    postings_published: int
    ranking_checksum: str
    shard_checksums: List[str]
    peak_rss_kb: int
    allocated_blocks_delta: int
    profile: Dict[str, Dict[str, object]]

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class ShardedHarness:
    """Partitions a :class:`ScaleWorkloadConfig` across shards and runs
    them inline or on a ``multiprocessing`` pool (see module docstring
    for the determinism contract)."""

    def __init__(self, cfg: ScaleWorkloadConfig) -> None:
        if cfg.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if cfg.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if cfg.kernel not in SCORING_KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {SCORING_KERNELS}, got {cfg.kernel!r}"
            )
        self.cfg = cfg

    def run(self) -> ScaleWorkloadResult:
        cfg = self.cfg
        workers = min(cfg.workers, cfg.num_shards)
        t0 = perf_counter()
        if workers <= 1:
            shards = [
                _run_shard(cfg, shard_id)
                for shard_id in range(cfg.num_shards)
            ]
        else:
            shards = self._run_pooled(workers)
        wall_s = perf_counter() - t0

        shards.sort(key=lambda shard: shard.shard_id)
        merged = sha256()
        for shard in shards:
            merged.update(shard.ranking_checksum.encode())
        build_s = sum(s.build_s for s in shards)
        publish_s = sum(s.publish_s for s in shards)
        query_s = sum(s.query_s for s in shards)
        postings = sum(s.postings_published for s in shards)
        parent_memory = PROFILE.record_memory("merge")
        peak_rss_kb = max(
            [s.peak_rss_kb for s in shards] + [parent_memory["peak_rss_kb"]]
        )
        PROFILE.max_gauge("mem.peak_rss_kb", peak_rss_kb)
        return ScaleWorkloadResult(
            num_peers=cfg.num_peers,
            num_documents=cfg.num_documents,
            num_queries=cfg.num_queries,
            num_shards=cfg.num_shards,
            workers=workers,
            kernel=cfg.kernel,
            build_s=round(build_s, 4),
            publish_s=round(publish_s, 4),
            query_s=round(query_s, 4),
            wall_s=round(wall_s, 4),
            queries_per_s=round(cfg.num_queries / query_s, 2)
            if query_s
            else 0.0,
            docs_per_s=round(cfg.num_documents / publish_s, 2)
            if publish_s
            else 0.0,
            postings_per_s=round(postings / publish_s, 2)
            if publish_s
            else 0.0,
            wall_queries_per_s=round(cfg.num_queries / wall_s, 2)
            if wall_s
            else 0.0,
            postings_published=postings,
            ranking_checksum=merged.hexdigest(),
            shard_checksums=[s.ranking_checksum for s in shards],
            peak_rss_kb=peak_rss_kb,
            allocated_blocks_delta=sum(
                s.allocated_blocks_delta for s in shards
            ),
            profile=PROFILE.summary(),
        )

    def _run_pooled(self, workers: int) -> List[ShardResult]:
        import multiprocessing

        cfg = self.cfg
        # fork (where available) skips re-importing repro per worker;
        # the payload is plain dicts either way, so spawn also works.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context("spawn")
        payloads = [
            (asdict(cfg), shard_id) for shard_id in range(cfg.num_shards)
        ]
        with context.Pool(processes=workers) as pool:
            rows = pool.map(_shard_worker, payloads)
        return [ShardResult(**row) for row in rows]


def run_scale_workload(cfg: ScaleWorkloadConfig) -> ScaleWorkloadResult:
    """Execute one sharded run under PROFILE (same enable/reset
    discipline as :func:`repro.perf.bench.run_perf_workload`)."""
    prior_enabled = PROFILE.enabled
    PROFILE.reset()
    PROFILE.enable()
    try:
        return ShardedHarness(cfg).run()
    finally:
        if not prior_enabled:
            PROFILE.disable()
