"""The tracked top-k scoring benchmark (ISSUE 4).

Reuses the :mod:`repro.perf.bench` scenario — same ring, documents,
query stream, and churn schedule — and runs it in four retrieval modes
over identical inputs:

* ``legacy`` — the seed execution path (per-term fetch, nested-dict
  scoring, no route cache), identical to ``BENCH_PERF.json``'s
  "before" mode.  The acceptance baseline;
* ``batched`` — the ISSUE 2 optimized path (batched fetch + exhaustive
  flat-dict scoring), identical to ``BENCH_PERF.json``'s "after" mode;
* ``topk`` — columnar slots + exact max-score early termination, result
  cache off.  Same messages on the wire as ``batched``, strictly less
  scoring work;
* ``cached`` — early termination plus the indexing peers' query-result
  caches, so the Zipf-repeated majority of the stream is answered
  without fetching or scoring postings at all.

All four modes must produce **identical ranking checksums**: early
termination is exact and the result cache is version-validated, so they
can only differ in speed.  ``benchmarks/test_bench_topk.py`` asserts
the equivalences and records the trajectory in ``BENCH_TOPK.json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

from .bench import (
    PerfWorkloadConfig,
    PerfWorkloadResult,
    paper_scale_config,
    run_perf_workload,
    smoke_config,
)

#: The answer-list depth of the paper's experiments (top K = 20).
TOP_K = 20

#: Result-cache capacity per indexing peer in the ``cached`` mode.
RESULT_CACHE_SIZE = 256


def topk_paper_config() -> PerfWorkloadConfig:
    """The tracked paper-scale scenario (2,000 peers / 5,000 queries)."""
    return paper_scale_config()


def topk_smoke_config() -> PerfWorkloadConfig:
    """The seconds-scale CI shrink of the same scenario."""
    return smoke_config()


@dataclass
class TopKComparison:
    """Measured outcome of one four-mode comparison (JSON-friendly)."""

    top_k: int
    legacy: PerfWorkloadResult
    batched: PerfWorkloadResult
    topk: PerfWorkloadResult
    cached: PerfWorkloadResult
    #: queries/sec of each new mode over the seed ``legacy`` path — the
    #: acceptance criterion compares against this baseline.
    speedup_topk: float
    speedup_cached: float
    #: queries/sec of each new mode over the ISSUE 2 ``batched`` path —
    #: the incremental win of this PR alone.
    speedup_topk_vs_batched: float
    speedup_cached_vs_batched: float
    checksums_match: bool

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def run_topk_comparison(cfg: PerfWorkloadConfig) -> TopKComparison:
    """Run the scenario once per mode and compare.

    Deterministic for a given config: all modes consume the same seeded
    workload, so their ranking checksums must agree bit for bit.
    """
    legacy = run_perf_workload(
        cfg.replaced(optimized=False, early_termination=False, result_cache_size=0)
    )
    batched = run_perf_workload(
        cfg.replaced(optimized=True, early_termination=False, result_cache_size=0)
    )
    topk = run_perf_workload(
        cfg.replaced(optimized=True, early_termination=True, result_cache_size=0)
    )
    cached = run_perf_workload(
        cfg.replaced(
            optimized=True,
            early_termination=True,
            result_cache_size=RESULT_CACHE_SIZE,
        )
    )
    return TopKComparison(
        top_k=TOP_K,
        legacy=legacy,
        batched=batched,
        topk=topk,
        cached=cached,
        speedup_topk=_ratio(topk.queries_per_s, legacy.queries_per_s),
        speedup_cached=_ratio(cached.queries_per_s, legacy.queries_per_s),
        speedup_topk_vs_batched=_ratio(topk.queries_per_s, batched.queries_per_s),
        speedup_cached_vs_batched=_ratio(cached.queries_per_s, batched.queries_per_s),
        checksums_match=(
            legacy.ranking_checksum
            == batched.ranking_checksum
            == topk.ranking_checksum
            == cached.ranking_checksum
        ),
    )


def _ratio(after: float, before: float) -> float:
    return round(after / before, 2) if before else 0.0
