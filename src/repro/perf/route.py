"""The routing benchmark: ring × arity × peers hop-count sweep.

``perf --mode route`` runs one identical publish + Zipf-query + churn
workload over a grid of overlay configurations — Chord and ReCord rings
at several branching factors and peer counts — and reports, per cell,
the routing quantities the arity knob actually trades (DESIGN.md §16):

* **mean / p99 hops** per lookup, the latency proxy routing exists to
  minimize;
* **lookup messages**, the per-hop wire cost of all routing performed;
* **finger-table size**, the per-node state the shorter routes are
  bought with;
* **stabilize traffic** (routing-table entry writes during the initial
  build and during churn repair), the maintenance cost of that state.

Every ring in a same-``num_peers`` group is built from the same seed
(hence the same membership) and driven by the same RNG stream, so the
**ranking checksums must match bit for bit across rings** — routing
changes where messages go, never what is returned.  The grid runner
verifies this cross-ring equivalence on every run, and
``benchmarks/test_bench_route.py`` gates on it in CI.

Unlike the sharded scale harness (which splits one logical ring into
independent sub-rings), parallelism here is per **cell**: each grid
cell builds its *whole* ring in one process, because splitting a ring
would shrink it and corrupt the very hop counts being measured.  A cell
is a pure function of ``(config, peers, ring spec)``, so results are
identical for any worker count; workers only place cells.  Route caches
are disabled in every cell — a cache hit short-circuits to one hop, so
measuring genuine routing requires routing every lookup.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from hashlib import sha256
from time import perf_counter
from typing import Dict, List, Sequence, Tuple

from ..config import RING_KINDS, ChordConfig
from ..core.indexer import IndexingProtocol
from ..core.metadata import PostingEntry
from ..core.query_processing import QueryProcessor
from ..corpus.relevance import Query
from ..corpus.sampling import CategoricalSampler, zipf_weights
from ..dht.messages import MessageKind
from ..dht.recursive import build_ring
from ..exceptions import ConfigurationError
from ..net.trace import percentile


def parse_ring_specs(text: str) -> Tuple[Tuple[str, int], ...]:
    """Parse a ring-grid spec like ``"chord,record:4,record:8"`` into
    ``((kind, arity), ...)`` pairs.

    Grammar per comma-separated item: ``chord`` (arity fixed at 2) or
    ``record[:ARITY]`` (arity defaults to 2).  Raises
    :class:`~repro.exceptions.ConfigurationError` on unknown kinds,
    non-integer or < 2 arities, an arity attached to ``chord``, or
    duplicate cells — the CLI surfaces these as usage errors.
    """
    specs: List[Tuple[str, int]] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            raise ConfigurationError("empty ring spec")
        kind, __, arity_text = item.partition(":")
        if kind not in RING_KINDS:
            raise ConfigurationError(
                f"unknown ring kind {kind!r}; expected one of {RING_KINDS}"
            )
        if arity_text:
            if kind == "chord":
                raise ConfigurationError(
                    "ring arity only applies to 'record' (chord is fixed at 2)"
                )
            try:
                arity = int(arity_text)
            except ValueError:
                raise ConfigurationError(
                    f"ring arity must be an integer, got {arity_text!r}"
                ) from None
            if arity < 2:
                raise ConfigurationError("ring arity must be >= 2")
        else:
            arity = 2
        if (kind, arity) in specs:
            raise ConfigurationError(f"duplicate ring spec: {item!r}")
        specs.append((kind, arity))
    return tuple(specs)


def ring_label(kind: str, arity: int) -> str:
    """Display label for one grid column (``chord`` / ``record:8``)."""
    return kind if kind == "chord" else f"{kind}:{arity}"


@dataclass(frozen=True)
class RouteWorkloadConfig:
    """Shape of one routing sweep.

    ``peers_grid`` × ``ring_specs`` define the cells; the workload knobs
    (documents, queries, churn) are shared by every cell so columns are
    comparable.  ``workers`` is pure execution placement (cells are
    independent); results are identical for any worker count.
    """

    peers_grid: Tuple[int, ...] = (2_000, 10_000)
    ring_specs: Tuple[str, ...] = ("chord", "record:4", "record:8", "record:32")
    num_documents: int = 120
    vocabulary_size: int = 600
    terms_per_document: int = 12
    num_queries: int = 2_000
    distinct_queries: int = 300
    max_query_terms: int = 3
    num_query_peers: int = 48
    churn_every: int = 250
    top_k: int = 20
    zipf_exponent: float = 0.8
    seed: int = 4111
    workers: int = 1

    def replaced(self, **kwargs) -> "RouteWorkloadConfig":
        merged = {**asdict(self), **kwargs}
        for key in ("peers_grid", "ring_specs"):
            merged[key] = tuple(merged[key])
        return RouteWorkloadConfig(**merged)


def route_paper_config() -> RouteWorkloadConfig:
    """The tracked grid: 2k and 10k peers × four ring columns."""
    return RouteWorkloadConfig()


def route_smoke_config() -> RouteWorkloadConfig:
    """A seconds-scale shrink for CI: one peer count, two columns."""
    return RouteWorkloadConfig(
        peers_grid=(600,),
        ring_specs=("chord", "record:8"),
        num_documents=50,
        vocabulary_size=300,
        num_queries=500,
        distinct_queries=80,
        num_query_peers=16,
        churn_every=125,
    )


@dataclass
class RouteCellResult:
    """One grid cell's measurements (plain fields: crosses processes)."""

    ring: str
    kind: str
    arity: int
    num_peers: int
    build_s: float
    query_s: float
    lookups: int
    #: Per-hop LOOKUP wire messages across the whole cell (each routing
    #: hop is one message on a real network).
    lookup_messages: int
    #: Hop statistics over the query phase only (publish-phase lookups
    #: excluded so columns measure steady-state routing).
    mean_hops: float
    p99_hops: float
    #: Fingers per node — the state bought to shorten routes.
    finger_table_size: int
    #: Routing-table entry writes during the initial full build.
    build_entries: int
    #: Entry writes by churn repair during the stream (the recurring
    #: maintenance traffic a deployment pays forever).
    churn_entries: int
    churn_events: int
    ranking_checksum: str


def run_route_cell(
    cfg: RouteWorkloadConfig, num_peers: int, kind: str, arity: int
) -> RouteCellResult:
    """Run one grid cell inline: build the whole ring, publish, run the
    query stream with interleaved churn, and measure routing.

    Deterministic in ``(cfg, num_peers, kind, arity)``; and because the
    RNG stream never observes the finger schedule, every cell in a
    same-``num_peers`` group sees the identical membership, documents,
    query stream, and churn schedule — which is what makes the
    cross-ring checksum equality a meaningful oracle.
    """
    rng = random.Random(cfg.seed * 1_000_003 + num_peers)

    t0 = perf_counter()
    ring = build_ring(
        kind,
        ChordConfig(
            num_peers=num_peers,
            seed=cfg.seed,
            route_cache_size=0,  # measure genuine routing, not cache hits
            incremental_repair=True,
        ),
        arity=arity,
    )
    protocol = IndexingProtocol(ring)
    processor = QueryProcessor(protocol, assumed_corpus_size=1_000_000)
    build_s = perf_counter() - t0
    build_entries = ring.routing_entries_written

    # -- publish a synthetic term index (Zipf-skewed vocabulary) ----------
    vocabulary = [f"term{i:04d}" for i in range(cfg.vocabulary_size)]
    weights = zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
    term_sampler = CategoricalSampler(vocabulary, weights)
    for d in range(cfg.num_documents):
        doc_id = f"doc{d:05d}"
        owner_id = ring.random_live_id(rng)
        doc_length = rng.randint(80, 240)
        terms = list(
            dict.fromkeys(
                term_sampler.sample_many(rng, cfg.terms_per_document)
            )
        )
        batch = [
            (
                term,
                PostingEntry(
                    doc_id=doc_id,
                    owner_peer=owner_id,
                    raw_tf=rng.randint(1, 12),
                    doc_length=doc_length,
                ),
            )
            for term in terms
        ]
        protocol.publish_batch(owner_id, batch)

    # -- query pool: distinct queries with Zipf popularity ----------------
    pool: List[Query] = []
    for q in range(cfg.distinct_queries):
        k = rng.randint(1, cfg.max_query_terms)
        terms = tuple(dict.fromkeys(term_sampler.sample_many(rng, k)))
        pool.append(Query(query_id=f"routeq{q:04d}", terms=terms))
    issuers = rng.sample(ring.live_ids, min(cfg.num_query_peers, num_peers))
    pick_sampler = CategoricalSampler(
        range(cfg.distinct_queries),
        zipf_weights(cfg.distinct_queries, cfg.zipf_exponent),
    )
    picks = pick_sampler.sample_many(rng, cfg.num_queries)

    # -- query stream with interleaved churn ------------------------------
    checksum = sha256()
    protected = set(issuers)
    samples_before = len(ring.stats.lookup_hop_samples)
    messages_before = ring.stats.kind(MessageKind.LOOKUP).hops
    entries_before_churn = ring.routing_entries_written
    churn_events = 0
    t0 = perf_counter()
    for i, pick in enumerate(picks):
        if cfg.churn_every and i and i % cfg.churn_every == 0:
            ring.join(name=f"churner-{i}")
            candidates = [n for n in ring.live_ids if n not in protected]
            ring.leave(rng.choice(candidates))
            ring.stabilize()
            churn_events += 1
        query = pool[pick]
        ranked, __ = processor.execute(
            issuers[i % len(issuers)], query, top_k=cfg.top_k
        )
        checksum.update(query.query_id.encode())
        for entry in ranked:
            checksum.update(f"{entry.doc_id}:{entry.score!r}".encode())
    query_s = perf_counter() - t0

    hop_samples = ring.stats.lookup_hop_samples[samples_before:]
    mean_hops = sum(hop_samples) / len(hop_samples) if hop_samples else 0.0
    return RouteCellResult(
        ring=ring_label(kind, arity),
        kind=kind,
        arity=arity,
        num_peers=num_peers,
        build_s=round(build_s, 4),
        query_s=round(query_s, 4),
        lookups=len(hop_samples),
        lookup_messages=ring.stats.kind(MessageKind.LOOKUP).hops
        - messages_before,
        mean_hops=round(mean_hops, 4),
        p99_hops=percentile(hop_samples, 99),
        finger_table_size=len(ring.finger_steps),
        build_entries=build_entries,
        churn_entries=ring.routing_entries_written - entries_before_churn,
        churn_events=churn_events,
        ranking_checksum=checksum.hexdigest(),
    )


def _cell_worker(payload: Tuple[Dict, int, str, int]) -> Dict:
    """Pool entry point (module-level so it pickles under spawn)."""
    cfg_dict, num_peers, kind, arity = payload
    cfg = RouteWorkloadConfig(**cfg_dict).replaced()
    return asdict(run_route_cell(cfg, num_peers, kind, arity))


@dataclass
class RouteWorkloadResult:
    """Merged outcome of one routing sweep (JSON-friendly)."""

    peers_grid: List[int]
    rings: List[str]
    num_queries: int
    workers: int
    wall_s: float
    cells: List[Dict[str, object]]
    #: Whether every same-``num_peers`` group of cells produced one
    #: identical ranking checksum — the cross-ring oracle.
    checksums_match: bool

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def cell(self, num_peers: int, ring: str) -> Dict[str, object]:
        """The one cell for (peer count, ring label); KeyError if absent."""
        for cell in self.cells:
            if cell["num_peers"] == num_peers and cell["ring"] == ring:
                return cell
        raise KeyError(f"no cell for peers={num_peers} ring={ring!r}")

    def hop_reduction(
        self, num_peers: int, ring: str, baseline: str = "chord"
    ) -> float:
        """Fractional mean-hop reduction of *ring* vs *baseline* at one
        peer count (0.25 = 25% fewer hops)."""
        base = float(self.cell(num_peers, baseline)["mean_hops"])
        target = float(self.cell(num_peers, ring)["mean_hops"])
        return 1.0 - target / base if base else 0.0

    def summary_table(self) -> str:
        """Deterministic fixed-format report for the CLI."""
        header = (
            f"{'peers':>7} {'ring':<10} {'hops_mean':>9} {'hops_p99':>8} "
            f"{'lookup_msgs':>11} {'fingers':>7} {'build_entries':>13} "
            f"{'churn_entries':>13} {'checksum':>10}"
        )
        lines = [header]
        for cell in self.cells:
            lines.append(
                f"{cell['num_peers']:>7} {cell['ring']:<10} "
                f"{cell['mean_hops']:>9.3f} {cell['p99_hops']:>8.0f} "
                f"{cell['lookup_messages']:>11} {cell['finger_table_size']:>7} "
                f"{cell['build_entries']:>13} {cell['churn_entries']:>13} "
                f"{str(cell['ranking_checksum'])[:10]:>10}"
            )
        verdict = "MATCH" if self.checksums_match else "MISMATCH"
        lines.append(f"cross-ring ranking checksums: {verdict}")
        return "\n".join(lines)


def run_route_workload(cfg: RouteWorkloadConfig) -> RouteWorkloadResult:
    """Run the full grid (optionally on a process pool) and verify the
    cross-ring checksum equivalence per peer count."""
    if not cfg.peers_grid:
        raise ConfigurationError("peers_grid must not be empty")
    if cfg.workers < 1:
        raise ConfigurationError("workers must be >= 1")
    specs: List[Tuple[str, int]] = []
    for spec_text in cfg.ring_specs:
        for spec in parse_ring_specs(spec_text):
            if spec in specs:
                raise ConfigurationError(
                    f"duplicate ring spec: {ring_label(*spec)!r}"
                )
            specs.append(spec)
    if not specs:
        raise ConfigurationError("ring_specs must not be empty")

    cells_spec = [
        (peers, kind, arity) for peers in cfg.peers_grid for kind, arity in specs
    ]
    t0 = perf_counter()
    workers = min(cfg.workers, len(cells_spec))
    if workers <= 1:
        rows = [
            asdict(run_route_cell(cfg, peers, kind, arity))
            for peers, kind, arity in cells_spec
        ]
    else:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context("spawn")
        payloads = [
            (asdict(cfg), peers, kind, arity)
            for peers, kind, arity in cells_spec
        ]
        with context.Pool(processes=workers) as pool:
            rows = pool.map(_cell_worker, payloads)
    wall_s = perf_counter() - t0

    match = True
    for peers in cfg.peers_grid:
        sums = {
            row["ranking_checksum"]
            for row in rows
            if row["num_peers"] == peers
        }
        if len(sums) > 1:
            match = False
    return RouteWorkloadResult(
        peers_grid=list(cfg.peers_grid),
        rings=[ring_label(kind, arity) for kind, arity in specs],
        num_queries=cfg.num_queries,
        workers=workers,
        wall_s=round(wall_s, 4),
        cells=rows,
        checksums_match=match,
    )
