"""The tracked durable-store benchmark (ISSUE 6).

Two reproducible scenarios behind ``benchmarks/test_bench_store.py`` and
``perf --mode store``:

* ``run_store_workload(cfg)`` — one ingest + query pass (bulk-share a
  synthetic corpus from a handful of ingest peers, register a training
  stream, learn, then run a fixed evaluation query set) with the posting
  store on the configured backend.  Returns throughput per phase, the
  store's own statistics rollup (database size, Bloom counters,
  connection-pool usage), snapshot cost, and a **ranking checksum** —
  every backend arm must produce the same checksum, the same acceptance
  bar the write-path bench uses.

* ``run_recovery_workload(cfg, use_snapshot)`` — the crash-recovery
  comparison: build, replicate, checkpoint every slot-holding peer,
  apply a churn delta, replicate again, crash the slot-richest indexing
  peer, repair the ring, and rejoin it through
  :class:`~repro.store.recovery.RecoveryManager`.  With
  ``use_snapshot=True`` only the post-checkpoint delta ships; with
  ``False`` the full-resync baseline runs.  The comparison reports
  messages / bytes / postings for both, which the benchmark gates on.

Shares the synthetic-text helpers with :mod:`repro.perf.ingest` so the
corpora are directly comparable across the tracked benches.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from hashlib import sha256
from time import perf_counter
from typing import Dict, List, Optional

from ..config import ChordConfig, SpriteConfig
from ..core.indexer import IndexingProtocol
from ..core.metadata import TermSlot
from ..core.owner import OwnerPeer
from ..core.query_processing import QueryProcessor
from ..corpus.document import Document
from ..corpus.relevance import Query
from ..dht.replication import ReplicationManager
from ..dht.ring import ChordRing
from ..store import RecoveryManager, StoreRuntime
from ..text.analyzer import Analyzer
from .ingest import _synth_text, _zipf_weights
from .profile import PROFILE


@dataclass(frozen=True)
class StoreWorkloadConfig:
    """Shape of one store scenario.

    The default is the tracked "paper-scale" workload: a 400-peer ring
    ingesting 300 documents — large enough that the victim peer in the
    recovery scenario holds dozens of slots, small enough that the
    per-row SQLite arm finishes in tens of seconds.  The CI smoke run
    shrinks every axis (see ``store_smoke_config``).
    """

    num_peers: int = 400
    num_documents: int = 300
    num_ingest_peers: int = 6
    vocabulary_size: int = 250
    words_per_document: int = 100
    initial_terms: int = 10
    num_queries: int = 200
    distinct_queries: int = 80
    max_query_terms: int = 3
    num_eval_queries: int = 60
    #: Documents withdrawn + re-shared between checkpoint and crash in
    #: the recovery scenario — the delta the snapshot path ships.
    churn_slice: int = 40
    zipf_exponent: float = 0.8
    seed: int = 6111
    backend: str = "sqlite"
    bloom: bool = True
    #: Empty = a self-cleaning temporary directory (the benches pass a
    #: pytest tmp dir so nothing lands in the repo).
    store_dir: str = ""
    snapshot_dir: str = ""

    def replaced(self, **kwargs) -> "StoreWorkloadConfig":
        merged = {**asdict(self), **kwargs}
        return StoreWorkloadConfig(**merged)


def store_paper_config() -> StoreWorkloadConfig:
    """The 400-peer / 300-document workload the issue tracks."""
    return StoreWorkloadConfig()


def store_smoke_config() -> StoreWorkloadConfig:
    """A seconds-scale shrink of the same scenario for CI."""
    return StoreWorkloadConfig(
        num_peers=60,
        num_documents=50,
        num_ingest_peers=3,
        vocabulary_size=120,
        words_per_document=50,
        initial_terms=8,
        num_queries=60,
        distinct_queries=30,
        num_eval_queries=20,
        churn_slice=10,
    )


@dataclass
class StoreWorkloadResult:
    """Measured outcome of one workload run (JSON-friendly)."""

    backend: str
    bloom: bool
    num_peers: int
    num_documents: int
    build_s: float
    learn_s: float
    query_s: float
    snapshot_s: float
    total_s: float
    docs_per_s_build: float
    queries_per_s: float
    #: Peers checkpointed / bytes written by the snapshot pass (0 for
    #: the in-RAM backend, which has nothing durable to checkpoint).
    snapshot_peers: int
    snapshot_bytes: int
    store: Dict[str, object]
    ranking_checksum: str
    profile: Dict[str, Dict[str, object]]

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class RecoveryRunResult:
    """Measured outcome of one crash-recovery run (JSON-friendly)."""

    mode: str
    victim: int
    victim_slots: int
    recovery_s: float
    report: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class StoreComparison:
    """The tracked three-arm backend + two-mode recovery comparison."""

    memory: StoreWorkloadResult
    sqlite: StoreWorkloadResult
    sqlite_bloom: StoreWorkloadResult
    recovery_snapshot: RecoveryRunResult
    recovery_full: RecoveryRunResult
    #: In-RAM build docs/s over the (Bloom-fronted) SQLite arm — the
    #: honest cost of durability, expected > 1.
    sqlite_build_cost: float
    #: Bloom-fronted over plain SQLite build docs/s — what skipping the
    #: point-read existence checks buys.
    bloom_build_gain: float
    #: Full-resync recovery messages over snapshot-mode messages — the
    #: acceptance criterion (snapshot recovery must be measurably
    #: cheaper, so this must be > 1).
    recovery_message_ratio: float
    #: Same ratio in shipped postings.
    recovery_posting_ratio: float
    checksums_match: bool

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def run_store_workload(cfg: StoreWorkloadConfig) -> StoreWorkloadResult:
    """Execute the ingest + query scenario once and measure it.

    Deterministic for a given config: same seed → same ring, corpus,
    query stream, and (whatever the backend) the same ranking checksum.
    """
    prior_enabled = PROFILE.enabled
    PROFILE.reset()
    PROFILE.enable()
    try:
        return _run(cfg)
    finally:
        if not prior_enabled:
            PROFILE.disable()


def _build_runtime(cfg: StoreWorkloadConfig) -> Optional[StoreRuntime]:
    if cfg.backend == "memory":
        return None
    return StoreRuntime(
        store_dir=cfg.store_dir,
        bloom=cfg.bloom,
        snapshot_dir=cfg.snapshot_dir,
    )


def _synth_corpus(cfg: StoreWorkloadConfig, rng: random.Random) -> List[Document]:
    vocab = [f"voc{i:03d}" for i in range(cfg.vocabulary_size)]
    weights = _zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
    docs = [
        Document(
            f"doc{d:05d}",
            _synth_text(rng, vocab, weights, cfg.words_per_document),
        )
        for d in range(cfg.num_documents)
    ]
    analyzer = Analyzer()
    for doc in docs:
        doc.analyze(analyzer)
    return docs


def _query_pool(cfg: StoreWorkloadConfig, rng: random.Random) -> List[Query]:
    vocab = [f"voc{i:03d}" for i in range(cfg.vocabulary_size)]
    weights = _zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
    return [
        Query(
            query_id=f"stq{q:04d}",
            terms=tuple(
                dict.fromkeys(
                    rng.choices(
                        vocab, weights=weights, k=rng.randint(1, cfg.max_query_terms)
                    )
                )
            ),
        )
        for q in range(cfg.distinct_queries)
    ]


def _build_deployment(cfg: StoreWorkloadConfig, runtime: Optional[StoreRuntime]):
    """Ring + protocol + ingest owners + pre-analyzed corpus + queries,
    all from ``cfg.seed`` — shared by both scenarios so the recovery
    comparison crashes exactly the state the throughput arms measured."""
    rng = random.Random(cfg.seed)
    docs = _synth_corpus(cfg, rng)
    ring = ChordRing(
        ChordConfig(num_peers=cfg.num_peers, seed=cfg.seed, route_cache_size=65536)
    )
    sprite = SpriteConfig(
        initial_terms=cfg.initial_terms,
        terms_per_iteration=4,
        learning_iterations=1,
        max_index_terms=cfg.initial_terms + 4,
        query_cache_size=500,
        assumed_corpus_size=cfg.num_documents,
    )
    protocol = IndexingProtocol(ring, query_cache_size=500, store_runtime=runtime)
    owner_ids = rng.sample(ring.live_ids, cfg.num_ingest_peers)
    owners = [OwnerPeer(node_id, protocol, sprite) for node_id in owner_ids]
    slice_of: Dict[int, List[Document]] = {i: [] for i in range(len(owners))}
    for d, doc in enumerate(docs):
        slice_of[d % len(owners)].append(doc)
    pool = _query_pool(cfg, rng)
    issuers = rng.sample(ring.live_ids, 16)
    return rng, docs, ring, protocol, owners, owner_ids, slice_of, pool, issuers


def _run(cfg: StoreWorkloadConfig) -> StoreWorkloadResult:
    runtime = _build_runtime(cfg)
    try:
        (
            rng,
            docs,
            ring,
            protocol,
            owners,
            owner_ids,
            slice_of,
            pool,
            issuers,
        ) = _build_deployment(cfg, runtime)

        # -- phase 1: bulk corpus build ---------------------------------
        t0 = perf_counter()
        for i, owner in enumerate(owners):
            owner.share_bulk(slice_of[i])
        build_s = perf_counter() - t0

        # -- phase 2: training stream + one learning iteration ----------
        pool_weights = _zipf_weights(cfg.distinct_queries, cfg.zipf_exponent)
        t0 = perf_counter()
        for q in range(cfg.num_queries):
            query = pool[
                rng.choices(range(cfg.distinct_queries), weights=pool_weights)[0]
            ]
            protocol.register_query(issuers[q % len(issuers)], query.terms)
        for owner in owners:
            owner.learn_all()
        learn_s = perf_counter() - t0

        # -- phase 3: evaluation queries + ranking checksum -------------
        processor = QueryProcessor(
            protocol, assumed_corpus_size=cfg.num_documents, batch_fetch=True
        )
        checksum = sha256()
        t0 = perf_counter()
        for q in range(cfg.num_eval_queries):
            query = pool[q % len(pool)]
            ranked = processor.search(
                issuers[q % len(issuers)], query, top_k=20, cache=False
            )
            checksum.update(query.query_id.encode())
            for entry in ranked:
                checksum.update(f"{entry.doc_id}:{entry.score!r}".encode())
        query_s = perf_counter() - t0

        # -- phase 4: checkpoint every slot-holding peer ----------------
        snapshot_s = 0.0
        snapshot_peers = 0
        snapshot_bytes = 0
        if runtime is not None:
            t0 = perf_counter()
            for node_id in ring.live_ids:
                manifest = runtime.snapshots.save_peer(ring.node(node_id))
                if manifest is not None:
                    snapshot_peers += 1
            snapshot_s = perf_counter() - t0
            snapshot_bytes = sum(
                path.stat().st_size
                for path in runtime.snapshots.root.rglob("*.json")
            )

        total_s = build_s + learn_s + query_s + snapshot_s
        return StoreWorkloadResult(
            backend=cfg.backend,
            bloom=cfg.bloom and cfg.backend == "sqlite",
            num_peers=cfg.num_peers,
            num_documents=cfg.num_documents,
            build_s=round(build_s, 4),
            learn_s=round(learn_s, 4),
            query_s=round(query_s, 4),
            snapshot_s=round(snapshot_s, 4),
            total_s=round(total_s, 4),
            docs_per_s_build=(
                round(cfg.num_documents / build_s, 2) if build_s else 0.0
            ),
            queries_per_s=(
                round(cfg.num_eval_queries / query_s, 2) if query_s else 0.0
            ),
            snapshot_peers=snapshot_peers,
            snapshot_bytes=snapshot_bytes,
            store=runtime.stats() if runtime is not None else {},
            ranking_checksum=checksum.hexdigest(),
            profile=PROFILE.summary(),
        )
    finally:
        if runtime is not None:
            runtime.close()


def run_recovery_workload(
    cfg: StoreWorkloadConfig, use_snapshot: bool = True
) -> RecoveryRunResult:
    """Crash the slot-richest indexing peer and rejoin it.

    Sequence: build → replicate → checkpoint everyone → churn delta →
    replicate again (so the promoted copies carry post-checkpoint writes
    while the checkpoint stays stale) → crash → stabilize + promote →
    recover.  Deterministic for a given config, so the two modes crash
    byte-identical state and their reports are directly comparable.
    """
    runtime = _build_runtime(cfg)
    try:
        (
            rng,
            docs,
            ring,
            protocol,
            owners,
            owner_ids,
            slice_of,
            pool,
            issuers,
        ) = _build_deployment(cfg, runtime)
        for i, owner in enumerate(owners):
            owner.share_bulk(slice_of[i])
        replication = ReplicationManager(ring)
        replication.replicate_round()

        if runtime is not None:
            runtime.flush_retired()
            for node_id in ring.live_ids:
                runtime.snapshots.save_peer(ring.node(node_id))

        # The post-checkpoint delta: withdraw one corpus slice for good
        # and share a batch of fresh documents (withdraw + re-share of
        # identical content would be invisible to content checksums —
        # the delta must actually change posting sets).
        batch = docs[: cfg.churn_slice]
        for owner in owners:
            mine = [d.doc_id for d in batch if d.doc_id in owner.shared]
            if mine:
                owner.unshare_bulk(mine)
        vocab = [f"voc{i:03d}" for i in range(cfg.vocabulary_size)]
        weights = _zipf_weights(cfg.vocabulary_size, cfg.zipf_exponent)
        analyzer = Analyzer()
        fresh = [
            Document(
                f"new{d:05d}",
                _synth_text(rng, vocab, weights, cfg.words_per_document),
            )
            for d in range(cfg.churn_slice)
        ]
        for d, doc in enumerate(fresh):
            doc.analyze(analyzer)
            owners[d % len(owners)].share(doc)
        replication.replicate_round()

        victim, victim_slots = _pick_victim(ring, set(owner_ids))
        ring.fail(victim)
        replication.recover_from_failures()

        recovery = RecoveryManager(ring, runtime)
        t0 = perf_counter()
        report = recovery.recover_peer(victim, use_snapshot=use_snapshot)
        recovery_s = perf_counter() - t0
        return RecoveryRunResult(
            mode=report.mode,
            victim=victim,
            victim_slots=victim_slots,
            recovery_s=round(recovery_s, 4),
            report=report.to_dict(),
        )
    finally:
        if runtime is not None:
            runtime.close()


def _pick_victim(ring: ChordRing, excluded: set) -> tuple:
    """The live non-ingest peer hosting the most postings (ties break
    to the smallest id) — deterministic, and data-rich enough that the
    recovery traffic difference is measurable.  (Weighting by slot
    *count* instead picks rare-term peers with near-empty slots on
    sparse rings, where the digest round would swamp the savings.)"""
    best_id, best_slots, best_postings = None, 0, -1
    for node_id in ring.live_ids:
        if node_id in excluded:
            continue
        slots = [
            slot
            for slot in ring.node(node_id).store.values()
            if isinstance(slot, TermSlot)
        ]
        postings = sum(slot.indexed_document_frequency for slot in slots)
        if postings > best_postings:
            best_id, best_slots, best_postings = node_id, len(slots), postings
    return best_id, best_slots


def run_store_comparison(cfg: StoreWorkloadConfig) -> StoreComparison:
    """Run the scenario once per backend arm plus both recovery modes.

    All arms consume the same seeded workload, so their ranking
    checksums must agree bit for bit — the store is a persistence
    layer, never a scoring change.
    """
    memory = run_store_workload(cfg.replaced(backend="memory"))
    sqlite = run_store_workload(cfg.replaced(backend="sqlite", bloom=False))
    sqlite_bloom = run_store_workload(cfg.replaced(backend="sqlite", bloom=True))
    recovery_snapshot = run_recovery_workload(
        cfg.replaced(backend="sqlite", bloom=True), use_snapshot=True
    )
    recovery_full = run_recovery_workload(
        cfg.replaced(backend="sqlite", bloom=True), use_snapshot=False
    )
    return StoreComparison(
        memory=memory,
        sqlite=sqlite,
        sqlite_bloom=sqlite_bloom,
        recovery_snapshot=recovery_snapshot,
        recovery_full=recovery_full,
        sqlite_build_cost=_ratio(
            memory.docs_per_s_build, sqlite_bloom.docs_per_s_build
        ),
        bloom_build_gain=_ratio(
            sqlite_bloom.docs_per_s_build, sqlite.docs_per_s_build
        ),
        recovery_message_ratio=_ratio(
            recovery_full.report["messages_sent"],
            recovery_snapshot.report["messages_sent"],
        ),
        recovery_posting_ratio=_ratio(
            recovery_full.report["postings_shipped"],
            recovery_snapshot.report["postings_shipped"],
        ),
        checksums_match=(
            memory.ranking_checksum
            == sqlite.ranking_checksum
            == sqlite_bloom.ranking_checksum
        ),
    )


def _ratio(after: float, before: float) -> float:
    return round(after / before, 2) if before else 0.0
