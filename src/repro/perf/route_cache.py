"""Per-node route cache: term-key → responsible node, epoch-validated.

Real DHT deployments do not re-route every request through ``O(log N)``
overlay hops: a querying peer remembers which indexing peer answered for
a key and contacts it directly next time (cf. the route caches in
production Kademlia/Chord implementations).  :class:`RouteCache` models
exactly that for the simulator:

* entries are keyed by ``(ring scope, requesting node, ring key)`` —
  each peer only benefits from routes *it* resolved, matching a real
  deployment where caches are private per node.  The ring scope exists
  because several rings routinely coexist in one process (the
  differential oracle's chord-vs-record comparison, the route bench's
  grid cells) while node ids are deterministic in the seed — two rings
  built from the same seed hold the *same* node ids with potentially
  different memberships.  A cache shared between such rings without the
  scope token would happily serve ring A's resolved route to ring B
  (same ``(node, key)`` tuple, same epoch number), silently corrupting
  hop accounting and, after divergent churn, even the resolved owner.
  Every ring therefore registers itself via :meth:`register_ring` and
  passes its private token on every call;
* every entry carries the ring's **membership epoch** at the time it
  was stored.  The ring bumps its epoch on join/leave/fail/stabilize,
  so a cached route from an older epoch is *revalidated* before use
  (the owner must still be alive and still own the key under the
  current routing state) and refreshed or evicted accordingly;
* capacity is bounded; when full, the oldest entry is evicted (FIFO —
  cheap and good enough for the simulator's access patterns).

The cache itself is a dumb bounded map with hit/miss accounting; the
revalidation *policy* lives in :meth:`repro.dht.ring.ChordRing.lookup`,
which also preserves the paper's cost model: a cache hit still accounts
one lookup message (the querying peer contacts the indexing peer
directly), it just skips the multi-hop routing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class RouteCache:
    """A bounded ``(ring, node, key) → (target, epoch)`` map with stats."""

    __slots__ = (
        "capacity",
        "hits",
        "misses",
        "revalidations",
        "evictions",
        "_entries",
        "_next_ring",
    )

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("route cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Entries successfully revalidated after an epoch change.
        self.revalidations = 0
        self.evictions = 0
        self._entries: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        self._next_ring = 0

    def register_ring(self) -> int:
        """A fresh scope token for one ring instance.

        Every ring that stores routes here must key its traffic by its
        own token — node ids repeat across same-seed rings, so the token
        is what keeps two rings' routes from cross-polluting when a
        cache is shared (oracle comparisons, bench grids).
        """
        token = self._next_ring
        self._next_ring += 1
        return token

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node_id: int, key: int, ring: int = 0) -> Optional[Tuple[int, int]]:
        """The cached ``(target, epoch)`` for this ring/requester/key.

        Does *not* touch the hit/miss counters — the caller decides,
        after validation, whether the entry counts as a hit.
        """
        return self._entries.get((ring, node_id, key))

    def store(
        self, node_id: int, key: int, target: int, epoch: int, ring: int = 0
    ) -> None:
        """Remember a resolved route at the current epoch."""
        entries = self._entries
        if len(entries) >= self.capacity and (ring, node_id, key) not in entries:
            entries.pop(next(iter(entries)))
            self.evictions += 1
        entries[(ring, node_id, key)] = (target, epoch)

    def refresh(
        self, node_id: int, key: int, target: int, epoch: int, ring: int = 0
    ) -> None:
        """Re-stamp a revalidated entry with the current epoch."""
        self._entries[(ring, node_id, key)] = (target, epoch)
        self.revalidations += 1

    def invalidate(self, node_id: int, key: int, ring: int = 0) -> None:
        """Drop one stale entry."""
        self._entries.pop((ring, node_id, key), None)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses), 0.0 before any traffic."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Plain-dict statistics for reports and JSON records."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "revalidations": self.revalidations,
            "evictions": self.evictions,
        }
