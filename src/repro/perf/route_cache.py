"""Per-node route cache: term-key → responsible node, epoch-validated.

Real DHT deployments do not re-route every request through ``O(log N)``
overlay hops: a querying peer remembers which indexing peer answered for
a key and contacts it directly next time (cf. the route caches in
production Kademlia/Chord implementations).  :class:`RouteCache` models
exactly that for the simulator:

* entries are keyed by ``(requesting node, ring key)`` — each peer only
  benefits from routes *it* resolved, matching a real deployment where
  caches are private per node;
* every entry carries the ring's **membership epoch** at the time it
  was stored.  The ring bumps its epoch on join/leave/fail/stabilize,
  so a cached route from an older epoch is *revalidated* before use
  (the owner must still be alive and still own the key under the
  current routing state) and refreshed or evicted accordingly;
* capacity is bounded; when full, the oldest entry is evicted (FIFO —
  cheap and good enough for the simulator's access patterns).

The cache itself is a dumb bounded map with hit/miss accounting; the
revalidation *policy* lives in :meth:`repro.dht.ring.ChordRing.lookup`,
which also preserves the paper's cost model: a cache hit still accounts
one lookup message (the querying peer contacts the indexing peer
directly), it just skips the multi-hop routing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class RouteCache:
    """A bounded ``(node, key) → (target, epoch)`` map with statistics."""

    __slots__ = ("capacity", "hits", "misses", "revalidations", "evictions", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("route cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Entries successfully revalidated after an epoch change.
        self.revalidations = 0
        self.evictions = 0
        self._entries: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node_id: int, key: int) -> Optional[Tuple[int, int]]:
        """The cached ``(target, epoch)`` for this requester/key, if any.

        Does *not* touch the hit/miss counters — the caller decides,
        after validation, whether the entry counts as a hit.
        """
        return self._entries.get((node_id, key))

    def store(self, node_id: int, key: int, target: int, epoch: int) -> None:
        """Remember a resolved route at the current epoch."""
        entries = self._entries
        if len(entries) >= self.capacity and (node_id, key) not in entries:
            entries.pop(next(iter(entries)))
            self.evictions += 1
        entries[(node_id, key)] = (target, epoch)

    def refresh(self, node_id: int, key: int, target: int, epoch: int) -> None:
        """Re-stamp a revalidated entry with the current epoch."""
        self._entries[(node_id, key)] = (target, epoch)
        self.revalidations += 1

    def invalidate(self, node_id: int, key: int) -> None:
        """Drop one stale entry."""
        self._entries.pop((node_id, key), None)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses), 0.0 before any traffic."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Plain-dict statistics for reports and JSON records."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "revalidations": self.revalidations,
            "evictions": self.evictions,
        }
