"""repro.perf — the hot-path optimization layer (DESIGN.md §8).

Three cooperating pieces:

* :mod:`repro.perf.profile` — opt-in wall-clock timers and event
  counters (``PROFILE``) that the simulator's hot paths report into;
* :mod:`repro.perf.route_cache` — the epoch-validated per-node route
  cache :class:`ChordRing` consults before multi-hop routing;
* :mod:`repro.perf.bench` — the tracked end-to-end workload
  (publish + Zipf query stream + churn) behind
  ``benchmarks/test_bench_perf.py`` and the ``perf`` CLI subcommand.

``bench`` is deliberately *not* imported here: it builds rings and query
processors, and the ring itself imports this package for ``PROFILE`` /
``RouteCache`` — import it explicitly as ``repro.perf.bench``.
"""

from .profile import PROFILE, PerfProfile
from .route_cache import RouteCache

__all__ = ["PROFILE", "PerfProfile", "RouteCache"]
