"""repro.perf — the hot-path optimization layer (DESIGN.md §8).

Three cooperating pieces:

* :mod:`repro.perf.profile` — opt-in wall-clock timers and event
  counters (``PROFILE``) that the simulator's hot paths report into;
* :mod:`repro.perf.route_cache` — the epoch-validated per-node route
  cache :class:`ChordRing` consults before multi-hop routing;
* :mod:`repro.perf.bench` — the tracked end-to-end workload
  (publish + Zipf query stream + churn) behind
  ``benchmarks/test_bench_perf.py`` and the ``perf`` CLI subcommand;
* :mod:`repro.perf.topk` — the ISSUE 4 three-mode top-k comparison
  (exhaustive vs early-termination vs early-termination + result cache)
  behind ``benchmarks/test_bench_topk.py`` and ``perf --mode topk``;
* :mod:`repro.perf.ingest` — the ISSUE 5 three-arm write-path
  comparison (seed per-term vs route-cached per-term vs
  destination-grouped batched) behind ``benchmarks/test_bench_ingest.py``
  and ``perf --mode ingest``.

* :mod:`repro.perf.compat` — lazy optional-dependency guards for the
  ``perf`` extra (numpy), used by the vectorized scoring kernels;
* :mod:`repro.perf.scale` — the DESIGN.md §13 scale-out harness:
  process-sharded build/publish/query phases over a streamed corpus,
  behind ``benchmarks/test_bench_scale.py`` and ``perf --mode scale``;
* :mod:`repro.perf.route` — the DESIGN.md §16 routing sweep: the
  ring × arity × peers hop-count grid behind
  ``benchmarks/test_bench_route.py`` and ``perf --mode route``.

``bench``, ``topk``, ``ingest``, ``scale``, and ``route`` are
deliberately *not* imported here: they build rings and query
processors, and the ring itself imports this package for ``PROFILE`` /
``RouteCache`` — import them explicitly as ``repro.perf.bench`` /
``repro.perf.topk`` / ``repro.perf.ingest`` / ``repro.perf.scale`` /
``repro.perf.route``.
"""

from .compat import have_numpy, numpy_or_none, require_numpy
from .profile import PROFILE, PerfProfile, memory_usage
from .route_cache import RouteCache

__all__ = [
    "PROFILE",
    "PerfProfile",
    "RouteCache",
    "have_numpy",
    "memory_usage",
    "numpy_or_none",
    "require_numpy",
]
