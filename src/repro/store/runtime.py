"""Store runtime: one database, slot allocation, and lifecycle.

A :class:`StoreRuntime` owns everything the SQLite backend shares across
term slots — the database file (in a managed temporary directory unless
the configuration pins one), the per-peer :class:`ConnectionPool`, the
slot-id sequence partitioning the shared ``postings`` table, garbage-row
reclamation for slots the simulation dropped, and the
:class:`~repro.store.snapshot.SnapshotManager` rooted next to the
database.

:func:`build_store_runtime` is the configuration-driven factory the
system constructor calls: it returns ``None`` for the default
``store_backend="memory"`` — the whole subsystem stays out of the way
unless explicitly switched on (the same off-switch discipline as
``columnar_postings`` and ``batched_writes``).
"""

from __future__ import annotations

import itertools
import tempfile
import weakref
from pathlib import Path
from typing import Dict, List, Optional

from ..exceptions import ConfigurationError
from .pool import ConnectionPool
from .snapshot import SnapshotManager
from .sqlite_store import SqlitePostings, init_schema

#: Default expected docs per slot for the fronting Bloom filter; slots
#: that outgrow it rebuild at double capacity.
DEFAULT_BLOOM_CAPACITY = 64


class StoreRuntime:
    """Shared state of the SQLite posting backend.

    Parameters
    ----------
    store_dir:
        Directory for the database (and, by default, snapshots).  Empty
        string means a self-cleaning temporary directory — the safe
        default that keeps tests and ad-hoc runs from littering.
    bloom / bloom_capacity / bloom_error_rate:
        The Bloom front for point lookups (``bloom=False`` disables it).
    pool_size:
        Connection lanes in the :class:`ConnectionPool`.
    snapshot_dir:
        Snapshot root; empty means ``<store_dir>/snapshots``.
    keep_snapshots:
        Snapshots retained per peer (current + previous manifests always
        survive pruning — the previous one is the torn-write fallback).
    """

    def __init__(
        self,
        store_dir: str = "",
        bloom: bool = True,
        bloom_capacity: int = DEFAULT_BLOOM_CAPACITY,
        bloom_error_rate: float = 0.01,
        pool_size: int = 8,
        snapshot_dir: str = "",
        keep_snapshots: int = 2,
    ) -> None:
        if store_dir:
            self._tmp = None
            self.root = Path(store_dir)
            self.root.mkdir(parents=True, exist_ok=True)
        else:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-store-")
            self.root = Path(self._tmp.name)
        self.db_path = self.root / "postings.db"
        # The database is the live working set — the durable artifact is
        # the snapshot tree.  A fresh runtime therefore starts a fresh
        # database; recovery goes through SnapshotManager, never through
        # a stale db file (whose slot ids a new run would collide with).
        for leftover in (
            self.db_path,
            self.db_path.with_suffix(".db-wal"),
            self.db_path.with_suffix(".db-shm"),
            self.db_path.with_suffix(".db-journal"),
        ):
            leftover.unlink(missing_ok=True)
        self.pool = ConnectionPool(self.db_path, size=pool_size)
        init_schema(self.pool.connection_for(0))
        self.bloom = bloom
        self.bloom_capacity = bloom_capacity
        self.bloom_error_rate = bloom_error_rate
        snapshot_root = Path(snapshot_dir) if snapshot_dir else self.root / "snapshots"
        self.snapshots = SnapshotManager(snapshot_root, keep=keep_snapshots)
        self._slot_ids = itertools.count(1)
        self._dead_slots: List[int] = []
        self.slots_created = 0
        self.slots_retired = 0

    # -- slot lifecycle ------------------------------------------------------

    def allocate_slot_id(self) -> int:
        return next(self._slot_ids)

    def new_postings(self, peer_id: int) -> SqlitePostings:
        """A fresh posting store for a term slot hosted at *peer_id*,
        on that peer's connection lane."""
        store = SqlitePostings(
            self.pool.connection_for(peer_id),
            self.allocate_slot_id(),
            runtime=self,
            bloom_capacity=self.bloom_capacity if self.bloom else 0,
            bloom_error_rate=self.bloom_error_rate,
        )
        self.slots_created += 1
        return store

    def register(self, store: SqlitePostings) -> None:
        """Track a store for garbage-row reclamation: when the Python
        object is collected (slot dropped, replica overwritten), its
        rows are queued for deletion and flushed lazily."""
        weakref.finalize(store, self._dead_slots.append, store.slot_id)

    def flush_retired(self) -> int:
        """Delete rows of collected stores; returns slots reclaimed."""
        flushed = 0
        conn = self.pool.connection_for(0)
        while self._dead_slots:
            slot_id = self._dead_slots.pop()
            conn.execute("DELETE FROM postings WHERE slot = ?", (slot_id,))
            self.slots_retired += 1
            flushed += 1
        return flushed

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Rollup for the CLI PROFILE section and the benchmarks."""
        self.flush_retired()
        conn = self.pool.connection_for(0)
        postings, live_slots = conn.execute(
            "SELECT COUNT(*), COUNT(DISTINCT slot) FROM postings"
        ).fetchone()
        page_count = conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = conn.execute("PRAGMA page_size").fetchone()[0]
        return {
            "backend": "sqlite",
            "db_path": str(self.db_path),
            "db_bytes": page_count * page_size,
            "postings": postings,
            "live_slots": live_slots,
            "slots_created": self.slots_created,
            "slots_retired": self.slots_retired,
            "bloom": self.bloom,
            "snapshots_saved": self.snapshots.saves,
            "snapshots_loaded": self.snapshots.loads,
            **self.pool.stats(),
        }

    def close(self) -> None:
        """Close connections and clean the managed temp dir (if any)."""
        self.pool.close_all()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


#: Backends ``build_store_runtime`` recognizes.
STORE_BACKENDS = ("memory", "sqlite")


def build_store_runtime(config) -> Optional[StoreRuntime]:
    """Build the runtime a configuration asks for (``None`` = in-RAM).

    Reads the store fields with ``getattr`` defaults so configurations
    predating them (e.g. :class:`~repro.config.ESearchConfig`) keep
    working unchanged.
    """
    backend = getattr(config, "store_backend", "memory") or "memory"
    if backend == "memory":
        return None
    if backend != "sqlite":
        raise ConfigurationError(
            f"store_backend must be one of {STORE_BACKENDS}, got {backend!r}"
        )
    return StoreRuntime(
        store_dir=getattr(config, "store_dir", ""),
        bloom=getattr(config, "store_bloom", True),
        snapshot_dir=getattr(config, "snapshot_dir", ""),
    )
