"""Per-peer SQLite connection/statement pooling.

One simulated process hosts every indexing peer, but giving all of them
a single connection would serialize the statement cache and make the
per-peer cost model meaningless.  The pool maps peers onto a bounded set
of *lanes* (``peer_id % size``), each backed by one lazily-opened
connection with its own prepared-statement cache — the simulation
equivalent of each peer process holding a connection to its local store.

All connections target the same database file in WAL mode.  Durability
pragmas are relaxed (``synchronous=OFF``): the crash-consistency story
for the simulated peers is the snapshot/manifest layer in
:mod:`repro.store.snapshot`, not the SQLite journal — a crashed peer is
modelled as losing everything after its last snapshot.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import sqlite3


class ConnectionPool:
    """A fixed set of lazily-opened connections to one database file.

    Parameters
    ----------
    db_path:
        The SQLite database file (created on first open).
    size:
        Number of connection lanes; peers share lanes round-robin by id.
    cached_statements:
        Per-connection prepared-statement cache size (SQLite compiles a
        statement once per cache entry; the hot path reuses a handful of
        point queries, so even a small cache removes re-parsing).
    """

    def __init__(
        self,
        db_path: str | Path,
        size: int = 8,
        cached_statements: int = 512,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if cached_statements < 1:
            raise ValueError("cached_statements must be >= 1")
        self.db_path = Path(db_path)
        self.size = size
        self.cached_statements = cached_statements
        self._lanes: Dict[int, sqlite3.Connection] = {}
        self.opens = 0
        self.checkouts = 0

    def connection_for(self, peer_id: int) -> sqlite3.Connection:
        """The connection lane serving *peer_id* (opened on first use)."""
        lane = peer_id % self.size
        conn = self._lanes.get(lane)
        if conn is None:
            conn = sqlite3.connect(
                str(self.db_path),
                isolation_level=None,  # autocommit; batches BEGIN explicitly
                cached_statements=self.cached_statements,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=OFF")
            self._lanes[lane] = conn
            self.opens += 1
        self.checkouts += 1
        return conn

    @property
    def open_connections(self) -> int:
        return len(self._lanes)

    def close_all(self) -> None:
        """Close every lane (the pool can be reused; lanes reopen)."""
        for conn in self._lanes.values():
            conn.close()
        self._lanes.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "lanes": self.size,
            "open_connections": self.open_connections,
            "opens": self.opens,
            "checkouts": self.checkouts,
        }
