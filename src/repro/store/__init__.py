"""repro.store: durable disk-backed posting storage (DESIGN.md §12).

A pluggable persistence layer behind the term-slot posting interface:
``SpriteConfig(store_backend="sqlite")`` swaps every indexing peer's
in-RAM postings for rows in a shared SQLite database (WAL, per-peer
connection lanes, optional Bloom front), while keeping rankings,
versions, and write-state fingerprints bit-identical to the default
in-RAM path.  On top of the store sit crash-consistent snapshots with
manifests and a recovery manager that lets a crashed indexing peer
reconcile only the delta against its last checkpoint instead of
resyncing everything.
"""

from .pool import ConnectionPool
from .recovery import RecoveryManager, RecoveryReport
from .runtime import STORE_BACKENDS, StoreRuntime, build_store_runtime
from .snapshot import (
    PeerSnapshot,
    SnapshotManager,
    build_slot,
    restore_slots,
    slot_checksum,
)
from .sqlite_store import SqlitePostings, init_schema

__all__ = [
    "ConnectionPool",
    "PeerSnapshot",
    "RecoveryManager",
    "RecoveryReport",
    "STORE_BACKENDS",
    "SnapshotManager",
    "SqlitePostings",
    "StoreRuntime",
    "build_slot",
    "build_store_runtime",
    "init_schema",
    "restore_slots",
    "slot_checksum",
]
