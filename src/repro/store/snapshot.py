"""Snapshots: crash-consistent checkpoints of a peer's term slots.

A snapshot of one indexing peer is two files under
``<root>/peer-<id>/``:

* ``snap-<n>.json`` — the data blob: every term slot the peer primarily
  holds, ordered by ascending slot version, each carrying its term, ring
  key, version, the query cache's exact state (entries plus the next
  sequence number), and the posting rows as plain integers;
* ``MANIFEST.json`` — the validity record: peer id, data file name, a
  SHA-256 of the blob, the peer's *global version* (max slot version),
  a per-term checksum of each slot's posting set, and a checksum over
  the distinct document ids (the doc-table digest).

Both files are written atomically (temp file + ``os.replace``) and the
previous manifest is rotated to ``MANIFEST.prev.json`` first, so a crash
mid-save can never destroy the last good checkpoint: loading verifies
the blob hash against the manifest and falls back to the previous
generation when the current one is torn or corrupt.

Restoration rebuilds slots through the normal mutation path — each row
re-drawn through the store's ``add`` — in ascending stored-version order
across *all* slots being restored, so the rebuilt system's global
version rank order matches the original build (the property the
differential fingerprints compare).

Slot payloads are duck-typed off :class:`~repro.core.metadata.TermSlot`;
the ``repro.core`` imports happen lazily inside the restore helpers to
keep this layer importable from anywhere.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

MANIFEST = "MANIFEST.json"
MANIFEST_PREV = "MANIFEST.prev.json"


def slot_checksum(rows: Iterable[Tuple[str, int, int, int]]) -> str:
    """Order-insensitive SHA-256 of a slot's posting set.

    Sorted by doc id before hashing, so an authoritative copy whose
    enumeration order drifted from the snapshot's (replica lineage)
    still matches when the *content* matches.
    """
    canon = sorted((d, int(o), int(t), int(l)) for d, o, t, l in rows)
    blob = json.dumps(canon, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class PeerSnapshot:
    """One loaded, hash-verified snapshot of a peer's slots."""

    def __init__(self, peer: int, manifest: Dict, slots: List[Dict]) -> None:
        self.peer = peer
        self.manifest = manifest
        self.slots = slots
        self.slot_checksums: Dict[str, str] = dict(manifest["slot_checksums"])
        self.global_version: int = int(manifest["global_version"])

    def __len__(self) -> int:
        return len(self.slots)

    def slot_for(self, term: str) -> Optional[Dict]:
        for slot in self.slots:
            if slot["term"] == term:
                return slot
        return None


class SnapshotManager:
    """Saves, loads, and prunes per-peer snapshot generations."""

    def __init__(self, root: str | Path, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = Path(root)
        self.keep = keep
        self.saves = 0
        self.loads = 0
        self.fallbacks = 0

    def _peer_dir(self, peer_id: int) -> Path:
        return self.root / f"peer-{peer_id}"

    # -- save ---------------------------------------------------------------

    @staticmethod
    def _slot_payload(key: int, slot) -> Dict:
        cache = slot.cache
        return {
            "term": slot.term,
            "key": key,
            "version": slot.version,
            "cache_capacity": cache.capacity,
            "cache_next": cache.latest_sequence + 1,
            "cache": [[list(e.terms), e.query_hash, e.sequence] for e in cache],
            "postings": [
                [doc_id, owner, raw_tf, length]
                for doc_id, owner, raw_tf, length in slot._store.rows()
            ],
        }

    def save_peer(self, node) -> Optional[Path]:
        """Checkpoint every term slot in *node*'s primary store.

        Returns the manifest path, or ``None`` when the node holds no
        term slots (an empty checkpoint says nothing worth recovering).
        """
        from ..core.metadata import TermSlot

        slots = [
            (key, slot)
            for key, slot in node.store.items()
            if isinstance(slot, TermSlot)
        ]
        if not slots:
            return None
        slots.sort(key=lambda kv: kv[1].version)
        payloads = [self._slot_payload(key, slot) for key, slot in slots]

        peer_dir = self._peer_dir(node.node_id)
        peer_dir.mkdir(parents=True, exist_ok=True)
        existing = sorted(peer_dir.glob("snap-*.json"))
        number = 0
        if existing:
            number = max(int(p.stem.split("-")[1]) for p in existing) + 1
        data_name = f"snap-{number:06d}.json"

        blob = json.dumps(
            {"peer": node.node_id, "slots": payloads}, separators=(",", ":")
        ).encode("utf-8")
        self._atomic_write(peer_dir / data_name, blob)

        doc_ids = sorted(
            {row[0] for payload in payloads for row in payload["postings"]}
        )
        manifest = {
            "peer": node.node_id,
            "data_file": data_name,
            "data_sha256": hashlib.sha256(blob).hexdigest(),
            "global_version": max(p["version"] for p in payloads),
            "slot_count": len(payloads),
            "slot_checksums": {
                p["term"]: slot_checksum(p["postings"]) for p in payloads
            },
            "doc_checksum": hashlib.sha256(
                json.dumps(doc_ids, separators=(",", ":")).encode("utf-8")
            ).hexdigest(),
        }
        manifest_path = peer_dir / MANIFEST
        if manifest_path.exists():
            os.replace(manifest_path, peer_dir / MANIFEST_PREV)
        self._atomic_write(
            manifest_path, (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
        )
        self._prune(peer_dir)
        self.saves += 1
        return manifest_path

    @staticmethod
    def _atomic_write(path: Path, blob: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)

    def _prune(self, peer_dir: Path) -> None:
        """Drop data files beyond ``keep``, never one a manifest names."""
        referenced = set()
        for name in (MANIFEST, MANIFEST_PREV):
            try:
                referenced.add(json.loads((peer_dir / name).read_text())["data_file"])
            except (OSError, ValueError, KeyError):
                continue
        candidates = sorted(peer_dir.glob("snap-*.json"), reverse=True)
        for stale in candidates[self.keep :]:
            if stale.name not in referenced:
                stale.unlink()

    # -- load ---------------------------------------------------------------

    def load_peer(self, peer_id: int) -> Optional[PeerSnapshot]:
        """The newest hash-valid snapshot for *peer_id*, falling back to
        the previous generation on a torn or corrupt current one;
        ``None`` when no valid checkpoint exists."""
        peer_dir = self._peer_dir(peer_id)
        for index, name in enumerate((MANIFEST, MANIFEST_PREV)):
            try:
                manifest = json.loads((peer_dir / name).read_text())
                blob = (peer_dir / manifest["data_file"]).read_bytes()
                if hashlib.sha256(blob).hexdigest() != manifest["data_sha256"]:
                    raise ValueError("data checksum mismatch")
                data = json.loads(blob)
                snapshot = PeerSnapshot(
                    peer=int(manifest["peer"]),
                    manifest=manifest,
                    slots=list(data["slots"]),
                )
            except (OSError, ValueError, KeyError):
                continue
            if index > 0:
                self.fallbacks += 1
            self.loads += 1
            return snapshot
        return None


# -- restoration --------------------------------------------------------------


def build_slot(slot_data: Dict, store=None):
    """Rebuild one :class:`TermSlot` from its snapshot payload.

    The query cache is restored exactly (entries and next sequence — the
    write-state fingerprint includes ``latest_sequence``); postings
    replay through the store's normal mutation path so aggregates and
    version ticks are the ones a live build would have produced.
    """
    from ..core.metadata import QueryCache, TermSlot

    cache = QueryCache.from_state(
        capacity=int(slot_data["cache_capacity"]),
        entries=[
            (tuple(terms), int(query_hash), int(sequence))
            for terms, query_hash, sequence in slot_data["cache"]
        ],
        next_sequence=int(slot_data["cache_next"]),
    )
    slot = TermSlot(term=slot_data["term"], cache=cache, store=store)
    rows = [
        (doc_id, int(owner), int(raw_tf), int(length))
        for doc_id, owner, raw_tf, length in slot_data["postings"]
    ]
    backing = slot._store
    add_many = getattr(backing, "add_many", None)
    if add_many is not None:
        add_many(rows)
    else:
        for row in rows:
            backing.add(*row)
    return slot


def restore_slots(
    ring,
    snapshots: Iterable[PeerSnapshot],
    store_factory: Optional[Callable[[int], object]] = None,
) -> List[Tuple[int, object]]:
    """Rebuild snapshot slots into their peers' primary stores.

    Slots across all given snapshots are replayed in ascending stored
    version order, preserving the system-wide version rank.  A slot is
    skipped when its peer is not live, its key is already present (an
    authoritative transferred copy wins over the checkpoint), or the
    live-membership oracle no longer places the key at that peer
    (placement moved while the peer was down; restoring would violate
    primary placement).  Returns the ``(peer_id, slot)`` pairs restored.
    """
    todo = []
    for snapshot in snapshots:
        for slot_data in snapshot.slots:
            todo.append((int(slot_data["version"]), snapshot.peer, slot_data))
    todo.sort(key=lambda item: item[0])
    restored: List[Tuple[int, object]] = []
    for __, peer_id, slot_data in todo:
        if not ring.is_live(peer_id):
            continue
        key = int(slot_data["key"])
        node = ring.node(peer_id)
        if key in node.store:
            continue
        if ring.successor_of(key) != peer_id:
            continue
        store = store_factory(peer_id) if store_factory is not None else None
        slot = build_slot(slot_data, store=store)
        node.put(key, slot)
        restored.append((peer_id, slot))
    return restored
