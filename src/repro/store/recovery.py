"""Snapshot-assisted indexing-peer recovery (incremental catch-up).

When an indexing peer crashes, Section 7's baseline repair is a *full
resync*: the rejoined peer pulls every slot it is responsible for from
its successor (which holds the promoted replicas).  With a disk-backed
store the peer's last checkpoint survives the crash, so most of that
traffic is redundant — the peer only needs to learn *what changed* since
the snapshot.

:class:`RecoveryManager.recover_peer` implements both modes over the
simulated ring:

1. load the peer's newest valid snapshot (disk survived, RAM did not);
2. rejoin the ring (the DHT's key transfer hands back the authoritative
   slots the successor accumulated — promoted replicas and writes that
   landed during the outage);
3. **snapshot mode** — exchange one ``SYNC_DIGEST`` round with the
   successor (per-slot checksums of the checkpoint), then ship only a
   ``SYNC_DELTA`` per changed slot (the differing/removed postings) and
   a ``SYNC_FULL`` per slot the checkpoint never saw; slots whose
   checksum matches cost nothing beyond the digest entry;
4. **full mode** (``use_snapshot=False``, the baseline) — one
   ``SYNC_FULL`` per transferred slot carrying all its postings;
5. snapshot slots the key-transfer did *not* cover but the oracle still
   places at this peer are rebuilt locally from disk — zero wire cost
   (a later maintenance round retires any posting whose owner
   unpublished during the outage; restoring an over-approximation is
   safe exactly because reconciliation audits it).

Every run appends a :class:`RecoveryReport` to :attr:`RecoveryManager.log`;
the simulator's ``resync_traffic_bounded`` invariant audits the log, and
the perf/benchmark layers compare the two modes head-to-head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dht.messages import (
    Message,
    sync_delta_message,
    sync_digest_message,
    sync_full_message,
)
from ..exceptions import NodeFailedError
from .snapshot import PeerSnapshot, restore_slots, slot_checksum


@dataclass
class RecoveryReport:
    """Accounting of one peer recovery, in both currencies (messages and
    postings) plus the full-resync baseline for the same state."""

    peer: int
    mode: str  # "snapshot" | "full"
    snapshot_found: bool
    slots_transferred: int = 0
    slots_matched: int = 0
    slots_changed: int = 0
    slots_missing: int = 0  # transferred but absent from the snapshot
    slots_restored: int = 0  # rebuilt locally from the snapshot
    postings_authoritative: int = 0
    postings_shipped: int = 0
    bytes_shipped: int = 0
    messages_sent: int = 0
    full_baseline_postings: int = 0
    full_baseline_bytes: int = 0
    full_baseline_messages: int = 0

    @property
    def message_savings(self) -> int:
        return self.full_baseline_messages - self.messages_sent

    @property
    def posting_savings(self) -> int:
        return self.full_baseline_postings - self.postings_shipped

    def to_dict(self) -> Dict[str, object]:
        return {
            "peer": self.peer,
            "mode": self.mode,
            "snapshot_found": self.snapshot_found,
            "slots_transferred": self.slots_transferred,
            "slots_matched": self.slots_matched,
            "slots_changed": self.slots_changed,
            "slots_missing": self.slots_missing,
            "slots_restored": self.slots_restored,
            "postings_authoritative": self.postings_authoritative,
            "postings_shipped": self.postings_shipped,
            "bytes_shipped": self.bytes_shipped,
            "messages_sent": self.messages_sent,
            "full_baseline_postings": self.full_baseline_postings,
            "full_baseline_bytes": self.full_baseline_bytes,
            "full_baseline_messages": self.full_baseline_messages,
        }


class RecoveryManager:
    """Drives snapshot-assisted rejoin of crashed indexing peers."""

    def __init__(self, ring, runtime=None) -> None:
        self.ring = ring
        self.runtime = runtime
        self.log: List[RecoveryReport] = []

    def recover_peer(self, node_id: int, use_snapshot: bool = True) -> RecoveryReport:
        """Rejoin a crashed peer and reconcile its slot state.

        ``use_snapshot=False`` runs the full-resync baseline (the
        snapshot, if any, is ignored — every transferred slot ships in
        full).  Either way the full-resync cost is computed, so one run
        yields its own baseline comparison.
        """
        from ..core.metadata import TermSlot

        snapshot: Optional[PeerSnapshot] = None
        if self.runtime is not None:
            snapshot = self.runtime.snapshots.load_peer(node_id)

        self.ring.join(node_id=node_id)
        node = self.ring.node(node_id)
        source = node.successor

        incremental = use_snapshot and snapshot is not None
        report = RecoveryReport(
            peer=node_id,
            mode="snapshot" if incremental else "full",
            snapshot_found=snapshot is not None,
        )

        snap_slots: Dict[str, Dict] = {}
        if snapshot is not None:
            snap_slots = {s["term"]: s for s in snapshot.slots}

        deltas: List[Tuple[str, int]] = []  # (kind, postings) to ship
        for slot in node.store.values():
            if not isinstance(slot, TermSlot):
                continue
            report.slots_transferred += 1
            rows = {row[0]: row for row in slot._store.rows()}
            count = len(rows)
            report.postings_authoritative += count
            baseline = sync_full_message(source, node_id, count)
            report.full_baseline_messages += 1
            report.full_baseline_postings += count
            report.full_baseline_bytes += baseline.size_bytes
            if not incremental:
                deltas.append(("full", count))
                continue
            snap_slot = snap_slots.get(slot.term)
            if snap_slot is None:
                report.slots_missing += 1
                deltas.append(("full", count))
                continue
            if snapshot.slot_checksums.get(slot.term) == slot_checksum(
                rows.values()
            ):
                report.slots_matched += 1
                continue
            report.slots_changed += 1
            snap_rows = {
                row[0]: (row[0], int(row[1]), int(row[2]), int(row[3]))
                for row in snap_slot["postings"]
            }
            changed = sum(
                1 for doc, row in rows.items() if snap_rows.get(doc) != row
            )
            removed = sum(1 for doc in snap_rows if doc not in rows)
            deltas.append(("delta", changed + removed))

        # The digest round only happens in snapshot mode and only when
        # there is something to reconcile.
        if incremental and report.slots_transferred:
            request = sync_digest_message(
                node_id, source, len(snapshot.slots) or 1
            )
            reply = sync_digest_message(source, node_id, report.slots_transferred)
            self._send(request, report)
            self._send(reply, report)
        for kind, count in deltas:
            if kind == "full":
                message = sync_full_message(source, node_id, count)
            else:
                message = sync_delta_message(source, node_id, count)
            self._send(message, report)
            report.postings_shipped += count

        # Rebuild snapshot-only slots the key transfer did not cover —
        # local disk reads, no wire traffic.
        if incremental:
            factory = None
            if self.runtime is not None:
                factory = self.runtime.new_postings
            restored = restore_slots(self.ring, [snapshot], store_factory=factory)
            report.slots_restored = len(restored)

        self.log.append(report)
        return report

    def _send(self, message: Message, report: RecoveryReport) -> None:
        try:
            self.ring.send(message)
        except NodeFailedError:  # pragma: no cover - successor died mid-recovery
            return
        report.messages_sent += 1
        report.bytes_shipped += message.size_bytes
