"""SQLite-backed posting store with the columnar-backend contract.

:class:`SqlitePostings` is a third backend behind the
:class:`~repro.core.metadata.TermSlot` posting-store interface
(:class:`~repro.ir.postings.ColumnarPostings` /
:class:`~repro.ir.postings.LegacyPostings` are the in-RAM two).  Rows
live in one shared ``postings`` table keyed by a per-store *slot id*;
the store object keeps only small Python-side mirrors (posting count,
next insertion sequence, the max-impact bound, the content version).

The contract it must honour to stay bit-identical to the in-RAM path:

* **Enumeration order is dict order.**  Each row carries an insertion
  sequence number; reads order by it.  Overwrites keep the row's
  sequence (a dict overwrite keeps its position) and deletions leave the
  remaining order untouched.
* **Floats are never stored.**  Only the integer ``(tf, len)`` pair is
  persisted; normalized tf and impact are recomputed through the exact
  expressions the columnar store uses (integers round-trip exactly, so
  the derived floats are bit-identical).
* **Versions come from the shared process-global sequence**
  (:func:`~repro.ir.postings.next_version`), one tick per mutation, so
  version *rank order* across a system matches the in-RAM build and
  "same version => same content" still holds across backends.

Extras the RAM backends do not have:

* ``add_many`` wraps a PUBLISH_BATCH run in one SQLite transaction and
  rolls back (restoring the Python mirrors) if any row fails — the
  crash-mid-batch consistency guarantee.
* An optional Bloom filter (reusing :mod:`repro.dht.bloom`) fronts
  point lookups: a negative means *definitely absent*, skipping the SQL
  round trip for first-time inserts and missing-doc probes.
* ``__deepcopy__`` clones the rows under a fresh slot id on the same
  connection — replication deep-copies node stores, and a SQLite
  connection itself cannot be deep-copied.
"""

from __future__ import annotations

import copy
import itertools
import sqlite3
from typing import Iterable, Iterator, List, Optional, Tuple

from ..dht.bloom import BloomFilter
from ..ir.postings import ImpactRow, PostingRow, next_version, posting_impact
from ..perf import PROFILE

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS postings (
        slot  INTEGER NOT NULL,
        doc   TEXT    NOT NULL,
        seq   INTEGER NOT NULL,
        owner TEXT    NOT NULL,
        tf    INTEGER NOT NULL,
        len   INTEGER NOT NULL,
        PRIMARY KEY (slot, doc)
    ) WITHOUT ROWID
    """,
    "CREATE INDEX IF NOT EXISTS postings_order ON postings (slot, seq)",
)

#: Fallback slot-id sequence for stores built without a runtime (unit
#: tests); starts far above anything a runtime allocates.
_FALLBACK_SLOT_IDS = itertools.count(1 << 40)


def init_schema(conn: sqlite3.Connection) -> None:
    """Create the postings table and its ordering index if missing."""
    for statement in _SCHEMA:
        conn.execute(statement)


class SqlitePostings:
    """Disk-backed posting store, row-compatible with the RAM backends.

    Parameters
    ----------
    conn:
        The (pooled) connection rows go through.
    slot_id:
        This store's partition key in the shared table; must be unique
        per database file (use :meth:`StoreRuntime.new_postings`).
    runtime:
        Owning :class:`~repro.store.runtime.StoreRuntime`, used for slot
        id allocation on deepcopy and garbage-row reclamation; optional
        for standalone use.
    bloom_capacity:
        Expected doc count for the fronting Bloom filter; 0 disables it.
    """

    def __init__(
        self,
        conn: sqlite3.Connection,
        slot_id: int,
        runtime=None,
        bloom_capacity: int = 0,
        bloom_error_rate: float = 0.01,
    ) -> None:
        self._conn = conn
        self._slot = slot_id
        self._runtime = runtime
        self._bloom_error_rate = bloom_error_rate
        self._bloom: Optional[BloomFilter] = (
            BloomFilter(bloom_capacity, bloom_error_rate)
            if bloom_capacity > 0
            else None
        )
        self._count = 0
        self._next_seq = 0
        self._max_impact = 0.0
        self._max_dirty = False
        self._version = next_version()
        if runtime is not None:
            runtime.register(self)

    # -- aggregates ---------------------------------------------------------

    @property
    def slot_id(self) -> int:
        return self._slot

    @property
    def version(self) -> int:
        """Globally-unique content version (bumped on every mutation)."""
        return self._version

    @property
    def max_impact(self) -> float:
        """Upper bound on any stored posting's impact; recomputed lazily
        after a removal/overwrite that may have deleted the maximum.
        ``max`` over a set is order-independent, so scanning in table
        order matches the columnar recompute bit-for-bit."""
        if self._max_dirty:
            rows = self._conn.execute(
                "SELECT tf, len FROM postings WHERE slot = ?", (self._slot,)
            ).fetchall()
            self._max_impact = max(
                (posting_impact(tf, length) for tf, length in rows),
                default=0.0,
            )
            self._max_dirty = False
        return self._max_impact

    def __len__(self) -> int:
        return self._count

    def __contains__(self, doc_id: str) -> bool:
        if self._bloom is not None and doc_id not in self._bloom:
            PROFILE.count("store.bloom_negative")
            return False
        PROFILE.count("store.point_reads")
        return (
            self._conn.execute(
                "SELECT 1 FROM postings WHERE slot = ? AND doc = ?",
                (self._slot, doc_id),
            ).fetchone()
            is not None
        )

    # -- mutation -----------------------------------------------------------

    def add(self, doc_id: str, owner_peer: int, raw_tf: int, doc_length: int) -> None:
        """Insert or overwrite the posting for *doc_id* (dict semantics:
        an overwrite keeps the posting's enumeration position)."""
        length = doc_length if doc_length > 0 else 0
        impact = posting_impact(raw_tf, doc_length)
        existing = None
        if self._bloom is not None and doc_id not in self._bloom:
            # Definitely absent: skip the existence probe entirely.
            PROFILE.count("store.bloom_insert_skips")
        else:
            existing = self._conn.execute(
                "SELECT tf, len FROM postings WHERE slot = ? AND doc = ?",
                (self._slot, doc_id),
            ).fetchone()
            PROFILE.count("store.point_reads")
        if existing is None:
            self._conn.execute(
                "INSERT INTO postings (slot, doc, seq, owner, tf, len) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                # Owner ids may exceed 64 bits (ring widths up to 128),
                # so they are stored as decimal text.
                (self._slot, doc_id, self._next_seq, str(owner_peer), raw_tf, length),
            )
            self._next_seq += 1
            self._count += 1
            if self._bloom is not None:
                self._bloom_add(doc_id)
        else:
            old_tf, old_length = existing
            if posting_impact(old_tf, old_length) >= self._max_impact:
                self._max_dirty = True
            self._conn.execute(
                "UPDATE postings SET owner = ?, tf = ?, len = ? "
                "WHERE slot = ? AND doc = ?",
                (str(owner_peer), raw_tf, length, self._slot, doc_id),
            )
        if not self._max_dirty and impact > self._max_impact:
            self._max_impact = impact
        self._version = next_version()

    def add_many(self, rows: Iterable[Tuple[str, int, int, int]]) -> int:
        """Apply one publish batch inside a single transaction.

        On any failure the transaction rolls back and the Python-side
        mirrors are restored, so a crash mid-batch leaves the store in
        its exact pre-batch state (the Bloom filter may retain the
        aborted keys — an over-approximation, which is always safe).
        Each row still draws its own global version tick, exactly like
        the loop the RAM backends run.
        """
        rows = list(rows)
        if not rows:
            return 0
        if self._conn.in_transaction:  # already inside a caller's batch
            for doc_id, owner_peer, raw_tf, doc_length in rows:
                self.add(doc_id, owner_peer, raw_tf, doc_length)
            return len(rows)
        saved = (
            self._count,
            self._next_seq,
            self._max_impact,
            self._max_dirty,
            self._version,
        )
        self._conn.execute("BEGIN")
        try:
            for doc_id, owner_peer, raw_tf, doc_length in rows:
                self.add(doc_id, owner_peer, raw_tf, doc_length)
        except BaseException:
            self._conn.execute("ROLLBACK")
            (
                self._count,
                self._next_seq,
                self._max_impact,
                self._max_dirty,
                self._version,
            ) = saved
            raise
        self._conn.execute("COMMIT")
        PROFILE.count("store.batches")
        PROFILE.count("store.batched_rows", len(rows))
        return len(rows)

    def remove(self, doc_id: str) -> Optional[PostingRow]:
        """Delete and return the posting for *doc_id* (``None`` if absent).

        The Bloom filter has no deletions, so a removed doc stays in the
        filter — a future probe pays one extra point read, never a wrong
        answer."""
        if self._bloom is not None and doc_id not in self._bloom:
            PROFILE.count("store.bloom_negative")
            return None
        row = self._conn.execute(
            "SELECT owner, tf, len FROM postings WHERE slot = ? AND doc = ?",
            (self._slot, doc_id),
        ).fetchone()
        PROFILE.count("store.point_reads")
        if row is None:
            return None
        owner, raw_tf, length = row
        if posting_impact(raw_tf, length) >= self._max_impact:
            self._max_dirty = True
        self._conn.execute(
            "DELETE FROM postings WHERE slot = ? AND doc = ?",
            (self._slot, doc_id),
        )
        self._count -= 1
        self._version = next_version()
        return (doc_id, int(owner), raw_tf, length)

    # -- reads --------------------------------------------------------------

    def lookup(self, doc_id: str) -> Optional[PostingRow]:
        """The posting row for *doc_id*, or ``None``."""
        if self._bloom is not None and doc_id not in self._bloom:
            PROFILE.count("store.bloom_negative")
            return None
        row = self._conn.execute(
            "SELECT owner, tf, len FROM postings WHERE slot = ? AND doc = ?",
            (self._slot, doc_id),
        ).fetchone()
        PROFILE.count("store.point_reads")
        if row is None:
            return None
        return (doc_id, int(row[0]), row[1], row[2])

    def scoring_lookup(self, doc_id: str) -> Optional[Tuple[float, int]]:
        """``(normalized_tf, doc_length)`` for *doc_id*, or ``None``.
        Recomputed from the stored integers with the same expression the
        columnar ingest path used, so the float is bit-identical."""
        if self._bloom is not None and doc_id not in self._bloom:
            PROFILE.count("store.bloom_negative")
            return None
        row = self._conn.execute(
            "SELECT tf, len FROM postings WHERE slot = ? AND doc = ?",
            (self._slot, doc_id),
        ).fetchone()
        PROFILE.count("store.point_reads")
        if row is None:
            return None
        raw_tf, length = row
        return (raw_tf / length if length > 0 else 0.0, length)

    def rows(self) -> Iterator[PostingRow]:
        """All postings in insertion (dict-equivalent) order."""
        fetched = self._conn.execute(
            "SELECT doc, owner, tf, len FROM postings WHERE slot = ? ORDER BY seq",
            (self._slot,),
        ).fetchall()
        for doc_id, owner, raw_tf, length in fetched:
            yield (doc_id, int(owner), raw_tf, length)

    def impact_rows(self) -> List[ImpactRow]:
        """Scoring rows sorted by descending impact, doc-id tie-break.
        The stable sort runs over insertion order — the same base order
        the columnar backend sorts — so ties land identically."""
        rows: List[ImpactRow] = [
            (
                doc_id,
                raw_tf / length if length > 0 else 0.0,
                length,
                posting_impact(raw_tf, length),
            )
            for doc_id, __, raw_tf, length in self.rows()
        ]
        rows.sort(key=lambda r: (-r[3], r[0]))
        return rows

    # -- bloom maintenance ---------------------------------------------------

    def _bloom_add(self, doc_id: str) -> None:
        bloom = self._bloom
        assert bloom is not None
        if len(bloom) >= bloom.capacity:
            self._rebuild_bloom()
            bloom = self._bloom
        bloom.add(doc_id)

    def _rebuild_bloom(self) -> None:
        """Regrow the filter from the live doc set at double capacity
        (removals stay in a Bloom filter, so rebuilds also shed them)."""
        docs = [
            r[0]
            for r in self._conn.execute(
                "SELECT doc FROM postings WHERE slot = ?", (self._slot,)
            )
        ]
        capacity = max(2 * self._bloom.capacity, len(docs) + 1)
        rebuilt = BloomFilter(capacity, self._bloom_error_rate)
        rebuilt.update(docs)
        self._bloom = rebuilt
        PROFILE.count("store.bloom_rebuilds")

    @property
    def bloom(self) -> Optional[BloomFilter]:
        return self._bloom

    # -- replication support -------------------------------------------------

    def __deepcopy__(self, memo) -> "SqlitePostings":
        """Clone the rows under a fresh slot id on the same connection.

        Keeps ``_version``: the clone's content is identical, and the
        in-RAM backends' deepcopy preserves the version too (that is
        what makes version equality a sound replica-freshness check).
        """
        clone = object.__new__(type(self))
        clone._conn = self._conn
        clone._runtime = self._runtime
        clone._bloom_error_rate = self._bloom_error_rate
        if self._runtime is not None:
            clone._slot = self._runtime.allocate_slot_id()
        else:
            clone._slot = next(_FALLBACK_SLOT_IDS)
        self._conn.execute(
            "INSERT INTO postings (slot, doc, seq, owner, tf, len) "
            "SELECT ?, doc, seq, owner, tf, len FROM postings WHERE slot = ?",
            (clone._slot, self._slot),
        )
        clone._bloom = copy.deepcopy(self._bloom, memo)
        clone._count = self._count
        clone._next_seq = self._next_seq
        clone._max_impact = self._max_impact
        clone._max_dirty = self._max_dirty
        clone._version = self._version
        if self._runtime is not None:
            self._runtime.register(clone)
        memo[id(self)] = clone
        return clone
