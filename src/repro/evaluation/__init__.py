"""Evaluation harness: metrics, environments, per-figure experiments."""

from .experiment import (
    Environment,
    build_environment,
    build_environment_from_collection,
)
from .experiments import (
    CostRow,
    Fig4aRow,
    Fig4bRow,
    Fig4cRow,
    build_esearch,
    build_trained_sprite,
    run_cost_comparison,
    run_fig4a,
    run_fig4b,
    run_fig4c,
)
from .metrics import (
    AggregateResult,
    PrecisionRecall,
    RelativeResult,
    aggregate,
    dcg,
    evaluate_rankings,
    ndcg_against_reference,
    precision_recall_at,
    relative_to_centralized,
)
from .reporting import format_cost, format_fig4a, format_fig4b, format_fig4c

__all__ = [
    "AggregateResult",
    "CostRow",
    "Environment",
    "Fig4aRow",
    "Fig4bRow",
    "Fig4cRow",
    "PrecisionRecall",
    "RelativeResult",
    "aggregate",
    "build_environment",
    "build_environment_from_collection",
    "build_esearch",
    "build_trained_sprite",
    "dcg",
    "evaluate_rankings",
    "format_cost",
    "format_fig4a",
    "format_fig4b",
    "format_fig4c",
    "ndcg_against_reference",
    "precision_recall_at",
    "relative_to_centralized",
    "run_cost_comparison",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
]
