"""Dependency-free ASCII charts for experiment results.

The original figures are line plots; with no plotting stack available
offline, these renderers draw the same series as terminal charts so the
examples and CLI can show *shapes*, not just tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_MARKERS = "*o+x@%"


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    return int(round((value - lo) / (hi - lo) * (width - 1)))


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker from ``* o + x @ %`` in insertion order;
    the legend maps markers back to names.  Axes are auto-scaled to the
    union of all points.
    """
    if not series or all(not pts for pts in series.values()):
        return "(no data)"
    xs = [x for pts in series.values() for x, __ in pts]
    ys = [y for pts in series.values() for __, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    grid = [[" "] * width for __ in range(height)]
    for idx, (name, points) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in points:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_hi:8.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{y_lo:8.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 9 + "└" + "─" * width)
    lines.append(
        " " * 10 + f"{x_lo:<10.6g}" + " " * max(0, width - 20) + f"{x_hi:>10.6g}"
    )
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars, scaled to the maximum value."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = _scale(value, 0.0, peak, width) + 1 if peak > 0 else 0
        lines.append(
            f"{label:<{label_width}}  "
            f"{'█' * filled}{' ' * (width - filled)} {value:g}{unit}"
        )
    return "\n".join(lines)


def ratio_series_from_rows(rows, x_attr: str) -> Dict[str, List[Tuple[float, float]]]:
    """Convert fig4a/fig4c-style row lists into chart series
    (SPRITE vs eSearch precision ratios over *x_attr*)."""
    return {
        "SPRITE": [
            (float(getattr(r, x_attr)), r.sprite.precision_ratio) for r in rows
        ],
        "eSearch": [
            (float(getattr(r, x_attr)), r.esearch.precision_ratio) for r in rows
        ],
    }
