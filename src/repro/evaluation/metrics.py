"""Retrieval-effectiveness metrics (paper Section 6).

"If the top K documents are returned for a query, K' of them are
relevant to the query and there are R relevant documents in the entire
corpus, then the precision is defined as K'/K and the recall as K'/R.
All precision and recall results presented later are in terms of the
ratio of a specific system over the centralized system."

The ratio is computed as *mean over the test queries of the system's
metric* divided by *mean of the centralized system's metric on the same
queries* — robust to individual queries where the centralized system
itself scores zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Set

from ..corpus.relevance import Qrels
from ..ir.ranking import RankedList


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision and recall of one ranked list at one cutoff."""

    precision: float
    recall: float
    hits: int
    cutoff: int
    num_relevant: int


def precision_recall_at(
    ranked: RankedList | Sequence[str],
    relevant: Set[str],
    k: int,
) -> PrecisionRecall:
    """K'/K and K'/R for the top *k* of a ranked list.

    With an empty relevant set both metrics are 0 — such queries are
    excluded from ratio aggregation anyway.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    top = ranked.top_ids(k) if isinstance(ranked, RankedList) else list(ranked)[:k]
    hits = sum(1 for doc_id in top if doc_id in relevant)
    precision = hits / k
    recall = hits / len(relevant) if relevant else 0.0
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        hits=hits,
        cutoff=k,
        num_relevant=len(relevant),
    )


def dcg(gains: Sequence[float]) -> float:
    """Discounted cumulative gain of a gain vector in rank order:
    ``Σ gain_i / log2(i + 1)`` with ranks starting at 1."""
    from math import log2

    return sum(gain / log2(i + 2) for i, gain in enumerate(gains))


def ndcg_against_reference(
    ranked: RankedList | Sequence[str],
    reference: RankedList | Sequence[str],
    k: int,
) -> float:
    """NDCG@k of a ranked list against a *reference ranking* (here: the
    centralized TF-IDF oracle), not binary judgements.

    The reference's top *k* defines graded relevance — its rank-1
    document gains ``k``, rank-2 gains ``k-1``, … — so a system is
    rewarded both for retrieving the oracle's documents and for keeping
    them in the oracle's order.  The ideal DCG is the reference scored
    against itself; an empty reference yields 0.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    ref_ids = (
        reference.top_ids(k)
        if isinstance(reference, RankedList)
        else list(reference)[:k]
    )
    if not ref_ids:
        return 0.0
    gains = {doc_id: float(len(ref_ids) - i) for i, doc_id in enumerate(ref_ids)}
    top = ranked.top_ids(k) if isinstance(ranked, RankedList) else list(ranked)[:k]
    ideal = dcg([gains[doc_id] for doc_id in ref_ids])
    return dcg([gains.get(doc_id, 0.0) for doc_id in top]) / ideal


@dataclass(frozen=True)
class AggregateResult:
    """Mean precision/recall over a query set for one system."""

    mean_precision: float
    mean_recall: float
    per_query: Dict[str, PrecisionRecall]

    @property
    def num_queries(self) -> int:
        return len(self.per_query)


def aggregate(
    results: Dict[str, PrecisionRecall],
) -> AggregateResult:
    """Average per-query metrics (queries with no judged relevant
    documents are skipped — they cannot distinguish systems)."""
    usable = {qid: pr for qid, pr in results.items() if pr.num_relevant > 0}
    if not usable:
        return AggregateResult(0.0, 0.0, {})
    n = len(usable)
    return AggregateResult(
        mean_precision=sum(pr.precision for pr in usable.values()) / n,
        mean_recall=sum(pr.recall for pr in usable.values()) / n,
        per_query=usable,
    )


def evaluate_rankings(
    rankings: Dict[str, RankedList],
    qrels: Qrels,
    k: int,
) -> AggregateResult:
    """Precision/recall@k for a batch of (query id → ranked list)."""
    return aggregate(
        {
            qid: precision_recall_at(ranked, qrels.relevant(qid), k)
            for qid, ranked in rankings.items()
        }
    )


@dataclass(frozen=True)
class RelativeResult:
    """A system's effectiveness relative to the centralized reference —
    the unit in which every paper figure is plotted."""

    system: AggregateResult
    reference: AggregateResult

    @property
    def precision_ratio(self) -> float:
        if self.reference.mean_precision <= 0.0:
            return 0.0
        return self.system.mean_precision / self.reference.mean_precision

    @property
    def recall_ratio(self) -> float:
        if self.reference.mean_recall <= 0.0:
            return 0.0
        return self.system.mean_recall / self.reference.mean_recall


def relative_to_centralized(
    system_rankings: Dict[str, RankedList],
    centralized_rankings: Dict[str, RankedList],
    qrels: Qrels,
    k: int,
) -> RelativeResult:
    """Compute the paper's headline metric: system-over-centralized
    precision and recall ratios at cutoff *k* on a common query set."""
    common = set(system_rankings) & set(centralized_rankings)
    return RelativeResult(
        system=evaluate_rankings(
            {qid: system_rankings[qid] for qid in common}, qrels, k
        ),
        reference=evaluate_rankings(
            {qid: centralized_rankings[qid] for qid in common}, qrels, k
        ),
    )
