"""The shared experimental environment (paper Section 6.2).

Building the evaluation scenario is expensive relative to a single
measurement — corpus synthesis, full centralized indexing, deep ranked
lists for the query generator — so :class:`Environment` constructs it
once and every experiment reuses it:

1. synthesize the corpus and its 63 original queries with expert qrels
   (or load real TREC data via :mod:`repro.corpus.trec`);
2. build the centralized reference system;
3. run the Section 6.1 query generator (k = 9, O = 0.7) to obtain the
   full 630-query evaluation set;
4. split it 50/50 into training and testing sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..config import ExperimentConfig, paper_experiment_config
from ..corpus.corpus import Corpus
from ..corpus.relevance import Query, QuerySet
from ..corpus.synthetic import SyntheticTrecCorpus, TopicModel
from ..ir.centralized import CentralizedSystem
from ..ir.ranking import RankedList
from ..querygen.generator import QueryGenerator
from ..querygen.workload import random_split


@dataclass
class Environment:
    """Everything an experiment needs, built once."""

    config: ExperimentConfig
    corpus: Corpus
    model: Optional[TopicModel]
    originals: QuerySet
    full_set: QuerySet
    train: QuerySet
    test: QuerySet
    centralized: CentralizedSystem

    _ranking_cache: Dict[str, RankedList] = None  # type: ignore[assignment]

    def centralized_ranking(self, query: Query) -> RankedList:
        """Centralized deep ranking for a query, memoized — the
        reference side of every ratio, reused across cutoffs."""
        if self._ranking_cache is None:
            self._ranking_cache = {}
        ranked = self._ranking_cache.get(query.query_id)
        if ranked is None:
            ranked = self.centralized.search(query)
            self._ranking_cache[query.query_id] = ranked
        return ranked

    def centralized_rankings(self, queries: Iterable[Query]) -> Dict[str, RankedList]:
        """Memoized centralized rankings for a batch of queries."""
        return {q.query_id: self.centralized_ranking(q) for q in queries}


def build_environment(config: ExperimentConfig | None = None) -> Environment:
    """Construct the full experimental environment from a config."""
    cfg = config if config is not None else paper_experiment_config()
    corpus, originals, model = SyntheticTrecCorpus(cfg.corpus).build()
    centralized = CentralizedSystem(corpus)
    generator = QueryGenerator(corpus, centralized, cfg.querygen)
    full_set = generator.generate_with_originals(originals)
    train, test = random_split(full_set, cfg.train_fraction, cfg.split_seed)
    return Environment(
        config=cfg,
        corpus=corpus,
        model=model,
        originals=originals,
        full_set=full_set,
        train=train,
        test=test,
        centralized=centralized,
    )


def build_environment_from_collection(
    corpus: Corpus,
    originals: QuerySet,
    config: ExperimentConfig | None = None,
) -> Environment:
    """Build an environment on a *user-supplied* collection (e.g. real
    TREC data loaded with :func:`repro.corpus.trec.load_trec_collection`)
    instead of the synthetic generator."""
    cfg = config if config is not None else paper_experiment_config()
    centralized = CentralizedSystem(corpus)
    generator = QueryGenerator(corpus, centralized, cfg.querygen)
    full_set = generator.generate_with_originals(originals)
    train, test = random_split(full_set, cfg.train_fraction, cfg.split_seed)
    return Environment(
        config=cfg,
        corpus=corpus,
        model=None,
        originals=originals,
        full_set=full_set,
        train=train,
        test=test,
        centralized=centralized,
    )
