"""Per-figure experiment runners.

One function per paper artifact (see DESIGN.md's experiment index):

* :func:`run_fig4a` — precision/recall ratio vs number of answers;
* :func:`run_fig4b` — precision ratio vs number of indexed terms under
  the "w/o-r" and "w-zipf" query streams;
* :func:`run_fig4c` — ratio over learning iterations with a query-
  pattern change at iteration 6;
* :func:`run_cost_comparison` — index construction/maintenance traffic,
  SPRITE vs eSearch vs index-everything (the Section 1 motivation).

The benches in ``benchmarks/`` are thin wrappers that time these and
print the rows; examples reuse them too.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Literal, Optional, Sequence

from ..config import ESearchConfig, SpriteConfig
from ..core.esearch import ESearchSystem
from ..core.system import SpriteSystem
from ..corpus.relevance import Query
from ..dht.messages import MessageKind
from ..net import build_transport
from ..ir.ranking import RankedList
from ..perf import PROFILE
from .experiment import Environment
from .metrics import RelativeResult, relative_to_centralized

StreamKind = Literal["default", "w/o-r", "w-zipf"]


# ---------------------------------------------------------------------------
# System construction helpers
# ---------------------------------------------------------------------------

def build_trained_sprite(
    env: Environment,
    sprite_config: SpriteConfig | None = None,
    training_queries: Optional[Sequence[Query]] = None,
) -> SpriteSystem:
    """The paper's Section 6.2 pipeline: share documents with the
    initial terms, insert the training queries, run the configured
    learning iterations.  The system's ring runs over the transport the
    environment's :class:`~repro.config.NetworkConfig` describes (the
    perfect transport by default)."""
    cfg = sprite_config if sprite_config is not None else env.config.sprite
    with PROFILE.timer("experiment.train_sprite"):
        system = SpriteSystem(
            env.corpus,
            sprite_config=cfg,
            chord_config=env.config.chord,
            transport=build_transport(env.config.network),
        )
        system.share_corpus()
        queries = (
            training_queries if training_queries is not None else list(env.train.queries)
        )
        system.register_queries(queries)
        system.run_learning()
    return system


def build_esearch(
    env: Environment, index_terms: int | None = None
) -> ESearchSystem:
    """The static baseline at a given term budget."""
    base = env.config.esearch
    cfg = ESearchConfig(
        index_terms=index_terms if index_terms is not None else base.index_terms,
        assumed_corpus_size=base.assumed_corpus_size,
        top_k_answers=base.top_k_answers,
    )
    system = ESearchSystem(
        env.corpus,
        esearch_config=cfg,
        chord_config=env.config.chord,
        transport=build_transport(env.config.network),
    )
    system.share_corpus()
    return system


def _rank_all(
    system, queries: Sequence[Query], top_k: int, cache: bool = False
) -> Dict[str, RankedList]:
    with PROFILE.timer("experiment.rank_all"):
        return {
            q.query_id: system.search(q, top_k=top_k, cache=cache) for q in queries
        }


# ---------------------------------------------------------------------------
# Figure 4(a): effectiveness vs number of answers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4aRow:
    """One cutoff's worth of Figure 4(a)."""

    num_answers: int
    sprite: RelativeResult
    esearch: RelativeResult


def run_fig4a(
    env: Environment,
    answer_counts: Sequence[int] = (5, 10, 15, 20, 25, 30),
) -> List[Fig4aRow]:
    """Reproduce Figure 4(a): both systems trained at the default 20-term
    budget, evaluated at varying answer-list sizes K."""
    sprite = build_trained_sprite(env)
    esearch = build_esearch(env)
    deepest = max(answer_counts)
    test_queries = list(env.test.queries)

    sprite_rankings = _rank_all(sprite, test_queries, deepest)
    esearch_rankings = _rank_all(esearch, test_queries, deepest)
    central_rankings = env.centralized_rankings(test_queries)

    rows: List[Fig4aRow] = []
    for k in answer_counts:
        rows.append(
            Fig4aRow(
                num_answers=k,
                sprite=relative_to_centralized(
                    sprite_rankings, central_rankings, env.test.qrels, k
                ),
                esearch=relative_to_centralized(
                    esearch_rankings, central_rankings, env.test.qrels, k
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 4(b): effectiveness vs number of indexed terms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4bRow:
    """One (stream, term budget) cell of Figure 4(b)."""

    stream: StreamKind
    index_terms: int
    sprite: RelativeResult
    esearch: RelativeResult


def _training_stream(env: Environment, stream: StreamKind) -> List[Query]:
    from ..querygen.workload import without_repeats_stream, zipf_stream

    if stream == "w/o-r":
        return without_repeats_stream(env.train, seed=env.config.workload.seed)
    if stream == "w-zipf":
        return zipf_stream(env.train, env.config.workload)
    return list(env.train.queries)


def run_fig4b(
    env: Environment,
    term_counts: Sequence[int] = (5, 10, 15, 20, 25, 30),
    streams: Sequence[StreamKind] = ("w/o-r", "w-zipf"),
) -> List[Fig4bRow]:
    """Reproduce Figure 4(b): vary the indexed-term budget T under the
    no-repeats and Zipf query streams.  At T = 5 no learning happens and
    the two systems coincide by construction."""
    k = env.config.sprite.top_k_answers
    test_queries = list(env.test.queries)
    central_rankings = env.centralized_rankings(test_queries)

    rows: List[Fig4bRow] = []
    for stream in streams:
        training = _training_stream(env, stream)
        for terms in term_counts:
            sprite_cfg = env.config.sprite.with_max_terms(terms)
            sprite = build_trained_sprite(env, sprite_cfg, training)
            esearch = build_esearch(env, index_terms=terms)
            rows.append(
                Fig4bRow(
                    stream=stream,
                    index_terms=terms,
                    sprite=relative_to_centralized(
                        _rank_all(sprite, test_queries, k),
                        central_rankings,
                        env.test.qrels,
                        k,
                    ),
                    esearch=relative_to_centralized(
                        _rank_all(esearch, test_queries, k),
                        central_rankings,
                        env.test.qrels,
                        k,
                    ),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 4(c): adapting to a query-pattern change
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4cRow:
    """One learning iteration of Figure 4(c)."""

    iteration: int
    active_group: str
    sprite: RelativeResult
    esearch: RelativeResult
    sprite_terms: int
    esearch_terms: int


def run_fig4c(
    env: Environment,
    iterations: int = 10,
    switch_at: int = 6,
    max_terms: int = 30,
) -> List[Fig4cRow]:
    """Reproduce Figure 4(c): the query set splits into two origin-
    aligned groups; group A drives iterations 1..switch_at-1, group B
    the rest.  The index grows 5 terms per iteration to *max_terms*,
    then replacement-only (and eSearch's term set freezes)."""
    from ..querygen.workload import pattern_change_groups

    group_a, group_b = pattern_change_groups(env.full_set, seed=env.config.split_seed)
    k = env.config.sprite.top_k_answers

    sprite_cfg = SpriteConfig(
        initial_terms=env.config.sprite.initial_terms,
        terms_per_iteration=env.config.sprite.terms_per_iteration,
        learning_iterations=iterations,
        max_index_terms=max_terms,
        query_cache_size=env.config.sprite.query_cache_size,
        assumed_corpus_size=env.config.sprite.assumed_corpus_size,
        top_k_answers=k,
    )
    sprite = SpriteSystem(
        env.corpus, sprite_config=sprite_cfg, chord_config=env.config.chord
    )
    sprite.share_corpus()

    esearch_terms = env.config.sprite.initial_terms
    esearch = build_esearch(env, index_terms=esearch_terms)

    rows: List[Fig4cRow] = []
    for iteration in range(1, iterations + 1):
        group = group_a if iteration < switch_at else group_b
        group_name = "A" if iteration < switch_at else "B"
        queries = list(group.queries)

        # Process-and-evaluate: SPRITE caches the queries it serves
        # (that is the learning signal); eSearch has nothing to cache.
        sprite_rankings = _rank_all(sprite, queries, k, cache=True)
        esearch_rankings = _rank_all(esearch, queries, k, cache=False)
        central_rankings = env.centralized_rankings(queries)

        sprite_sizes = sprite.learning_summary()
        mean_sprite_terms = (
            round(sum(sprite_sizes.values()) / len(sprite_sizes))
            if sprite_sizes
            else 0
        )
        rows.append(
            Fig4cRow(
                iteration=iteration,
                active_group=group_name,
                sprite=relative_to_centralized(
                    sprite_rankings, central_rankings, group.qrels, k
                ),
                esearch=relative_to_centralized(
                    esearch_rankings, central_rankings, group.qrels, k
                ),
                sprite_terms=mean_sprite_terms,
                esearch_terms=esearch_terms,
            )
        )

        # Learn (grow until the cap, replacement-only afterwards), and
        # grow eSearch's static budget on the same schedule.
        target = min(
            max_terms,
            env.config.sprite.initial_terms
            + env.config.sprite.terms_per_iteration * iteration,
        )
        sprite.run_learning_iteration(target_size=target)
        if target > esearch_terms:
            esearch_terms = target
            esearch = build_esearch(env, index_terms=esearch_terms)
    return rows


# ---------------------------------------------------------------------------
# Index construction / maintenance cost (the Section 1 motivation)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CostRow:
    """Index-construction traffic for one indexing strategy."""

    strategy: str
    published_terms: int
    publish_messages: int
    publish_hops: int
    publish_bytes: int
    messages_per_document: float


def run_cost_comparison(env: Environment) -> List[CostRow]:
    """Measure the publication traffic of (a) SPRITE's selective index,
    (b) eSearch's static top-20, and (c) indexing *every* unique term —
    the infeasible strawman the introduction argues against.

    All three systems run the paper's per-term publication protocol
    (``batched_writes=False``): the figure compares term-*selection*
    policies under the Section 1 cost model, where every published
    (doc, term) pair is one message.  The batched write path's savings
    are measured separately by the ingest benchmark (DESIGN.md §11).
    """
    rows: List[CostRow] = []
    n_docs = len(env.corpus)

    def measure(system, label: str) -> CostRow:
        stats = system.ring.stats
        publish = stats.kind(MessageKind.PUBLISH_TERM)
        return CostRow(
            strategy=label,
            published_terms=system.total_published_terms(),
            publish_messages=publish.messages,
            publish_hops=publish.hops,
            publish_bytes=publish.bytes,
            messages_per_document=publish.messages / n_docs,
        )

    sprite = build_trained_sprite(
        env, sprite_config=replace(env.config.sprite, batched_writes=False)
    )
    rows.append(measure(sprite, "sprite"))

    legacy_esearch = replace(env.config.esearch, batched_writes=False)
    esearch = ESearchSystem(
        env.corpus,
        esearch_config=legacy_esearch,
        chord_config=env.config.chord,
        transport=build_transport(env.config.network),
    )
    esearch.share_corpus()
    rows.append(measure(esearch, "esearch"))

    class _IndexEverything(ESearchSystem):
        def _first_terms(self, doc_id: str):
            doc = self.corpus.get(doc_id)
            return doc.top_terms(doc.unique_terms)

    everything = _IndexEverything(
        env.corpus,
        esearch_config=legacy_esearch,
        chord_config=env.config.chord,
    )
    everything.share_corpus()
    rows.append(measure(everything, "index-everything"))
    return rows
