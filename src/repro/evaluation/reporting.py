"""Plain-text tables for experiment results.

Each formatter renders the rows its experiment runner produced in the
same shape the paper reports: ratios of a system over the centralized
system.  The benches print these tables so ``pytest benchmarks/
--benchmark-only`` output doubles as the reproduction record.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .experiments import CostRow, Fig4aRow, Fig4bRow, Fig4cRow


def _table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Minimal fixed-width table renderer."""
    materialized: List[List[str]] = [list(headers)] + [list(r) for r in rows]
    widths = [
        max(len(row[col]) for row in materialized)
        for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(materialized):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def format_fig4a(rows: Sequence[Fig4aRow]) -> str:
    """Figure 4(a): precision/recall ratios vs number of answers."""
    return _table(
        ["K", "SPRITE P", "eSearch P", "SPRITE R", "eSearch R"],
        (
            [
                str(r.num_answers),
                _pct(r.sprite.precision_ratio),
                _pct(r.esearch.precision_ratio),
                _pct(r.sprite.recall_ratio),
                _pct(r.esearch.recall_ratio),
            ]
            for r in rows
        ),
    )


def format_fig4b(rows: Sequence[Fig4bRow]) -> str:
    """Figure 4(b): precision ratios vs indexed-term budget per stream."""
    return _table(
        ["stream", "T", "SPRITE P", "eSearch P", "SPRITE R", "eSearch R"],
        (
            [
                r.stream,
                str(r.index_terms),
                _pct(r.sprite.precision_ratio),
                _pct(r.esearch.precision_ratio),
                _pct(r.sprite.recall_ratio),
                _pct(r.esearch.recall_ratio),
            ]
            for r in rows
        ),
    )


def format_fig4c(rows: Sequence[Fig4cRow]) -> str:
    """Figure 4(c): ratios per learning iteration across the pattern change."""
    return _table(
        ["iter", "group", "SPRITE P", "eSearch P", "SPRITE R", "eSearch R", "terms"],
        (
            [
                str(r.iteration),
                r.active_group,
                _pct(r.sprite.precision_ratio),
                _pct(r.esearch.precision_ratio),
                _pct(r.sprite.recall_ratio),
                _pct(r.esearch.recall_ratio),
                f"{r.sprite_terms}/{r.esearch_terms}",
            ]
            for r in rows
        ),
    )


def format_cost(rows: Sequence[CostRow]) -> str:
    """Index-construction traffic comparison."""
    return _table(
        ["strategy", "terms", "messages", "hops", "KiB", "msgs/doc"],
        (
            [
                r.strategy,
                str(r.published_terms),
                str(r.publish_messages),
                str(r.publish_hops),
                f"{r.publish_bytes / 1024:.0f}",
                f"{r.messages_per_document:.1f}",
            ]
            for r in rows
        ),
    )
