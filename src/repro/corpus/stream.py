"""Streaming synthetic corpus production for the scale harness.

The tracked perf workloads build their synthetic index inline, one doc
at a time, but still shape each document with per-call ``rng.choices``.
At 100k-peer / million-posting scale two things must change: documents
have to be **generated, consumed, and dropped** (never a materialized
list — peak RSS stays flat in the corpus size), and the term draws have
to go through the bulk sampler (:meth:`CategoricalSampler.sample_many`)
so a document costs O(1) amortized per draw instead of one bisection
per term.

:func:`stream_synthetic_docs` yields lightweight :class:`StreamedDoc`
rows; the sharded harness turns each into one destination-grouped
publish batch and lets it go.  Generation is deterministic in
``(rng state, parameters)`` — the sharded harness seeds one RNG per
shard, so a shard's document stream is identical no matter which worker
process runs it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .sampling import CategoricalSampler


@dataclass(frozen=True)
class StreamedDoc:
    """One synthetic document, as published: id, length, term → tf."""

    doc_id: str
    length: int
    term_tfs: Tuple[Tuple[str, int], ...]


def stream_synthetic_docs(
    rng: random.Random,
    vocabulary: Sequence[str],
    weights: Sequence[float],
    num_documents: int,
    terms_per_document: int,
    min_doc_length: int = 80,
    max_doc_length: int = 240,
    min_tf: int = 1,
    max_tf: int = 12,
    id_prefix: str = "doc",
) -> Iterator[StreamedDoc]:
    """Generate *num_documents* synthetic documents lazily.

    Each document draws ``terms_per_document`` terms from the weighted
    *vocabulary* (duplicates collapse, so documents near hot terms have
    fewer distinct terms — same shape as the tracked perf workload), a
    uniform length, and a uniform raw tf per distinct term.  The full
    document list is never materialized; callers iterate and drop.
    """
    if num_documents < 0:
        raise ValueError("num_documents must be >= 0")
    if terms_per_document < 1:
        raise ValueError("terms_per_document must be >= 1")
    if not (1 <= min_doc_length <= max_doc_length):
        raise ValueError("need 1 <= min_doc_length <= max_doc_length")
    sampler = CategoricalSampler(vocabulary, weights)
    for d in range(num_documents):
        doc_id = f"{id_prefix}{d:07d}"
        length = rng.randint(min_doc_length, max_doc_length)
        terms: List[str] = list(
            dict.fromkeys(sampler.sample_many(rng, terms_per_document))
        )
        term_tfs = tuple((term, rng.randint(min_tf, max_tf)) for term in terms)
        yield StreamedDoc(doc_id=doc_id, length=length, term_tfs=term_tfs)
