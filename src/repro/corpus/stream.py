"""Streaming synthetic corpus production for the scale harness.

The tracked perf workloads build their synthetic index inline, one doc
at a time, but still shape each document with per-call ``rng.choices``.
At 100k-peer / million-posting scale two things must change: documents
have to be **generated, consumed, and dropped** (never a materialized
list — peak RSS stays flat in the corpus size), and the term draws have
to go through the bulk sampler (:meth:`CategoricalSampler.sample_many`)
so a document costs O(1) amortized per draw instead of one bisection
per term.

:func:`stream_synthetic_docs` yields lightweight :class:`StreamedDoc`
rows; the sharded harness turns each into one destination-grouped
publish batch and lets it go.  Generation is deterministic in
``(rng state, parameters)`` — the sharded harness seeds one RNG per
shard, so a shard's document stream is identical no matter which worker
process runs it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from .document import Document
from .sampling import CategoricalSampler


@dataclass(frozen=True)
class StreamedDoc:
    """One synthetic document, as published: id, length, term → tf."""

    doc_id: str
    length: int
    term_tfs: Tuple[Tuple[str, int], ...]


def stream_synthetic_docs(
    rng: random.Random,
    vocabulary: Sequence[str],
    weights: Sequence[float],
    num_documents: int,
    terms_per_document: int,
    min_doc_length: int = 80,
    max_doc_length: int = 240,
    min_tf: int = 1,
    max_tf: int = 12,
    id_prefix: str = "doc",
) -> Iterator[StreamedDoc]:
    """Generate *num_documents* synthetic documents lazily.

    Each document draws ``terms_per_document`` terms from the weighted
    *vocabulary* (duplicates collapse, so documents near hot terms have
    fewer distinct terms — same shape as the tracked perf workload), a
    uniform length, and a uniform raw tf per distinct term.  The full
    document list is never materialized; callers iterate and drop.
    """
    if num_documents < 0:
        raise ValueError("num_documents must be >= 0")
    if terms_per_document < 1:
        raise ValueError("terms_per_document must be >= 1")
    if not (1 <= min_doc_length <= max_doc_length):
        raise ValueError("need 1 <= min_doc_length <= max_doc_length")
    sampler = CategoricalSampler(vocabulary, weights)
    for d in range(num_documents):
        doc_id = f"{id_prefix}{d:07d}"
        length = rng.randint(min_doc_length, max_doc_length)
        terms: List[str] = list(
            dict.fromkeys(sampler.sample_many(rng, terms_per_document))
        )
        term_tfs = tuple((term, rng.randint(min_tf, max_tf)) for term in terms)
        yield StreamedDoc(doc_id=doc_id, length=length, term_tfs=term_tfs)


# -- live corpus turnover ----------------------------------------------------
#
# Turnover scenarios (DESIGN.md §14) edit documents *mid-query-stream*
# and re-share them, driving the batched unpublish/publish path while
# queries are in flight.  Both helpers produce a revision under the same
# id: :func:`revise_document` rewrites a materialized document's text,
# :func:`stream_turnover` perturbs streamed rows without materializing.


def revise_document(
    doc: Document, rng: random.Random, edit_fraction: float = 0.3
) -> Document:
    """A deterministic edited revision of *doc* under the same id.

    Roughly ``edit_fraction`` of the token count is edited: tokens are
    deleted, duplicated elsewhere, or overwritten by other tokens of the
    same document, so the revision's term distribution genuinely shifts
    (different top-F index terms after re-share) while staying inside
    the document's own vocabulary.
    """
    if not 0.0 < edit_fraction <= 1.0:
        raise ValueError("edit_fraction must be in (0, 1]")
    tokens = doc.text.split()
    if not tokens:
        return Document(doc.doc_id, doc.text, title=doc.title)
    revised = list(tokens)
    for __ in range(max(1, int(len(tokens) * edit_fraction))):
        position = rng.randrange(len(revised))
        action = rng.random()
        if action < 0.45 and len(revised) > 1:
            del revised[position]
        elif action < 0.90:
            revised.insert(position, rng.choice(tokens))
        else:
            revised[position] = rng.choice(tokens)
    return Document(doc.doc_id, " ".join(revised), title=doc.title)


def stream_turnover(
    rng: random.Random,
    docs: Iterable[StreamedDoc],
    drop_term_probability: float = 0.2,
    tf_jitter: int = 3,
) -> Iterator[StreamedDoc]:
    """Lazily revise a stream of :class:`StreamedDoc` rows.

    Each revision keeps the doc id, drops terms with probability
    *drop_term_probability* (never all of them), and jitters the
    surviving raw tfs and the length by up to ``±tf_jitter`` — the
    streamed-corpus counterpart of :func:`revise_document`, with the
    same never-materialize contract as :func:`stream_synthetic_docs`.
    """
    if not 0.0 <= drop_term_probability < 1.0:
        raise ValueError("drop_term_probability must be in [0, 1)")
    if tf_jitter < 0:
        raise ValueError("tf_jitter must be >= 0")
    for doc in docs:
        term_tfs: List[Tuple[str, int]] = []
        for term, tf in doc.term_tfs:
            if len(doc.term_tfs) > 1 and rng.random() < drop_term_probability:
                continue
            term_tfs.append((term, max(1, tf + rng.randint(-tf_jitter, tf_jitter))))
        if not term_tfs:
            first_term, first_tf = doc.term_tfs[0]
            term_tfs = [(first_term, first_tf)]
        length = max(1, doc.length + rng.randint(-tf_jitter, tf_jitter))
        yield StreamedDoc(
            doc_id=doc.doc_id, length=length, term_tfs=tuple(term_tfs)
        )
