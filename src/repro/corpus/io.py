"""Persistence for corpora and query sets.

Building the paper-scale environment takes seconds-to-minutes (corpus
synthesis + deep centralized rankings for the query generator), so this
module lets harness users snapshot the expensive artifacts to disk as
gzipped JSON and reload them instantly — handy for iterating on system
parameters without re-running generation.

Formats are versioned, plain-JSON structures; nothing pickled, so files
are portable and diff-able.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Tuple

from ..exceptions import CorpusError
from .corpus import Corpus
from .document import Document
from .relevance import Qrels, Query, QuerySet

FORMAT_VERSION = 1


def _open_for_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def save_corpus(corpus: Corpus, path: Path | str) -> None:
    """Write a corpus to JSON (gzip when the path ends in .gz)."""
    path = Path(path)
    payload = {
        "format": "repro-corpus",
        "version": FORMAT_VERSION,
        "documents": [
            {"doc_id": doc.doc_id, "text": doc.text, "title": doc.title}
            for doc in corpus
        ],
    }
    with _open_for_write(path) as handle:
        json.dump(payload, handle)


def load_corpus(path: Path | str) -> Corpus:
    """Read a corpus written by :func:`save_corpus`."""
    path = Path(path)
    with _open_for_read(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro-corpus":
        raise CorpusError(f"not a corpus file: {path}")
    if payload.get("version") != FORMAT_VERSION:
        raise CorpusError(
            f"unsupported corpus format version: {payload.get('version')!r}"
        )
    return Corpus(
        Document(doc_id=d["doc_id"], text=d["text"], title=d.get("title", ""))
        for d in payload["documents"]
    )


def save_query_set(query_set: QuerySet, path: Path | str) -> None:
    """Write a query set (queries + qrels) to JSON (.gz aware)."""
    path = Path(path)
    payload = {
        "format": "repro-queries",
        "version": FORMAT_VERSION,
        "queries": [
            {
                "query_id": q.query_id,
                "terms": list(q.terms),
                "origin_id": q.origin_id,
            }
            for q in query_set
        ],
        "qrels": {
            qid: sorted(query_set.qrels.relevant(qid)) for qid in query_set.qrels
        },
    }
    with _open_for_write(path) as handle:
        json.dump(payload, handle)


def load_query_set(path: Path | str) -> QuerySet:
    """Read a query set written by :func:`save_query_set`."""
    path = Path(path)
    with _open_for_read(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro-queries":
        raise CorpusError(f"not a query-set file: {path}")
    if payload.get("version") != FORMAT_VERSION:
        raise CorpusError(
            f"unsupported query-set format version: {payload.get('version')!r}"
        )
    queries = [
        Query(
            query_id=q["query_id"],
            terms=tuple(q["terms"]),
            origin_id=q.get("origin_id", ""),
        )
        for q in payload["queries"]
    ]
    qrels = Qrels({qid: set(docs) for qid, docs in payload["qrels"].items()})
    return QuerySet(queries, qrels)


def save_collection(
    corpus: Corpus, query_set: QuerySet, directory: Path | str, compress: bool = True
) -> Tuple[Path, Path]:
    """Save corpus + query set into a directory; returns the two paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".json.gz" if compress else ".json"
    corpus_path = directory / f"corpus{suffix}"
    queries_path = directory / f"queries{suffix}"
    save_corpus(corpus, corpus_path)
    save_query_set(query_set, queries_path)
    return corpus_path, queries_path


def load_collection(directory: Path | str) -> Tuple[Corpus, QuerySet]:
    """Load a directory written by :func:`save_collection`."""
    directory = Path(directory)
    for suffix in (".json.gz", ".json"):
        corpus_path = directory / f"corpus{suffix}"
        queries_path = directory / f"queries{suffix}"
        if corpus_path.exists() and queries_path.exists():
            return load_corpus(corpus_path), load_query_set(queries_path)
    raise CorpusError(f"no saved collection found in {directory}")
