"""Corpus container and corpus-level term statistics.

Besides holding documents, :class:`Corpus` exposes the global statistics
the paper's query generator needs — in particular the term-importance
metric of Section 6.1:

    Distribution(t) = Freq(t) × Num(t)

where ``Freq(t)`` is the total occurrence count of *t* across all
documents and ``Num(t)`` the number of documents containing *t*.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional

from ..exceptions import CorpusError, DocumentNotFoundError
from ..text.analyzer import Analyzer, DEFAULT_ANALYZER
from .document import Document


class Corpus:
    """An in-memory document collection with cached global statistics.

    Parameters
    ----------
    documents:
        The documents to include.  Ids must be unique.
    analyzer:
        Analyzer shared by all documents (and later by all systems).
    """

    def __init__(
        self,
        documents: Iterable[Document],
        analyzer: Analyzer = DEFAULT_ANALYZER,
    ) -> None:
        self.analyzer = analyzer
        self._docs: Dict[str, Document] = {}
        for doc in documents:
            if doc.doc_id in self._docs:
                raise CorpusError(f"duplicate document id: {doc.doc_id!r}")
            self._docs[doc.doc_id] = doc
        if not self._docs:
            raise CorpusError("corpus must contain at least one document")
        self._doc_freq: Optional[Counter] = None
        self._coll_freq: Optional[Counter] = None

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs.values())

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def get(self, doc_id: str) -> Document:
        """Fetch a document by id, raising :class:`DocumentNotFoundError`
        if absent."""
        try:
            return self._docs[doc_id]
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    @property
    def doc_ids(self) -> List[str]:
        """All document ids, in insertion order."""
        return list(self._docs)

    # -- turnover ----------------------------------------------------------

    def replace(self, doc: Document) -> Document:
        """Swap in an edited revision of an existing document.

        The id must already be present (turnover edits documents, it
        never grows the collection), insertion order is preserved, and
        the cached global statistics are invalidated so
        :attr:`document_frequency` et al. reflect the revision.  Returns
        the document that was replaced.
        """
        if doc.doc_id not in self._docs:
            raise DocumentNotFoundError(doc.doc_id)
        previous = self._docs[doc.doc_id]
        self._docs[doc.doc_id] = doc
        self._doc_freq = None
        self._coll_freq = None
        return previous

    # -- global statistics ---------------------------------------------------

    def _build_stats(self) -> None:
        if self._doc_freq is not None:
            return
        doc_freq: Counter = Counter()
        coll_freq: Counter = Counter()
        for doc in self._docs.values():
            doc.analyze(self.analyzer)
            for term, freq in doc.term_freqs.items():
                doc_freq[term] += 1
                coll_freq[term] += freq
        self._doc_freq = doc_freq
        self._coll_freq = coll_freq

    @property
    def document_frequency(self) -> Counter:
        """term → number of documents containing it (``Num(t)``)."""
        self._build_stats()
        assert self._doc_freq is not None
        return self._doc_freq

    @property
    def collection_frequency(self) -> Counter:
        """term → total occurrences across the corpus (``Freq(t)``)."""
        self._build_stats()
        assert self._coll_freq is not None
        return self._coll_freq

    @property
    def vocabulary(self) -> List[str]:
        """All analyzed terms occurring anywhere in the corpus (sorted)."""
        return sorted(self.document_frequency)

    def distribution(self, term: str) -> float:
        """The paper's term-importance metric ``Distribution(t)``.

        ``Distribution(t) = Freq(t) × Num(t)`` — zero for unseen terms.
        """
        return float(
            self.collection_frequency.get(term, 0)
            * self.document_frequency.get(term, 0)
        )

    def distribution_table(self) -> Dict[str, float]:
        """``Distribution(t)`` for every vocabulary term, precomputed."""
        self._build_stats()
        return {
            t: float(self._coll_freq[t] * self._doc_freq[t])  # type: ignore[index]
            for t in self._doc_freq  # type: ignore[union-attr]
        }

    @property
    def total_terms(self) -> int:
        """Total analyzed term occurrences in the corpus."""
        return sum(self.collection_frequency.values())

    @property
    def average_document_length(self) -> float:
        """Mean analyzed document length."""
        return self.total_terms / len(self)
