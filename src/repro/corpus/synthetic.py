"""Synthetic TREC-like corpus generator.

The paper evaluates on TREC-9 (348,565 OHSUMED documents, 63 expert-
judged queries).  That data cannot be redistributed, so this module
builds a *synthetic equivalent* that preserves the three statistical
properties the paper's mechanisms actually depend on (see the
substitution table in DESIGN.md):

1. **Zipfian term statistics** — within-topic and background term
   frequencies follow a power law, so "top frequent terms" is a
   meaningful, skewed notion (this is what eSearch indexes).
2. **Query locality** — queries about the same topic share keywords and
   share relevant documents, which is precisely the phenomenon SPRITE's
   learning exploits (paper observation 3, Section 1).
3. **Characteristic-term structure** — each document is dominated by a
   small number of topics whose *core terms* both characterize the
   document and supply query keywords (paper observations 1 and 2).

The generative model: ``num_topics`` latent topics each own a disjoint
*core* of ``topic_core_size`` vocabulary words with Zipf-ranked
within-topic frequencies; the remaining vocabulary is a shared Zipf
*background*.  A document samples 1..``max_topics_per_doc`` topics with
random mixture weights and draws tokens from core and background.
Original queries pick discriminative core terms of one topic; expert
qrels are the documents with the strongest affinity (topic weight ×
query-term match) to the query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..config import SyntheticCorpusConfig
from ..exceptions import CorpusError
from ..text.stemmer import stem
from ..text.stopwords import LUCENE_STOP_WORDS
from .corpus import Corpus
from .document import Document
from .relevance import Qrels, Query, QuerySet
from .sampling import ZipfSampler

_CONSONANTS = "bcdfgklmnprstvz"
_VOWELS = "aeiou"


def _make_word(rng: random.Random) -> str:
    """Generate one pronounceable pseudo-word (2-4 CV syllables plus an
    optional final consonant)."""
    syllables = rng.randint(2, 4)
    parts = []
    for __ in range(syllables):
        parts.append(rng.choice(_CONSONANTS))
        parts.append(rng.choice(_VOWELS))
    if rng.random() < 0.4:
        parts.append(rng.choice(_CONSONANTS))
    return "".join(parts)


def generate_vocabulary(size: int, rng: random.Random) -> List[str]:
    """Generate *size* unique pseudo-words that are fix-points of the
    Porter stemmer.

    Every downstream system analyzes text with stemming enabled;
    generating stem-stable words guarantees the generator's term
    identities survive analysis unchanged, so qrels and query terms line
    up exactly with the analyzed term space.
    """
    words: List[str] = []
    seen = set()
    attempts = 0
    budget = 400 * size
    while len(words) < size:
        attempts += 1
        if attempts > budget:
            raise CorpusError(
                "vocabulary generation exhausted its attempt budget; "
                "requested size is too large for the pseudo-word space"
            )
        candidate = _make_word(rng)
        stemmed = stem(candidate)
        if stem(stemmed) != stemmed:
            continue
        if len(stemmed) < 3 or stemmed in LUCENE_STOP_WORDS or stemmed in seen:
            continue
        seen.add(stemmed)
        words.append(stemmed)
    return words


@dataclass(frozen=True)
class TopicModel:
    """The latent structure behind a synthetic corpus (kept for
    inspection, debugging, and white-box tests)."""

    topic_cores: Tuple[Tuple[str, ...], ...]
    background: Tuple[str, ...]
    doc_topics: Dict[str, Dict[int, float]]
    query_topics: Dict[str, int]

    def dominant_topic(self, doc_id: str) -> int:
        """The highest-weight topic of a document."""
        weights = self.doc_topics[doc_id]
        return max(weights, key=lambda t: (weights[t], -t))


class SyntheticTrecCorpus:
    """Build a (Corpus, QuerySet, TopicModel) triple from a config.

    Deterministic: the same :class:`SyntheticCorpusConfig` (including
    its ``seed``) always produces the identical corpus.
    """

    def __init__(self, config: SyntheticCorpusConfig | None = None) -> None:
        self.config = config if config is not None else SyntheticCorpusConfig()

    def build(self) -> Tuple[Corpus, QuerySet, TopicModel]:
        """Generate everything.  See the module docstring for the model."""
        cfg = self.config
        rng = random.Random(cfg.seed)

        vocabulary = generate_vocabulary(cfg.vocabulary_size, rng)
        rng.shuffle(vocabulary)

        core_count = cfg.num_topics * cfg.topic_core_size
        topic_cores: List[Tuple[str, ...]] = []
        for t in range(cfg.num_topics):
            lo = t * cfg.topic_core_size
            topic_cores.append(tuple(vocabulary[lo : lo + cfg.topic_core_size]))
        background = tuple(vocabulary[core_count:])
        if not background:
            raise CorpusError("no background vocabulary left; shrink topic cores")

        topic_samplers = [
            ZipfSampler(core, cfg.zipf_exponent) for core in topic_cores
        ]
        background_sampler = ZipfSampler(background, cfg.zipf_exponent)

        documents, doc_topics = self._generate_documents(
            rng, topic_samplers, background_sampler
        )
        queries, query_topics = self._generate_queries(rng, topic_cores)
        qrels = self._judge(documents, doc_topics, queries, query_topics)

        corpus = Corpus(documents)
        model = TopicModel(
            topic_cores=tuple(topic_cores),
            background=background,
            doc_topics=doc_topics,
            query_topics=query_topics,
        )
        return corpus, QuerySet(queries, qrels), model

    # -- documents -----------------------------------------------------------

    def _generate_documents(
        self,
        rng: random.Random,
        topic_samplers: Sequence[ZipfSampler],
        background_sampler: ZipfSampler,
    ) -> Tuple[List[Document], Dict[str, Dict[int, float]]]:
        cfg = self.config
        documents: List[Document] = []
        doc_topics: Dict[str, Dict[int, float]] = {}
        id_width = max(5, len(str(cfg.num_documents)))

        for i in range(cfg.num_documents):
            doc_id = f"d{i:0{id_width}d}"
            n_topics = rng.randint(1, cfg.max_topics_per_doc)
            topics = rng.sample(range(cfg.num_topics), min(n_topics, cfg.num_topics))
            raw = [rng.random() + 0.25 for __ in topics]
            total = sum(raw)
            weights = {t: w / total for t, w in zip(topics, raw)}

            length = max(
                cfg.min_doc_length,
                int(rng.gauss(cfg.mean_doc_length, cfg.mean_doc_length / 3)),
            )
            tokens: List[str] = []
            topic_list = list(weights)
            cumulative = []
            acc = 0.0
            for t in topic_list:
                acc += weights[t]
                cumulative.append(acc)
            for __ in range(length):
                if rng.random() < cfg.background_fraction:
                    tokens.append(background_sampler.sample(rng))
                else:
                    x = rng.random() * acc
                    idx = 0
                    while idx < len(cumulative) - 1 and x > cumulative[idx]:
                        idx += 1
                    tokens.append(topic_samplers[topic_list[idx]].sample(rng))
            rng.shuffle(tokens)
            documents.append(Document(doc_id=doc_id, text=" ".join(tokens)))
            doc_topics[doc_id] = weights
        return documents, doc_topics

    # -- queries ---------------------------------------------------------------

    def _generate_queries(
        self, rng: random.Random, topic_cores: Sequence[Tuple[str, ...]]
    ) -> Tuple[List[Query], Dict[str, int]]:
        cfg = self.config
        queries: List[Query] = []
        query_topics: Dict[str, int] = {}
        id_width = max(2, len(str(cfg.num_original_queries)))

        for i in range(cfg.num_original_queries):
            topic = i % cfg.num_topics
            core = topic_cores[topic]
            n_terms = rng.randint(cfg.query_min_terms, cfg.query_max_terms)
            # Query-term choice within the topic core: mildly skewed
            # (config.query_term_skew) — experts query with terms that
            # characterize the topic but are not necessarily the most
            # frequent tokens of any one document, which is precisely
            # why frequency-only indexing misses them.
            sampler = ZipfSampler(core, cfg.query_term_skew)
            terms = sampler.sample_distinct(rng, min(n_terms, len(core)))
            qid = f"q{i:0{id_width}d}"
            queries.append(Query(query_id=qid, terms=tuple(terms)))
            query_topics[qid] = topic
        return queries, query_topics

    # -- qrels -------------------------------------------------------------------

    def _judge(
        self,
        documents: Sequence[Document],
        doc_topics: Dict[str, Dict[int, float]],
        queries: Sequence[Query],
        query_topics: Dict[str, int],
    ) -> Qrels:
        """Derive expert judgments from the latent model.

        A document's affinity to a query is its weight on the query's
        topic scaled by how strongly it actually matches the query
        terms; the top ``relevant_per_query`` documents with positive
        affinity are judged relevant.  This mimics expert pooling: the
        judged set is topical AND term-matching, but is *not* simply the
        TF-IDF ranking, so the centralized system is a strong-but-
        imperfect reference exactly as in TREC.
        """
        cfg = self.config
        qrels = Qrels()
        for query in queries:
            topic = query_topics[query.query_id]
            scored: List[Tuple[float, str]] = []
            for doc in documents:
                weight = doc_topics[doc.doc_id].get(topic, 0.0)
                if weight <= 0.0:
                    continue
                matches = sum(1 for t in query.terms if doc.contains(t))
                if matches == 0:
                    continue
                scored.append((weight * (1.0 + matches), doc.doc_id))
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            for __, doc_id in scored[: cfg.relevant_per_query]:
                qrels.add(query.query_id, doc_id)
        return qrels


def build_synthetic_collection(
    config: SyntheticCorpusConfig | None = None,
) -> Tuple[Corpus, QuerySet, TopicModel]:
    """Convenience one-call builder used throughout tests and benches."""
    return SyntheticTrecCorpus(config).build()
