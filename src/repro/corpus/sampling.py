"""Deterministic discrete sampling helpers.

The synthetic corpus generator and the workload shaping code both need
Zipf-skewed categorical sampling that is reproducible from a seed and
independent of numpy version quirks, so a small bisect-based sampler is
implemented here.
"""

from __future__ import annotations

import itertools
import random
from bisect import bisect_right
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def zipf_weights(n: int, exponent: float) -> List[float]:
    """Unnormalized Zipf weights ``1/rank^exponent`` for ranks 1..n.

    An *exponent* (the Zipf "slope") of 0 degenerates to uniform
    weights, matching how the paper's "w-zipf" stream with slope 0.5 is
    a mildly skewed popularity distribution.  Very large exponents make
    ``rank ** exponent`` overflow the float range for tail ranks; those
    weights underflow to 0.0 (head-only sampling) rather than raising.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    weights = []
    for rank in range(1, n + 1):
        try:
            weights.append(1.0 / (rank ** exponent))
        except OverflowError:
            weights.append(0.0)
    return weights


class CategoricalSampler:
    """Sample items with fixed relative weights, reproducibly.

    Uses precomputed cumulative sums + binary search: O(log n) per draw.
    """

    def __init__(self, items: Sequence[T], weights: Sequence[float]) -> None:
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        if not items:
            raise ValueError("cannot sample from an empty sequence")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self.items: List[T] = list(items)
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        if self._total <= 0:
            raise ValueError("total weight must be positive")

    def sample(self, rng: random.Random) -> T:
        """Draw one item using *rng*."""
        x = rng.random() * self._total
        return self.items[min(bisect_right(self._cumulative, x), len(self.items) - 1)]

    def sample_many(self, rng: random.Random, count: int) -> List[T]:
        """Draw *count* items with replacement, in bulk.

        Exactly equivalent to *count* :meth:`sample` calls — the RNG is
        consumed identically (one ``rng.random()`` per draw, in draw
        order) and each uniform maps through the same cumulative-sum
        rule — but instead of one O(log n) bisection per draw, the
        draws are argsorted and resolved by a single monotone merge
        over the cumulative array: O(count·log count + n) total, O(1)
        amortized per draw once count approaches the support size.
        The streaming corpus generator leans on this for its per-doc
        term draws.
        """
        if count <= 0:
            return []
        total = self._total
        uniforms = [rng.random() * total for __ in range(count)]
        order = sorted(range(count), key=uniforms.__getitem__)
        cumulative = self._cumulative
        items = self.items
        last = len(items) - 1
        result: List[T] = [items[0]] * count
        j = 0
        for position in order:
            x = uniforms[position]
            # Equivalent to min(bisect_right(cumulative, x), last):
            # uniforms arrive ascending, so j never moves backwards.
            while j < last and cumulative[j] <= x:
                j += 1
            result[position] = items[j]
        return result

    def sample_distinct(self, rng: random.Random, count: int) -> List[T]:
        """Draw up to *count* distinct items (weighted, without
        replacement via rejection; falls back to exhaustive selection
        when the pool is nearly exhausted)."""
        if count >= len(self.items):
            return list(dict.fromkeys(self.items))
        chosen: List[T] = []
        seen = set()
        attempts = 0
        max_attempts = 50 * count
        while len(chosen) < count and attempts < max_attempts:
            item = self.sample(rng)
            attempts += 1
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        if len(chosen) < count:
            for item in self.items:
                if item not in seen:
                    seen.add(item)
                    chosen.append(item)
                    if len(chosen) == count:
                        break
        return chosen


class ZipfSampler(CategoricalSampler):
    """Categorical sampler with Zipf weights over item rank order."""

    def __init__(self, items: Sequence[T], exponent: float) -> None:
        super().__init__(items, zipf_weights(len(items), exponent))
