"""Corpus substrate: documents, collections, judgments, generators."""

from .corpus import Corpus
from .document import Document
from .io import (
    load_collection,
    load_corpus,
    load_query_set,
    save_collection,
    save_corpus,
    save_query_set,
)
from .relevance import Qrels, Query, QuerySet
from .sampling import CategoricalSampler, ZipfSampler, zipf_weights
from .synthetic import (
    SyntheticTrecCorpus,
    TopicModel,
    build_synthetic_collection,
    generate_vocabulary,
)
from .trec import (
    iter_ohsumed_documents,
    iter_trec_documents,
    load_qrels,
    load_trec_collection,
    load_trec_documents,
    load_trec_topics,
)

__all__ = [
    "CategoricalSampler",
    "Corpus",
    "Document",
    "Qrels",
    "Query",
    "QuerySet",
    "SyntheticTrecCorpus",
    "TopicModel",
    "ZipfSampler",
    "build_synthetic_collection",
    "generate_vocabulary",
    "iter_ohsumed_documents",
    "iter_trec_documents",
    "load_collection",
    "load_corpus",
    "load_qrels",
    "load_query_set",
    "save_collection",
    "save_corpus",
    "save_query_set",
    "load_trec_collection",
    "load_trec_documents",
    "load_trec_topics",
    "zipf_weights",
]
