"""Queries and relevance judgments (qrels).

The TREC-9 base data the paper uses is "63 queries and their
corresponding relevant documents (identified by experts)".  We model an
original or generated query as a :class:`Query` (an id plus an analyzed
keyword set) and the expert judgments as :class:`Qrels` (query id →
relevant document-id set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..exceptions import CorpusError, QueryError


@dataclass(frozen=True)
class Query:
    """A keyword query.

    Attributes
    ----------
    query_id:
        Unique identifier (e.g. ``"q007"`` or ``"q007.3"`` for the third
        query generated from original query 7).
    terms:
        The analyzed keyword set, stored as a sorted tuple for hashability
        and determinism.  A query "essentially comprises a set of
        keywords" (paper Section 5.1).
    origin_id:
        For generated queries, the id of the original query they derive
        from; equals ``query_id`` for originals.
    """

    query_id: str
    terms: Tuple[str, ...]
    origin_id: str = ""

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError(f"query {self.query_id!r} has no terms")
        ordered = tuple(sorted(set(self.terms)))
        object.__setattr__(self, "terms", ordered)
        if not self.origin_id:
            object.__setattr__(self, "origin_id", self.query_id)

    @property
    def term_set(self) -> FrozenSet[str]:
        """The terms as a frozen set (for intersection arithmetic)."""
        return frozenset(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def overlap_with(self, other: "Query") -> int:
        """Number of shared terms with another query."""
        return len(self.term_set & other.term_set)


class Qrels:
    """Relevance judgments: query id → set of relevant document ids."""

    def __init__(self, judgments: Dict[str, Set[str]] | None = None) -> None:
        self._judgments: Dict[str, Set[str]] = {
            qid: set(docs) for qid, docs in (judgments or {}).items()
        }

    def add(self, query_id: str, doc_id: str) -> None:
        """Record that *doc_id* is relevant to *query_id*."""
        self._judgments.setdefault(query_id, set()).add(doc_id)

    def set_relevant(self, query_id: str, doc_ids: Iterable[str]) -> None:
        """Replace the relevant set for *query_id*."""
        self._judgments[query_id] = set(doc_ids)

    def relevant(self, query_id: str) -> Set[str]:
        """The relevant document-id set for *query_id* (empty if unjudged)."""
        return set(self._judgments.get(query_id, set()))

    def num_relevant(self, query_id: str) -> int:
        """``R`` in the paper's recall definition."""
        return len(self._judgments.get(query_id, ()))

    def is_relevant(self, query_id: str, doc_id: str) -> bool:
        """Whether *doc_id* was judged relevant to *query_id*."""
        return doc_id in self._judgments.get(query_id, ())

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._judgments

    def __len__(self) -> int:
        return len(self._judgments)

    def __iter__(self) -> Iterator[str]:
        return iter(self._judgments)

    def validate_against(self, doc_ids: Iterable[str]) -> None:
        """Raise :class:`CorpusError` if any judged document is unknown."""
        known = set(doc_ids)
        for qid, docs in self._judgments.items():
            missing = docs - known
            if missing:
                raise CorpusError(
                    f"qrels for {qid!r} reference unknown documents: "
                    f"{sorted(missing)[:5]}..."
                )


@dataclass
class QuerySet:
    """A bundle of queries plus their judgments — one experimental unit."""

    queries: List[Query]
    qrels: Qrels = field(default_factory=Qrels)

    def __post_init__(self) -> None:
        ids = [q.query_id for q in self.queries]
        if len(ids) != len(set(ids)):
            raise QueryError("duplicate query ids in query set")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def by_id(self, query_id: str) -> Query:
        """Look up a query by id."""
        for q in self.queries:
            if q.query_id == query_id:
                return q
        raise QueryError(f"unknown query id: {query_id!r}")

    def split(self, train_ids: Set[str]) -> Tuple["QuerySet", "QuerySet"]:
        """Split into (train, test) sets by query id; qrels are shared."""
        train = [q for q in self.queries if q.query_id in train_ids]
        test = [q for q in self.queries if q.query_id not in train_ids]
        return QuerySet(train, self.qrels), QuerySet(test, self.qrels)
