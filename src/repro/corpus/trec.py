"""Loader for real TREC-format collections.

The paper evaluates on the TREC-9 filtering data (OHSUMED, via Hersh et
al. SIGIR'94): 348,565 documents, 63 topics with expert judgments.  That
corpus cannot be redistributed and this environment has no network
access, so the default experiments run on the synthetic generator in
:mod:`repro.corpus.synthetic` — but this loader lets the identical
harness run on the real data when a user has it locally.

Supported formats:

* **TREC SGML documents** — ``<DOC> <DOCNO>...</DOCNO> <TEXT>...</TEXT>``
* **OHSUMED .88-91 format** — ``.I / .U / .T / .W`` field records
* **TREC topics** — ``<top> <num> <title>`` blocks
* **qrels** — whitespace-separated ``topic 0 docno rel`` lines
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, List

from ..exceptions import CorpusError
from .corpus import Corpus
from .document import Document
from .relevance import Qrels, Query, QuerySet

_DOC_RE = re.compile(r"<DOC>(.*?)</DOC>", re.DOTALL | re.IGNORECASE)
_DOCNO_RE = re.compile(r"<DOCNO>\s*(.*?)\s*</DOCNO>", re.DOTALL | re.IGNORECASE)
_TEXT_RE = re.compile(r"<TEXT>(.*?)</TEXT>", re.DOTALL | re.IGNORECASE)
_TITLE_RE = re.compile(r"<TITLE>(.*?)</TITLE>", re.DOTALL | re.IGNORECASE)
_TOP_RE = re.compile(r"<top>(.*?)</top>", re.DOTALL | re.IGNORECASE)
_NUM_RE = re.compile(r"<num>\s*(?:Number:)?\s*([^<\n]*)", re.IGNORECASE)
_TOPIC_TITLE_RE = re.compile(r"<title>\s*(?:Topic:)?\s*([^<]*)", re.IGNORECASE)


def iter_trec_documents(text: str) -> Iterator[Document]:
    """Yield :class:`Document` objects from TREC SGML text."""
    for match in _DOC_RE.finditer(text):
        body = match.group(1)
        docno = _DOCNO_RE.search(body)
        if not docno:
            raise CorpusError("TREC <DOC> block without <DOCNO>")
        text_parts = [m.group(1) for m in _TEXT_RE.finditer(body)]
        title = _TITLE_RE.search(body)
        yield Document(
            doc_id=docno.group(1).strip(),
            text=" ".join(text_parts).strip(),
            title=title.group(1).strip() if title else "",
        )


def load_trec_documents(paths: List[Path] | List[str]) -> List[Document]:
    """Load TREC SGML documents from a list of files."""
    docs: List[Document] = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
        docs.extend(iter_trec_documents(text))
    if not docs:
        raise CorpusError(f"no TREC documents found in {paths!r}")
    return docs


def iter_ohsumed_documents(text: str) -> Iterator[Document]:
    """Yield documents from an OHSUMED ``.I/.U/.T/.W`` record stream."""
    doc_id = ""
    title = ""
    body = ""
    current = ""

    def flush() -> Iterator[Document]:
        if doc_id:
            yield Document(doc_id=doc_id, text=(title + " " + body).strip(), title=title)

    for line in text.splitlines():
        if line.startswith(".I"):
            yield from flush()
            doc_id = line[2:].strip() or doc_id
            title = ""
            body = ""
            current = ""
        elif line.startswith(".U"):
            current = "u"
        elif line.startswith(".T"):
            current = "t"
        elif line.startswith(".W"):
            current = "w"
        elif line.startswith("."):
            current = ""
        else:
            if current == "u" and line.strip():
                doc_id = line.strip()
                current = ""
            elif current == "t":
                title += line.strip() + " "
            elif current == "w":
                body += line.strip() + " "
    yield from flush()


def load_trec_topics(path: Path | str) -> List[Query]:
    """Parse TREC ``<top>`` topic blocks into title-keyword queries."""
    from ..text.analyzer import DEFAULT_ANALYZER

    text = Path(path).read_text(encoding="utf-8", errors="replace")
    queries: List[Query] = []
    for match in _TOP_RE.finditer(text):
        body = match.group(1)
        num = _NUM_RE.search(body)
        title = _TOPIC_TITLE_RE.search(body)
        if not num or not title:
            continue
        terms = DEFAULT_ANALYZER.analyze_query(title.group(1))
        if terms:
            queries.append(Query(query_id=num.group(1).strip(), terms=tuple(terms)))
    if not queries:
        raise CorpusError(f"no topics found in {path!r}")
    return queries


def load_qrels(path: Path | str) -> Qrels:
    """Parse a TREC qrels file (``topic 0 docno rel`` per line)."""
    qrels = Qrels()
    for raw in Path(path).read_text(encoding="utf-8", errors="replace").splitlines():
        parts = raw.split()
        if len(parts) < 4:
            continue
        topic, __, docno, rel = parts[0], parts[1], parts[2], parts[3]
        try:
            relevant = int(rel) > 0
        except ValueError:
            continue
        if relevant:
            qrels.add(topic, docno)
    if len(qrels) == 0:
        raise CorpusError(f"no judgments found in {path!r}")
    return qrels


def load_trec_collection(
    doc_paths: List[Path] | List[str],
    topics_path: Path | str,
    qrels_path: Path | str,
) -> tuple[Corpus, QuerySet]:
    """One-call loader: documents + topics + qrels → (Corpus, QuerySet)."""
    corpus = Corpus(load_trec_documents(doc_paths))
    queries = load_trec_topics(topics_path)
    qrels = load_qrels(qrels_path)
    qrels.validate_against(corpus.doc_ids)
    return corpus, QuerySet(queries, qrels)
