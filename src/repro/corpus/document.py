"""Document model.

A :class:`Document` carries its raw text plus the analyzed term
statistics every retrieval system needs: term frequencies, document
length (number of analyzed term occurrences), and the top-frequency
ordering used for initial index-term selection (paper Section 5.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..text.analyzer import Analyzer, DEFAULT_ANALYZER


@dataclass
class Document:
    """A single shareable document.

    Attributes
    ----------
    doc_id:
        Corpus-unique identifier (string, e.g. ``"d000417"``).
    text:
        Raw text; analysis is performed lazily once and cached.
    title:
        Optional human-readable title (not analyzed by default —
        the paper indexes document content).
    """

    doc_id: str
    text: str
    title: str = ""
    _term_freqs: Counter = field(default=None, repr=False, compare=False)  # type: ignore[assignment]
    _length: int = field(default=0, repr=False, compare=False)

    def analyze(self, analyzer: Analyzer = DEFAULT_ANALYZER) -> None:
        """Analyze the text (idempotent) and cache term statistics."""
        if self._term_freqs is not None:
            return
        freqs = analyzer.term_frequencies(self.text)
        self._term_freqs = freqs
        self._length = sum(freqs.values())

    @property
    def term_freqs(self) -> Counter:
        """Analyzed term → raw occurrence count.  Analyzes on first use."""
        if self._term_freqs is None:
            self.analyze()
        return self._term_freqs

    @property
    def length(self) -> int:
        """Document length = total analyzed term occurrences."""
        if self._term_freqs is None:
            self.analyze()
        return self._length

    @property
    def unique_terms(self) -> int:
        """Number of distinct analyzed terms."""
        return len(self.term_freqs)

    def normalized_tf(self, term: str) -> float:
        """Term frequency normalized by document length (paper Section 4:
        "t_ik is the frequency of term k in document i normalized by the
        document length")."""
        if self.length == 0:
            return 0.0
        return self.term_freqs.get(term, 0) / self.length

    def contains(self, term: str) -> bool:
        """Whether the analyzed document contains *term*."""
        return term in self.term_freqs

    def top_terms(self, k: int) -> List[str]:
        """The *k* most frequent analyzed terms.

        Ties are broken alphabetically so selection is deterministic —
        important because both SPRITE's initial selection and the whole
        eSearch baseline are defined in terms of "top frequent terms".
        """
        ranked = sorted(self.term_freqs.items(), key=lambda kv: (-kv[1], kv[0]))
        return [t for t, __ in ranked[:k]]

    def term_rank(self) -> Dict[str, int]:
        """Map each term to its frequency rank (0 = most frequent)."""
        ranked = sorted(self.term_freqs.items(), key=lambda kv: (-kv[1], kv[0]))
        return {t: i for i, (t, __) in enumerate(ranked)}

    def as_weight_pairs(self) -> List[Tuple[str, int]]:
        """(term, raw frequency) pairs sorted by descending frequency."""
        return sorted(self.term_freqs.items(), key=lambda kv: (-kv[1], kv[0]))
