"""System facades: the distributed base plus SPRITE itself.

:class:`DistributedSystem` wires the substrates together — a Chord ring,
the indexing protocol, owner peers (one per document-owning node), and
the distributed query processor.  :class:`SpriteSystem` adds the
learning loop.  The eSearch baseline (:mod:`repro.core.esearch`)
inherits the same base so the *only* difference measured by the
experiments is the term-selection policy, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..config import ChordConfig, SpriteConfig
from ..corpus.corpus import Corpus
from ..corpus.relevance import Query
from ..dht.recursive import build_ring
from ..dht.ring import ChordRing
from ..exceptions import LearningError
from ..ir.ranking import RankedList
from ..store import build_store_runtime
from .indexer import IndexingProtocol
from .owner import OwnerPeer, SharedDocument
from .query_processing import QueryExecution, QueryProcessor


class DistributedSystem:
    """Common machinery for DHT-based retrieval systems.

    Parameters
    ----------
    corpus:
        The shared document collection.
    sprite_config:
        System parameters; the base class uses the cache size, assumed
        corpus size, and answer count (term policy is up to subclasses).
    chord_config:
        Overlay parameters; ignored when an existing *ring* is supplied.
    ring:
        Optionally share a pre-built ring (e.g. for churn experiments
        that prepare the overlay separately).
    transport:
        Optional :class:`~repro.net.Transport` for the ring this system
        builds (ignored when an existing *ring* is supplied — the ring
        keeps its own transport).  Defaults to the perfect transport.
    """

    def __init__(
        self,
        corpus: Corpus,
        sprite_config: SpriteConfig | None = None,
        chord_config: ChordConfig | None = None,
        ring: ChordRing | None = None,
        scorer=None,
        transport=None,
    ) -> None:
        from .scoring import combined_score

        self.corpus = corpus
        self.config = sprite_config if sprite_config is not None else SpriteConfig()
        self.scorer = scorer if scorer is not None else combined_score
        # Ring selection (DESIGN.md §16): the config names the routing
        # structure; a pre-built ring always wins, keeping churn
        # experiments that prepare the overlay separately unchanged.
        self.ring = (
            ring
            if ring is not None
            else build_ring(
                getattr(self.config, "ring", "chord"),
                chord_config,
                arity=getattr(self.config, "ring_arity", 2),
                transport=transport,
            )
        )
        # None for the default in-RAM backend; a StoreRuntime when the
        # configuration selects the disk-backed store (DESIGN.md §12).
        self.store_runtime = build_store_runtime(self.config)
        self.protocol = IndexingProtocol(
            self.ring,
            query_cache_size=self.config.query_cache_size,
            columnar_postings=getattr(self.config, "columnar_postings", True),
            result_cache_size=getattr(self.config, "result_cache_size", 0),
            store_runtime=self.store_runtime,
        )
        self.processor = QueryProcessor(
            self.protocol,
            assumed_corpus_size=self.config.assumed_corpus_size,
            early_termination=getattr(self.config, "early_termination", True),
            result_cache=getattr(self.config, "result_cache_size", 0) > 0,
            kernel=getattr(self.config, "scoring_kernel", "python"),
        )
        self.owners: Dict[int, OwnerPeer] = {}
        self._doc_owner: Dict[str, int] = {}
        self._shared = False

    # -- ownership assignment ------------------------------------------------

    def _owner_node_for(self, doc_id: str) -> int:
        """Deterministically assign a document to an owning peer by
        hashing its id onto the ring (documents live where their users
        are; any stable assignment works)."""
        return self.ring.successor_of(self.ring.space.hash_key(f"owner:{doc_id}"))

    def owner_of(self, doc_id: str) -> OwnerPeer:
        """The owner peer responsible for *doc_id*."""
        try:
            node_id = self._doc_owner[doc_id]
        except KeyError:
            raise LearningError(f"document not shared yet: {doc_id!r}") from None
        return self.owners[node_id]

    # -- sharing --------------------------------------------------------------

    def _first_terms(self, doc_id: str) -> Optional[List[str]]:
        """Initial global index terms for a document; ``None`` means
        "use the owner's default" (top-F frequency).  Subclasses override."""
        return None

    def share_document(self, doc, first_terms: Optional[List[str]] = None) -> OwnerPeer:
        """Share one document from its (deterministically assigned)
        owner peer, publishing its initial global index terms into the
        DHT.  Returns the owner peer.  Used by :meth:`share_corpus` and
        by the scenario engine's incremental ``publish`` events."""
        node_id = self._owner_node_for(doc.doc_id)
        owner = self.owners.get(node_id)
        if owner is None:
            owner = OwnerPeer(node_id, self.protocol, self.config, scorer=self.scorer)
            self.owners[node_id] = owner
        if first_terms is None:
            first_terms = self._first_terms(doc.doc_id)
        owner.share(doc, first_terms=first_terms)
        self._doc_owner[doc.doc_id] = node_id
        if len(self._doc_owner) >= len(self.corpus):
            self._shared = True
        return owner

    def share_corpus(self) -> None:
        """Share every corpus document from its owner peer, publishing
        the initial global index terms into the DHT."""
        if self._shared:
            return
        for doc in self.corpus:
            self.share_document(doc)
        self._shared = True

    def bulk_share(self, documents: Optional[List] = None) -> int:
        """Share many documents at once (default: every not-yet-shared
        corpus document), grouping them by their assigned owner peer and
        letting each owner ingest its slice through
        :meth:`~repro.core.owner.OwnerPeer.share_bulk` — on the batched
        write path one destination-grouped publish per owner covers the
        owner's whole slice.  Returns the number of documents shared.
        """
        if documents is None:
            documents = [
                doc for doc in self.corpus if doc.doc_id not in self._doc_owner
            ]
        by_owner: Dict[int, List] = {}
        for doc in documents:
            by_owner.setdefault(self._owner_node_for(doc.doc_id), []).append(doc)
        total = 0
        for node_id, docs in by_owner.items():
            owner = self.owners.get(node_id)
            if owner is None:
                owner = OwnerPeer(
                    node_id, self.protocol, self.config, scorer=self.scorer
                )
                self.owners[node_id] = owner
            firsts = {}
            for doc in docs:
                supplied = self._first_terms(doc.doc_id)
                if supplied is not None:
                    firsts[doc.doc_id] = supplied
            owner.share_bulk(docs, first_terms_of=firsts or None)
            for doc in docs:
                self._doc_owner[doc.doc_id] = node_id
            total += len(docs)
        if len(self._doc_owner) >= len(self.corpus):
            self._shared = True
        return total

    def bulk_unshare(self, doc_ids: Iterable[str]) -> int:
        """Withdraw many documents at once, grouped per owner peer via
        :meth:`~repro.core.owner.OwnerPeer.unshare_bulk`.  Returns the
        number of documents withdrawn."""
        by_owner: Dict[int, List[str]] = {}
        for doc_id in doc_ids:
            try:
                node_id = self._doc_owner[doc_id]
            except KeyError:
                raise LearningError(
                    f"document not shared yet: {doc_id!r}"
                ) from None
            by_owner.setdefault(node_id, []).append(doc_id)
        total = 0
        for node_id, ids in by_owner.items():
            self.owners[node_id].unshare_bulk(ids)
            for doc_id in ids:
                del self._doc_owner[doc_id]
            total += len(ids)
        if total:
            self._shared = len(self._doc_owner) >= len(self.corpus)
        return total

    # -- querying ---------------------------------------------------------------

    def _issuer_for(self, query: Query) -> int:
        """Deterministically pick the querying peer for a query."""
        return self.ring.successor_of(
            self.ring.space.hash_key(f"issuer:{query.query_id}")
        )

    def register_queries(self, queries: Iterable[Query]) -> int:
        """Insert query keywords into the system without retrieval —
        the experiment's training-phase step ("For each query in the
        training set, the keywords are inserted into SPRITE").  Returns
        the number of (query, peer) cache registrations."""
        total = 0
        for query in queries:
            total += self.protocol.register_query(self._issuer_for(query), query.terms)
        return total

    def search(
        self, query: Query, top_k: int | None = None, cache: bool = True
    ) -> RankedList:
        """Execute a query from its (deterministic) querying peer."""
        k = top_k if top_k is not None else self.config.top_k_answers
        return self.processor.search(self._issuer_for(query), query, top_k=k, cache=cache)

    def execute(
        self, query: Query, top_k: int | None = None, cache: bool = True
    ) -> Tuple[RankedList, QueryExecution]:
        """Like :meth:`search` but also returns execution diagnostics."""
        k = top_k if top_k is not None else self.config.top_k_answers
        return self.processor.execute(self._issuer_for(query), query, top_k=k, cache=cache)

    def execute_captured(
        self, query: Query, top_k: int | None = None, cache: bool = True
    ):
        """Like :meth:`execute`, additionally capturing the operation's
        message timeline for replay through the event-driven runtime
        (DESIGN.md §15).  Returns ``(ranked, execution, captured_op)``;
        the query's semantics are fully decided here — replaying the
        returned :class:`~repro.core.inflight.CapturedOp` only models
        when it would complete under concurrent load."""
        from .inflight import capture_query

        op = capture_query(self, query, top_k=top_k, cache=cache)
        ranked, execution = op.result
        return ranked, execution, op

    # -- inspection ----------------------------------------------------------------

    def index_terms(self, doc_id: str) -> List[str]:
        """Current global index terms of a document."""
        return self.owner_of(doc_id).index_terms(doc_id)

    def shared_state(self, doc_id: str) -> SharedDocument:
        """Owner-side state of a shared document (tests/benches)."""
        return self.owner_of(doc_id)._state(doc_id)

    def total_published_terms(self) -> int:
        """Total (document, term) pairs currently in the distributed
        index — the index-size metric of the cost benches."""
        return sum(
            len(owner._state(doc_id).index_terms)
            for owner in self.owners.values()
            for doc_id in owner.shared
        )


class SpriteSystem(DistributedSystem):
    """SPRITE: selective progressive index tuning by examples.

    Usage mirrors the paper's experimental flow::

        system = SpriteSystem(corpus)
        system.share_corpus()                    # 5 initial terms/doc
        system.register_queries(training_set)    # cache training queries
        system.run_learning(iterations=3)        # grow to 20 terms/doc
        ranked = system.search(test_query)
    """

    def run_learning_iteration(self, target_size: int | None = None) -> None:
        """One learning pass over every shared document (Section 5.3)."""
        if not self._shared:
            raise LearningError("share_corpus() must run before learning")
        for owner in self.owners.values():
            if not self.ring.is_live(owner.node_id):
                continue  # a crashed/departed peer cannot run its timer loop
            owner.learn_all(target_size)

    def run_learning(self, iterations: int | None = None) -> None:
        """Run the configured number of learning iterations."""
        count = iterations if iterations is not None else self.config.learning_iterations
        for __ in range(count):
            self.run_learning_iteration()

    def learning_summary(self) -> Dict[str, int]:
        """Distribution of index-set sizes across shared documents."""
        sizes: Dict[str, int] = {}
        for owner in self.owners.values():
            for doc_id in owner.shared:
                sizes[doc_id] = len(owner.index_terms(doc_id))
        return sizes
