"""Owner-side index maintenance: liveness probing and republication.

The paper's introduction counts this among the costs of a distributed
inverted index: "it is equally costly for the owner peer to periodically
probe the indexing peers to ensure that they are still 'alive'" — and
notes SPRITE makes it affordable by keeping the number of indexed terms
small.  This module implements the probe loop:

* each maintenance round, every owner sends a heartbeat to the indexing
  peer of each of its published terms;
* if the peer is unreachable (crashed before repair) the owner waits —
  the §7 degraded window;
* if routing has been repaired and the term now resolves to a *new*
  responsible peer that lacks the posting (the data died with the old
  peer and no replica was promoted), the owner **republishes** it — the
  self-healing path that complements successor replication.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dht.messages import Message, MessageKind, QUERY_HEADER_BYTES
from ..exceptions import NodeFailedError
from .metadata import TermSlot
from .system import DistributedSystem


@dataclass
class MaintenanceReport:
    """Outcome of one maintenance round."""

    probes_sent: int = 0
    peers_unreachable: int = 0
    postings_intact: int = 0
    postings_republished: int = 0

    @property
    def postings_checked(self) -> int:
        return self.postings_intact + self.postings_republished


class MaintenanceDaemon:
    """Periodic owner-driven probing over a distributed system.

    One daemon serves all owner peers of a system (the simulation
    equivalent of every owner running its own timer loop).
    """

    def __init__(self, system: DistributedSystem) -> None:
        self.system = system

    def run_round(self) -> MaintenanceReport:
        """Probe every published (document, term) posting once."""
        report = MaintenanceReport()
        protocol = self.system.protocol
        ring = self.system.ring

        for owner in self.system.owners.values():
            if not ring.is_live(owner.node_id):
                continue  # a crashed owner probes nothing
            for doc_id, state in owner.shared.items():
                for term in list(state.index_terms):
                    key = protocol.term_hash(term)
                    try:
                        result = ring.lookup(owner.node_id, key)
                    except NodeFailedError:
                        # Pre-repair window: the responsible peer is down
                        # and routing still points at it.  Nothing to do
                        # until stabilization (paper §7, option 1).
                        report.peers_unreachable += 1
                        continue
                    report.probes_sent += 1
                    ring.send(
                        Message(
                            kind=MessageKind.HEARTBEAT,
                            src=owner.node_id,
                            dst=result.node_id,
                            size_bytes=QUERY_HEADER_BYTES,
                            hops=result.hops + 1,
                        )
                    )
                    node = ring.node(result.node_id)
                    slot = node.get_or_replica(key)
                    if (
                        isinstance(slot, TermSlot)
                        and doc_id in slot.inverted
                    ):
                        report.postings_intact += 1
                        continue
                    # The responsible peer has no posting for us: the
                    # slot died with a failed peer (or a fresh joiner
                    # took over an empty range).  Republish.
                    owner._publish_terms_force(state, term)
                    report.postings_republished += 1
        return report

    def heal_until_stable(self, max_rounds: int = 5) -> int:
        """Run rounds until a round republishes nothing (or the budget
        runs out); returns the total number of republications."""
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        total = 0
        for __ in range(max_rounds):
            report = self.run_round()
            total += report.postings_republished
            if report.postings_republished == 0 and report.peers_unreachable == 0:
                break
        return total
