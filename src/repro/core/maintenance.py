"""Owner-side index maintenance: liveness probing, republication, and
posting reconciliation.

The paper's introduction counts this among the costs of a distributed
inverted index: "it is equally costly for the owner peer to periodically
probe the indexing peers to ensure that they are still 'alive'" — and
notes SPRITE makes it affordable by keeping the number of indexed terms
small.  This module implements the probe loop:

* each maintenance round, every owner sends a heartbeat to the indexing
  peer of each of its published terms;
* if the peer is unreachable (crashed before repair) the owner waits —
  the §7 degraded window;
* if routing has been repaired and the term now resolves to a *new*
  responsible peer that lacks the posting (the data died with the old
  peer and no replica was promoted), the owner **republishes** it — the
  self-healing path that complements successor replication.

A second, indexing-peer-driven pass — **reconciliation** — audits the
reverse direction: every indexing peer validates each posting it holds
against the owner's current index-term set and drops postings the owner
no longer claims.  Without it, two failure interleavings the simulation
harness (:mod:`repro.sim`) surfaced leave permanent orphans:

* an unpublish that raced a crash (the owner dropped the term locally
  but the deletion never reached a peer that was down at the time);
* a stale replica promoted after a failure, resurrecting postings that
  were unpublished after the replica was shipped.

Orphaned postings inflate the indexed document frequency n'_k — the
paper's ranking surrogate — so reconciliation is a correctness matter,
not mere tidiness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dht.messages import Message, MessageKind, QUERY_HEADER_BYTES, TERM_BYTES
from ..exceptions import NodeFailedError
from .metadata import TermSlot
from .system import DistributedSystem


@dataclass
class MaintenanceReport:
    """Outcome of one maintenance round."""

    probes_sent: int = 0
    peers_unreachable: int = 0
    postings_intact: int = 0
    postings_republished: int = 0
    #: Orphaned postings dropped by the reconciliation pass (postings
    #: whose live owner no longer indexes the term for that document).
    postings_retired: int = 0
    reconcile_messages: int = 0

    @property
    def postings_checked(self) -> int:
        return self.postings_intact + self.postings_republished

    @property
    def clean(self) -> bool:
        """Whether the round found the index fully healed: every probe
        reached a live peer holding the posting and no orphans had to
        be retired."""
        return (
            self.peers_unreachable == 0
            and self.postings_republished == 0
            and self.postings_retired == 0
        )


class MaintenanceDaemon:
    """Periodic owner-driven probing over a distributed system.

    One daemon serves all owner peers of a system (the simulation
    equivalent of every owner running its own timer loop).
    """

    def __init__(self, system: DistributedSystem, reconcile: bool = True) -> None:
        self.system = system
        self.reconcile = reconcile

    def run_round(self) -> MaintenanceReport:
        """Probe every published (document, term) posting once, then
        reconcile indexing-peer state against owner state."""
        report = MaintenanceReport()
        protocol = self.system.protocol
        ring = self.system.ring

        for owner in self.system.owners.values():
            if not ring.is_live(owner.node_id):
                continue  # a crashed owner probes nothing
            for doc_id, state in owner.shared.items():
                for term in list(state.index_terms):
                    key = protocol.term_hash(term)
                    try:
                        result = ring.lookup(owner.node_id, key)
                    except NodeFailedError:
                        # Pre-repair window: the responsible peer is down
                        # and routing still points at it.  Nothing to do
                        # until stabilization (paper §7, option 1).
                        report.peers_unreachable += 1
                        continue
                    report.probes_sent += 1
                    try:
                        ring.send(
                            Message(
                                kind=MessageKind.HEARTBEAT,
                                src=owner.node_id,
                                dst=result.node_id,
                                size_bytes=QUERY_HEADER_BYTES,
                                hops=result.hops + 1,
                            )
                        )
                    except NodeFailedError:
                        report.peers_unreachable += 1
                        continue
                    node = ring.node(result.node_id)
                    slot = node.adopt(key)
                    if (
                        isinstance(slot, TermSlot)
                        and slot.has_posting(doc_id)
                    ):
                        report.postings_intact += 1
                        continue
                    # The responsible peer has no posting for us: the
                    # slot died with a failed peer (or a fresh joiner
                    # took over an empty range).  Republish.
                    owner._publish_terms_force(state, term)
                    report.postings_republished += 1
        if self.reconcile:
            self._reconcile_round(report)
        return report

    def _reconcile_round(self, report: MaintenanceReport) -> None:
        """Indexing-peer-driven audit: drop postings whose live owner no
        longer claims the (document, term) pair.

        Each indexing peer batches one RECONCILE message per distinct
        owner peer it holds postings for; the owner's reply carries the
        verdicts (modelled as a single round trip).  Postings owned by
        peers that are currently dead or unknown are left untouched —
        they may still be healed or reclaimed, and deleting data on
        behalf of an unreachable owner is exactly the kind of guess a
        correct protocol never makes.
        """
        ring = self.system.ring
        owners = self.system.owners
        for node_id in ring.live_ids:
            node = ring.node(node_id)
            audited_owners = set()
            for key, slot in list(node.store.items()):
                if not isinstance(slot, TermSlot):
                    continue
                for posting in list(slot.entries()):
                    doc_id = posting.doc_id
                    owner = owners.get(posting.owner_peer)
                    if owner is None or not ring.is_live(posting.owner_peer):
                        continue
                    state = owner.shared.get(doc_id)
                    if state is not None and slot.term in state.index_terms:
                        continue
                    if posting.owner_peer not in audited_owners:
                        try:
                            ring.send(
                                Message(
                                    kind=MessageKind.RECONCILE,
                                    src=node_id,
                                    dst=posting.owner_peer,
                                    size_bytes=QUERY_HEADER_BYTES + TERM_BYTES,
                                )
                            )
                        except NodeFailedError:
                            continue
                        audited_owners.add(posting.owner_peer)
                        report.reconcile_messages += 1
                    slot.remove_posting(doc_id)
                    report.postings_retired += 1

    def heal_until_stable(self, max_rounds: int = 5) -> int:
        """Run rounds until a round republishes nothing (or the budget
        runs out); returns the total number of republications."""
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        total = 0
        for __ in range(max_rounds):
            report = self.run_round()
            total += report.postings_republished
            if report.clean:
                break
        return total
