"""Index tuning: Algorithm 1 and the naive reference learner.

The owner peer of each shared document runs a learning iteration
periodically: it polls the indexing peers of its current global index
terms for the queries cached since the last poll (the incremental set
Q'), folds the evidence into per-term statistics, re-ranks the
document's terms, and re-publishes the index.

Two learners are implemented:

* :class:`IncrementalLearner` — the paper's Algorithm 1.  Only the
  per-term running statistics (max qScore, cumulative QF) are stored;
  each iteration touches only Q'.
* :func:`naive_rank_terms` — the "naive scheme" that reprocesses the
  *entire* historical query set each iteration.  The paper argues the
  two are equivalent (max is associative, QF is cumulative); our
  property tests verify that claim, and the learning bench measures the
  speedup.

Selection policy (Sections 5.3 and 6.2/6.3): the index starts as the
top-F most frequent terms; each iteration the target size grows by
``terms_per_iteration`` up to ``max_index_terms``; once the cap is
reached only *replacement* happens.  Within the target budget, terms
with learned evidence rank by ``Score`` (descending); currently indexed
terms without positive evidence are retained after them, ordered by
document frequency rank — so unqueried initial terms are displaced
exactly when better, query-supported terms exist (the Figure 2(b)
example: t3 at 0.524 evicts t5 at 0.501 under a 3-term cap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set, Tuple

from ..corpus.document import Document
from .metadata import TermStats
from .scoring import combined_score, q_score

#: Signature of a term scorer: (max qScore, cumulative QF) → score.
TermScorer = Callable[[float, int], float]


@dataclass(frozen=True)
class RankedTerm:
    """One entry of the learner's rank list RL."""

    term: str
    score: float


class IncrementalLearner:
    """Algorithm 1: per-document incremental term scoring.

    One instance per shared document, owned by its owner peer.  Stores
    only ``{term: TermStats}`` — never the historical queries.
    """

    def __init__(self, document: Document, scorer: TermScorer = combined_score) -> None:
        """*scorer* defaults to the paper's ``qScore·log10 QF``; the
        ablation benches inject qScore-only and QF-only variants."""
        self.document = document
        self._doc_terms: Set[str] = set(document.term_freqs)
        self.stats: Dict[str, TermStats] = {}
        self.scorer = scorer

    @property
    def doc_terms(self) -> Set[str]:
        """The document's full analyzed term set (owner-local)."""
        return self._doc_terms

    def observe(self, new_queries: Sequence[Tuple[str, ...]]) -> None:
        """Fold the incremental query set Q' into the running statistics.

        For each document term t occurring in Q': the largest qScore of
        any query containing t is max-merged, and QF(t, Q') is added to
        the cumulative query frequency (lines 4-11 of Algorithm 1).
        """
        if not new_queries:
            return
        best_qscore: Dict[str, float] = {}
        qf_delta: Dict[str, int] = {}
        for query in new_queries:
            terms = set(query)
            matching = terms & self._doc_terms
            if not matching:
                continue
            qs = q_score(terms, self._doc_terms)
            for term in matching:
                qf_delta[term] = qf_delta.get(term, 0) + 1
                if qs > best_qscore.get(term, -1.0):
                    best_qscore[term] = qs
        for term, delta in qf_delta.items():
            stats = self.stats.setdefault(term, TermStats())
            stats.absorb(best_qscore[term], delta)

    def rank_list(self) -> List[RankedTerm]:
        """The current rank list RL: every evidenced term scored by
        ``Score = max qScore · log10 QF``, best first (deterministic
        alphabetical tie-break)."""
        ranked = [
            RankedTerm(term, self.scorer(s.max_qscore, s.query_frequency))
            for term, s in self.stats.items()
        ]
        ranked.sort(key=lambda rt: (-rt.score, rt.term))
        return ranked

    def score_of(self, term: str) -> float:
        """Current combined score of one term (0 if unevidenced)."""
        stats = self.stats.get(term)
        if stats is None:
            return 0.0
        return self.scorer(stats.max_qscore, stats.query_frequency)


def naive_rank_terms(
    document: Document, all_queries: Sequence[Tuple[str, ...]]
) -> List[RankedTerm]:
    """The naive learner: recompute Score for every document term from
    the complete historical query set.

    Used only as the reference implementation for equivalence tests and
    the speedup bench — real owners run :class:`IncrementalLearner`.
    """
    doc_terms = set(document.term_freqs)
    max_qscore: Dict[str, float] = {}
    qf: Dict[str, int] = {}
    for query in all_queries:
        terms = set(query)
        matching = terms & doc_terms
        if not matching:
            continue
        qs = q_score(terms, doc_terms)
        for term in matching:
            qf[term] = qf.get(term, 0) + 1
            if qs > max_qscore.get(term, -1.0):
                max_qscore[term] = qs
    ranked = [
        RankedTerm(term, combined_score(max_qscore[term], qf[term]))
        for term in qf
    ]
    ranked.sort(key=lambda rt: (-rt.score, rt.term))
    return ranked


def select_index_terms(
    document: Document,
    current_terms: Sequence[str],
    rank_list: Sequence[RankedTerm],
    target_size: int,
) -> List[str]:
    """Choose the next index-term set for a document.

    Candidates are (a) every term in the learner's rank list with a
    positive score and (b) every currently indexed term.  Positive-score
    candidates are taken best-first; remaining budget is filled with
    current terms (by document term-frequency rank) so the index never
    shrinks below its earned size merely because evidence is sparse.
    """
    if target_size < 1:
        raise ValueError("target_size must be >= 1")
    tf_rank = document.term_rank()
    chosen: List[str] = []
    chosen_set: Set[str] = set()

    for ranked in rank_list:
        if len(chosen) >= target_size:
            break
        if ranked.score <= 0.0:
            break
        if ranked.term in chosen_set:
            continue
        chosen.append(ranked.term)
        chosen_set.add(ranked.term)

    if len(chosen) < target_size:
        retained = sorted(
            (t for t in current_terms if t not in chosen_set),
            key=lambda t: (tf_rank.get(t, len(tf_rank)), t),
        )
        for term in retained:
            if len(chosen) >= target_size:
                break
            chosen.append(term)
            chosen_set.add(term)

    if len(chosen) < target_size:
        # Still under budget (very sparse evidence): pad with the
        # document's next most frequent unchosen terms, the same signal
        # used for initial selection.
        for term in document.top_terms(len(tf_rank)):
            if len(chosen) >= target_size:
                break
            if term not in chosen_set:
                chosen.append(term)
                chosen_set.add(term)
    return chosen


def initial_terms(document: Document, count: int) -> List[str]:
    """Initial selection (Section 5.2): the top-F most frequent analyzed
    terms — "only local information is available"."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return document.top_terms(count)
