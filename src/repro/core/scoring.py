"""Term-selection scoring (paper Section 5.3).

Three functions define SPRITE's learning signal:

* ``qScore(Q, D) = |Q ∩ D| / |Q|`` — how similar a historical query is
  to a document.  Deliberately *not* TF·IDF: when choosing descriptive
  queries for a document, a term occurring in many queries is *more*
  informative, not less (the paper's inversion argument).
* ``QF(t, ϑ)`` — how many queries of a query set contain term *t*.
* ``Score(t, D) = qScore_max · log10 QF`` — the combined ranking signal.
  The worked example in Figure 2(b) (0.75·log 20 = 0.975) pins the
  logarithm to base 10; the log damps QF so high-quality (high-qScore)
  queries dominate noisy popular ones.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, Iterable, Sequence, Tuple


def q_score(query_terms: AbstractSet[str] | Sequence[str], doc_terms: AbstractSet[str]) -> float:
    """``qScore(Q, D) = |Q ∩ D| / |Q|``.

    *doc_terms* is the full analyzed term set of the document — the
    owner peer has the document locally, so this needs no network.

    >>> q_score({"a", "b"}, {"a", "b", "c"})
    1.0
    >>> q_score({"a", "x", "y", "z"}, {"a", "b", "c"})
    0.25
    """
    terms = set(query_terms)
    if not terms:
        return 0.0
    return len(terms & doc_terms) / len(terms)


def query_frequency(term: str, queries: Iterable[Sequence[str]]) -> int:
    """``QF(t, ϑ)`` — the number of queries in *queries* containing *term*."""
    return sum(1 for q in queries if term in q)


def query_frequencies(
    queries: Iterable[Tuple[str, ...]], doc_terms: AbstractSet[str]
) -> Dict[str, int]:
    """QF for every document term that occurs in the query set.

    Only terms present in the document are candidates ("for each t in
    the document D_k", Algorithm 1), so the counting is restricted to
    the intersection for efficiency.
    """
    counts: Dict[str, int] = {}
    for query in queries:
        for term in set(query):
            if term in doc_terms:
                counts[term] = counts.get(term, 0) + 1
    return counts


def combined_score(max_qscore: float, qf: int) -> float:
    """``Score = qScore · log10(QF)``.

    QF ≤ 1 scores zero: a term seen in a single query has no popularity
    evidence yet, and log10(1) = 0 — matching the paper's formula
    directly (the Figure 2(b) arithmetic is base-10).
    """
    if qf <= 1 or max_qscore <= 0.0:
        return 0.0
    return max_qscore * math.log10(qf)
