"""SPRITE core: the paper's primary contribution."""

from .bloom_search import BloomExecution, BloomQueryProcessor
from .esearch import ESearchSystem
from .indexer import IndexingProtocol
from .inflight import (
    CapturedOp,
    InFlightQuery,
    capture_operation,
    capture_query,
    dispatch,
    dispatch_query,
)
from .maintenance import MaintenanceDaemon, MaintenanceReport
from .learning import (
    IncrementalLearner,
    RankedTerm,
    initial_terms,
    naive_rank_terms,
    select_index_terms,
)
from .metadata import (
    CachedQuery,
    PostingEntry,
    QueryCache,
    TermSlot,
    TermStats,
)
from .owner import OwnerPeer, SharedDocument
from .query_processing import QueryExecution, QueryProcessor
from .scoring import combined_score, q_score, query_frequencies, query_frequency
from .system import DistributedSystem, SpriteSystem

__all__ = [
    "BloomExecution",
    "BloomQueryProcessor",
    "CachedQuery",
    "CapturedOp",
    "DistributedSystem",
    "ESearchSystem",
    "MaintenanceDaemon",
    "MaintenanceReport",
    "IncrementalLearner",
    "IndexingProtocol",
    "InFlightQuery",
    "OwnerPeer",
    "PostingEntry",
    "QueryCache",
    "QueryExecution",
    "QueryProcessor",
    "RankedTerm",
    "SharedDocument",
    "SpriteSystem",
    "TermSlot",
    "TermStats",
    "capture_operation",
    "capture_query",
    "combined_score",
    "dispatch",
    "dispatch_query",
    "initial_terms",
    "naive_rank_terms",
    "q_score",
    "query_frequencies",
    "query_frequency",
    "select_index_terms",
]
