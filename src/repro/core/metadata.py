"""Metadata structures of SPRITE (paper Section 5.1).

Indexing-peer state, per term (stored as an opaque slot in the DHT):

* the inverted list — for each document containing the term as a
  *global index term*: owner address, document id, term frequency, and
  document length;
* a bounded cache of the most recently issued queries mentioning the
  term (the learning fuel), each pre-hashed for the closest-hash
  deduplication rule of Section 3.

Owner-peer state, per term of a shared document:

* ``qScore`` — the similarity between the document and the most similar
  historical query containing the term;
* ``QF`` — the number of historical queries containing the term.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class PostingEntry:
    """One inverted-list entry at an indexing peer.

    Exactly the fields Section 5.1 lists: "the owner peer's IP address,
    the owner document ID, the term frequency in the document and the
    document length".  ``owner_peer`` is the owner's node id (our
    simulation's stand-in for an IP address).
    """

    doc_id: str
    owner_peer: int
    raw_tf: int
    doc_length: int

    @property
    def normalized_tf(self) -> float:
        """t_ik — term frequency normalized by document length."""
        if self.doc_length <= 0:
            return 0.0
        return self.raw_tf / self.doc_length


@dataclass(frozen=True)
class CachedQuery:
    """A query as cached at an indexing peer.

    ``query_hash`` is precomputed ("every cached query is hashed also,
    which can be precomputed offline"), and ``sequence`` is the slot's
    monotone arrival counter that lets owners poll incrementally.
    """

    terms: Tuple[str, ...]
    query_hash: int
    sequence: int


class QueryCache:
    """Bounded most-recent-queries cache (Section 3: "to reduce the
    storage, each indexing peer maintains only the most recently issued
    queries").

    The cache is a FIFO of query *arrivals*: re-issuing an identical
    keyword set appends a fresh entry with a new sequence number, so QF
    — defined over historical queries, repeats included — reflects query
    popularity under skewed streams ("w-zipf").  Capacity bounds the
    number of stored arrivals; the oldest are discarded first.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque = deque()
        self._next_sequence = 0

    def add(self, terms: Tuple[str, ...], query_hash: int) -> CachedQuery:
        """Record one issued query; evicts the oldest beyond capacity."""
        entry = CachedQuery(
            terms=terms, query_hash=query_hash, sequence=self._next_sequence
        )
        self._next_sequence += 1
        self._entries.append(entry)
        while len(self._entries) > self.capacity:
            self._entries.popleft()
        return entry

    def since(self, sequence: int) -> List[CachedQuery]:
        """All cached arrivals with sequence strictly greater than
        *sequence*, oldest first — the incremental set Q' a poll fetches."""
        return [e for e in self._entries if e.sequence > sequence]

    @property
    def latest_sequence(self) -> int:
        """The highest sequence number handed out so far (-1 if none)."""
        return self._next_sequence - 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CachedQuery]:
        return iter(self._entries)


@dataclass
class TermSlot:
    """Everything an indexing peer holds for one term: the inverted list
    plus the query cache.  Stored under the term's ring hash in the DHT,
    so replication and key migration move it as a unit."""

    term: str
    inverted: Dict[str, PostingEntry] = field(default_factory=dict)
    cache: QueryCache = field(default_factory=lambda: QueryCache(capacity=2000))

    @property
    def indexed_document_frequency(self) -> int:
        """n'_k — the paper's surrogate for document frequency: the
        number of documents that chose this term as a global index term."""
        return len(self.inverted)

    def add_posting(self, entry: PostingEntry) -> None:
        self.inverted[entry.doc_id] = entry

    def remove_posting(self, doc_id: str) -> Optional[PostingEntry]:
        return self.inverted.pop(doc_id, None)


@dataclass
class TermStats:
    """Owner-side per-term learning statistics (Section 5.1(b)):
    the largest historical qScore and the cumulative query frequency."""

    max_qscore: float = 0.0
    query_frequency: int = 0

    def absorb(self, qscore: float, additional_qf: int) -> None:
        """Fold in one poll's worth of evidence: max for qScore
        (max(S1∪S2) = max(max S1, max S2)), sum for QF (cumulative)."""
        if qscore > self.max_qscore:
            self.max_qscore = qscore
        self.query_frequency += additional_qf
