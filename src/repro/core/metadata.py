"""Metadata structures of SPRITE (paper Section 5.1).

Indexing-peer state, per term (stored as an opaque slot in the DHT):

* the inverted list — for each document containing the term as a
  *global index term*: owner address, document id, term frequency, and
  document length;
* a bounded cache of the most recently issued queries mentioning the
  term (the learning fuel), each pre-hashed for the closest-hash
  deduplication rule of Section 3.

Owner-peer state, per term of a shared document:

* ``qScore`` — the similarity between the document and the most similar
  historical query containing the term;
* ``QF`` — the number of historical queries containing the term.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..ir.postings import ColumnarPostings, ImpactRow, LegacyPostings
from ..ir.ranking import RankedList


@dataclass(frozen=True)
class PostingEntry:
    """One inverted-list entry at an indexing peer.

    Exactly the fields Section 5.1 lists: "the owner peer's IP address,
    the owner document ID, the term frequency in the document and the
    document length".  ``owner_peer`` is the owner's node id (our
    simulation's stand-in for an IP address).
    """

    doc_id: str
    owner_peer: int
    raw_tf: int
    doc_length: int

    @property
    def normalized_tf(self) -> float:
        """t_ik — term frequency normalized by document length."""
        if self.doc_length <= 0:
            return 0.0
        return self.raw_tf / self.doc_length


@dataclass(frozen=True)
class CachedQuery:
    """A query as cached at an indexing peer.

    ``query_hash`` is precomputed ("every cached query is hashed also,
    which can be precomputed offline"), and ``sequence`` is the slot's
    monotone arrival counter that lets owners poll incrementally.
    """

    terms: Tuple[str, ...]
    query_hash: int
    sequence: int


class QueryCache:
    """Bounded most-recent-queries cache (Section 3: "to reduce the
    storage, each indexing peer maintains only the most recently issued
    queries").

    The cache is a FIFO of query *arrivals*: re-issuing an identical
    keyword set appends a fresh entry with a new sequence number, so QF
    — defined over historical queries, repeats included — reflects query
    popularity under skewed streams ("w-zipf").  Capacity bounds the
    number of stored arrivals; the oldest are discarded first.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque = deque()
        self._next_sequence = 0

    @classmethod
    def from_state(
        cls,
        capacity: int,
        entries: Iterable[Tuple[Tuple[str, ...], int, int]],
        next_sequence: int,
    ) -> "QueryCache":
        """Rebuild a cache from checkpointed state (``repro.store``
        snapshots): the exact entries *and* the next sequence number, so
        ``latest_sequence`` — which owner poll cursors and the write-state
        fingerprint both observe — survives a save/load round trip."""
        cache = cls(capacity)
        for terms, query_hash, sequence in entries:
            cache._entries.append(
                CachedQuery(
                    terms=tuple(terms),
                    query_hash=int(query_hash),
                    sequence=int(sequence),
                )
            )
        cache._next_sequence = int(next_sequence)
        return cache

    def add(self, terms: Tuple[str, ...], query_hash: int) -> CachedQuery:
        """Record one issued query; evicts the oldest beyond capacity."""
        entry = CachedQuery(
            terms=terms, query_hash=query_hash, sequence=self._next_sequence
        )
        self._next_sequence += 1
        self._entries.append(entry)
        while len(self._entries) > self.capacity:
            self._entries.popleft()
        return entry

    def since(self, sequence: int) -> List[CachedQuery]:
        """All cached arrivals with sequence strictly greater than
        *sequence*, oldest first — the incremental set Q' a poll fetches."""
        return [e for e in self._entries if e.sequence > sequence]

    @property
    def latest_sequence(self) -> int:
        """The highest sequence number handed out so far (-1 if none)."""
        return self._next_sequence - 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CachedQuery]:
        return iter(self._entries)


class TermSlot:
    """Everything an indexing peer holds for one term: the inverted list
    plus the query cache.  Stored under the term's ring hash in the DHT,
    so replication and key migration move it as a unit.

    Postings live in a pluggable column store (:mod:`repro.ir.postings`):
    the columnar backend by default, the retained dict-backed legacy
    backend when ``columnar=False``.  Both enumerate postings in
    identical (insertion) order and maintain the slot aggregates the
    optimized query path consumes — indexed document frequency, the
    max-impact upper bound, and a globally-unique content *version*
    bumped on every publish/unpublish (the query-result cache's
    invalidation signal).

    Mutation must go through :meth:`add_posting`/:meth:`remove_posting`;
    :attr:`inverted` is a read-only materialized view kept for
    compatibility with the seed's dict-of-entries layout.
    """

    def __init__(
        self,
        term: str,
        cache: Optional[QueryCache] = None,
        columnar: bool = True,
        doc_table=None,
        store=None,
    ) -> None:
        self.term = term
        self.cache = cache if cache is not None else QueryCache(capacity=2000)
        # An explicit store (e.g. repro.store's SQLite backend) overrides
        # the columnar/legacy switch; any object honouring the posting
        # -store contract of repro.ir.postings works.
        if store is not None:
            self._store = store
        else:
            self._store = ColumnarPostings(doc_table) if columnar else LegacyPostings()
        self._view_version = -1
        self._entries_view: List[PostingEntry] = []
        self._inverted_view: Dict[str, PostingEntry] = {}
        self._impact_version = -1
        self._impact_view: List[ImpactRow] = []

    # -- aggregates ---------------------------------------------------------

    @property
    def indexed_document_frequency(self) -> int:
        """n'_k — the paper's surrogate for document frequency: the
        number of documents that chose this term as a global index term."""
        return len(self._store)

    @property
    def version(self) -> int:
        """Globally-unique version of the inverted list's content."""
        return self._store.version

    @property
    def max_impact(self) -> float:
        """Upper bound on any posting's ``ntf / sqrt(len)`` impact."""
        return self._store.max_impact

    @property
    def columnar(self) -> bool:
        """Whether the columnar backend is in use."""
        return isinstance(self._store, ColumnarPostings)

    def columnar_store(self) -> Optional[ColumnarPostings]:
        """The backing columnar store, or ``None`` for other backends —
        the hook the vectorized kernels (:mod:`repro.ir.kernels`) use to
        reach the raw columns; non-columnar slots make the whole query
        fall back to the scalar path."""
        store = self._store
        return store if isinstance(store, ColumnarPostings) else None

    # -- mutation -----------------------------------------------------------

    def add_posting(self, entry: PostingEntry) -> None:
        self._store.add(
            entry.doc_id, entry.owner_peer, entry.raw_tf, entry.doc_length
        )

    def add_postings(self, entries: Iterable[PostingEntry]) -> None:
        """Apply one PUBLISH_BATCH run for this slot.  Each entry still
        draws its own global version tick (versions are the result
        cache's invalidation signal and must stay per-mutation), but the
        derived views are rebuilt lazily at most once afterwards.  A
        store with an ``add_many`` (the SQLite backend) gets the whole
        run at once so it can wrap it in a single transaction."""
        add_many = getattr(self._store, "add_many", None)
        if add_many is not None:
            add_many(
                (e.doc_id, e.owner_peer, e.raw_tf, e.doc_length) for e in entries
            )
            return
        for entry in entries:
            self.add_posting(entry)

    def remove_posting(self, doc_id: str) -> Optional[PostingEntry]:
        row = self._store.remove(doc_id)
        if row is None:
            return None
        return PostingEntry(
            doc_id=row[0], owner_peer=row[1], raw_tf=row[2], doc_length=row[3]
        )

    # -- reads --------------------------------------------------------------

    def has_posting(self, doc_id: str) -> bool:
        """Membership test without materializing the entry view."""
        return doc_id in self._store

    def get_posting(self, doc_id: str) -> Optional[PostingEntry]:
        """One posting without materializing the entry view."""
        row = self._store.lookup(doc_id)
        if row is None:
            return None
        return PostingEntry(
            doc_id=row[0], owner_peer=row[1], raw_tf=row[2], doc_length=row[3]
        )

    def scoring_lookup(self, doc_id: str) -> Optional[Tuple[float, int]]:
        """``(normalized_tf, doc_length)`` for one document, or ``None``
        — exactly the values its :class:`PostingEntry` would report."""
        return self._store.scoring_lookup(doc_id)

    def entries(self) -> List[PostingEntry]:
        """All postings in publish order, as a cached materialized list
        (rebuilt only when the slot's version has moved).  Callers must
        not mutate the returned list."""
        self._refresh_views()
        return self._entries_view

    def impact_rows(self) -> List[ImpactRow]:
        """Scoring rows ``(doc_id, ntf, length, impact)`` sorted by
        descending impact with doc-id tie-break; cached per version."""
        version = self._store.version
        if version != self._impact_version:
            self._impact_view = self._store.impact_rows()
            self._impact_version = version
        return self._impact_view

    @property
    def inverted(self) -> Dict[str, PostingEntry]:
        """Compatibility view of the postings as ``doc_id -> entry``.

        Materialized lazily and cached per slot version, so repeated
        read access stays O(1); treat it as read-only — writes would
        bypass the aggregate/version maintenance.
        """
        self._refresh_views()
        return self._inverted_view

    def _refresh_views(self) -> None:
        version = self._store.version
        if version == self._view_version:
            return
        self._entries_view = [
            PostingEntry(doc_id=d, owner_peer=o, raw_tf=t, doc_length=l)
            for d, o, t, l in self._store.rows()
        ]
        self._inverted_view = {e.doc_id: e for e in self._entries_view}
        self._view_version = version


@dataclass
class CachedResult:
    """One fully-scored query result held at an indexing peer.

    ``terms`` is the *exact ordered* keyword tuple the result was scored
    for — queries with the same keyword set but a different order share
    a canonical hash yet accumulate floating-point contributions in a
    different order, so a hit requires tuple equality, not set equality.
    ``slot_versions`` snapshots every query term's slot version at
    scoring time (0 for terms with no slot); because slot versions are
    globally unique, version equality proves the postings are unchanged.
    ``failed_terms`` records which terms were dropped to unreachable
    peers — a result computed under a partial failure must not be served
    once the peers recover (or vice versa).
    """

    terms: Tuple[str, ...]
    top_k: int
    slot_versions: Dict[str, int]
    failed_terms: FrozenSet[str]
    ranked: RankedList

    def matches(
        self,
        terms: Tuple[str, ...],
        top_k: int,
        slot_versions: Mapping[str, int],
        failed_terms: FrozenSet[str],
    ) -> bool:
        """Whether this entry can answer the given request exactly."""
        return (
            self.terms == tuple(terms)
            and self.top_k >= top_k
            and self.slot_versions == dict(slot_versions)
            and self.failed_terms == failed_terms
        )


class QueryResultCache:
    """Bounded LRU of scored query results, one per indexing peer.

    Keyed by the canonical query hash of Section 3 (already used for
    cached-query deduplication), so the cache for a query lives at a
    deterministic ring position any querying peer can route to.  Entries
    are validated — not eagerly invalidated — via the per-slot version
    counters snapshotted in :class:`CachedResult`: a publish, unpublish,
    or learning replacement bumps the term slot's version, and the next
    probe sees the mismatch and discards the entry.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, query_hash: int) -> Optional[CachedResult]:
        """The entry under *query_hash* (refreshing its recency), or
        ``None``.  Validity checking is the caller's job — the cache
        cannot see current slot versions."""
        entry = self._entries.get(query_hash)
        if entry is not None:
            self._entries.move_to_end(query_hash)
        return entry

    def put(self, query_hash: int, entry: CachedResult) -> None:
        """Insert/replace the entry, evicting the least recently used."""
        self._entries[query_hash] = entry
        self._entries.move_to_end(query_hash)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, query_hash: int) -> bool:
        """Drop a stale entry; True if it existed."""
        return self._entries.pop(query_hash, None) is not None

    def entries(self) -> List[Tuple[int, "CachedResult"]]:
        """(query hash, entry) pairs in LRU order, without refreshing
        recency — the invariant checker reads without perturbing."""
        return list(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class TermStats:
    """Owner-side per-term learning statistics (Section 5.1(b)):
    the largest historical qScore and the cumulative query frequency."""

    max_qscore: float = 0.0
    query_frequency: int = 0

    def absorb(self, qscore: float, additional_qf: int) -> None:
        """Fold in one poll's worth of evidence: max for qScore
        (max(S1∪S2) = max(max S1, max S2)), sum for QF (cumulative)."""
        if qscore > self.max_qscore:
            self.max_qscore = qscore
        self.query_frequency += additional_qf
